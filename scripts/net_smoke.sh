#!/usr/bin/env bash
# Multi-process loopback smoke: one `fedsz serve` root plus four
# `fedsz worker` child processes on 127.0.0.1, two rounds, asserting
# the server's printed global-model checksum is bit-identical to the
# in-memory `fedsz fl` run of the same configuration. The serve
# process also exposes `--metrics-addr`; while the accept barrier holds
# (three of four workers joined), the script scrapes `/metrics` and
# asserts the session/eviction counters. CI runs this under a 120 s
# timeout; it finishes in a few seconds when healthy.
set -euo pipefail

BIN=${BIN:-target/release/fedsz}
PORT=${PORT:-7453}
MPORT=${MPORT:-$((PORT + 1))}
# One declarative run spec drives every process (clients 4, rounds 2,
# train-per-class 4, seed 9); per-process flags add only the role.
FLAGS=(--config examples/configs/socket.toml)
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

want=$("$BIN" fl "${FLAGS[@]}" | grep '^global checksum' | awk '{print $3}')
echo "in-memory checksum:     $want"

"$BIN" serve --bind "127.0.0.1:$PORT" --metrics-addr "127.0.0.1:$MPORT" "${FLAGS[@]}" \
    > "$WORKDIR/serve.out" 2> "$WORKDIR/serve.err" &
serve_pid=$!

# Wait for the listener to come up (the probe connection is rejected
# by the handshake and does not count as a child).
up=0
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
    exec 3>&- 3<&- || true
    up=1
    break
  fi
  sleep 0.1
done
[ "$up" = 1 ] || { echo "serve never started listening"; cat "$WORKDIR/serve.err"; exit 1; }

# Three of four workers join, so the accept barrier holds the round
# open — a stable window to scrape the Prometheus endpoint.
for i in 0 1 2; do
  "$BIN" worker --id "$i" --connect "127.0.0.1:$PORT" "${FLAGS[@]}" \
      > "$WORKDIR/worker$i.out" &
done

snapshot="$WORKDIR/metrics.txt"
scraped=0
for _ in $(seq 1 100); do
  if curl -sf --max-time 2 "http://127.0.0.1:$MPORT/metrics" > "$snapshot" \
      && grep -q '^fedsz_net_sessions_total 3$' "$snapshot"; then
    scraped=1
    break
  fi
  sleep 0.1
done
if [ "$scraped" != 1 ]; then
  echo "FAIL: /metrics never reported fedsz_net_sessions_total 3"
  cat "$snapshot" 2>/dev/null || true
  exit 1
fi
grep -q '^fedsz_net_evictions_total 0$' "$snapshot" \
  || { echo "FAIL: evictions counted during the barrier"; cat "$snapshot"; exit 1; }
echo "metrics ok: 3 sessions joined, 0 evictions at the barrier"

# The fourth worker releases the barrier; the rounds run to completion.
"$BIN" worker --id 3 --connect "127.0.0.1:$PORT" "${FLAGS[@]}" \
    > "$WORKDIR/worker3.out" &
wait

echo "--- serve report ---"
cat "$WORKDIR/serve.out"
got=$(grep '^global checksum' "$WORKDIR/serve.out" | awk '{print $3}')
echo "multi-process checksum: $got"

if [ "$want" != "$got" ]; then
  echo "FAIL: multi-process run diverged from the in-memory engine"
  exit 1
fi
if grep -q "evicted child" "$WORKDIR/serve.out"; then
  echo "FAIL: a worker was evicted during the smoke"
  exit 1
fi
echo "parity ok: serve + 4 workers reproduced $want bit for bit"
