#!/usr/bin/env bash
# Churn smoke of the elastic socket runtime: one `fedsz serve` root,
# two relay processes, four workers — and two scripted faults. Worker 1
# kills its session on receiving round 2's broadcast (1-based; the
# `--drop-at-round 1` knob) and must reconnect and resume; relay 1
# terminates at the start of round 3 (`--fail-at-round 2`) and its two
# workers must fail over to the root (`--fallback`), which adopts them
# onto the dead relay's shard range. The run must complete all rounds,
# reproduce the in-memory `fedsz fl` checksum bit for bit (every client
# survives the churn, so parity is over the full cohort), report the
# eviction/reconnect/re-parent counts in the run_report.v2 JSON, and
# show nonzero fedsz_net_reconnects_total / fedsz_net_reparent_total
# on the live /metrics endpoint. CI runs this under a 120 s timeout;
# healthy runs finish in a few seconds.
set -euo pipefail

BIN=${BIN:-target/release/fedsz}
PORT=${PORT:-7463}
MPORT=$((PORT + 1))
R0PORT=$((PORT + 2))
R1PORT=$((PORT + 3))
# Five rounds keep the server busy well past both faults, so the
# metrics scrape has a wide window to observe the counters live.
FLAGS=(--clients 4 --shards 2 --rounds 5 --train-per-class 4 --seed 9)
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

want=$("$BIN" fl "${FLAGS[@]}" | grep '^global checksum' | awk '{print $3}')
echo "in-memory checksum:     $want"

wait_port() {
  local port=$1 label=$2
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      exec 3>&- 3<&- || true
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: $label never started listening on $port"
  return 1
}

"$BIN" serve --bind "127.0.0.1:$PORT" --metrics-addr "127.0.0.1:$MPORT" --json "${FLAGS[@]}" \
    > "$WORKDIR/serve.json" 2> "$WORKDIR/serve.err" &
root_pid=$!
wait_port "$PORT" "root serve" || { cat "$WORKDIR/serve.err"; exit 1; }

"$BIN" serve --shard 0 --connect "127.0.0.1:$PORT" --bind "127.0.0.1:$R0PORT" "${FLAGS[@]}" \
    > "$WORKDIR/relay0.out" 2>&1 &
relay0_pid=$!
# The doomed relay: terminates at the start of round 3 (0-based 2).
"$BIN" serve --shard 1 --connect "127.0.0.1:$PORT" --bind "127.0.0.1:$R1PORT" \
    --fail-at-round 2 "${FLAGS[@]}" \
    > "$WORKDIR/relay1.out" 2>&1 &
relay1_pid=$!
wait_port "$R0PORT" "relay 0"
wait_port "$R1PORT" "relay 1"

worker_pids=()
# Shard 0's workers; worker 1 severs its session mid-round-2 (0-based
# 1) and must resume against the same relay.
"$BIN" worker --id 0 --connect "127.0.0.1:$R0PORT" "${FLAGS[@]}" \
    > "$WORKDIR/worker0.out" 2>&1 &
worker_pids+=($!)
"$BIN" worker --id 1 --connect "127.0.0.1:$R0PORT" --drop-at-round 1 "${FLAGS[@]}" \
    > "$WORKDIR/worker1.out" 2>&1 &
worker_pids+=($!)
# Shard 1's workers carry the root as --fallback: when their relay
# dies they must be re-parented there.
for i in 2 3; do
  "$BIN" worker --id "$i" --connect "127.0.0.1:$R1PORT" --fallback "127.0.0.1:$PORT" "${FLAGS[@]}" \
      > "$WORKDIR/worker$i.out" 2>&1 &
  worker_pids+=($!)
done

# Scrape /metrics while the run is live until both churn counters are
# nonzero (they are monotonic, so the first observation settles it).
snapshot="$WORKDIR/metrics.txt"
observed=0
while kill -0 "$root_pid" 2>/dev/null; do
  if curl -sf --max-time 2 "http://127.0.0.1:$MPORT/metrics" > "$snapshot.tmp" 2>/dev/null; then
    mv "$snapshot.tmp" "$snapshot"
    if grep -q '^fedsz_net_reconnects_total [1-9]' "$snapshot" \
        && grep -q '^fedsz_net_reparent_total [1-9]' "$snapshot"; then
      observed=1
      break
    fi
  fi
  sleep 0.05
done
if [ "$observed" != 1 ]; then
  echo "FAIL: /metrics never showed nonzero reconnect + reparent counters"
  cat "$snapshot" 2>/dev/null || true
  cat "$WORKDIR/serve.err" 2>/dev/null || true
  exit 1
fi
echo "metrics ok: live reconnect + reparent counters observed"
grep '^fedsz_net_' "$snapshot"

wait "$root_pid" || { echo "FAIL: root serve failed"; cat "$WORKDIR/serve.err"; exit 1; }
for pid in "${worker_pids[@]}"; do
  wait "$pid" || { echo "FAIL: a worker did not survive the churn"; cat "$WORKDIR"/worker*.out; exit 1; }
done
wait "$relay0_pid" || { echo "FAIL: the healthy relay failed"; cat "$WORKDIR/relay0.out"; exit 1; }
if wait "$relay1_pid"; then
  echo "FAIL: the doomed relay exited cleanly despite --fail-at-round"
  exit 1
fi
grep -q "fault injection" "$WORKDIR/relay1.out" \
  || { echo "FAIL: relay 1 died for the wrong reason"; cat "$WORKDIR/relay1.out"; exit 1; }

echo "--- root run report ---"
cat "$WORKDIR/serve.json"
python3 - "$WORKDIR/serve.json" "$want" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "fedsz.run_report.v2", doc["schema"]
assert doc["checksum"] == sys.argv[2], (doc["checksum"], sys.argv[2])
rows = doc["rounds"]
assert len(rows) == 5, len(rows)
# serve fills the elastic-membership columns (fl nulls them).
assert all(row["reconnects"] is not None for row in rows), rows
reconnects = sum(row["reconnects"] for row in rows)
reparented = sum(row["reparented"] for row in rows)
lost = sum(row["lost"] for row in rows)
assert reparented == 2, f"both orphans must be adopted, got {reparented}"
# The root sees the relay reconnect... never; its reconnects are the
# two adopted orphans (adoption is a reconnect + a re-parent).
assert reconnects >= 2, f"expected adoption reconnects, got {reconnects}"
assert lost == 1, f"exactly the dead relay is evicted, got {lost}"
# Every round still folded the full cohort: 4 clients' worth of
# updates reached the root, degraded topology or not.
assert all(row["merged"] == 4 for row in rows), [row["merged"] for row in rows]
print(f"run report ok: checksum {doc['checksum']}, "
      f"{reconnects} reconnects, {reparented} re-parented, {lost} evicted")
EOF

echo "churn parity ok: worker drop + relay kill, checksum $want reproduced bit for bit"
