//! Keeps README.md and ARCHITECTURE.md honest: every local path the
//! docs link or name must exist in the repo, and every `fedsz fl` flag
//! the README demonstrates must appear in the CLI's usage text. CI
//! runs this as the "docs link check" step, so renaming a crate or a
//! flag without updating the docs fails the build.

use std::path::Path;

/// Repo root: these integration tests run with the workspace root as
/// the working directory, but derive it from the manifest to be safe.
fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn read(name: &str) -> String {
    std::fs::read_to_string(root().join(name))
        .unwrap_or_else(|e| panic!("{name} must exist at the repo root: {e}"))
}

/// Extracts the targets of markdown inline links `[text](target)`.
fn markdown_link_targets(doc: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = doc.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            if let Some(end) = doc[i + 2..].find(')') {
                targets.push(doc[i + 2..i + 2 + end].to_string());
            }
        }
        i += 1;
    }
    targets
}

/// Extracts backticked tokens that look like repo paths (contain a
/// `/` and a known extension, or start with a tracked directory).
fn inline_path_tokens(doc: &str) -> Vec<String> {
    doc.split('`')
        .skip(1)
        .step_by(2)
        .filter(|tok| !tok.contains(char::is_whitespace) && !tok.contains("::"))
        .filter(|tok| {
            tok.starts_with("crates/")
                || tok.starts_with("tests/")
                || tok.starts_with("examples/")
                || tok.starts_with("shims/")
        })
        .map(str::to_string)
        .collect()
}

#[test]
fn every_documented_path_exists() {
    for doc_name in ["README.md", "ARCHITECTURE.md"] {
        let doc = read(doc_name);
        let mut checked = 0usize;
        for target in markdown_link_targets(&doc) {
            if target.starts_with("http://") || target.starts_with("https://") {
                continue;
            }
            let path = target.split('#').next().unwrap_or(&target);
            if path.is_empty() {
                continue;
            }
            assert!(
                root().join(path).exists(),
                "{doc_name} links to `{path}`, which does not exist"
            );
            checked += 1;
        }
        for token in inline_path_tokens(&doc) {
            assert!(
                root().join(&token).exists(),
                "{doc_name} names `{token}`, which does not exist"
            );
            checked += 1;
        }
        assert!(checked >= 3, "{doc_name} should reference at least a few repo paths");
    }
}

#[test]
fn architecture_names_real_modules() {
    // The layer diagram cites engine/transport/link/agg modules; if a
    // refactor moves them, the diagram must move too.
    let doc = read("ARCHITECTURE.md");
    for (token, path) in [
        ("engine::RoundEngine", "crates/fl/src/engine.rs"),
        ("transport::Transport", "crates/fl/src/transport.rs"),
        ("link::schedule", "crates/fl/src/link.rs"),
        ("agg::TreePlan", "crates/fl/src/agg/plan.rs"),
        ("PsumForwarder", "crates/fl/src/agg/psum.rs"),
        ("protocol::Message", "crates/fl/src/protocol.rs"),
        ("RoundPlan", "crates/fl/src/plan.rs"),
        ("StagePolicy", "crates/fl/src/plan.rs"),
        ("PlanError", "crates/fl/src/plan.rs"),
    ] {
        assert!(doc.contains(token), "ARCHITECTURE.md no longer mentions `{token}`");
        assert!(root().join(path).exists(), "`{token}` documented but `{path}` is gone");
    }
}

#[test]
fn example_run_specs_exist_parse_and_are_documented() {
    // Every shipped run spec must parse under the CLI's spec grammar
    // (a stale key after a flag rename must fail this test, not the
    // user), and the docs must mention the directory so the specs are
    // discoverable.
    let dir = root().join("examples/configs");
    let mut specs = 0usize;
    for entry in std::fs::read_dir(&dir).expect("examples/configs/ must exist") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        specs += 1;
        let text = std::fs::read_to_string(&path).expect("readable spec");
        // Specs with a [matrix] table are sweep specs: they parse
        // under the sweep grammar (and the flat parser must route
        // users at them), not under `--config`.
        let sweep = fedsz_cli::spec::parse_sweep_spec(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        if !sweep.axes.is_empty() {
            let flat_err = fedsz_cli::spec::parse_spec(&text)
                .expect_err("a [matrix] spec must not parse as a flat run spec");
            assert!(
                flat_err.contains("fedsz sweep"),
                "{}: the flat parser must route [matrix] specs at `fedsz sweep`, got: {flat_err}",
                path.display()
            );
            assert!(!sweep.base.is_empty(), "{} has an empty base section", path.display());
            continue;
        }
        let entries = fedsz_cli::spec::parse_spec(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        assert!(!entries.is_empty(), "{} is an empty spec", path.display());
        // Specs must expand to flags the CLI accepts end to end.
        let mut args = vec!["fl".to_string(), "--rounds".into(), "1".into()];
        args.push("--config".into());
        args.push(path.to_string_lossy().into_owned());
        // Only validate the parse/validation path cheaply: a spec that
        // fails flag parsing or plan validation reports code != 0 with
        // a message; a valid one would train, which is the CI smoke
        // job's (not this test's) budget. Parse-only: expand + config.
        let expanded = fedsz_cli::spec::expand_config(&args)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(expanded.len() >= args.len() - 2, "expansion lost arguments");
    }
    assert!(specs >= 3, "expected the paper/tree/socket example specs, found {specs}");
    for doc_name in ["README.md", "ARCHITECTURE.md"] {
        let doc = read(doc_name);
        assert!(
            doc.contains("examples/configs"),
            "{doc_name} must point readers at the example run specs"
        );
    }
    // The named examples the docs walk through must exist.
    for name in ["paper.toml", "tree_depth3.toml", "socket.toml", "sweep_dp.toml"] {
        assert!(dir.join(name).exists(), "examples/configs/{name} is documented but missing");
    }
}

#[test]
fn readme_fl_flags_match_the_cli_usage() {
    // Every `--flag` the README demonstrates for `fedsz fl` must be a
    // real flag in the CLI's usage text (the usage string is itself
    // unit-tested against the parser in crates/cli).
    let readme = read("README.md");
    for flag in [
        "--clients",
        "--rounds",
        "--links",
        "--straggler",
        "--policy",
        "--shards",
        "--downlink",
        "--tree",
        "--psum",
        "--config",
        "--json",
        "--dp-clip",
        "--dp-noise",
    ] {
        assert!(readme.contains(flag), "README quickstart lost the `{flag}` example");
        assert!(
            fedsz_cli::USAGE.contains(flag),
            "README shows `{flag}` but the CLI usage does not"
        );
    }
}
