//! Integration tests for the reproduction's extension features:
//! non-IID federated training, the Eqn 2 advisor, delta encoding, the
//! Laplace mechanism, and baseline composition.

use fedsz::advisor::Advisor;
use fedsz::timing::mbps;
use fedsz::{ErrorBound, FedSz, FedSzConfig, LossyKind};
use fedsz_data::DatasetKind;
use fedsz_dp::{analyze_noise, equivalent_epsilon, error_vector, laplace_mechanism};
use fedsz_fl::baselines::{qsgd_quantize, top_k_sparsify};
use fedsz_fl::{Experiment, FlConfig};
use fedsz_nn::models::specs::ModelSpec;
use fedsz_nn::models::tiny::TinyArch;

#[test]
fn non_iid_training_with_weighted_aggregation_learns() {
    let mut config = FlConfig::paper_default(TinyArch::AlexNet, DatasetKind::Cifar10Like);
    config.rounds = 6;
    config.non_iid_alpha = Some(0.3);
    config.weighted_aggregation = true;
    config.data.train_per_class = 12;
    let metrics = Experiment::new(config).run();
    let best = metrics.iter().map(|m| m.test_accuracy).fold(0.0f64, f64::max);
    assert!(best > 0.15, "non-IID run stuck at {best:.3}");
}

#[test]
fn non_iid_shards_are_skewed_but_cover_all_data() {
    let (train, _) = DatasetKind::Cifar10Like.generate(&Default::default());
    let shards = train.shard_dirichlet(4, 0.1, 3);
    assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), train.len());
    // At alpha 0.1 at least one client should be visibly specialized.
    let max_share = shards
        .iter()
        .map(|s| {
            let h = s.label_histogram();
            *h.iter().max().unwrap() as f64 / s.len() as f64
        })
        .fold(0.0f64, f64::max);
    assert!(max_share > 0.35, "expected label skew, max share {max_share:.2}");
}

#[test]
fn advisor_agrees_with_figure8_crossover() {
    let spec = ModelSpec::alexnet();
    let sample = spec.instantiate_scaled(3, 0.02);
    let advisor = Advisor::new(vec![LossyKind::Sz2], vec![ErrorBound::Relative(1e-2)]);
    // Well below break-even: compress. Far above: send raw.
    assert!(advisor.recommend(&sample, spec.byte_size(), mbps(10.0)).best.is_some());
    assert!(advisor.recommend(&sample, spec.byte_size(), mbps(1e6)).best.is_none());
}

#[test]
fn delta_encoding_survives_fl_style_round_trip() {
    // Simulate two FL rounds: server tracks reference, client ships deltas.
    let reference = ModelSpec::mobilenet_v2().instantiate_scaled(5, 0.02);
    let fedsz = FedSz::new(FedSzConfig::default());
    // Round 1 update: reference with a small uniform drift on weights.
    let update: fedsz_nn::StateDict = reference
        .iter()
        .map(|(n, t)| {
            let mut t = t.clone();
            let bump = if n.contains("weight") { 1e-3 } else { 0.0 };
            t.map_inplace(|v| v + bump);
            (n.to_owned(), t)
        })
        .collect();
    let packed = fedsz.compress_delta(&update, &reference).unwrap();
    let restored = fedsz.decompress_delta(packed.bytes(), &reference).unwrap();
    assert_eq!(restored.len(), update.len());
    for (name, tensor) in update.iter() {
        let err =
            fedsz_codec::stats::max_abs_error(tensor.data(), restored.get(name).unwrap().data());
        assert!(err <= 1e-3, "{name}: {err}");
    }
}

#[test]
fn compression_noise_vs_laplace_mechanism_comparison() {
    // The future-work question: how does FedSZ's implicit noise compare
    // with explicit DP noise at matched epsilon?
    let dict = ModelSpec::mobilenet_v2().instantiate_scaled(9, 0.02);
    let fedsz = FedSz::default();
    let packed = fedsz.compress(&dict).unwrap();
    let restored = fedsz.decompress(packed.bytes()).unwrap();
    let mut errors = Vec::new();
    for (name, tensor) in dict.iter() {
        if fedsz::partition::is_lossy(name, tensor.len(), 1000) {
            errors.extend(error_vector(tensor.data(), restored.get(name).unwrap().data()));
        }
    }
    let eps = equivalent_epsilon(&errors, 1.0);
    assert!(eps.is_finite() && eps > 0.0);
    // Now add explicit mechanism noise at that epsilon and check scale.
    let mut synthetic = vec![0.0f32; errors.len()];
    laplace_mechanism(&mut synthetic, 1.0, eps, 11);
    let implicit = analyze_noise(&errors);
    let explicit = analyze_noise(&synthetic);
    let ratio = implicit.laplace.scale / explicit.laplace.scale;
    assert!((0.5..2.0).contains(&ratio), "matched-epsilon noise scales should agree: {ratio:.2}");
}

#[test]
fn composed_baselines_preserve_metadata_and_shrink_wire_size() {
    let mut config = FlConfig::paper_default(TinyArch::AlexNet, DatasetKind::Cifar10Like);
    config.rounds = 1;
    config.clients = 1;
    let mut exp = Experiment::new(config);
    let global = exp.global_state().clone();
    let _ = exp.run_round(0);
    let update = exp.global_state().clone();
    let threshold = FlConfig::tiny_model_compression().threshold;
    let fedsz = FedSz::new(FlConfig::tiny_model_compression());

    let plain = fedsz.compress(&update).unwrap().bytes().len();
    let sparse = top_k_sparsify(&update, &global, 0.05, threshold);
    let sparse_delta = fedsz.compress_delta(&sparse, &global).unwrap().bytes().len();
    assert!(
        sparse_delta * 2 < plain,
        "top-k + delta ({sparse_delta}) should easily halve plain FedSZ ({plain})"
    );

    let quant = qsgd_quantize(&update, &global, 8, threshold, 5);
    let quant_size = fedsz.compress(&quant).unwrap().bytes().len();
    assert!(quant_size < plain, "QSGD + FedSZ ({quant_size}) should beat plain ({plain})");

    // Both transforms leave non-lossy tensors bit-exact.
    for (name, tensor) in update.iter() {
        if !fedsz::partition::is_lossy(name, tensor.len(), threshold) {
            assert_eq!(sparse.get(name).unwrap(), tensor, "{name}");
            assert_eq!(quant.get(name).unwrap(), tensor, "{name}");
        }
    }
}
