//! Integration tests for the sharded aggregation subsystem: the
//! bit-parity guarantee (sharded tree == flat synchronous FedAvg for
//! any shard count) and the downlink stage's error-bound contract.

use fedsz::{ErrorBound, FedSzConfig};
use fedsz_fl::agg::PartialSum;
use fedsz_fl::engine::RoundEngine;
use fedsz_fl::transport::{InMemoryTransport, WireTransport};
use fedsz_fl::{DownlinkMode, FlConfig, PsumMode};
use fedsz_lossless::PsumCodec;
use fedsz_nn::StateDict;
use fedsz_tensor::Tensor;
use proptest::collection::vec;
use proptest::prelude::*;

fn parity_config() -> FlConfig {
    let mut config = FlConfig::smoke_test();
    config.clients = 16;
    config.rounds = 2;
    config.data.train_per_class = 2;
    config.data.test_per_class = 2;
    config
}

/// The acceptance property of the subsystem: for shards ∈ {1, 2, 7,
/// 16}, the post-round global model is bit-identical to the flat
/// synchronous FedAvg result for the same seed — splitting the cohort
/// across edge aggregators must not move a single bit.
#[test]
fn sharded_tree_is_bit_identical_to_flat_fedavg() {
    let config = parity_config();
    let mut flat = RoundEngine::new(config.clone(), Box::<InMemoryTransport>::default());
    let mut flat_rounds: Vec<Vec<u8>> = Vec::new();
    for round in 0..config.rounds {
        flat.run_round(round);
        flat_rounds.push(flat.global_state().to_bytes());
    }
    for shards in [1usize, 2, 7, 16] {
        let mut sharded_config = config.clone();
        sharded_config.shards = Some(shards);
        let mut tree = RoundEngine::new(sharded_config, Box::<InMemoryTransport>::default());
        for (round, flat_bytes) in flat_rounds.iter().enumerate() {
            tree.run_round(round);
            assert_eq!(
                &tree.global_state().to_bytes(),
                flat_bytes,
                "{shards} shards diverged from flat FedAvg at round {round}"
            );
        }
    }
}

/// Deep trees inherit the bit-parity guarantee: depths 3 and 4 with
/// uneven fan-outs, a cohort the leaf count does not divide (16
/// clients over 6 or 12 leaves), and more leaves than clients — all
/// with lossless partial-sum frames on, which must not move a bit
/// either.
#[test]
fn deep_trees_are_bit_identical_to_flat_fedavg() {
    let config = parity_config();
    let mut flat = RoundEngine::new(config.clone(), Box::<InMemoryTransport>::default());
    let mut flat_rounds: Vec<Vec<u8>> = Vec::new();
    for round in 0..config.rounds {
        flat.run_round(round);
        flat_rounds.push(flat.global_state().to_bytes());
    }
    for fanouts in [vec![2, 3], vec![3, 4], vec![2, 2, 3], vec![3, 2, 4]] {
        let mut deep_config = config.clone();
        deep_config.tree = Some(fanouts.clone());
        deep_config.psum = PsumMode::Lossless;
        let mut tree = RoundEngine::new(deep_config, Box::<InMemoryTransport>::default());
        for (round, flat_bytes) in flat_rounds.iter().enumerate() {
            tree.run_round(round);
            assert_eq!(
                &tree.global_state().to_bytes(),
                flat_bytes,
                "depth-{} tree {fanouts:?} diverged from flat FedAvg at round {round}",
                fanouts.len() + 1
            );
        }
    }
}

/// Parity must also survive the harder configurations: weighted
/// non-IID aggregation with partial participation, downlink-encoded
/// broadcasts, and the framed-wire transport.
#[test]
fn sharded_parity_holds_with_weighting_downlink_and_wire() {
    let mut config = parity_config();
    config.clients = 8;
    config.participation = 0.75;
    config.non_iid_alpha = Some(0.5);
    config.weighted_aggregation = true;
    config.downlink = DownlinkMode::Compressed;
    let mut flat = RoundEngine::new(config.clone(), Box::<InMemoryTransport>::default());
    let mut sharded_config = config.clone();
    sharded_config.shards = Some(3);
    sharded_config.psum = PsumMode::Adaptive;
    let mut tree = RoundEngine::new(sharded_config.clone(), Box::<InMemoryTransport>::default());
    let mut wire_tree = RoundEngine::new(sharded_config, Box::new(WireTransport::new()));
    for round in 0..config.rounds {
        flat.run_round(round);
        tree.run_round(round);
        wire_tree.run_round(round);
        assert_eq!(
            tree.global_state().to_bytes(),
            flat.global_state().to_bytes(),
            "sharded tree diverged at round {round}"
        );
        assert_eq!(
            wire_tree.global_state().to_bytes(),
            flat.global_state().to_bytes(),
            "wire transport diverged at round {round}"
        );
    }
}

/// Sharding reshapes the server side only: with a 16-client cohort on
/// 4 edges, root ingress must drop well below the flat server's while
/// the learning outcome is untouched (bit-parity covers that).
///
/// A partial-sum frame carries `f64` sums — twice a raw `f32` upload
/// per element — so the fan-in must exceed 2x for the tree to win
/// (and `2 · ratio` against FedSZ-compressed uploads; the 10^3-client
/// scale bench is where that crossover is demonstrated). This test
/// pins the raw-upload case at fan-in 4.
#[test]
fn sharded_tree_cuts_root_ingress() {
    let mut config = parity_config();
    config.rounds = 1;
    config.compression = None;
    let mut flat = RoundEngine::new(config.clone(), Box::<InMemoryTransport>::default());
    let flat_metrics = flat.run_round(0);
    config.shards = Some(4);
    let mut tree = RoundEngine::new(config, Box::<InMemoryTransport>::default());
    let tree_metrics = tree.run_round(0);
    assert_eq!(flat_metrics.root_ingress_bytes, flat_metrics.upstream_bytes);
    assert!(
        tree_metrics.root_ingress_bytes * 3 < flat_metrics.root_ingress_bytes * 2,
        "4 partial-sum frames ({}) should undercut 16 raw uploads ({})",
        tree_metrics.root_ingress_bytes,
        flat_metrics.root_ingress_bytes
    );
}

/// Weight-like float vectors (finite, mixed magnitudes).
fn weights() -> impl Strategy<Value = Vec<f32>> {
    vec(prop_oneof![(-1.0f32..1.0), (-100.0f32..100.0), Just(0.0f32)], 130..400)
}

fn downlink_for(bound: ErrorBound) -> fedsz_fl::agg::Downlink {
    fedsz_fl::agg::Downlink::new(
        DownlinkMode::Compressed,
        Some(FedSzConfig { threshold: 128, error_bound: bound, ..FedSzConfig::default() }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lossless partial-sum codec's contract: the frame an edge
    /// ships decompresses to the exact `encode_payload` image — every
    /// `f64` bit pattern of the sums survives, so compressing frames
    /// can never break the tree's bit-parity with flat FedAvg.
    #[test]
    fn psum_frames_encode_decode_bit_exactly(
        data in weights(),
        weights in vec(0.25f64..50.0, 1..5),
    ) {
        let mut sum = PartialSum::new();
        for (i, w) in weights.iter().enumerate() {
            let mut dict = StateDict::new();
            let shifted: Vec<f32> = data.iter().map(|&v| v + i as f32 * 0.125).collect();
            dict.insert("enc.weight", Tensor::from_vec(vec![shifted.len()], shifted));
            sum.accumulate(&dict, *w);
        }
        let payload = sum.encode_payload();
        let codec = PsumCodec::new();
        let frame = codec.compress(&payload);
        let restored = codec.decompress(&frame).unwrap();
        prop_assert_eq!(&restored, &payload, "frame must round-trip bit-exactly");
        // And the restored image still parses as the far side would
        // parse it, down to the exact f64 sums.
        let entries = PartialSum::decode_payload(&restored).unwrap();
        prop_assert_eq!(entries.len(), 1);
        let direct = PartialSum::decode_payload(&payload).unwrap();
        prop_assert_eq!(entries, direct);
    }

    /// The downlink contract: a broadcast round-trip respects the
    /// configured error bound element-wise on the lossy partition and
    /// is exact on the lossless partition.
    #[test]
    fn downlink_round_trips_respect_the_error_bound(
        data in weights(),
        eb_exp in -4i32..-1,
        relative in any::<bool>(),
    ) {
        let eb = 10f64.powi(eb_exp);
        let bound = if relative { ErrorBound::Relative(eb) } else { ErrorBound::Absolute(eb) };
        let mut global = StateDict::new();
        // Above the 128-element threshold and named "weight": lossy.
        global.insert("enc.weight", Tensor::from_vec(vec![data.len()], data.clone()));
        // Small / unnamed-weight tensors: lossless, must survive exactly.
        global.insert("enc.bias", Tensor::from_vec(vec![4], vec![0.5, -0.25, 3.0, 0.0]));

        let downlink = downlink_for(bound);
        let payload = downlink.encode(&global, None, 1);
        prop_assert!(payload.compressed);
        let restored = downlink.decode(&payload.bytes, payload.compressed).unwrap();

        let eps = bound.absolute_for(&data).expect("positive bound on non-empty data");
        let back = restored.get("enc.weight").unwrap().data();
        prop_assert_eq!(back.len(), data.len());
        for (i, (&a, &b)) in data.iter().zip(back).enumerate() {
            let err = f64::from(a - b).abs();
            prop_assert!(
                err <= eps * (1.0 + 1e-5),
                "element {} off by {:.3e} > bound {:.3e}", i, err, eps
            );
        }
        prop_assert_eq!(
            restored.get("enc.bias").unwrap().data(),
            global.get("enc.bias").unwrap().data(),
            "lossless partition must be exact"
        );
    }
}
