//! Churn tests of the elastic socket runtime: sessions drop mid-round,
//! relays die mid-run — and the run must complete with the global
//! model still bit-identical to the in-memory engine, because
//! reconnecting workers resend their cached updates (never retrain)
//! and a dead relay's orphans are re-parented to the root on the same
//! shard ranges the relay owned.
//!
//! The fault-injection knobs drive the chaos deterministically:
//! `WorkerConfig::drop_session_at_round` makes a worker sever its
//! session upon receiving that round's broadcast, and
//! `ServeConfig::fail_at_round` makes a relay process terminate at the
//! start of that round. The shell churn smoke (`scripts/
//! net_churn_smoke.sh`) exercises the same paths with real process
//! kills and asserts the Prometheus counters.

use fedsz_fl::net::{run_worker, NetServer, ServeConfig, WorkerConfig};
use fedsz_fl::{Experiment, FlConfig};
use std::thread;
use std::time::Duration;

fn quick_config() -> FlConfig {
    let mut config = FlConfig::smoke_test();
    config.rounds = 3;
    config.data.train_per_class = 4;
    config
}

fn test_timeouts(config: &mut ServeConfig) {
    config.accept_timeout = Duration::from_secs(20);
    config.round_timeout = Duration::from_secs(60);
}

/// A churn-capable worker config: fast retry clock, optional fallback
/// parent, optional scripted mid-run session drop.
fn churn_worker(
    fl: &FlConfig,
    id: usize,
    connect: &str,
    fallback: Option<&str>,
    drop_at: Option<u32>,
) -> WorkerConfig {
    let mut config = WorkerConfig::new(fl.clone(), id, connect.to_string());
    config.fallback = fallback.map(str::to_string);
    config.drop_session_at_round = drop_at;
    config.backoff_base = Duration::from_millis(10);
    config.backoff_cap = Duration::from_millis(200);
    config
}

#[test]
fn dropped_worker_session_resumes_with_bit_parity() {
    // Worker 1 severs its connection the moment round 1's broadcast
    // arrives, then reconnects and resumes. Nothing may retrain: the
    // client's RNG and momentum advanced through round 0, so a retrain
    // would silently diverge — bit-parity with the in-memory engine is
    // the proof the resume path resent the cached update instead.
    let config = quick_config();

    let mut reference = Experiment::new(config.clone());
    reference.run();
    let want = reference.global_state().to_bytes();

    let server = NetServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut serve_config = ServeConfig::root(config.clone());
    test_timeouts(&mut serve_config);
    let root = thread::spawn(move || server.run(serve_config));

    let workers: Vec<_> = (0..config.clients)
        .map(|id| {
            let drop_at = (id == 1).then_some(1u32);
            let wc = churn_worker(&config, id, &addr, None, drop_at);
            thread::spawn(move || run_worker(wc))
        })
        .collect();

    let report = root.join().expect("root thread").expect("serve survives the drop");
    let mut worker_reconnects = 0usize;
    for w in workers {
        let r = w.join().expect("worker thread").expect("worker survives its own drop");
        assert_eq!(r.rounds, config.rounds, "every round trains exactly once");
        worker_reconnects += r.reconnects;
    }
    assert_eq!(worker_reconnects, 1, "exactly the scripted drop reconnects");

    let got = report.global.as_ref().expect("root holds the global").to_bytes();
    assert_eq!(got, want, "resume must be bit-identical: a retrain would diverge here");
    assert_eq!(report.evicted, 0, "a session that resumes within grace is never evicted");
    assert!(report.reconnects >= 1, "the server must account the rebind");
    assert_eq!(report.reparented, 0);
    assert!(report.rounds.iter().all(|r| r.merged == config.clients));
    // The rebind lands in the round it happened in, not smeared.
    assert_eq!(report.rounds.iter().map(|r| r.reconnects).sum::<usize>(), report.reconnects);
}

#[test]
fn dead_relay_reparents_its_cohort_to_the_root_with_parity() {
    // 4 clients through 2 relays; relay 1 terminates at the start of
    // round 1 (fault injection). Its two workers must fail over to the
    // root, be adopted onto relay 1's shard range, and the run must
    // still produce the exact in-memory checksum — the adopted raw
    // updates fold where the relay's partial sum would have.
    let mut config = quick_config();
    config.clients = 4;
    config.shards = Some(2);

    let mut reference = Experiment::new(config.clone());
    reference.run();
    let want = reference.global_state().to_bytes();

    let root = NetServer::bind("127.0.0.1:0").expect("bind root");
    let root_addr = root.local_addr().to_string();
    let mut root_config = ServeConfig::root(config.clone());
    test_timeouts(&mut root_config);
    let root_thread = thread::spawn(move || root.run(root_config));

    let mut worker_threads = Vec::new();
    let mut relay_threads = Vec::new();
    for shard in 0..2u32 {
        let relay = NetServer::bind("127.0.0.1:0").expect("bind relay");
        let relay_addr = relay.local_addr().to_string();
        let mut relay_config = ServeConfig::relay(config.clone(), shard, root_addr.clone());
        test_timeouts(&mut relay_config);
        if shard == 1 {
            relay_config.fail_at_round = Some(1);
        }
        relay_threads.push(thread::spawn(move || relay.run(relay_config)));
        for id in (shard as usize * 2)..(shard as usize * 2 + 2) {
            let wc = churn_worker(&config, id, &relay_addr, Some(&root_addr), None);
            worker_threads.push(thread::spawn(move || run_worker(wc)));
        }
    }

    let report = root_thread.join().expect("root thread").expect("root completes degraded");
    let healthy = relay_threads.remove(0).join().expect("relay 0 thread");
    healthy.expect("the surviving relay completes normally");
    let doomed = relay_threads.remove(0).join().expect("relay 1 thread");
    let failure = doomed.expect_err("the scripted relay failure surfaces as its error");
    assert!(failure.to_string().contains("fault injection"), "{failure}");

    let mut reconnects = 0usize;
    for w in worker_threads {
        let r = w.join().expect("worker thread").expect("every worker survives the failover");
        assert_eq!(r.rounds, config.rounds, "adoption must not cost anyone a round");
        reconnects += r.reconnects;
    }
    assert!(reconnects >= 2, "both orphans reconnected somewhere, got {reconnects}");

    let got = report.global.as_ref().expect("root holds the global").to_bytes();
    assert_eq!(got, want, "re-parented run diverged from the in-memory engine");
    assert_eq!(report.reparented, 2, "both orphans adopted by the root");
    assert!(report.reconnects >= 2);
    assert_eq!(report.evicted, 1, "exactly the dead relay is evicted");
    assert!(
        report.evictions.iter().any(|(id, round, _)| *id == 1 && *round == 1),
        "the eviction must name relay 1 at round 1: {:?}",
        report.evictions
    );
    assert!(
        report.rounds.iter().all(|r| r.merged == config.clients),
        "every round folds the full cohort, degraded or not: {:?}",
        report.rounds.iter().map(|r| r.merged).collect::<Vec<_>>()
    );
}

#[test]
fn permanently_dead_worker_degrades_without_hanging() {
    // A worker whose process dies for good (no reconnect) is evicted
    // after the grace window and every later round completes without
    // it — the barrier must not hang on the corpse's seat.
    let mut config = quick_config();
    config.clients = 2;

    let server = NetServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut serve_config = ServeConfig::root(config.clone());
    serve_config.accept_timeout = Duration::from_secs(20);
    serve_config.round_timeout = Duration::from_secs(60);
    serve_config.reconnect_grace = Duration::from_millis(300);
    let root = thread::spawn(move || server.run(serve_config));

    let healthy = {
        let wc = churn_worker(&config, 0, &addr, None, None);
        thread::spawn(move || run_worker(wc))
    };
    // The corpse: completes round 0 honestly, then dies on receiving
    // round 1's broadcast — with zero retries, so it never comes back.
    let corpse = {
        let mut wc = churn_worker(&config, 1, &addr, None, Some(1));
        wc.retries = 0;
        thread::spawn(move || run_worker(wc))
    };

    let report = root.join().expect("root thread").expect("a permanent death is not fatal");
    let r = healthy.join().expect("healthy thread").expect("healthy worker unaffected");
    assert_eq!(r.rounds, config.rounds);
    assert!(corpse.join().expect("corpse thread").is_err(), "the corpse exhausted its budget");

    assert_eq!(report.rounds.len(), config.rounds, "rounds continue after the death");
    assert_eq!(report.evicted, 1, "the corpse is evicted exactly once");
    assert!(report.evictions.iter().any(|(id, round, _)| *id == 1 && *round == 1));
    assert_eq!(report.rounds[0].merged, config.clients);
    assert!(
        report.rounds[1..].iter().all(|r| r.merged == 1),
        "later rounds aggregate only the survivor: {:?}",
        report.rounds.iter().map(|r| r.merged).collect::<Vec<_>>()
    );
    assert_ne!(report.checksum, 0);
}
