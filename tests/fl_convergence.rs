//! Training-level integration: the paper's accuracy claims on the
//! CPU-scale substrate, with fixed seeds.

use fedsz::timing::{mbps, TransferPlan};
use fedsz::{ErrorBound, FedSz};
use fedsz_data::DatasetKind;
use fedsz_fl::{Experiment, FlConfig};
use fedsz_nn::models::specs::ModelSpec;
use fedsz_nn::models::tiny::TinyArch;
use std::time::Instant;

fn quick_config(arch: TinyArch) -> FlConfig {
    let mut config = FlConfig::paper_default(arch, DatasetKind::Cifar10Like);
    config.rounds = 5;
    config.data.train_per_class = 8;
    config.data.test_per_class = 4;
    config
}

#[test]
fn all_archs_learn_above_chance_with_fedsz() {
    for arch in TinyArch::all() {
        let mut config = quick_config(arch);
        // The MobileNet-style blocks (BN + depthwise + ReLU6) converge
        // slowest of the three — also visible in the paper's Fig 4 —
        // so give it a longer schedule.
        if arch == TinyArch::MobileNetV2 {
            config.rounds = 8;
            config.lr = 0.1;
        }
        let metrics = Experiment::new(config).run();
        let best_acc = metrics.iter().map(|m| m.test_accuracy).fold(0.0f64, f64::max);
        assert!(best_acc > 0.15, "{arch}: best accuracy {best_acc:.3} not above chance (0.10)");
        // Communication must be simulated and nonzero.
        assert!(metrics.iter().all(|m| m.comm_secs > 0.0), "{arch}");
    }
}

#[test]
fn recommended_bound_tracks_uncompressed_accuracy() {
    // Fig 5's central claim at the paper's recommended REL 1e-2.
    let mut plain_cfg = quick_config(TinyArch::AlexNet);
    plain_cfg.compression = None;
    let plain: Vec<f64> =
        Experiment::new(plain_cfg).run().iter().map(|m| m.test_accuracy).collect();

    let mut fedsz_cfg = quick_config(TinyArch::AlexNet);
    fedsz_cfg.compression =
        Some(FlConfig::tiny_model_compression().with_error_bound(ErrorBound::Relative(1e-2)));
    let compressed: Vec<f64> =
        Experiment::new(fedsz_cfg).run().iter().map(|m| m.test_accuracy).collect();

    let final_gap = (plain.last().unwrap() - compressed.last().unwrap()).abs();
    assert!(
        final_gap < 0.20,
        "REL 1e-2 diverged from uncompressed: plain {plain:?} vs fedsz {compressed:?}"
    );
}

#[test]
fn communication_savings_match_eqn1_model() {
    // The round metrics' simulated comm time must agree with the Eqn 1
    // timing model evaluated on the same payload sizes.
    let mut config = quick_config(TinyArch::MobileNetV2);
    config.rounds = 1;
    let clients = config.clients;
    let bandwidth = config.bandwidth_bps.unwrap();
    let metrics = Experiment::new(config).run();
    let m = metrics.last().unwrap();
    let expected = m.update_bytes * 8.0 / bandwidth * clients as f64;
    let rel_err = (m.comm_secs - expected).abs() / expected;
    assert!(rel_err < 1e-9, "comm {:.4}s vs model {expected:.4}s", m.comm_secs);
}

#[test]
fn full_size_update_breakeven_is_in_the_papers_regime() {
    // Fig 8: compression should clearly pay at 10 Mbps and clearly not
    // at 10 Gbps for AlexNet-sized updates on this machine.
    let spec = ModelSpec::alexnet();
    let dict = spec.instantiate_scaled(2, 0.02);
    let inflate = spec.byte_size() as f64 / dict.byte_size() as f64;
    let fedsz = FedSz::default();
    let t0 = Instant::now();
    let packed = fedsz.compress(&dict).unwrap();
    let c = t0.elapsed().as_secs_f64() * inflate;
    let t1 = Instant::now();
    let _ = fedsz.decompress(packed.bytes()).unwrap();
    let d = t1.elapsed().as_secs_f64() * inflate;
    let plan = TransferPlan {
        compress_secs: c,
        decompress_secs: d,
        original_bytes: spec.byte_size(),
        compressed_bytes: (packed.bytes().len() as f64 * inflate) as usize,
    };
    assert!(plan.worthwhile(mbps(10.0)), "compression must win at 10 Mbps: {plan:?}");
    assert!(!plan.worthwhile(mbps(100_000.0)), "compression must lose at 100 Gbps: {plan:?}");
    assert!(plan.speedup(mbps(10.0)) > 3.0, "speedup at 10 Mbps too small: {plan:?}");
}

#[test]
fn all_dataset_geometries_run_end_to_end() {
    // FMNIST-like exercises the 1-channel path; Caltech101-like the
    // 101-class head. Tiny budgets: this checks plumbing, not accuracy.
    for dataset in [DatasetKind::FashionMnistLike, DatasetKind::Caltech101Like] {
        let mut config = FlConfig::paper_default(TinyArch::AlexNet, dataset);
        config.rounds = 1;
        config.clients = 2;
        config.data.train_per_class = 2;
        config.data.test_per_class = 1;
        let metrics = Experiment::new(config).run();
        let m = metrics.last().unwrap();
        assert!(m.test_accuracy.is_finite(), "{dataset}");
        assert!(m.ratio > 1.0, "{dataset}: compression inactive");
        assert!(m.comm_secs > 0.0, "{dataset}");
    }
}
