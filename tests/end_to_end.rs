//! Cross-crate integration: full client→bitstream→server round trips for
//! every model spec and compressor configuration.

use fedsz::{ErrorBound, FedSz, FedSzConfig, LosslessKind, LossyKind};
use fedsz_codec::stats::{max_abs_error, value_range};
use fedsz_nn::models::specs::ModelSpec;
use fedsz_nn::StateDict;

fn specs() -> Vec<ModelSpec> {
    vec![ModelSpec::alexnet(), ModelSpec::mobilenet_v2(), ModelSpec::resnet50()]
}

#[test]
fn every_model_round_trips_with_default_config() {
    for spec in specs() {
        let dict = spec.instantiate_scaled(11, 0.01);
        let fedsz = FedSz::default();
        let packed = fedsz.compress(&dict).expect("compress");
        let restored = fedsz.decompress(packed.bytes()).expect("decompress");
        assert_eq!(restored.len(), dict.len(), "{}", spec.name());
        for (name, tensor) in dict.iter() {
            let r = restored.get(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(r.shape(), tensor.shape(), "{name}");
        }
    }
}

#[test]
fn error_bound_holds_for_every_lossy_tensor_and_codec() {
    let dict = ModelSpec::resnet50().instantiate_scaled(3, 0.01);
    for lossy in LossyKind::all() {
        let rel = 1e-3;
        let config = FedSzConfig {
            lossy,
            lossless: LosslessKind::BloscLz,
            error_bound: ErrorBound::Relative(rel),
            threshold: 1000,
        };
        let fedsz = FedSz::new(config);
        let packed = fedsz.compress(&dict).expect("compress");
        let restored = fedsz.decompress(packed.bytes()).expect("decompress");
        for (name, tensor) in dict.iter() {
            let r = restored.get(name).unwrap();
            if fedsz::partition::is_lossy(name, tensor.len(), 1000) {
                let span = f64::from(value_range(tensor.data()).unwrap().span());
                let err = f64::from(max_abs_error(tensor.data(), r.data()));
                // ZFP in Relative mode is fixed-precision (rate-bounded,
                // per the paper); the SZ family must hold the bound.
                if lossy != LossyKind::Zfp {
                    assert!(
                        err <= rel * span * (1.0 + 1e-5),
                        "{lossy}/{name}: err {err:e} > {:.3e}",
                        rel * span
                    );
                }
            } else {
                assert_eq!(r.data(), tensor.data(), "{lossy}/{name} must be bit-exact");
            }
        }
    }
}

#[test]
fn compression_ratio_improves_with_looser_bounds() {
    let dict = ModelSpec::alexnet().instantiate_scaled(9, 0.01);
    let mut last_ratio = f64::INFINITY;
    for eb in [1e-1f64, 1e-2, 1e-3, 1e-4] {
        let fedsz = FedSz::new(FedSzConfig::default().with_error_bound(ErrorBound::Relative(eb)));
        let ratio = fedsz.compress(&dict).expect("compress").stats().ratio();
        assert!(
            ratio < last_ratio * 1.02,
            "ratio should fall as the bound tightens: {ratio:.2} after {last_ratio:.2} at {eb:e}"
        );
        last_ratio = ratio;
    }
    assert!(last_ratio > 1.0, "even 1e-4 must still compress");
}

#[test]
fn state_dict_serialization_composes_with_pipeline() {
    // StateDict -> bytes -> StateDict -> FedSZ -> StateDict.
    let dict = ModelSpec::mobilenet_v2().instantiate_scaled(21, 0.02);
    let revived = StateDict::from_bytes(&dict.to_bytes()).expect("wire format");
    assert_eq!(revived, dict);
    let fedsz = FedSz::default();
    let packed = fedsz.compress(&revived).expect("compress");
    let restored = fedsz.decompress(packed.bytes()).expect("decompress");
    assert_eq!(restored.len(), dict.len());
}

#[test]
fn headline_ratio_band_at_recommended_bound() {
    // Paper: 5.55x–12.61x across models at REL 1e-2. Synthetic weights
    // land in a comparable band.
    for spec in specs() {
        let dict = spec.instantiate_scaled(42, 0.02);
        let ratio = FedSz::default().compress(&dict).expect("compress").stats().ratio();
        assert!(
            (3.0..40.0).contains(&ratio),
            "{}: ratio {ratio:.2} far outside the paper's band",
            spec.name()
        );
    }
}
