//! Property-based tests over the workspace's core invariants.

use fedsz::{ErrorBound, FedSz, FedSzConfig, LossyKind};
use fedsz_codec::stats::{max_abs_error, value_range};
use fedsz_lossless::LosslessKind;
use fedsz_nn::StateDict;
use fedsz_tensor::Tensor;
use proptest::collection::vec;
use proptest::prelude::*;

/// Finite, reasonably-scaled floats (weight-like magnitudes).
fn weights() -> impl Strategy<Value = Vec<f32>> {
    vec(prop_oneof![(-1.0f32..1.0), (-100.0f32..100.0), Just(0.0f32)], 0..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lossless_codecs_round_trip_arbitrary_bytes(data in vec(any::<u8>(), 0..2048)) {
        for kind in LosslessKind::all() {
            let codec = kind.codec();
            let packed = codec.compress(&data);
            let restored = codec.decompress(&packed).unwrap();
            prop_assert_eq!(&restored, &data, "codec {}", kind);
        }
    }

    #[test]
    fn lossless_never_expands_much(data in vec(any::<u8>(), 0..4096)) {
        // The stored-frame fallback bounds expansion to a small header.
        for kind in LosslessKind::all() {
            let codec = kind.codec();
            let packed = codec.compress(&data);
            prop_assert!(packed.len() <= data.len() + 16, "codec {} expanded {} -> {}",
                kind, data.len(), packed.len());
        }
    }

    #[test]
    fn sz_family_respects_absolute_bounds(data in weights(), eb_exp in -5i32..0) {
        let eb = 10f64.powi(eb_exp);
        for kind in [LossyKind::Sz2, LossyKind::Sz3, LossyKind::Szx] {
            let codec = kind.codec();
            let packed = codec.compress(&data, ErrorBound::Absolute(eb)).unwrap();
            let restored = codec.decompress(&packed).unwrap();
            prop_assert_eq!(restored.len(), data.len());
            if !data.is_empty() {
                let err = f64::from(max_abs_error(&data, &restored));
                prop_assert!(err <= eb * (1.0 + 1e-5), "{}: {} > {}", kind, err, eb);
            }
        }
    }

    #[test]
    fn zfp_fixed_accuracy_respects_bounds(data in weights(), eb_exp in -4i32..0) {
        let eb = 10f64.powi(eb_exp);
        let codec = LossyKind::Zfp.codec();
        let packed = codec.compress(&data, ErrorBound::Absolute(eb)).unwrap();
        let restored = codec.decompress(&packed).unwrap();
        prop_assert_eq!(restored.len(), data.len());
        if !data.is_empty() {
            let err = f64::from(max_abs_error(&data, &restored));
            prop_assert!(err <= eb * (1.0 + 1e-5), "{} > {}", err, eb);
        }
    }

    #[test]
    fn relative_bounds_scale_with_value_range(data in weights(), rel_exp in -4i32..-1) {
        prop_assume!(data.len() > 1);
        let rel = 10f64.powi(rel_exp);
        let span = match value_range(&data) {
            Some(r) => f64::from(r.span()),
            None => return Ok(()),
        };
        let codec = LossyKind::Sz2.codec();
        let packed = codec.compress(&data, ErrorBound::Relative(rel)).unwrap();
        let restored = codec.decompress(&packed).unwrap();
        let err = f64::from(max_abs_error(&data, &restored));
        let eps = (rel * span).max(1e-30);
        prop_assert!(err <= eps * (1.0 + 1e-5), "{} > {}", err, eps);
    }

    #[test]
    fn state_dict_wire_format_round_trips(
        entries in vec(("[a-z]{1,8}(\\.(weight|bias|running_mean))?", vec(-10f32..10.0, 0..64)), 0..12)
    ) {
        let mut dict = StateDict::new();
        for (name, values) in entries {
            let n = values.len();
            dict.insert(name, Tensor::from_vec(vec![n], values));
        }
        let revived = StateDict::from_bytes(&dict.to_bytes()).unwrap();
        prop_assert_eq!(revived, dict);
    }

    #[test]
    fn pipeline_round_trips_synthetic_dicts(
        big in vec(-1f32..1.0, 1100..1400),
        small in vec(-1f32..1.0, 1..32),
        eb_exp in -4i32..-1,
    ) {
        let mut dict = StateDict::new();
        let nb = big.len();
        let ns = small.len();
        dict.insert("layer.weight", Tensor::from_vec(vec![nb], big.clone()));
        dict.insert("layer.bias", Tensor::from_vec(vec![ns], small.clone()));
        let fedsz = FedSz::new(
            FedSzConfig::default().with_error_bound(ErrorBound::Relative(10f64.powi(eb_exp))),
        );
        let packed = fedsz.compress(&dict).unwrap();
        let restored = fedsz.decompress(packed.bytes()).unwrap();
        // Bias partition is bit-exact; weight partition bounded.
        prop_assert_eq!(restored.get("layer.bias").unwrap().data(), &small[..]);
        let span = f64::from(value_range(&big).unwrap().span());
        let err = f64::from(max_abs_error(&big, restored.get("layer.weight").unwrap().data()));
        let eps = (10f64.powi(eb_exp) * span).max(1e-30);
        prop_assert!(err <= eps * (1.0 + 1e-5));
    }

    #[test]
    fn fedavg_of_identical_updates_is_identity(values in vec(-5f32..5.0, 1..128), copies in 1usize..5) {
        let mut dict = StateDict::new();
        let n = values.len();
        dict.insert("w.weight", Tensor::from_vec(vec![n], values));
        let updates: Vec<StateDict> = (0..copies).map(|_| dict.clone()).collect();
        let avg = fedsz_fl::fedavg(&updates);
        let got = avg.get("w.weight").unwrap().data();
        let want = dict.get("w.weight").unwrap().data();
        for (a, b) in got.iter().zip(want) {
            prop_assert!((a - b).abs() <= 1e-5);
        }
    }

    #[test]
    fn huffman_round_trips_any_symbol_stream(symbols in vec(0u16..2000, 0..1500)) {
        let block = fedsz_codec::huffman::encode_block(&symbols);
        let mut pos = 0;
        let decoded = fedsz_codec::huffman::decode_block(&block, &mut pos).unwrap();
        prop_assert_eq!(decoded, symbols);
    }

    #[test]
    fn range_coder_round_trips_any_bitstream(bits in vec(any::<bool>(), 0..4000)) {
        use fedsz_codec::range::{BitModel, RangeDecoder, RangeEncoder};
        let mut model = BitModel::new();
        let mut enc = RangeEncoder::new();
        for &b in &bits {
            enc.encode_bit(&mut model, b);
        }
        let bytes = enc.finish();
        let mut model = BitModel::new();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &b in &bits {
            prop_assert_eq!(dec.decode_bit(&mut model).unwrap(), b);
        }
    }

    #[test]
    fn batched_add_slice_is_bit_identical_to_scalar_adds(
        values in vec(
            prop_oneof![
                (-1.0f32..1.0),
                (-100.0f32..100.0),
                Just(0.0f32),
                Just(-0.0f32),
                // Subnormal f32 inputs (positive and negative).
                (1u32..0x0080_0000).prop_map(f32::from_bits),
                (1u32..0x0080_0000).prop_map(|b| f32::from_bits(b | 0x8000_0000)),
                // Large magnitudes whose weighted product still clears
                // the 2^47 ceiling with room to spare.
                (-1.0e9f32..1.0e9),
            ],
            0..400,
        ),
        weights in vec(prop_oneof![(1.0e-6f64..1.0), (0.5f64..1.0e3)], 1..4),
    ) {
        use fedsz_fl::agg::ExactAcc;
        let mut batched = vec![ExactAcc::default(); values.len()];
        let mut scalar = vec![ExactAcc::default(); values.len()];
        // Several accumulation passes, so the fast path also runs over
        // non-zero accumulator state.
        for &w in &weights {
            ExactAcc::add_slice(&mut batched, &values, w);
            for (acc, &v) in scalar.iter_mut().zip(&values) {
                acc.add(w * f64::from(v));
            }
        }
        for (i, (b, s)) in batched.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(
                b.to_bits(), s.to_bits(),
                "kernel diverged at element {} (value {:e})", i, values[i]
            );
        }
    }

    #[test]
    fn tree_merge_parity_holds_at_every_thread_width(
        clients in 4usize..32,
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        use fedsz_fl::agg::{PsumMode, ShardedTree, TreePlan};

        // Small deterministic per-client updates (splitmix64 keyed by
        // the client id).
        let make = move |client: usize| {
            let mut state = seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut dict = StateDict::new();
            let data: Vec<f32> =
                (0..24).map(|_| next() as f32 / u64::MAX as f32 - 0.5).collect();
            dict.insert("w.weight", Tensor::from_vec(vec![24], data));
            dict.insert("w.bias", Tensor::from_vec(vec![2], vec![
                next() as f32 / u64::MAX as f32,
                next() as f32 / u64::MAX as f32,
            ]));
            (dict, 1.0 + (client % 5) as f64)
        };

        let serial_global = ShardedTree::new(TreePlan::new(clients, vec![2, 2]), None, PsumMode::Raw)
            .with_threads(1)
            .aggregate_streamed(0, &make)
            .expect("non-empty cohort")
            .global;
        let pooled_global = ShardedTree::new(TreePlan::new(clients, vec![2, 2]), None, PsumMode::Raw)
            .with_threads(threads)
            .aggregate_streamed(0, &make)
            .expect("non-empty cohort")
            .global;
        prop_assert_eq!(
            pooled_global.to_bytes(), serial_global.to_bytes(),
            "aggregation bits depend on the worker-pool width {}", threads
        );
    }
}
