//! Golden tests for the `--trace` Chrome-trace JSONL export.
//!
//! Two contracts pinned here:
//!
//! 1. **Schema** — a traced `fedsz fl` run produces one JSON object
//!    per line, a `fedsz.trace.v1` metadata first line, one
//!    `engine.round` span per round, per-level `merge.level` spans,
//!    `eqn1.decision` events, and per-thread span intervals that nest
//!    (contained or disjoint, never partially overlapping).
//! 2. **Parity** — tracing is observation only: the traced run prints
//!    the byte-identical `global checksum:` line of the untraced run.
//!
//! The CLI runs in-process through [`fedsz_cli::run`], so these tests
//! need no subprocess or installed binary.

use fedsz_telemetry::json::{self, Json};

/// Runs `fedsz <args>` in-process, asserting success.
fn run_ok(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let outcome = fedsz_cli::run(&args);
    assert_eq!(outcome.code, 0, "fedsz {args:?} failed:\n{}", outcome.report);
    outcome.report
}

fn checksum_line(report: &str) -> String {
    report
        .lines()
        .find(|l| l.starts_with("global checksum:"))
        .expect("fl prints the parity checksum")
        .to_string()
}

const FL_ARGS: &[&str] = &[
    "fl",
    "--rounds",
    "3",
    "--clients",
    "8",
    "--tree",
    "2x4",
    "--train-per-class",
    "2",
    "--psum",
    "lossless",
];

#[test]
fn traced_fl_run_emits_valid_v1_jsonl_with_merge_spans_and_decisions() {
    let trace = fedsz_cli::temp_path("golden.trace.jsonl");
    let mut args = FL_ARGS.to_vec();
    args.extend_from_slice(&["--trace", &trace]);
    run_ok(&args);

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    fedsz_cli::cleanup(&[&trace]);
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "trace must not be empty");

    // Every line is a standalone JSON object under a real parser.
    let events: Vec<Json> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1))
        })
        .collect();

    // The first line declares the schema.
    let meta = &events[0];
    assert_eq!(meta.get("ph").and_then(Json::as_str), Some("M"), "first line is metadata");
    assert_eq!(
        meta.get("args").and_then(|a| a.get("schema")).and_then(Json::as_str),
        Some(fedsz_telemetry::TRACE_SCHEMA),
        "first line carries the schema tag"
    );

    let name_of = |e: &Json| e.get("name").and_then(Json::as_str).unwrap_or("").to_string();
    let count = |n: &str| events.iter().filter(|e| name_of(e) == n).count();

    // One engine.round span per round; merge.level covers every tree
    // level every round (depth 3: root + mid + leaf pass).
    assert_eq!(count("engine.round"), 3, "one round span per round");
    assert_eq!(count("merge.level"), 9, "3 levels x 3 rounds");
    // Eqn-1 decisions: per round one downlink + 8 uplinks + 6 psum
    // frames (2 roots' children merging into levels 0 and 1... the
    // exact psum count depends on the tree: 2 mid nodes -> root and 8
    // leaves -> 2 mid nodes = 2 + 4*0; here level-descending forwards
    // total 2 + 4 = 6).
    assert!(count("eqn1.decision") >= 3 * (1 + 8), "downlink + uplink decisions each round");

    // Every complete span has non-negative duration and micros
    // timestamps; every event a category.
    for e in events.iter().skip(1) {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        assert!(
            matches!(ph, "X" | "i"),
            "only complete spans and instants after the metadata line, got {ph:?}"
        );
        assert!(e.get("ts").and_then(Json::as_f64).is_some(), "ts present");
        assert!(e.get("cat").and_then(Json::as_str).is_some(), "cat present");
        if ph == "X" {
            assert!(e.get("dur").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0, "dur >= 0");
        }
    }

    // Span nesting: within one thread, any two complete spans are
    // disjoint or one contains the other — partial overlap would mean
    // corrupted begin/end pairing.
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for e in events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")) {
        let tid = e.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        let dur = e.get("dur").and_then(Json::as_f64).unwrap();
        by_tid.entry(tid).or_default().push((ts, ts + dur));
    }
    for (tid, spans) in by_tid {
        for (i, &(a0, a1)) in spans.iter().enumerate() {
            for &(b0, b1) in &spans[i + 1..] {
                let disjoint = a1 <= b0 || b1 <= a0;
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                assert!(
                    disjoint || nested,
                    "tid {tid}: spans [{a0}, {a1}] and [{b0}, {b1}] partially overlap"
                );
            }
        }
    }

    // The eqn1.decision args carry the decision record: every leg
    // label is known and the psum leg appears (lossless psum always
    // compresses the tree's frames).
    let mut legs = std::collections::BTreeSet::new();
    for e in events.iter().filter(|e| name_of(e) == "eqn1.decision") {
        let args = e.get("args").expect("decision events carry args");
        let leg = args.get("leg").and_then(Json::as_str).expect("leg");
        assert!(matches!(leg, "uplink" | "downlink" | "psum"), "unknown leg {leg}");
        assert!(args.get("compressed").and_then(Json::as_bool).is_some());
        assert!(args.get("measured_codec_secs").and_then(Json::as_f64).is_some());
        // Unpriced decisions render predictions as null, priced ones
        // as numbers — both must parse, neither may be omitted.
        for key in ["predicted_compressed_secs", "predicted_raw_secs"] {
            let v = args.get(key).expect("prediction keys always present");
            assert!(v.is_null() || v.as_f64().is_some(), "{key} is null or a number");
        }
        legs.insert(leg.to_string());
    }
    assert!(legs.contains("psum"), "lossless psum emits per-frame decisions, got {legs:?}");
    assert!(legs.contains("uplink") && legs.contains("downlink"), "{legs:?}");
}

#[test]
fn tracing_does_not_change_the_global_checksum() {
    let trace = fedsz_cli::temp_path("parity.trace.jsonl");
    let untraced = run_ok(FL_ARGS);
    let mut args = FL_ARGS.to_vec();
    args.extend_from_slice(&["--trace", &trace]);
    let traced = run_ok(&args);
    fedsz_cli::cleanup(&[&trace]);
    assert_eq!(
        checksum_line(&untraced),
        checksum_line(&traced),
        "tracing must observe the round, never perturb its bits"
    );
}
