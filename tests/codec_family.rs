//! The property-test wall around the uplink codec families.
//!
//! Three codec families feed the uplink leg — Top-K sparsification,
//! 4/8-bit quantization, and the FedSZ pipeline — and each carries an
//! invariant the round loop silently depends on:
//!
//! * Top-K keeps exactly the K largest-magnitude entries **bit-exactly**
//!   (the aggregation math never sees a perturbed survivor),
//! * the linear quantizer's reconstruction error is bounded by half a
//!   quantization step, and the stochastic quantizer is *unbiased* —
//!   its rounding noise averages out instead of pulling the model,
//! * error feedback conserves update mass: across any number of
//!   rounds, `sum(applied) + residual == sum(raw deltas)`.
//!
//! These hold for arbitrary finite inputs, so they are stated as
//! properties, not examples. The legality half of the wall (EF is
//! rejected where its state cannot live, bad TOML specs are hard
//! errors) rides along as example tests.

use fedsz_fl::codec::FamilyCodec;
use fedsz_fl::{AggregationPolicy, FlConfig, PlanError, StagePolicy};
use fedsz_lossy::quant::Quantizer;
use fedsz_lossy::sparse::Sparsifier;
use fedsz_nn::StateDict;
use fedsz_tensor::Tensor;
use proptest::collection::vec;
use proptest::prelude::*;

/// Finite, weight-like floats (mixed magnitudes, zeros included).
fn weights() -> impl Strategy<Value = Vec<f32>> {
    vec(prop_oneof![(-1.0f32..1.0), (-100.0f32..100.0), Just(0.0f32)], 1..400)
}

/// A two-tensor state dict holding `values` (split across entries, so
/// per-entry codec paths are exercised too).
fn dict_of(values: &[f32]) -> StateDict {
    let split = values.len() / 2;
    let mut dict = StateDict::new();
    dict.insert("a.weight", Tensor::from_vec(vec![split.max(1)], values[..split.max(1)].to_vec()));
    if values.len() > split.max(1) {
        let rest = values[split.max(1)..].to_vec();
        dict.insert("b.weight", Tensor::from_vec(vec![rest.len()], rest));
    }
    dict
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Top-K round-trips the K largest-magnitude entries bit-exactly
    /// and zeroes everything else: every survivor equals its original
    /// bits, the survivor count is exactly `ceil(ratio * n)`, and no
    /// dropped entry out-weighs a kept one.
    #[test]
    fn top_k_keeps_the_largest_entries_bit_exactly(values in weights(), keep_pct in 1u32..101) {
        let ratio = f64::from(keep_pct) / 100.0;
        let sparsifier = Sparsifier::top_k(ratio).unwrap();
        let stream = sparsifier.compress(&values).unwrap();
        let restored = Sparsifier::decompress(&stream).unwrap();
        prop_assert_eq!(restored.len(), values.len());

        let expected_kept = ((ratio * values.len() as f64).ceil() as usize).min(values.len());
        let mut kept_min = f32::INFINITY;
        let mut dropped_max = 0.0f32;
        let mut kept = 0usize;
        for (orig, back) in values.iter().zip(&restored) {
            if *back != 0.0 || (*orig == 0.0 && expected_kept == values.len()) {
                // Survivors are bit-exact (compare bits, not floats,
                // so -0.0 vs 0.0 drift would be caught too).
                prop_assert_eq!(orig.to_bits(), back.to_bits());
            }
            if *back != 0.0 {
                kept += 1;
                kept_min = kept_min.min(orig.abs());
            } else {
                dropped_max = dropped_max.max(orig.abs());
            }
        }
        // Zeros among the top-K decode as zeros, so `kept` undercounts
        // exactly when original zeros were selected — never overcounts.
        prop_assert!(kept <= expected_kept, "{kept} > {expected_kept}");
        if kept == expected_kept {
            prop_assert!(kept_min >= dropped_max,
                "kept |{kept_min}| < dropped |{dropped_max}|");
        }
    }

    /// The linear quantizer's error is at most half a step of the
    /// value range it encodes, for both widths.
    #[test]
    fn linear_quantizer_error_is_within_half_a_step(values in weights(), wide in 0u8..2) {
        let bits = if wide == 1 { 8 } else { 4 };
        let quantizer = Quantizer::new(bits, false).unwrap();
        let stream = quantizer.compress(&values, 0).unwrap();
        let restored = Quantizer::decompress(&stream).unwrap();
        prop_assert_eq!(restored.len(), values.len());

        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let levels = (1u32 << bits) - 1;
        let step = (max - min) / levels as f32;
        let tolerance = step / 2.0 + step * 1e-4 + 1e-7;
        for (orig, back) in values.iter().zip(&restored) {
            prop_assert!((orig - back).abs() <= tolerance,
                "{bits}-bit: |{orig} - {back}| > {tolerance}");
        }
    }

    /// The stochastic quantizer is deterministic per seed and unbiased
    /// across seeds: a value sitting exactly between two code points
    /// decodes to their average, not systematically to one side (the
    /// deterministic rounder would be half a step off here).
    #[test]
    fn stochastic_quantizer_is_seeded_and_unbiased(offset in 0u32..254, wide in 0u8..2) {
        let bits = if wide == 1 { 8u8 } else { 4 };
        let levels = (1u32 << bits) - 1;
        let step = 2.0f32 / levels as f32;
        let target = -1.0 + ((offset % levels) as f32 + 0.5) * step;
        // Anchor entries pin the [-1, 1] range; the rest all hold the
        // midpoint value whose rounding direction is a coin flip.
        let n = 512usize;
        let mut values = vec![target; n];
        values[0] = -1.0;
        values[1] = 1.0;

        let quantizer = Quantizer::new(bits, true).unwrap();
        // Same seed, same bytes: the dither is pseudo-random, not fresh
        // entropy, so multi-process runs stay reproducible.
        prop_assert_eq!(
            quantizer.compress(&values, 7).unwrap(),
            quantizer.compress(&values, 7).unwrap()
        );

        let mut sum = 0.0f64;
        let mut samples = 0usize;
        for seed in 0..8u64 {
            let restored =
                Quantizer::decompress(&quantizer.compress(&values, seed).unwrap()).unwrap();
            for &back in &restored[2..] {
                sum += f64::from(back);
                samples += 1;
            }
        }
        let mean = sum / samples as f64;
        // 4096 coin flips put the mean's std at ~step/128; a quarter
        // step cleanly separates unbiased from deterministic rounding.
        prop_assert!((mean - f64::from(target)).abs() < f64::from(step) / 4.0,
            "{bits}-bit mean {mean} vs target {target} (step {step})");
    }

    /// Error feedback conserves mass: across 5 rounds of arbitrary
    /// updates, the sum of applied (decoded) deltas plus the residual
    /// still in flight equals the sum of raw deltas — nothing the
    /// codec dropped is ever lost, for sparse and quantized families.
    #[test]
    fn error_feedback_conserves_update_mass(values in weights(), round_scale in 1u32..5) {
        let reference = {
            let mut zero = dict_of(&values);
            for (_, tensor) in zero.iter_mut() {
                tensor.data_mut().fill(0.0);
            }
            zero
        };
        for codec in [
            FamilyCodec::top_k(0.25).unwrap(),
            FamilyCodec::quant(8, false).unwrap(),
            FamilyCodec::quant(4, true).unwrap(),
        ] {
            let mut residual = fedsz_fl::codec::zero_residual(&reference);
            let mut raw_sum = vec![0.0f64; values.len()];
            let mut applied_sum = vec![0.0f64; values.len()];
            for round in 0..5u64 {
                // Vary the update per round (scaled + sign-flipped).
                let scale = round_scale as f32 * if round % 2 == 0 { 1.0 } else { -0.5 };
                let update: Vec<f32> = values.iter().map(|v| v * scale).collect();
                for (acc, v) in raw_sum.iter_mut().zip(&update) {
                    *acc += f64::from(*v);
                }
                let stream = codec
                    .encode_delta(&dict_of(&update), &reference, Some(&mut residual), round)
                    .unwrap();
                let applied = FamilyCodec::decode_delta(&stream, &reference).unwrap();
                let flat: Vec<f32> =
                    applied.iter().flat_map(|(_, t)| t.data().iter().copied()).collect();
                for (acc, v) in applied_sum.iter_mut().zip(&flat) {
                    *acc += f64::from(*v);
                }
            }
            let residual_flat: Vec<f32> =
                residual.iter().flat_map(|(_, t)| t.data().iter().copied()).collect();
            let magnitude: f64 =
                raw_sum.iter().map(|v| v.abs()).fold(0.0f64, f64::max).max(1.0);
            for ((raw, applied), res) in
                raw_sum.iter().zip(&applied_sum).zip(&residual_flat)
            {
                let drift = (raw - (applied + f64::from(*res))).abs();
                prop_assert!(drift <= magnitude * 1e-4,
                    "mass leak {drift} (raw {raw}, applied {applied}, residual {res})");
            }
        }
    }
}

/// EF is typed-rejected where its per-client state cannot live:
/// buffered aggregation (the residual would fold against a model the
/// client never trained on) and socket workers (a reconnect silently
/// drops the residual).
#[test]
fn error_feedback_is_rejected_where_state_cannot_live() {
    let mut config = FlConfig::smoke_test();
    config.uplink = Some(StagePolicy::TopK { ratio: 0.1, error_feedback: true });
    config.aggregation = AggregationPolicy::Buffered { target: 2 };
    assert_eq!(config.plan().unwrap_err(), PlanError::StatefulUplinkBuffered);

    config.aggregation = AggregationPolicy::Synchronous;
    let plan = config.plan().expect("EF + synchronous simulation is legal");
    assert_eq!(plan.validate_for_workers().unwrap_err(), PlanError::StatefulUplinkWorker);
}

/// A TOML run spec with an unknown codec key (or a bogus uplink value)
/// is a hard error — silently ignoring either would run a different
/// experiment than the one the spec describes.
#[test]
fn toml_specs_reject_unknown_codec_keys_and_bogus_uplinks() {
    let dir = std::env::temp_dir();
    let run = |name: &str, body: &str| {
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        let args: Vec<String> =
            ["fl", "--config", path.to_str().unwrap()].iter().map(|s| s.to_string()).collect();
        let out = fedsz_cli::run(&args);
        std::fs::remove_file(&path).unwrap();
        out
    };

    let out = run("codec_family_unknown_key.toml", "clients = 2\nuplink-codec = \"topk\"\n");
    assert_ne!(out.code, 0);
    assert!(out.report.contains("unknown key"), "{}", out.report);

    let out = run("codec_family_bogus_uplink.toml", "clients = 2\nuplink = \"bogus\"\n");
    assert_ne!(out.code, 0);
    assert!(out.report.contains("unknown uplink codec"), "{}", out.report);

    // The legal spelling drives a real (tiny) run end to end.
    let out = run(
        "codec_family_good_uplink.toml",
        "clients = 2\nrounds = 1\ntrain-per-class = 2\nuplink = \"topk:0.5\"\n",
    );
    assert_eq!(out.code, 0, "{}", out.report);
}
