//! Contract tests for the `fedsz sweep` scenario-matrix subsystem.
//!
//! Five contracts pinned here:
//!
//! 1. **Expansion** — a `[matrix]` spec expands cross-product style in
//!    declaration order with the last axis fastest, and every cell's
//!    seed derives from the base seed and the cell index.
//! 2. **Schema** — the merged document is one `fedsz.sweep_report.v1`
//!    that a real JSON parser accepts, with `axes`, per-cell `coords`,
//!    and one complete embedded `fedsz.run_report.v2` per cell.
//! 3. **Determinism** — two runs of the same sweep agree bit for bit
//!    outside the measured wall-clock fields (and the Pareto front,
//!    which ranks on wall time).
//! 4. **Parity** — a one-cell sweep embeds the byte-identical report
//!    `fedsz fl --config … --json` prints for the same spec.
//! 5. **Up-front validation** — one bad cell fails the whole sweep
//!    before anything runs, naming the cell.
//!
//! Plus the paper's Section VII-D acceptance pin: a DP-noised cell
//! compresses measurably worse than its noise-free twin under the
//! FedSZ lossy uplink.
//!
//! The CLI runs in-process through [`fedsz_cli::run`], so these tests
//! need no subprocess or installed binary.

use fedsz_fl::sweep::cell_seed;
use fedsz_telemetry::json::{self, Json};

/// Runs `fedsz <args>` in-process, asserting success.
fn run_ok(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let outcome = fedsz_cli::run(&args);
    assert_eq!(outcome.code, 0, "fedsz {args:?} failed:\n{}", outcome.report);
    outcome.report
}

/// Writes a spec to a temp file and returns its path.
fn write_spec(tag: &str, body: &str) -> String {
    let path = fedsz_cli::temp_path(tag);
    std::fs::write(&path, body).expect("writable temp spec");
    path
}

/// A 2×2 matrix over DP noise and the uplink family, sized to finish
/// in test time: 2 clients, 1 round, 2 training samples per class.
const MATRIX_SPEC: &str = "clients = 2\nrounds = 1\nseed = 42\ntrain-per-class = 2\n\
                           dp-clip = 0.5\n\n[matrix]\ndp-noise = [0.0, 0.5]\n\
                           uplink = [\"q8\", \"topk:0.1\"]\n";

/// Masks the measured wall-clock values (the only nondeterministic
/// bits in a report): everything after one of the timing keys up to
/// the next delimiter — or the whole array, for the per-level merge
/// nanos — is replaced with `#`.
fn mask_timing(doc: &str) -> String {
    const KEYS: [&str; 5] = [
        "\"secs\": ",
        "\"measured_codec_secs\": ",
        "\"predicted_compressed_secs\": ",
        "\"predicted_raw_secs\": ",
        "\"level_merge_nanos\": ",
    ];
    let mut out = doc.to_string();
    for key in KEYS {
        let mut masked = String::new();
        let mut rest = out.as_str();
        while let Some(pos) = rest.find(key) {
            let start = pos + key.len();
            masked.push_str(&rest[..start]);
            masked.push('#');
            let tail = &rest[start..];
            let skip = if tail.starts_with('[') {
                tail.find(']').map_or(tail.len(), |i| i + 1)
            } else {
                tail.find([',', '}', '\n']).unwrap_or(tail.len())
            };
            rest = &tail[skip..];
        }
        masked.push_str(rest);
        out = masked;
    }
    out
}

#[test]
fn matrix_expansion_is_row_major_with_derived_seeds() {
    let spec = write_spec("expansion.toml", MATRIX_SPEC);
    let report = run_ok(&["sweep", &spec, "--json"]);
    fedsz_cli::cleanup(&[&spec]);
    let doc = json::parse(&report).expect("sweep report parses under a real JSON parser");

    assert_eq!(doc.get("cell_count").and_then(Json::as_f64), Some(4.0));
    // Axes render in declaration order with their values verbatim.
    let axes = doc.get("axes").and_then(Json::as_array).expect("axes array");
    let axis = |i: usize| {
        let a = &axes[i];
        (
            a.get("key").and_then(Json::as_str).unwrap().to_string(),
            a.get("values")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|v| v.as_str().unwrap().to_string())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(axis(0), ("dp-noise".into(), vec!["0.0".into(), "0.5".into()]));
    assert_eq!(axis(1), ("uplink".into(), vec!["q8".into(), "topk:0.1".into()]));

    // Last axis fastest: uplink cycles within each dp-noise value.
    let cells = doc.get("cells").and_then(Json::as_array).expect("cells array");
    assert_eq!(cells.len(), 4);
    let want = [("0.0", "q8"), ("0.0", "topk:0.1"), ("0.5", "q8"), ("0.5", "topk:0.1")];
    for (i, (noise, uplink)) in want.iter().enumerate() {
        let cell = &cells[i];
        assert_eq!(cell.get("index").and_then(Json::as_f64), Some(i as f64));
        let coords = cell.get("coords").expect("coords object");
        assert_eq!(coords.get("dp-noise").and_then(Json::as_str), Some(*noise), "cell {i}");
        assert_eq!(coords.get("uplink").and_then(Json::as_str), Some(*uplink), "cell {i}");
        // Each cell's seed derives from the base seed and its index —
        // cell 0 keeps the base seed exactly.
        assert_eq!(
            cell.get("seed").and_then(Json::as_f64),
            Some(cell_seed(42, i) as f64),
            "cell {i} seed must be cell_seed(base, index)"
        );
    }
    assert_eq!(cell_seed(42, 0), 42, "cell 0 keeps the base seed");
}

#[test]
fn sweep_report_v1_schema_holds_under_a_real_parser() {
    let spec = write_spec("schema.toml", MATRIX_SPEC);
    let report = run_ok(&["sweep", &spec, "--json"]);
    fedsz_cli::cleanup(&[&spec]);
    let doc = json::parse(&report).expect("sweep report parses");

    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(fedsz_cli::sweep::SWEEP_REPORT_SCHEMA)
    );
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_f64),
        Some(f64::from(fedsz_cli::sweep::SWEEP_SCHEMA_VERSION))
    );
    // Every cell embeds one complete run report: the run-level schema
    // tag, the checksum the plain run would print, and the DP columns
    // (never omitted — cell 0 and 1 are clip-only, sigma 0).
    let cells = doc.get("cells").and_then(Json::as_array).expect("cells array");
    for (i, cell) in cells.iter().enumerate() {
        let embedded = cell.get("report").expect("embedded run report");
        assert_eq!(
            embedded.get("schema").and_then(Json::as_str),
            Some("fedsz.run_report.v2"),
            "cell {i}"
        );
        assert!(embedded.get("checksum").and_then(Json::as_str).is_some(), "cell {i} checksum");
        let rounds = embedded.get("rounds").and_then(Json::as_array).expect("rounds");
        assert!(!rounds.is_empty(), "cell {i} has rounds");
        for row in rounds {
            let sigma = row.get("dp_sigma").expect("dp_sigma column present");
            let want = if i < 2 { 0.0 } else { 0.25 };
            assert_eq!(sigma.as_f64(), Some(want), "cell {i}: sigma = clip × multiplier");
            assert!(
                row.get("clipped_fraction").and_then(Json::as_f64).is_some(),
                "the simulator observes clipping, so the column is filled"
            );
        }
    }
    // The Pareto front is non-empty (something always survives) and
    // only names real cells.
    let front = doc.get("pareto").and_then(Json::as_array).expect("pareto array");
    assert!(!front.is_empty(), "a non-empty sweep has a non-empty Pareto front");
    for p in front {
        let index = p.get("index").and_then(Json::as_f64).expect("pareto index") as usize;
        assert!(index < cells.len(), "pareto front names cell {index} of {}", cells.len());
        assert!(p.get("upstream_bytes").and_then(Json::as_f64).is_some());
    }
}

#[test]
fn sweeps_are_deterministic_outside_wall_clock() {
    let spec = write_spec("determinism.toml", MATRIX_SPEC);
    let first = run_ok(&["sweep", &spec, "--json", "--threads", "2"]);
    let second = run_ok(&["sweep", &spec, "--json", "--threads", "1"]);
    fedsz_cli::cleanup(&[&spec]);
    // The Pareto front ranks on measured wall time, so it may differ
    // run to run by design; everything before it must agree bit for
    // bit once the measured timings are masked — across pool widths.
    let cells_only = |doc: &str| {
        let masked = mask_timing(doc);
        masked.split("\"pareto\"").next().expect("report has a pareto section").to_string()
    };
    assert_eq!(
        cells_only(&first),
        cells_only(&second),
        "same spec must reproduce the same cells, regardless of worker threads"
    );
}

#[test]
fn a_one_cell_sweep_embeds_the_plain_fl_report_bit_for_bit() {
    let spec = write_spec(
        "parity.toml",
        "clients = 2\nrounds = 1\nseed = 42\ntrain-per-class = 2\ndp-clip = 0.5\n\
         dp-noise = 0.5\nuplink = \"q8\"\n",
    );
    let sweep = run_ok(&["sweep", &spec, "--json"]);
    let plain = run_ok(&["fl", "--config", &spec, "--json"]);
    fedsz_cli::cleanup(&[&spec]);
    // The flat spec is a degenerate one-cell sweep whose cell keeps
    // the base seed, so the embedded report must be the exact document
    // the plain run prints — only measured timings may differ.
    let sweep_doc = mask_timing(&sweep);
    let plain_doc = mask_timing(&plain);
    assert!(
        sweep_doc.contains(plain_doc.trim_end()),
        "one-cell sweep must embed the plain `fedsz fl --json` report bit for bit\n\
         --- sweep ---\n{sweep_doc}\n--- fl ---\n{plain_doc}"
    );
    // And the model fingerprints agree exactly — no masking needed.
    let plain_parsed = json::parse(&plain).expect("plain report parses");
    let plain_sum = plain_parsed
        .get("checksum")
        .and_then(Json::as_str)
        .expect("plain report carries a checksum")
        .to_string();
    let sweep_parsed = json::parse(&sweep).expect("sweep parses");
    let embedded = sweep_parsed
        .get("cells")
        .and_then(Json::as_array)
        .and_then(|cells| cells[0].get("report").and_then(|r| r.get("checksum")?.as_str()))
        .expect("embedded report carries a checksum");
    assert_eq!(embedded, plain_sum, "the global model bits must match");
}

#[test]
fn one_bad_cell_fails_the_whole_sweep_up_front() {
    let spec = write_spec(
        "bad_cell.toml",
        "clients = 2\nrounds = 1\ntrain-per-class = 2\n\n[matrix]\n\
         uplink = [\"q8\", \"nonsense\"]\n",
    );
    let args: Vec<String> = ["sweep", spec.as_str()].iter().map(|s| s.to_string()).collect();
    let outcome = fedsz_cli::run(&args);
    fedsz_cli::cleanup(&[&spec]);
    assert_ne!(outcome.code, 0, "a sweep with an invalid cell must not start");
    assert!(
        outcome.report.contains("cell 1") && outcome.report.contains("uplink=nonsense"),
        "the error must name the offending cell and its coordinates, got:\n{}",
        outcome.report
    );
}

/// The Section VII-D acceptance pin: DP noise is incompressible, so
/// the noised cell's lossy uplink ships measurably more bytes than
/// its noise-free twin — same spec, same seed derivation, one axis.
#[test]
fn dp_noise_measurably_hurts_lossy_compression() {
    // The effect needs a model big enough that the noise floor beats
    // the lossy codec's error bound — AlexNet, not the tiny default.
    let spec = write_spec(
        "vii_d.toml",
        "clients = 4\nrounds = 2\nseed = 42\narch = \"alexnet\"\ntrain-per-class = 4\n\
         dp-clip = 0.5\nuplink = \"lossy\"\n\n[matrix]\ndp-noise = [0.0, 1.0]\n",
    );
    let report = run_ok(&["sweep", &spec, "--json"]);
    fedsz_cli::cleanup(&[&spec]);
    let doc = json::parse(&report).expect("sweep report parses");
    let cells = doc.get("cells").and_then(Json::as_array).expect("cells");
    let upstream = |cell: &Json| -> f64 {
        cell.get("report")
            .and_then(|r| r.get("rounds"))
            .and_then(Json::as_array)
            .expect("rounds")
            .iter()
            .map(|row| row.get("upstream_bytes").and_then(Json::as_f64).expect("bytes"))
            .sum()
    };
    let (quiet, noised) = (upstream(&cells[0]), upstream(&cells[1]));
    assert!(
        noised > quiet,
        "a DP-noised update must compress worse under the lossy codec \
         (noise-free {quiet} bytes vs noised {noised} bytes)"
    );
}
