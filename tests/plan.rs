//! The config/plan split's contract tests.
//!
//! Three layers:
//!
//! 1. **Golden bit-parity.** The checksums below were captured by
//!    running the *pre-redesign* engine (the field-by-field
//!    `RoundEngine::new` that read `shards`/`tree`/`links`/
//!    `downlink`/`psum` directly) on a spread of representative
//!    configurations. The plan-based engine must reproduce every one
//!    bit for bit — the redesign is an API change, not a numerics
//!    change.
//! 2. **Canonicalization parity.** For arbitrary configurations, the
//!    plan either fails with a typed [`PlanError`] or its canonical
//!    tree/topology agree with the legacy field-by-field derivation
//!    rules (reimplemented here as the reference), and the
//!    `RoundEngine::new` (config) and `RoundEngine::from_plan` (plan)
//!    construction paths produce bit-identical rounds.
//! 3. **Builder equivalence.** `FlConfig::builder()` chains produce
//!    the same configs (and therefore the same bits) as field-by-field
//!    struct mutation.

use fedsz_fl::engine::RoundEngine;
use fedsz_fl::link::Topology;
use fedsz_fl::net::global_checksum;
use fedsz_fl::plan::{PlanError, StagePolicy};
use fedsz_fl::transport::InMemoryTransport;
use fedsz_fl::{
    AggregationPolicy, DownlinkMode, DpMechanism, DpPolicy, Experiment, FlConfig, LinkProfile,
    PsumMode,
};
use proptest::prelude::*;

fn checksum_of(config: FlConfig) -> u32 {
    let mut exp = Experiment::new(config);
    exp.run();
    global_checksum(exp.global_state())
}

/// Checksums captured from the pre-redesign engine (same seed, same
/// shim RNG, synchronous deterministic configurations only — adaptive
/// and buffered modes key on measured wall time and are exempt from
/// bit-parity by design, as they were across transports).
#[test]
fn plan_based_engine_reproduces_pre_redesign_checksums() {
    let base = FlConfig::smoke_test;
    let mut configs: Vec<(&str, FlConfig, u32)> = Vec::new();
    configs.push(("smoke", base(), 0x82c3c3f4));
    {
        let mut c = base();
        c.clients = 8;
        c.shards = Some(4);
        configs.push(("shards4", c, 0xf4b41e60));
    }
    {
        let mut c = base();
        c.clients = 8;
        c.tree = Some(vec![2, 4]);
        c.psum = PsumMode::Lossless;
        configs.push(("tree2x4-lossless", c, 0xf4b41e60));
    }
    {
        let mut c = base();
        c.downlink = DownlinkMode::Compressed;
        configs.push(("downlink", c, 0xe49849c8));
    }
    {
        let mut c = base();
        c.clients = 4;
        c.participation = 0.5;
        configs.push(("participation", c, 0x8848b4fb));
    }
    {
        let mut c = base();
        c.clients = 4;
        c.weighted_aggregation = true;
        c.non_iid_alpha = Some(0.5);
        configs.push(("weighted-noniid", c, 0xf05591f1));
    }
    {
        let mut c = base();
        c.clients = 3;
        c.links = Some(vec![
            LinkProfile::symmetric(100e6),
            LinkProfile::symmetric(1e6).with_drop_prob(1.0),
            LinkProfile::symmetric(10e6),
        ]);
        configs.push(("links-drop", c, 0x8185b97a));
    }
    {
        let mut c = base();
        c.compression = None;
        configs.push(("plain", c, 0x7ab2a739));
    }
    {
        let mut c = base();
        c.latency_secs = 0.02;
        configs.push(("latency", c, 0x82c3c3f4));
    }
    {
        let mut c = base();
        c.clients = 6;
        c.shards = Some(3);
        c.edge_links = Some(vec![LinkProfile::symmetric(1e9); 3]);
        c.psum = PsumMode::Lossless;
        c.downlink = DownlinkMode::Compressed;
        configs.push(("edges-all-stages", c, 0x6bb28c83));
    }
    for (name, config, want) in configs {
        let got = checksum_of(config);
        assert_eq!(
            got, want,
            "`{name}`: plan-based engine produced 0x{got:08x}, pre-redesign code produced \
             0x{want:08x}"
        );
    }
}

/// The new uplink codec families perturb only the uplink leg.
///
/// Three pins. (1) An explicit `uplink = Raw` override reproduces the
/// legacy no-compression golden bit for bit — the override machinery
/// adds no bits of its own. (2) Each family's smoke-config checksum is
/// pinned as its own golden (every family, stochastic dither included,
/// is fully deterministic under a fixed seed), plus one downlink
/// composition golden; a change to *any* other leg would shift these.
/// (3) Tree psum bit-parity survives every family uplink: a sharded
/// lossless-psum run is bit-identical to its flat twin, codec by
/// codec — the aggregation legs cannot tell family uplinks apart from
/// raw ones. (A family uplink is *not* expected to be bit-identical
/// to raw even at `topk:1.0`: FUC1 ships `update − reference` deltas,
/// and `(a − b) + b` is not an f32 identity.)
#[test]
fn family_uplinks_leave_the_other_legs_bit_identical() {
    let mut raw_override = FlConfig::smoke_test();
    raw_override.uplink = Some(StagePolicy::Raw);
    assert_eq!(
        checksum_of(raw_override),
        0x7ab2a739,
        "uplink = Raw must reproduce the legacy no-compression golden"
    );

    let families: Vec<(&str, StagePolicy, u32)> = vec![
        ("topk:0.5", StagePolicy::TopK { ratio: 0.5, error_feedback: false }, 0xd27ad43e),
        ("topk:0.5+ef", StagePolicy::TopK { ratio: 0.5, error_feedback: true }, 0xd76a9829),
        (
            "q8",
            StagePolicy::Quant { bits: 8, stochastic: false, error_feedback: false },
            0x674ed809,
        ),
        (
            "q8s",
            StagePolicy::Quant { bits: 8, stochastic: true, error_feedback: false },
            0x45305d4b,
        ),
        (
            "q4",
            StagePolicy::Quant { bits: 4, stochastic: false, error_feedback: false },
            0xa7d3bbf3,
        ),
    ];
    for (codec, uplink, want) in &families {
        let mut c = FlConfig::smoke_test();
        c.uplink = Some(uplink.clone());
        let got = checksum_of(c);
        assert_eq!(
            got, *want,
            "`{codec}` smoke golden drifted (0x{got:08x} vs 0x{want:08x}) — either the \
             codec changed numerics or another leg leaked into the uplink"
        );
    }

    let mut composed = FlConfig::smoke_test();
    composed.downlink = DownlinkMode::Compressed;
    composed.uplink = Some(StagePolicy::TopK { ratio: 0.5, error_feedback: false });
    let got = checksum_of(composed);
    assert_eq!(
        got, 0x7a2be90c,
        "compressed downlink + topk:0.5 composition golden drifted (0x{got:08x})"
    );

    for (codec, uplink, _) in &families {
        let mut flat = FlConfig::smoke_test();
        flat.clients = 6;
        flat.uplink = Some(uplink.clone());
        let mut tree = flat.clone();
        tree.shards = Some(3);
        tree.psum = PsumMode::Lossless;
        let (flat_sum, tree_sum) = (checksum_of(flat), checksum_of(tree));
        assert_eq!(
            flat_sum, tree_sum,
            "`{codec}`: lossless tree psum broke bit-parity with the flat run \
             (0x{flat_sum:08x} vs 0x{tree_sum:08x}) — the family codec leaked into the psum leg"
        );
    }
}

/// The construction paths are one path: `RoundEngine::new(config)` is
/// `from_plan(config.plan()?)`, bit for bit.
#[test]
fn config_and_plan_construction_paths_are_bit_identical() {
    let mut config = FlConfig::smoke_test();
    config.clients = 4;
    config.shards = Some(2);
    config.psum = PsumMode::Lossless;
    config.downlink = DownlinkMode::Compressed;
    let mut via_config = RoundEngine::new(config.clone(), Box::<InMemoryTransport>::default());
    let plan = config.plan().expect("valid config");
    let mut via_plan = RoundEngine::from_plan(plan, Box::<InMemoryTransport>::default());
    for round in 0..config.rounds {
        via_config.run_round(round);
        via_plan.run_round(round);
        assert_eq!(
            via_config.global_state().to_bytes(),
            via_plan.global_state().to_bytes(),
            "construction paths diverged at round {round}"
        );
    }
}

/// The builder names only what differs and produces the exact same
/// config (hence the exact same bits) as struct mutation.
#[test]
fn builder_matches_field_by_field_configuration() {
    let built = FlConfig::builder()
        .clients(8)
        .rounds(2)
        .seed(7)
        .train_per_class(4)
        .tree(vec![2, 4])
        .psum(PsumMode::Lossless)
        .downlink(DownlinkMode::Compressed)
        .build();
    let mut manual = FlConfig::paper_default(built.arch, built.dataset);
    manual.clients = 8;
    manual.rounds = 2;
    manual.seed = 7;
    manual.data.seed = 7;
    manual.data.train_per_class = 4;
    manual.tree = Some(vec![2, 4]);
    manual.psum = PsumMode::Lossless;
    manual.downlink = DownlinkMode::Compressed;
    assert_eq!(format!("{built:?}"), format!("{manual:?}"));
    let plan = built.plan().expect("builder output is valid");
    assert_eq!(plan.shard_count(), Some(2));
    assert_eq!(plan.psum, StagePolicy::Lossless);
}

/// The builder's codec shorthands carry their parameters into the
/// plan verbatim, and `plan()` — not the builder — is where bad
/// parameters become typed errors, so a builder chain cannot smuggle
/// an illegal codec past validation.
#[test]
fn builder_codec_shorthands_validate_at_plan_time() {
    let plan = FlConfig::builder()
        .clients(2)
        .rounds(1)
        .uplink_topk(0.25, true)
        .build()
        .plan()
        .expect("topk:0.25+ef is a legal simulation uplink");
    assert_eq!(plan.uplink, StagePolicy::TopK { ratio: 0.25, error_feedback: true });

    let plan = FlConfig::builder()
        .clients(2)
        .rounds(1)
        .uplink_quant(8, true, false)
        .build()
        .plan()
        .expect("q8s is a legal uplink");
    assert_eq!(
        plan.uplink,
        StagePolicy::Quant { bits: 8, stochastic: true, error_feedback: false }
    );

    assert_eq!(
        FlConfig::builder().uplink_topk(0.0, false).build().plan().unwrap_err(),
        PlanError::BadTopKRatio { ratio: 0.0 },
        "a zero keep-ratio must fail at plan time"
    );
    assert!(
        matches!(
            FlConfig::builder().uplink_topk(f64::NAN, false).build().plan().unwrap_err(),
            PlanError::BadTopKRatio { ratio } if ratio.is_nan()
        ),
        "a NaN keep-ratio must fail at plan time"
    );
    assert_eq!(
        FlConfig::builder().uplink_quant(6, false, false).build().plan().unwrap_err(),
        PlanError::BadQuantBits { bits: 6 },
        "a 6-bit width must fail at plan time"
    );
    assert_eq!(
        FlConfig::builder()
            .uplink_quant(8, false, true)
            .aggregation(AggregationPolicy::Buffered { target: 2 })
            .build()
            .plan()
            .unwrap_err(),
        PlanError::StatefulUplinkBuffered,
        "the builder must not bypass the EF/buffered legality check"
    );
}

/// The legacy (pre-redesign) field-by-field canonicalization rules,
/// reimplemented as the proptest reference: `tree` silently outranked
/// `shards`, `shards` was clamped into `[1, clients]`, and `links`
/// outranked `bandwidth_bps`.
fn legacy_fanouts(config: &FlConfig) -> Option<Vec<usize>> {
    config.tree.clone().or_else(|| config.shards.map(|s| vec![s.clamp(1, config.clients.max(1))]))
}

#[derive(Debug, PartialEq)]
enum LegacyTopology {
    None,
    Shared,
    Dedicated,
    Tree,
}

fn legacy_topology(config: &FlConfig) -> LegacyTopology {
    let tree = legacy_fanouts(config).is_some();
    match (&config.links, config.bandwidth_bps, tree) {
        (Some(_), _, true) | (None, Some(_), true) => LegacyTopology::Tree,
        (Some(_), _, false) => LegacyTopology::Dedicated,
        (None, Some(_), false) => LegacyTopology::Shared,
        (None, None, _) => LegacyTopology::None,
    }
}

/// A tiny config so each generated case trains in milliseconds.
fn tiny_base() -> FlConfig {
    let mut config = FlConfig::smoke_test();
    config.rounds = 1;
    config.data.train_per_class = 1;
    config.data.test_per_class = 1;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary configurations either fail `plan()` with a typed
    /// `PlanError`, or the plan's canonical topology agrees with the
    /// legacy field-by-field rules and the engine completes a round.
    #[test]
    fn arbitrary_configs_plan_or_fail_cleanly(
        clients in 1usize..5,
        shards in prop_oneof![
            Just(None),
            (0usize..7).prop_map(Some),
        ],
        tree in prop_oneof![
            Just(None),
            Just(Some(vec![2usize])),
            Just(Some(vec![2usize, 2])),
            Just(Some(vec![0usize, 2])),
            Just(Some(Vec::new())),
        ],
        participation in prop_oneof![
            Just(-0.5f64), Just(0.0), Just(0.4), Just(1.0), Just(1.5)
        ],
        lr in prop_oneof![Just(0.05f32), Just(0.0), Just(-1.0)],
        batch in prop_oneof![Just(8usize), Just(0)],
        compressed in any::<bool>(),
        adaptive in any::<bool>(),
        psum in prop_oneof![
            Just(PsumMode::Raw), Just(PsumMode::Lossless), Just(PsumMode::Adaptive)
        ],
        downlink in prop_oneof![
            Just(DownlinkMode::Raw),
            Just(DownlinkMode::Compressed),
            Just(DownlinkMode::Adaptive),
        ],
        link_count in prop_oneof![Just(None), (0usize..6).prop_map(Some)],
        bandwidth in prop_oneof![Just(None), Just(Some(10e6)), Just(Some(-1.0))],
    ) {
        let mut config = tiny_base();
        config.clients = clients;
        config.shards = shards;
        config.tree = tree;
        config.participation = participation;
        config.lr = lr;
        config.batch_size = batch;
        if !compressed {
            config.compression = None;
        }
        config.adaptive_compression = adaptive;
        config.psum = psum;
        config.downlink = downlink;
        config.links = link_count.map(|n| vec![LinkProfile::symmetric(5e6); n]);
        config.bandwidth_bps = bandwidth;

        match config.plan() {
            Err(e) => {
                // Errors are typed and actionable, never panics: the
                // Display impl names the offending field.
                let message = e.to_string();
                prop_assert!(!message.is_empty());
                // And the panicking construction path reports the same
                // condition rather than clamping it away.
                let result = std::panic::catch_unwind(|| {
                    let _ = RoundEngine::new(
                        config.clone(),
                        Box::<InMemoryTransport>::default(),
                    );
                });
                prop_assert!(
                    result.is_err(),
                    "plan rejected ({e:?}) but RoundEngine::new accepted the config"
                );
            }
            Ok(plan) => {
                // Canonical tree agrees with the legacy rules wherever
                // the legacy rules did not clamp or prefer (any such
                // config fails plan() and cannot reach this branch).
                prop_assert_eq!(
                    plan.tree_fanouts().map(<[usize]>::to_vec),
                    legacy_fanouts(&config),
                    "canonical tree diverged from the legacy derivation"
                );
                let got = match &plan.topology {
                    None => LegacyTopology::None,
                    Some(Topology::Shared(_)) => LegacyTopology::Shared,
                    Some(Topology::Dedicated(_)) => LegacyTopology::Dedicated,
                    Some(Topology::Tree { .. }) => LegacyTopology::Tree,
                };
                prop_assert_eq!(
                    got,
                    legacy_topology(&config),
                    "canonical topology diverged from the legacy derivation"
                );
                // And the plan actually runs: one full round, no panic.
                let mut engine =
                    RoundEngine::from_plan(plan, Box::<InMemoryTransport>::default());
                let metrics = engine.run_round(0);
                prop_assert!(metrics.aggregated_updates + metrics.dropped_updates <= clients);
            }
        }
    }

    /// Deterministic (non-measurement-driven) valid configs are
    /// bit-identical between the config-path and plan-path engines.
    #[test]
    fn valid_configs_are_bit_identical_across_construction_paths(
        clients in 1usize..5,
        shards in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
        compressed in any::<bool>(),
        weighted in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mut config = tiny_base();
        config.clients = clients;
        config.seed = seed;
        config.data.seed = seed;
        config.shards = shards.filter(|&s| s <= clients);
        if !compressed {
            config.compression = None;
        }
        config.weighted_aggregation = weighted;
        let plan = match config.plan() {
            Ok(plan) => plan,
            Err(PlanError::ShardsOutOfRange { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::Fail(format!("unexpected plan error: {e}"))),
        };
        let mut via_config =
            RoundEngine::new(config.clone(), Box::<InMemoryTransport>::default());
        let mut via_plan = RoundEngine::from_plan(plan, Box::<InMemoryTransport>::default());
        via_config.run_round(0);
        via_plan.run_round(0);
        prop_assert_eq!(
            via_config.global_state().to_bytes(),
            via_plan.global_state().to_bytes()
        );
    }
}

/// The DP stage's plan-time legality: bad policies fail with typed
/// errors before anything runs, and because the stage is stateless
/// (noise is a pure function of `(seed, round, client)`), a legal
/// policy composes with every runtime and aggregation policy — only
/// error feedback's residual remains stateful.
#[test]
fn dp_policies_validate_at_plan_time() {
    let policy = |clip: f64, noise: f64| DpPolicy {
        clip_norm: clip,
        noise_multiplier: noise,
        mechanism: DpMechanism::Gaussian,
        seed: 7,
    };
    let mut config = tiny_base();
    config.dp = Some(policy(0.0, 0.5));
    assert_eq!(config.plan().unwrap_err(), PlanError::BadDpClipNorm(0.0));
    config.dp = Some(policy(f64::NAN, 0.5));
    assert!(matches!(config.plan().unwrap_err(), PlanError::BadDpClipNorm(_)));
    config.dp = Some(policy(1.0, -0.5));
    assert_eq!(config.plan().unwrap_err(), PlanError::BadDpNoiseMultiplier(-0.5));
    config.dp = Some(policy(1.0, f64::INFINITY));
    assert!(matches!(config.plan().unwrap_err(), PlanError::BadDpNoiseMultiplier(_)));
    // Clip-only (noise multiplier 0) is a legal policy.
    config.dp = Some(policy(1.0, 0.0));
    assert!(config.plan().is_ok());
}

#[test]
fn dp_is_stateless_and_composes_everywhere() {
    let mut config = tiny_base();
    config.dp = Some(DpPolicy {
        clip_norm: 1.0,
        noise_multiplier: 0.5,
        mechanism: DpMechanism::Laplace,
        seed: 7,
    });
    // Legal on socket workers (a reconnect loses no DP state)...
    config.plan().unwrap().validate_for_workers().unwrap();
    // ...and under buffered aggregation (no cross-round residual).
    config.aggregation = AggregationPolicy::Buffered { target: 1 };
    config.plan().unwrap();
    // DP + error feedback still trips the EF rejections: the residual
    // is the stateful part, not the noise.
    config.aggregation = AggregationPolicy::Synchronous;
    config.uplink = Some(StagePolicy::TopK { ratio: 0.1, error_feedback: true });
    let err = config.plan().unwrap().validate_for_workers().unwrap_err();
    assert_eq!(err, PlanError::StatefulUplinkWorker);
    config.aggregation = AggregationPolicy::Buffered { target: 1 };
    assert_eq!(config.plan().unwrap_err(), PlanError::StatefulUplinkBuffered);
}

/// Seeded DP noise is a deterministic part of the bits: the same
/// policy reproduces the same global checksum run over run, a
/// different noise seed diverges, and turning DP off diverges.
#[test]
fn dp_noise_is_seeded_and_deterministic() {
    let with_dp = |seed: u64| {
        let mut config = tiny_base();
        config.dp = Some(DpPolicy {
            clip_norm: 0.5,
            noise_multiplier: 1.0,
            mechanism: DpMechanism::Gaussian,
            seed,
        });
        config
    };
    let base = checksum_of(tiny_base());
    let a = checksum_of(with_dp(7));
    let b = checksum_of(with_dp(7));
    let c = checksum_of(with_dp(8));
    assert_eq!(a, b, "same DP policy must reproduce the same bits");
    assert_ne!(a, base, "DP noise must actually perturb the model");
    assert_ne!(a, c, "the DP seed must steer the noise stream");
}
