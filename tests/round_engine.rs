//! Integration tests for the transport-abstracted round engine: wire vs
//! analytic parity, heterogeneous-link virtual-time accounting, and
//! buffered-asynchronous aggregation.

use fedsz_fl::engine::RoundEngine;
use fedsz_fl::transport::{InMemoryTransport, WireTransport};
use fedsz_fl::{AggregationPolicy, Experiment, FlConfig, LinkProfile};

fn quick_config() -> FlConfig {
    let mut config = FlConfig::smoke_test();
    config.rounds = 3;
    config.data.train_per_class = 8;
    config.data.test_per_class = 4;
    config
}

#[test]
fn wire_and_analytic_transports_agree_bit_for_bit() {
    // The core promise of the refactor: `Experiment` (in-memory) and
    // `run_session` (framed wire) are the same engine, so for one seed
    // they must produce *identical* global models, not merely similar
    // accuracies.
    let config = quick_config();
    let mut analytic = RoundEngine::new(config.clone(), Box::<InMemoryTransport>::default());
    let mut wire = RoundEngine::new(config.clone(), Box::new(WireTransport::new()));
    for round in 0..config.rounds {
        let a = analytic.run_round(round);
        let w = wire.run_round(round);
        assert_eq!(
            analytic.global_state().to_bytes(),
            wire.global_state().to_bytes(),
            "global models diverged at round {round}"
        );
        assert_eq!(a.test_accuracy, w.test_accuracy, "accuracy diverged at round {round}");
        // The wire path pays framing overhead on every message.
        assert!(
            w.upstream_bytes > a.upstream_bytes,
            "round {round}: wire upstream {} should exceed analytic {}",
            w.upstream_bytes,
            a.upstream_bytes
        );
    }
}

#[test]
fn parity_holds_with_partial_participation_and_non_iid() {
    let mut config = quick_config();
    config.clients = 4;
    config.participation = 0.5;
    config.non_iid_alpha = Some(0.5);
    config.weighted_aggregation = true;
    let mut analytic = RoundEngine::new(config.clone(), Box::<InMemoryTransport>::default());
    let mut wire = RoundEngine::new(config.clone(), Box::new(WireTransport::new()));
    for round in 0..config.rounds {
        analytic.run_round(round);
        wire.run_round(round);
    }
    assert_eq!(analytic.global_state().to_bytes(), wire.global_state().to_bytes());
}

#[test]
fn heterogeneous_links_do_not_serialize_on_one_pipe() {
    // Four clients on dedicated 10 Mbps links must finish their uploads
    // in roughly the time one client takes on the shared 10 Mbps pipe.
    let mut shared = quick_config();
    shared.clients = 4;
    shared.rounds = 1;
    shared.bandwidth_bps = Some(10e6);
    let shared_metrics = Experiment::new(shared.clone()).run_round(0);

    let mut dedicated = shared.clone();
    dedicated.links = Some(vec![LinkProfile::symmetric(10e6); 4]);
    let dedicated_metrics = Experiment::new(dedicated).run_round(0);

    assert!(
        dedicated_metrics.comm_secs < shared_metrics.comm_secs / 2.0,
        "dedicated links must overlap: {:.4}s vs shared {:.4}s",
        dedicated_metrics.comm_secs,
        shared_metrics.comm_secs
    );
    // Identical payloads either way: the topology only changes timing.
    assert_eq!(dedicated_metrics.upstream_bytes, shared_metrics.upstream_bytes);
}

#[test]
fn slow_links_dominate_round_time_in_heterogeneous_cohorts() {
    let mut config = quick_config();
    config.clients = 2;
    config.rounds = 1;
    config.links = Some(vec![
        LinkProfile::symmetric(100e6),
        LinkProfile::symmetric(0.5e6), // ~200x slower uplink
    ]);
    let metrics = Experiment::new(config).run_round(0);
    // comm time on dedicated links == the slowest single transfer.
    let payload_bits = metrics.update_bytes * 8.0;
    let slow_transfer = payload_bits / 0.5e6;
    assert!(
        (metrics.comm_secs - slow_transfer).abs() / slow_transfer < 0.1,
        "comm {:.4}s should track the slow link's {:.4}s",
        metrics.comm_secs,
        slow_transfer
    );
}

#[test]
fn buffered_async_policy_converges_on_the_smoke_config() {
    let mut config = quick_config();
    config.clients = 4;
    config.rounds = 6;
    // One straggler on a slow link; aggregate after 3 of 4 arrivals.
    config.links = Some(vec![
        LinkProfile::symmetric(50e6),
        LinkProfile::symmetric(50e6),
        LinkProfile::symmetric(50e6),
        LinkProfile::symmetric(1e6).with_slowdown(20.0),
    ]);
    config.aggregation = AggregationPolicy::Buffered { target: 3 };
    let metrics = Experiment::new(config).run();
    let best = metrics.iter().map(|m| m.test_accuracy).fold(0.0f64, f64::max);
    assert!(best > 0.15, "buffered-async run stuck at {best:.3}");
    // Stale straggler updates must actually flow into later rounds.
    let stale_total: usize = metrics.iter().map(|m| m.stale_updates).sum();
    assert!(stale_total > 0, "straggler updates never applied");
    // The straggler must not gate round completion time.
    let sync_round = metrics[0].round_secs;
    assert!(sync_round.is_finite() && sync_round > 0.0);
}

#[test]
fn buffered_rounds_complete_faster_than_synchronous_with_stragglers() {
    let mut config = quick_config();
    config.clients = 3;
    config.rounds = 1;
    let links = vec![
        LinkProfile::symmetric(50e6),
        LinkProfile::symmetric(50e6),
        LinkProfile::symmetric(50e6).with_slowdown(100.0),
    ];
    config.links = Some(links.clone());
    config.aggregation = AggregationPolicy::Synchronous;
    let sync = Experiment::new(config.clone()).run_round(0);
    config.aggregation = AggregationPolicy::Buffered { target: 2 };
    let buffered = Experiment::new(config).run_round(0);
    assert!(
        buffered.round_secs < sync.round_secs / 2.0,
        "buffered {:.3}s should beat synchronous {:.3}s by skipping the straggler",
        buffered.round_secs,
        sync.round_secs
    );
}

#[test]
fn adaptive_compression_sends_raw_on_fast_links() {
    // Eqn 1: at terabit speeds codec time can never pay for itself, so
    // after the probe round every client should ship raw bytes.
    let mut config = quick_config();
    config.clients = 2;
    config.rounds = 3;
    config.links = Some(vec![LinkProfile::symmetric(1e12); 2]);
    config.adaptive_compression = true;
    let metrics = Experiment::new(config.clone()).run();
    assert!(metrics[0].ratio > 1.2, "probe round should compress");
    let last = metrics.last().unwrap();
    assert!(
        (last.ratio - 1.0).abs() < 0.05,
        "fast links should skip compression after probing, ratio {:.2}",
        last.ratio
    );

    // And on a crawling 1 Mbps link compression must stay on.
    config.links = Some(vec![LinkProfile::symmetric(1e6); 2]);
    let metrics = Experiment::new(config).run();
    assert!(metrics.iter().all(|m| m.ratio > 1.2), "slow links must keep compressing");
}

#[test]
fn dropped_uploads_are_excluded_but_learning_continues() {
    let mut config = quick_config();
    config.clients = 4;
    config.rounds = 4;
    config.links = Some(vec![
        LinkProfile::symmetric(10e6),
        LinkProfile::symmetric(10e6).with_drop_prob(0.5),
        LinkProfile::symmetric(10e6),
        LinkProfile::symmetric(10e6).with_drop_prob(0.5),
    ]);
    let metrics = Experiment::new(config).run();
    let drops: usize = metrics.iter().map(|m| m.dropped_updates).sum();
    assert!(drops > 0, "a 50% drop link should lose something over 4 rounds");
    for m in &metrics {
        assert_eq!(m.aggregated_updates + m.dropped_updates, 4, "round {}", m.round);
    }
}
