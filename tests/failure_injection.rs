//! Failure injection: corrupted, truncated and bit-flipped streams must
//! produce errors (or, for payload-interior flips a lossy decoder cannot
//! distinguish, garbage values) — never panics.

use fedsz::{ErrorBound, FedSz, FedSzConfig, LossyKind};
use fedsz_lossless::LosslessKind;
use fedsz_nn::models::specs::ModelSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn payload() -> Vec<u8> {
    let dict = ModelSpec::mobilenet_v2().instantiate_scaled(5, 0.01);
    FedSz::default().compress(&dict).expect("compress").into_bytes()
}

#[test]
fn truncations_never_panic() {
    let bytes = payload();
    let fedsz = FedSz::default();
    for cut in [0, 1, 4, 16, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
        let result = std::panic::catch_unwind(|| fedsz.decompress(&bytes[..cut]));
        let decoded = result.expect("decoder panicked on truncated input");
        assert!(decoded.is_err(), "truncation at {cut} silently succeeded");
    }
}

#[test]
fn random_bit_flips_never_panic() {
    let bytes = payload();
    let fedsz = FedSz::default();
    let mut rng = StdRng::seed_from_u64(17);
    let mut detected = 0usize;
    const TRIALS: usize = 200;
    for _ in 0..TRIALS {
        let mut mutated = bytes.clone();
        let idx = rng.gen_range(0..mutated.len());
        mutated[idx] ^= 1 << rng.gen_range(0..8);
        let outcome = std::panic::catch_unwind(|| fedsz.decompress(&mutated))
            .expect("decoder panicked on bit flip");
        if outcome.is_err() {
            detected += 1;
        }
    }
    // Most flips hit entropy-coded payload and must be caught by
    // structure or checksum validation; a small fraction lands in lossy
    // float payloads where any bit pattern is a legal value.
    assert_eq!(
        detected, TRIALS,
        "only {detected}/{TRIALS} corruptions detected by the CRC trailer"
    );
}

#[test]
fn random_garbage_never_panics_any_codec() {
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..50 {
        let len = rng.gen_range(0..512);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        for kind in LossyKind::all() {
            let garbage = garbage.clone();
            let r = std::panic::catch_unwind(move || kind.codec().decompress(&garbage).is_err());
            assert!(r.expect("lossy decoder panicked"));
        }
        for kind in LosslessKind::all() {
            let garbage = garbage.clone();
            let r = std::panic::catch_unwind(move || kind.codec().decompress(&garbage).is_err());
            let _ = r.expect("lossless decoder panicked");
        }
        let fedsz = FedSz::default();
        let r = std::panic::catch_unwind(|| fedsz.decompress(&garbage));
        assert!(r.expect("pipeline panicked").is_err());
    }
}

#[test]
fn cross_codec_streams_are_rejected() {
    // A stream produced by one lossy codec must not decode as another.
    let data: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.01).sin()).collect();
    for producer in LossyKind::all() {
        let stream = producer.codec().compress(&data, ErrorBound::Absolute(1e-3));
        let stream = match stream {
            Ok(s) => s,
            Err(_) => producer
                .codec()
                .compress(&data, ErrorBound::FixedPrecision(16))
                .expect("zfp fixed precision"),
        };
        for consumer in LossyKind::all() {
            if consumer != producer {
                assert!(
                    consumer.codec().decompress(&stream).is_err(),
                    "{consumer} accepted a {producer} stream"
                );
            }
        }
    }
}

#[test]
fn mismatched_threshold_configs_still_decode() {
    // The bitstream is self-describing: a receiver with a different
    // default config must still decode correctly.
    let dict = ModelSpec::mobilenet_v2().instantiate_scaled(5, 0.01);
    let sender = FedSz::new(FedSzConfig {
        lossy: LossyKind::Sz3,
        lossless: LosslessKind::Xz,
        error_bound: ErrorBound::Relative(1e-3),
        threshold: 64,
    });
    let packed = sender.compress(&dict).expect("compress");
    let receiver = FedSz::default();
    let restored = receiver.decompress(packed.bytes()).expect("self-describing stream");
    assert_eq!(restored.len(), dict.len());
}
