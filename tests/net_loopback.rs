//! End-to-end tests of the multi-process socket runtime: `NetServer` +
//! `run_worker` over real loopback TCP connections, asserted
//! bit-identical to the in-memory engine on the same configuration.
//!
//! Threads stand in for processes here (each side still talks through
//! a real kernel socket, which is what the runtime abstracts over);
//! the CI smoke job runs the same topology with actual `fedsz serve` /
//! `fedsz worker` child processes.

use fedsz_fl::engine::RoundEngine;
use fedsz_fl::net::{
    global_checksum, run_worker, NetServer, ServeConfig, SocketTransport, WorkerConfig,
    WorkerReport,
};
use fedsz_fl::transport::InMemoryTransport;
use fedsz_fl::{Experiment, FlConfig};
use fedsz_net::{Message, NetError, Session};
use std::thread;
use std::time::Duration;

fn quick_config() -> FlConfig {
    let mut config = FlConfig::smoke_test();
    config.rounds = 2;
    config.data.train_per_class = 4;
    config
}

fn test_timeouts(config: &mut ServeConfig) {
    config.accept_timeout = Duration::from_secs(20);
    config.round_timeout = Duration::from_secs(60);
}

/// Spawns `ids` workers against `addr`, returning their reports.
fn spawn_workers(
    config: &FlConfig,
    ids: impl IntoIterator<Item = usize>,
    addr: String,
) -> Vec<thread::JoinHandle<Result<WorkerReport, NetError>>> {
    ids.into_iter()
        .map(|id| {
            let fl = config.clone();
            let addr = addr.clone();
            thread::spawn(move || run_worker(WorkerConfig::new(fl, id, addr)))
        })
        .collect()
}

#[test]
fn flat_socket_run_is_bit_identical_to_in_memory() {
    let config = quick_config();

    // Reference: the in-memory engine.
    let mut reference = Experiment::new(config.clone());
    reference.run();
    let want = reference.global_state().to_bytes();

    // Real sockets: one root, one worker thread per client.
    let server = NetServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut serve_config = ServeConfig::root(config.clone());
    test_timeouts(&mut serve_config);
    let root = thread::spawn(move || server.run(serve_config));
    let workers = spawn_workers(&config, 0..config.clients, addr);

    let report = root.join().expect("root thread").expect("serve succeeds");
    for w in workers {
        let r = w.join().expect("worker thread").expect("worker succeeds");
        assert_eq!(r.rounds, config.rounds, "worker must train every round");
        assert!(r.compressed_rounds == config.rounds, "default config compresses every round");
    }
    let got = report.global.as_ref().expect("root holds the global").to_bytes();
    assert_eq!(got, want, "socket run diverged from the in-memory engine");
    assert_eq!(report.checksum, global_checksum(reference.global_state()));
    assert_eq!(report.rounds.len(), config.rounds);
    assert_eq!(report.evicted, 0);
    assert!(report.rounds.iter().all(|r| r.merged == config.clients));
    assert!(report.rounds.iter().all(|r| r.upstream_bytes > 0 && r.downstream_bytes > 0));
}

#[test]
fn sharded_relay_run_ships_compressed_psums_and_keeps_parity() {
    // 4 clients through 2 relay processes, lossless partial-sum frames:
    // the acceptance topology — PartialSumCompressed relayed over real
    // sockets, still bit-identical to the flat in-memory run.
    let mut config = quick_config();
    config.clients = 4;
    config.shards = Some(2);
    config.psum = fedsz_fl::PsumMode::Lossless;

    let mut reference = Experiment::new(config.clone());
    reference.run();
    let want = reference.global_state().to_bytes();

    let root = NetServer::bind("127.0.0.1:0").expect("bind root");
    let root_addr = root.local_addr().to_string();
    let mut root_config = ServeConfig::root(config.clone());
    test_timeouts(&mut root_config);
    let root_thread = thread::spawn(move || root.run(root_config));

    let mut worker_threads = Vec::new();
    let mut relay_threads = Vec::new();
    for shard in 0..2u32 {
        let relay = NetServer::bind("127.0.0.1:0").expect("bind relay");
        let relay_addr = relay.local_addr().to_string();
        let mut relay_config = ServeConfig::relay(config.clone(), shard, root_addr.clone());
        test_timeouts(&mut relay_config);
        relay_threads.push(thread::spawn(move || relay.run(relay_config)));
        // Contiguous balanced ranges: shard 0 owns clients 0..2, shard 1
        // owns 2..4.
        let ids = (shard as usize * 2)..(shard as usize * 2 + 2);
        worker_threads.extend(spawn_workers(&config, ids, relay_addr));
    }

    let report = root_thread.join().expect("root thread").expect("root serve succeeds");
    for relay in relay_threads {
        let r = relay.join().expect("relay thread").expect("relay serve succeeds");
        assert_eq!(r.checksum, 0, "relays never hold the global");
        assert_eq!(r.rounds.len(), config.rounds);
    }
    for w in worker_threads {
        w.join().expect("worker thread").expect("worker succeeds");
    }

    let got = report.global.as_ref().expect("root holds the global").to_bytes();
    assert_eq!(got, want, "sharded socket run diverged from the in-memory engine");
    assert_eq!(
        report.psum_compressed_frames,
        2 * config.rounds,
        "every relay round must ship a PartialSumCompressed frame"
    );
    assert_eq!(report.psum_raw_frames, 0);
    assert!(report.rounds.iter().all(|r| r.merged == config.clients));
}

#[test]
fn silent_worker_is_evicted_and_the_round_continues() {
    let mut config = quick_config();
    config.clients = 2;

    let server = NetServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut serve_config = ServeConfig::root(config.clone());
    serve_config.accept_timeout = Duration::from_secs(20);
    serve_config.round_timeout = Duration::from_secs(5);
    let root = thread::spawn(move || server.run(serve_config));

    // Client 0 participates fully; client 1 joins the handshake, then
    // vanishes before ever replying to a broadcast.
    let healthy = spawn_workers(&config, [0usize], addr.clone());
    let ghost = thread::spawn(move || {
        let mut session = Session::connect(&addr, Duration::from_secs(10)).unwrap();
        session.send(&Message::Join { client_id: 1, round: 0, relay: false }).unwrap();
        // Wait for the round-0 broadcast so the handshake completed,
        // then drop the connection without answering.
        let _ = session.recv(Some(Duration::from_secs(15))).unwrap();
    });

    let report = root.join().expect("root thread").expect("eviction is not a serve error");
    ghost.join().unwrap();
    for w in healthy {
        let r = w.join().expect("worker thread").expect("healthy worker unaffected");
        assert_eq!(r.rounds, config.rounds);
    }
    assert_eq!(report.evicted, 1, "the ghost must be evicted exactly once");
    assert!(
        report.evictions.iter().any(|(id, round, _)| *id == 1 && *round == 0),
        "eviction must name the ghost at round 0: {:?}",
        report.evictions
    );
    assert_eq!(report.rounds.len(), config.rounds, "rounds continue after the eviction");
    assert!(
        report.rounds.iter().all(|r| r.merged == 1),
        "every round aggregates the surviving client"
    );
    // And the global genuinely moved: a one-client session still learns.
    assert_ne!(report.checksum, 0);
}

#[test]
fn misconfigured_worker_is_evicted_not_fatal() {
    // A client replying with an update whose shapes disagree with the
    // configured architecture would trip the merge asserts and panic
    // the server; it must instead be evicted, with the healthy cohort
    // unaffected. (A real `run_worker` with the wrong --arch already
    // fails client-side on load_global, so this speaks raw frames.)
    let mut config = quick_config();
    config.clients = 2;

    let server = NetServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut serve_config = ServeConfig::root(config.clone());
    serve_config.accept_timeout = Duration::from_secs(20);
    serve_config.round_timeout = Duration::from_secs(10);
    let root = thread::spawn(move || server.run(serve_config));

    let healthy = spawn_workers(&config, [0usize], addr.clone());
    let misfit = thread::spawn(move || {
        let mut session = Session::connect(&addr, Duration::from_secs(10)).unwrap();
        session.send(&Message::Join { client_id: 1, round: 0, relay: false }).unwrap();
        let round = match session.recv(Some(Duration::from_secs(15))).unwrap() {
            Message::GlobalModel { round, .. } | Message::EncodedGlobal { round, .. } => round,
            other => panic!("expected a broadcast, got {other:?}"),
        };
        let mut wrong = fedsz_nn::StateDict::new();
        wrong.insert("w.weight", fedsz_tensor::Tensor::filled(vec![3], 1.0));
        let update =
            Message::Update { round, client_id: 1, payload: wrong.to_bytes(), compressed: false };
        session.send(&update).unwrap();
        // The server cuts this client off; drain until it does.
        let _ = session.recv(Some(Duration::from_secs(15)));
    });

    let report = root.join().expect("root thread").expect("a bad child is not a serve error");
    for w in healthy {
        let r = w.join().expect("worker thread").expect("healthy worker unaffected");
        assert_eq!(r.rounds, config.rounds);
    }
    misfit.join().expect("misfit thread");
    assert_eq!(report.evicted, 1, "exactly the misconfigured worker is evicted");
    assert!(
        report.evictions.iter().any(|(id, _, reason)| *id == 1 && reason.contains("architecture")),
        "eviction must name the shape mismatch: {:?}",
        report.evictions
    );
    assert_eq!(report.rounds.len(), config.rounds, "rounds continue after the eviction");
    assert!(report.rounds.iter().all(|r| r.merged == 1));
}

#[test]
fn idle_connection_cannot_starve_the_handshake() {
    // A port scanner or health probe that connects and never speaks
    // must cost the join barrier at most one handshake slot, not the
    // whole accept window.
    let mut config = quick_config();
    config.clients = 1;
    config.rounds = 1;

    let server = NetServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut serve_config = ServeConfig::root(config.clone());
    serve_config.accept_timeout = Duration::from_secs(30);
    serve_config.round_timeout = Duration::from_secs(30);
    let root = thread::spawn(move || server.run(serve_config));

    // The lurker connects first and holds the socket open silently.
    let lurker = std::net::TcpStream::connect(&addr).expect("lurker connects");
    thread::sleep(Duration::from_millis(100));
    let t0 = std::time::Instant::now();
    let workers = spawn_workers(&config, [0usize], addr);

    let report = root.join().expect("root thread").expect("serve succeeds");
    for w in workers {
        w.join().expect("worker thread").expect("worker succeeds");
    }
    drop(lurker);
    assert_eq!(report.evicted, 0);
    assert_eq!(report.rounds.len(), 1);
    assert!(
        t0.elapsed() < Duration::from_secs(15),
        "the lurker stalled the session for {:?}",
        t0.elapsed()
    );
}

#[test]
fn engine_over_socket_transport_matches_in_memory() {
    // The Transport-level half of the story: the unchanged round
    // engine, with its frames crossing a real kernel socket.
    let config = quick_config();
    let mut analytic = RoundEngine::new(config.clone(), Box::<InMemoryTransport>::default());
    let mut socket = RoundEngine::new(
        config.clone(),
        Box::new(SocketTransport::loopback().expect("loopback echo peer")),
    );
    assert_eq!(socket.transport_name(), "socket");
    for round in 0..config.rounds {
        let a = analytic.run_round(round);
        let s = socket.run_round(round);
        assert_eq!(
            analytic.global_state().to_bytes(),
            socket.global_state().to_bytes(),
            "global models diverged at round {round}"
        );
        assert!(
            s.upstream_bytes > a.upstream_bytes,
            "socket frames must carry framing overhead: {} vs {}",
            s.upstream_bytes,
            a.upstream_bytes
        );
    }
}
