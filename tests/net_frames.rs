//! Property tests of the FMSG stream layer: a frame stream split at
//! *arbitrary* byte boundaries — the short reads a real TCP socket
//! produces — must round-trip bit-exactly through `FrameReader`, and
//! corruption anywhere must be rejected, never mis-decoded.

use fedsz_net::{frame_len, FrameReader, FrameWriter, Message, NetError};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::Read;

/// A nonblocking-socket stand-in: bytes become readable only as the
/// "reactor" grants readiness, and reading past the granted window
/// returns `WouldBlock` — exactly what a `poll(2)`-woken read sees.
/// Once the stream is exhausted, reads return 0 (clean EOF).
struct GrantedReads {
    bytes: Vec<u8>,
    pos: usize,
    granted: usize,
}

impl Read for GrantedReads {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.bytes.len() {
            return Ok(0);
        }
        if self.granted == 0 {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let n = self.granted.min(self.bytes.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        self.granted -= n;
        Ok(n)
    }
}

/// A reader that serves its bytes in caller-chosen slice sizes,
/// cycling through `cuts` — so frame boundaries land mid-header,
/// mid-varint, mid-payload and mid-CRC across cases.
struct Chopped {
    bytes: Vec<u8>,
    cuts: Vec<usize>,
    pos: usize,
    turn: usize,
}

impl Read for Chopped {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let step = self.cuts[self.turn % self.cuts.len()].max(1);
        self.turn += 1;
        let n = step.min(self.bytes.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn payload() -> impl Strategy<Value = Vec<u8>> + 'static {
    vec(any::<u8>(), 0..900)
}

/// Every message kind, payload sizes drawn small-to-large so varint
/// length prefixes cross width boundaries.
fn message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), any::<u32>(), any::<bool>())
            .prop_map(|(client_id, round, relay)| Message::Join { client_id, round, relay })
            .boxed(),
        (0u32..9000, payload())
            .prop_map(|(round, dict_bytes)| Message::GlobalModel { round, dict_bytes })
            .boxed(),
        ((0u32..9000, any::<u64>()), payload(), any::<bool>())
            .prop_map(|((round, client_id), payload, compressed)| Message::Update {
                round,
                client_id,
                payload,
                compressed,
            })
            .boxed(),
        Just(Message::Shutdown).boxed(),
        (0u32..9000, payload())
            .prop_map(|(round, payload)| Message::EncodedGlobal { round, payload })
            .boxed(),
        ((0u32..9000, 0u32..512), (0u32..100_000, 0.0f64..1e6), payload())
            .prop_map(|((round, shard), (clients, weight), payload)| Message::PartialSum {
                round,
                shard,
                clients,
                weight,
                payload,
            })
            .boxed(),
        ((0u32..9000, 0u32..512), (0u32..100_000, 0.0f64..1e6), payload())
            .prop_map(|((round, shard), (clients, weight), payload)| {
                Message::PartialSumCompressed { round, shard, clients, weight, payload }
            })
            .boxed(),
    ]
}

fn stream_of(messages: &[Message]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut writer = FrameWriter::new(&mut bytes);
    for m in messages {
        writer.write_message(m).expect("Vec sink cannot fail");
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrarily_split_streams_round_trip_bit_exactly(
        messages in vec(message(), 1..8),
        cuts in vec(1usize..64, 1..12),
    ) {
        let stream = stream_of(&messages);
        let mut reader = FrameReader::new(Chopped { bytes: stream, cuts, pos: 0, turn: 0 });
        for want in &messages {
            let got = reader.read_message().expect("valid stream").expect("frame available");
            prop_assert_eq!(&got, want);
        }
        prop_assert!(reader.read_message().expect("clean close").is_none());
    }

    #[test]
    fn reactor_interleaved_sessions_round_trip_bit_exactly(
        streams in vec(vec(message(), 1..6), 2..7),
        schedule in vec((any::<u16>(), 1usize..96), 4..64),
    ) {
        // The reactor's actual read pattern: many concurrent sessions,
        // each woken with an arbitrary number of readable bytes at a
        // time, each drained until WouldBlock — with wakeups
        // interleaved across sessions in arbitrary order. Every
        // session must still round-trip its own frame sequence
        // bit-exactly, unperturbed by the others' progress.
        let mut sessions: Vec<(FrameReader<GrantedReads>, Vec<Message>)> = streams
            .iter()
            .map(|messages| {
                let source =
                    GrantedReads { bytes: stream_of(messages), pos: 0, granted: 0 };
                (FrameReader::new(source), Vec::new())
            })
            .collect();
        // Readiness phase: grant `size` bytes to session `who`, then
        // drain that session exactly the way the reactor does — read
        // frames until the source would block.
        let mut grants: Vec<(usize, usize)> = schedule
            .iter()
            .map(|&(who, size)| (who as usize % sessions.len(), size))
            .collect();
        // Completion phase: unbounded grants so every session reaches
        // its clean EOF regardless of how the schedule was drawn.
        for who in 0..sessions.len() {
            grants.push((who, usize::MAX));
        }
        let mut closed = vec![false; sessions.len()];
        for (who, size) in grants {
            if closed[who] {
                continue;
            }
            let (reader, decoded) = &mut sessions[who];
            reader.get_mut().granted = reader.get_mut().granted.saturating_add(size);
            loop {
                match reader.read_message() {
                    Ok(Some(frame)) => decoded.push(frame),
                    Ok(None) => { closed[who] = true; break; }
                    Err(NetError::Timeout) => break, // WouldBlock: wait for the next wakeup
                    Err(e) => return Err(TestCaseError::Fail(format!(
                        "session {who} failed mid-stream: {e}"
                    ))),
                }
            }
        }
        for (who, ((_, decoded), want)) in sessions.iter().zip(&streams).enumerate() {
            prop_assert!(closed[who], "session {} never reached its clean EOF", who);
            prop_assert_eq!(decoded, want, "session {} frames diverged", who);
        }
    }

    #[test]
    fn frame_len_never_lies_on_any_prefix(message in message()) {
        // For every strict prefix, frame_len either asks for more or
        // reports exactly the true frame length — the invariant the
        // stream reader's buffering rests on.
        let frame = message.encode();
        for cut in 0..=frame.len() {
            match frame_len(&frame[..cut]).expect("valid prefix never errors") {
                Some(total) => prop_assert_eq!(total, frame.len()),
                None => prop_assert!(cut < frame.len()),
            }
        }
    }

    #[test]
    fn corrupt_byte_is_rejected_not_misdecoded(
        messages in vec(message(), 1..5),
        cuts in vec(1usize..48, 1..8),
        flip_at in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let clean = stream_of(&messages);
        let idx = (flip_at % clean.len() as u64) as usize;
        let mut corrupt = clean.clone();
        corrupt[idx] ^= 1 << flip_bit;
        let mut reader =
            FrameReader::new(Chopped { bytes: corrupt, cuts, pos: 0, turn: 0 });
        // Frames before the flipped byte may decode fine, but every
        // decoded frame must equal its original, and the stream must
        // end in a codec error — never a clean close or a mis-decode.
        // (The flip always lands: every byte of every frame is either
        // CRC-covered or IS the CRC.)
        let mut decoded = 0usize;
        let outcome = loop {
            match reader.read_message() {
                Ok(Some(got)) => {
                    prop_assert_eq!(&got, &messages[decoded], "frame {} mis-decoded", decoded);
                    decoded += 1;
                }
                other => break other,
            }
        };
        prop_assert!(decoded < messages.len());
        match outcome {
            Err(NetError::Codec(_)) => {}
            other => return Err(TestCaseError::Fail(format!(
                "corrupt stream ended with {other:?} after {decoded} frames"
            ))),
        }
    }

    #[test]
    fn truncated_streams_error_at_the_cut(
        messages in vec(message(), 1..5),
        keep_fraction in 0.0f64..1.0,
    ) {
        let stream = stream_of(&messages);
        let keep = ((stream.len() as f64) * keep_fraction) as usize;
        let mut reader = FrameReader::new(&stream[..keep]);
        let mut decoded = 0usize;
        let ended = loop {
            match reader.read_message() {
                Ok(Some(got)) => {
                    prop_assert_eq!(&got, &messages[decoded]);
                    decoded += 1;
                }
                other => break other,
            }
        };
        match ended {
            // Cut exactly at a frame boundary: a clean close of a
            // shorter-but-valid stream.
            Ok(None) => prop_assert!(decoded <= messages.len()),
            // Cut mid-frame: an explicit error.
            Err(NetError::Codec(_)) => prop_assert!(decoded < messages.len()),
            other => return Err(TestCaseError::Fail(format!("unexpected end: {other:?}"))),
        }
    }
}
