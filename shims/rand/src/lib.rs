//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal, deterministic implementation of exactly the `rand 0.8` API
//! surface the code base uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range}` and `seq::SliceRandom::shuffle`. The generator
//! is xoshiro256++ seeded through SplitMix64 — high-quality, fast and
//! fully reproducible, though its streams differ from upstream `rand`'s
//! ChaCha-based `StdRng` (nothing in this repo depends on upstream
//! bit-streams, only on determinism per seed).

#![forbid(unsafe_code)]

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ("Standard"
/// distribution in upstream terms: floats in `[0, 1)`, integers over
/// their full range, `bool` as a fair coin).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen_range`] can sample uniformly from a range.
///
/// The two-trait shape (`SampleUniform` + a blanket [`SampleRange`] impl
/// over `Range<T>`/`RangeInclusive<T>`) mirrors upstream `rand` so that
/// integer-literal ranges infer the output type from context exactly as
/// they do there.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range types [`Rng::gen_range`] accepts for an output type `T`.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Rejection-free (modulo-bias-free) uniform integer in `[0, span)`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift with rejection on the low word.
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = rng.next_u64() as u128 * span as u128;
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span == 0 || span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit inclusive span.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*}
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                lo + <$t>::sample(rng) * (hi - lo)
            }
        }
    )*}
}
uniform_float!(f32, f64);

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fair coin with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed, `Clone` for forked streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Shuffling and sampling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }
}
