//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace's
//! `cargo bench` targets link against this minimal implementation: it
//! runs each benchmark closure for a fixed number of timed iterations
//! (after warmup) and prints mean wall-clock time plus throughput. No
//! statistics, plots or baselines — just honest numbers, offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value pass-through.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { label: format!("{function}/{parameter}") }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup round to populate caches and lazy state.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) {
        self.samples = samples.max(1) as u64;
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher { iterations: self.samples, elapsed: Duration::ZERO };
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut bencher = Bencher { iterations: self.samples, elapsed: Duration::ZERO };
        f(&mut bencher);
        self.report(&id.label, &bencher);
    }

    /// Prints the group trailer.
    pub fn finish(self) {}

    fn report(&self, label: &str, bencher: &Bencher) {
        let mean = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if mean > 0.0 => {
                format!("  {:>9.1} MB/s", bytes as f64 / mean / 1e6)
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>9.1} elem/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!("{}/{label}: {:.3} ms/iter{rate}", self.name, mean * 1e3);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, throughput: None, _criterion: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher { iterations: 10, elapsed: Duration::ZERO };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        println!("{name}: {:.3} ms/iter", mean * 1e3);
    }
}

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("work", 1), &7u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            });
        });
        group.finish();
        // Warmup + 3 timed iterations.
        assert_eq!(ran, 4);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", "p").label, "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }
}
