//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal implementation of the `proptest` API surface its property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range / tuple /
//! [`collection::vec`] / [`prelude::Just`] / [`prop_oneof!`] strategies, a
//! best-effort string strategy from `&str` patterns, and the
//! `prop_assert*` family.
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic CI), there is no shrinking (failures report the offending
//! input as-is), and `&str` strategies support the character-class subset
//! of regex syntax the tests use rather than arbitrary regexes.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: `prop_oneof!` boxes heterogeneous strategy types.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and draws
        /// from the result (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn new_value(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*}
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*}
    }
    tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
    }

    /// Best-effort string generation from a pattern literal.
    ///
    /// Supports the subset the tests use: literal characters, `[a-z]`
    /// style classes with `{m,n}` repetition, `(alt1|alt2|..)?` optional
    /// groups and `\.` escapes. Unrecognized syntax is emitted literally.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut StdRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            match chars[i] {
                '[' => {
                    let close = chars[i..].iter().position(|&c| c == ']').map(|p| i + p);
                    let Some(close) = close else {
                        out.push('[');
                        i += 1;
                        continue;
                    };
                    let class = expand_class(&chars[i + 1..close]);
                    i = close + 1;
                    let (lo, hi, next) = parse_repeat(&chars, i);
                    i = next;
                    let count = rng.gen_range(lo..=hi);
                    for _ in 0..count {
                        if !class.is_empty() {
                            out.push(class[rng.gen_range(0..class.len())]);
                        }
                    }
                }
                '(' => {
                    let close = matching_paren(&chars, i);
                    let body: String = chars[i + 1..close].iter().collect();
                    let alternatives = split_top_level(&body);
                    let mut next = close + 1;
                    let optional = chars.get(next) == Some(&'?');
                    if optional {
                        next += 1;
                    }
                    i = next;
                    if !optional || rng.gen_range(0..2) == 1 {
                        let alt = &alternatives[rng.gen_range(0..alternatives.len())];
                        out.push_str(&sample_pattern(alt, rng));
                    }
                }
                '\\' => {
                    if let Some(&esc) = chars.get(i + 1) {
                        out.push(esc);
                    }
                    i += 2;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut class = Vec::new();
        let mut j = 0usize;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        class.push(c);
                    }
                }
                j += 3;
            } else {
                class.push(body[j]);
                j += 1;
            }
        }
        class
    }

    fn parse_repeat(chars: &[char], at: usize) -> (usize, usize, usize) {
        if chars.get(at) != Some(&'{') {
            return (1, 1, at);
        }
        let Some(close) = chars[at..].iter().position(|&c| c == '}').map(|p| at + p) else {
            return (1, 1, at);
        };
        let body: String = chars[at + 1..close].iter().collect();
        let mut parts = body.splitn(2, ',');
        let lo: usize = parts.next().and_then(|s| s.trim().parse().ok()).unwrap_or(1);
        let hi: usize = parts.next().and_then(|s| s.trim().parse().ok()).unwrap_or(lo);
        (lo, hi.max(lo), close + 1)
    }

    fn split_top_level(body: &str) -> Vec<String> {
        let mut alternatives = vec![String::new()];
        let mut depth = 0usize;
        let mut escaped = false;
        for c in body.chars() {
            if escaped {
                alternatives.last_mut().expect("non-empty").push(c);
                escaped = false;
                continue;
            }
            match c {
                '\\' => {
                    alternatives.last_mut().expect("non-empty").push(c);
                    escaped = true;
                }
                '(' => {
                    depth += 1;
                    alternatives.last_mut().expect("non-empty").push(c);
                }
                ')' => {
                    depth = depth.saturating_sub(1);
                    alternatives.last_mut().expect("non-empty").push(c);
                }
                '|' if depth == 0 => alternatives.push(String::new()),
                _ => alternatives.last_mut().expect("non-empty").push(c),
            }
        }
        alternatives
    }

    fn matching_paren(chars: &[char], open: usize) -> usize {
        let mut depth = 0usize;
        for (j, &c) in chars.iter().enumerate().skip(open) {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        chars.len().saturating_sub(1)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A size specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_exclusive: r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution plumbing used by the [`proptest!`](crate::proptest)
    //! macro expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Runs `body` over `config.cases` generated cases.
    ///
    /// Rejections (from `prop_assume!`) retry with fresh inputs, bounded
    /// by a global rejection budget so a too-strict assumption cannot
    /// spin forever.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case that
    /// returns [`TestCaseError::Fail`].
    pub fn run(name: &str, config: &Config, mut body: impl FnMut(&mut StdRng) -> TestCaseResult) {
        // Deterministic per test name so CI failures reproduce locally.
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rejections = 0u32;
        let max_rejections = config.cases.saturating_mul(16).max(1024);
        let mut case = 0u32;
        while case < config.cases {
            match body(&mut rng) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejections += 1;
                    assert!(
                        rejections <= max_rejections,
                        "{name}: too many prop_assume! rejections ({rejections})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed at case {case}: {msg}")
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    use rand::rngs::StdRng;

    /// Full-range strategy for `T` (`any::<u8>()`, `any::<bool>()`, …).
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// See [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            T::sample(rng)
        }
    }
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        // Upstream proptest callers parenthesize range options (the
        // syntax also admits `weight => strategy` pairs), so the parens
        // are intentional at every call site.
        #[allow(unused_parens)]
        let options = vec![$($crate::strategy::Strategy::boxed($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking mid-generation) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Declares property tests: each `fn name(bindings in strategies) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($config) $($rest)* }
    };
    (@run ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run(stringify!($name), &config, |rng| {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::new_value(&($strategy), rng),)+
                    );
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i32..5, y in 0usize..10, f in -1.0f32..1.0) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(data in vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&data.len()));
        }

        #[test]
        fn tuples_and_flat_map((r, c, data) in (1usize..4, 1usize..4)
            .prop_flat_map(|(r, c)| vec(0u8..9, r * c).prop_map(move |d| (r, c, d))))
        {
            prop_assert_eq!(data.len(), r * c);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(7i32), 0i32..3]) {
            prop_assert!(v == 7 || (0..3).contains(&v));
        }

        #[test]
        fn assume_rejects(n in 0u8..20) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z]{1,8}(\\.(weight|bias))?") {
            let head: String = s.chars().take_while(|c| c.is_ascii_lowercase()).collect();
            prop_assert!((1..=8).contains(&head.len()), "head `{}` in `{}`", head, s);
            let tail = &s[head.len()..];
            prop_assert!(
                tail.is_empty() || tail == ".weight" || tail == ".bias",
                "tail `{}`", tail
            );
        }
    }
}
