//! Workspace umbrella crate; see member crates.
