//! Figure 6: client epoch-time breakdown (train / validation /
//! compression) with FedSZ at REL 1e-2.
//!
//! Runs one FedAvg round per model/dataset pair and reports the measured
//! wall-clock split. The paper's claim: compression averages ~4.7% of
//! the epoch (worst case 17%).

use fedsz_bench::{print_table, Args};
use fedsz_data::DatasetKind;
use fedsz_fl::{Experiment, FlConfig};
use fedsz_nn::models::tiny::TinyArch;

fn main() {
    let args = Args::parse();
    let rounds: usize = args.get("--rounds", 2);
    let mut rows = Vec::new();
    let mut fractions = Vec::new();
    for dataset in DatasetKind::all() {
        for arch in TinyArch::all() {
            let mut config = FlConfig::paper_default(arch, dataset);
            config.rounds = rounds;
            let metrics = Experiment::new(config).run();
            let n = metrics.len() as f64;
            let train: f64 = metrics.iter().map(|m| m.train_secs).sum::<f64>() / n;
            let comp: f64 = metrics.iter().map(|m| m.compress_secs).sum::<f64>() / n;
            let val: f64 = metrics.iter().map(|m| m.validation_secs).sum::<f64>() / n;
            let total = train + comp + val;
            let frac = if total > 0.0 { comp / total * 100.0 } else { 0.0 };
            fractions.push(frac);
            rows.push(vec![
                dataset.name().to_string(),
                arch.name().to_string(),
                format!("{train:.3}"),
                format!("{val:.3}"),
                format!("{comp:.4}"),
                format!("{frac:.1}%"),
            ]);
        }
    }
    print_table(
        "Figure 6: client epoch time breakdown (seconds, measured)",
        &["Dataset", "Model", "Train (s)", "Validate (s)", "Compress (s)", "Compress %"],
        &rows,
    );
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    println!("\nMean compression share of epoch time: {mean:.1}% (paper: 4.7% mean,");
    println!("<12.5% typical, 17% worst case).");
}
