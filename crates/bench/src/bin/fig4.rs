//! Figure 4: accuracy convergence per EBLC over FL rounds.
//!
//! Trains the tiny variants with FedAvg for `--rounds` rounds (default
//! 10, as in the paper), once uncompressed and once per EBLC at REL
//! 1e-2, printing the accuracy trajectory. Default grid: all three
//! models on the CIFAR-10-like task (the paper's main text notes other
//! datasets behave the same; pass `--all-datasets` for the full 3x3).

use fedsz::{ErrorBound, FedSzConfig, LossyKind};
use fedsz_bench::{print_table, Args};
use fedsz_data::DatasetKind;
use fedsz_fl::{Experiment, FlConfig};
use fedsz_nn::models::tiny::TinyArch;

fn main() {
    let args = Args::parse();
    let rounds: usize = args.get("--rounds", 10);
    let datasets: Vec<DatasetKind> = if args.has("--all-datasets") {
        DatasetKind::all().to_vec()
    } else {
        vec![DatasetKind::Cifar10Like]
    };

    for dataset in datasets {
        for arch in TinyArch::all() {
            let mut rows = Vec::new();
            let mut run = |label: String, compression: Option<FedSzConfig>| {
                let mut config = FlConfig::paper_default(arch, dataset);
                config.rounds = rounds;
                config.compression = compression;
                let metrics = Experiment::new(config).run();
                let mut cells = vec![label];
                cells.extend(metrics.iter().map(|m| format!("{:.1}", m.test_accuracy * 100.0)));
                rows.push(cells);
            };
            run("Uncompressed".to_string(), None);
            for kind in [LossyKind::Sz2, LossyKind::Sz3, LossyKind::Zfp, LossyKind::Szx] {
                run(
                    format!("FedSZ-{}", kind.name()),
                    Some(
                        FedSzConfig { lossy: kind, ..FlConfig::tiny_model_compression() }
                            .with_error_bound(ErrorBound::Relative(1e-2)),
                    ),
                );
            }
            let mut headers: Vec<String> = vec!["Compression".to_string()];
            headers.extend((1..=rounds).map(|r| format!("R{r}")));
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            print_table(
                &format!("Figure 4: accuracy (%) per round — {arch} on {dataset}"),
                &header_refs,
                &rows,
            );
        }
    }
    println!("\nShape check vs paper: all EBLC curves track the uncompressed curve at");
    println!("REL 1e-2. Deviation: the paper's SZx collapses to 10% (their integration");
    println!("artifact); our error-bounded SZx converges like the others.");
}
