//! Table I: EBLC comparison across models for CIFAR-10.
//!
//! Columns: runtime (s), throughput (MB/s), compression ratio and top-1
//! accuracy, for SZ2/SZ3/SZx/ZFP at REL bounds 1e-2, 1e-3, 1e-4.
//!
//! Runtime/throughput/ratio are measured on the full-size model weight
//! partitions (sampled by `--scale`, default 0.05); accuracy comes from
//! real FL runs of the tiny trainable variants (`--rounds`, default 6;
//! `--skip-accuracy` to omit). The paper's absolute numbers come from a
//! Raspberry Pi 5 and an A100 cluster; the *shape* to check is: SZx
//! fastest, SZ2 best ratio/accuracy balance, ZFP lowest ratio.

use fedsz::{ErrorBound, FedSzConfig, LossyKind};
use fedsz_bench::{lossy_partition_values, print_table, timed, Args};
use fedsz_data::DatasetKind;
use fedsz_fl::{Experiment, FlConfig};
use fedsz_nn::models::specs::ModelSpec;
use fedsz_nn::models::tiny::TinyArch;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.05);
    let rounds: usize = args.get("--rounds", 6);
    let bounds = [1e-2f64, 1e-3, 1e-4];
    let with_accuracy = !args.has("--skip-accuracy");

    println!("Table I reproduction (scale = {scale}, rounds = {rounds})");
    println!("Paper reference: SZ2 best ratio, SZx fastest, ZFP lowest ratio.");

    let mut rows = Vec::new();
    for spec in ModelSpec::all() {
        let dict = spec.instantiate_scaled(42, scale);
        let weights = lossy_partition_values(&dict, 1000);
        let mb = (weights.len() * 4) as f64 / 1e6;
        for kind in LossyKind::all() {
            let codec = kind.codec();
            let mut cells = vec![spec.name().to_string(), kind.name().to_string()];
            let mut ratios = Vec::new();
            let mut runtimes = Vec::new();
            for &eb in &bounds {
                let (packed, secs) =
                    timed(|| codec.compress(&weights, ErrorBound::Relative(eb)).unwrap());
                runtimes.push(secs);
                ratios.push((weights.len() * 4) as f64 / packed.len() as f64);
            }
            for secs in &runtimes {
                cells.push(format!("{secs:.3}"));
            }
            for secs in &runtimes {
                cells.push(format!("{:.1}", mb / secs));
            }
            for r in &ratios {
                cells.push(format!("{r:.3}"));
            }
            if with_accuracy {
                let arch = match spec.name() {
                    "AlexNet" => TinyArch::AlexNet,
                    "MobileNet-V2" => TinyArch::MobileNetV2,
                    _ => TinyArch::ResNet,
                };
                for &eb in &bounds {
                    let mut config = FlConfig::paper_default(arch, DatasetKind::Cifar10Like);
                    config.rounds = rounds;
                    config.compression = Some(
                        FedSzConfig { lossy: kind, ..FlConfig::tiny_model_compression() }
                            .with_error_bound(ErrorBound::Relative(eb)),
                    );
                    let metrics = Experiment::new(config).run();
                    let acc = metrics.last().map(|m| m.test_accuracy).unwrap_or(0.0);
                    cells.push(format!("{:.2}", acc * 100.0));
                }
            }
            rows.push(cells);
        }
    }

    let mut headers = vec!["Model", "Compressor"];
    headers.extend(["t_C 1e-2 (s)", "t_C 1e-3 (s)", "t_C 1e-4 (s)"]);
    headers.extend(["MB/s 1e-2", "MB/s 1e-3", "MB/s 1e-4"]);
    headers.extend(["CR 1e-2", "CR 1e-3", "CR 1e-4"]);
    if with_accuracy {
        headers.extend(["Acc% 1e-2", "Acc% 1e-3", "Acc% 1e-4"]);
    }
    print_table("Table I: EBLC comparison (CIFAR-10)", &headers, &rows);
    println!("\nNotes:");
    println!("- weights sampled at scale {scale}; CR is size-independent per byte.");
    println!("- accuracy from tiny trainable variants on the synthetic CIFAR-10-like task.");
    println!("- deviation: our faithful error-bounded SZx preserves accuracy; the paper");
    println!("  reports SZx at 10% (random), an artifact of their integration.");
}
