//! Figure 2: FL model parameters are spiky; scientific data is smooth.
//!
//! Prints snippets of flattened model weights and Miranda-like fields,
//! a scale-free smoothness metric (mean |Δ| / std), and — the punchline
//! the figure motivates — SZ2 compression ratios for both at the same
//! bound, showing scientific data compresses far better.

use fedsz::{ErrorBound, LossyKind};
use fedsz_bench::{print_table, render_series, Args};
use fedsz_data::{mean_abs_diff, miranda_like_series};
use fedsz_nn::models::specs::ModelSpec;

fn normalized_spikiness(data: &[f32]) -> f64 {
    let mean = data.iter().map(|&v| f64::from(v)).sum::<f64>() / data.len() as f64;
    let std = (data.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>()
        / data.len() as f64)
        .sqrt();
    mean_abs_diff(data) / std.max(1e-12)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    let dict = ModelSpec::alexnet().instantiate_scaled(42, scale);
    let weights: Vec<f32> = dict.get("classifier.1.weight").unwrap().data().to_vec();
    let miranda = miranda_like_series(7, weights.len().min(1 << 16));
    let weights = &weights[..miranda.len().min(weights.len())];

    // Snippets, as in the figure's panels.
    let snippet = |data: &[f32], from: usize| -> Vec<(String, f64)> {
        data.iter()
            .skip(from)
            .take(8)
            .enumerate()
            .map(|(i, &v)| (format!("[{}]", from + i), f64::from(v)))
            .collect()
    };
    println!(
        "{}",
        render_series("FL weight snippet (AlexNet classifier.1)", &snippet(weights, 500))
    );
    println!("{}", render_series("Miranda-like field snippet", &snippet(&miranda, 500)));

    let codec = LossyKind::Sz2.codec();
    let ratio = |data: &[f32]| -> f64 {
        let packed = codec.compress(data, ErrorBound::Relative(1e-2)).unwrap();
        (data.len() * 4) as f64 / packed.len() as f64
    };
    let rows = vec![
        vec![
            "FL weights (AlexNet)".to_string(),
            format!("{:.4}", normalized_spikiness(weights)),
            format!("{:.2}", ratio(weights)),
        ],
        vec![
            "Miranda-like field".to_string(),
            format!("{:.4}", normalized_spikiness(&miranda)),
            format!("{:.2}", ratio(&miranda)),
        ],
    ];
    print_table(
        "Figure 2: spikiness and compressibility",
        &["Series", "mean|Δ|/std (spikiness)", "SZ2 CR @ REL 1e-2"],
        &rows,
    );
    println!("\nShape check vs paper: weights are an order of magnitude spikier and");
    println!("compress far worse than the smooth scientific field.");
}
