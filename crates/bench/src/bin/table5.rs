//! Table V: FedSZ compression ratios across models and datasets at REL
//! error bounds 1e-1 .. 1e-4.
//!
//! Runs the *whole* FedSZ pipeline (partition + SZ2 + blosc-lz +
//! serialization) on full-size model state dicts. The paper's dataset
//! dimension reflects the weights models end up with after training on
//! each dataset; here each dataset column uses a distinct seed of the
//! trained-looking weight generator (the paper's own Table V shows the
//! dataset effect is second-order: ratios vary far more with the error
//! bound than across datasets).

use fedsz::{ErrorBound, FedSz, FedSzConfig};
use fedsz_bench::{print_table, Args};
use fedsz_data::DatasetKind;
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.05);
    let bounds = [1e-1f64, 1e-2, 1e-3, 1e-4];
    println!("Table V reproduction (scale = {scale})");

    let mut rows = Vec::new();
    for (d, dataset) in DatasetKind::all().into_iter().enumerate() {
        for spec in [ModelSpec::alexnet(), ModelSpec::mobilenet_v2(), ModelSpec::resnet50()] {
            let dict = spec.instantiate_scaled(100 + d as u64, scale);
            let mut cells = vec![dataset.name().to_string(), spec.name().to_string()];
            for &eb in &bounds {
                let fedsz =
                    FedSz::new(FedSzConfig::default().with_error_bound(ErrorBound::Relative(eb)));
                let packed = fedsz.compress(&dict).unwrap();
                cells.push(format!("{:.2}", packed.stats().ratio()));
            }
            rows.push(cells);
        }
    }
    print_table(
        "Table V: FedSZ compression ratios",
        &["Dataset", "Model", "CR 1e-1", "CR 1e-2", "CR 1e-3", "CR 1e-4"],
        &rows,
    );
    println!("\nPaper reference (CIFAR-10): AlexNet 54.5/12.6/5.5/3.5; MobileNetV2");
    println!("11.1/5.4/3.2/1.9; ResNet50 20.2/7.0/4.0/2.7. Shape to check: ratios fall");
    println!("~2-4x per decade of error bound; AlexNet compresses best, MobileNetV2 worst.");
}
