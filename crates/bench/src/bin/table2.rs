//! Table II: lossless compressor comparison on AlexNet metadata.
//!
//! Compresses the lossless partition of a full-size AlexNet state dict
//! (biases + small tensors, ≈1% of the update) with all five lossless
//! codecs, reporting runtime, throughput and ratio. The shape to check:
//! blosc-lz fastest by a wide margin with a competitive ratio, xz the
//! best ratio and slowest, gzip/zlib nearly identical.

use fedsz_bench::{lossless_partition_bytes, print_table, timed, Args};
use fedsz_lossless::LosslessKind;
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let args = Args::parse();
    let seeds: u64 = args.get("--seeds", 3);
    // The strict Algorithm-1 metadata of one AlexNet update is ~41 KB —
    // too small to time meaningfully — so, like the paper's "~1% of an
    // update" framing, we benchmark on the pooled metadata partitions of
    // all three profiled models across several update seeds (~2 MB of
    // genuinely distinct float metadata; no artificial tiling, which
    // would hand the large-window codecs fake long-range matches).
    let mut metadata = Vec::new();
    for seed in 0..seeds {
        for spec in ModelSpec::all() {
            let dict = spec.instantiate_scaled(42 + seed, 1.0);
            metadata.extend(lossless_partition_bytes(&dict, 1000));
        }
    }
    let mb = metadata.len() as f64 / 1e6;
    println!("Table II reproduction: pooled model metadata = {mb:.2} MB ({seeds} seeds)");

    let mut rows = Vec::new();
    for kind in LosslessKind::all() {
        let codec = kind.codec();
        let (packed, secs) = timed(|| codec.compress(&metadata));
        let (restored, dsecs) = timed(|| codec.decompress(&packed).unwrap());
        assert_eq!(restored, metadata, "lossless codec must round-trip");
        rows.push(vec![
            kind.name().to_string(),
            format!("{secs:.3}"),
            format!("{:.1}", mb / secs),
            format!("{:.3}", metadata.len() as f64 / packed.len() as f64),
            format!("{dsecs:.3}"),
        ]);
    }
    print_table(
        "Table II: lossless compressors on AlexNet metadata",
        &["Compressor", "Runtime (s)", "Throughput (MB/s)", "Compression Ratio", "Decomp (s)"],
        &rows,
    );
    println!("\nShape check vs paper: blosc-lz fastest; xz best ratio & slowest;");
    println!("gzip ≈ zlib (same DEFLATE payload, different frame).");
}
