//! Extension: value-range relative vs pointwise-relative bounding.
//!
//! The paper's Fig 3 observation — weight magnitudes span decades — cuts
//! both ways: a value-range bound wastes precision on tiny weights near
//! large outliers. This bench compares the two modes on real model
//! weights: ratio, worst pointwise relative error, and RMSE.

use fedsz_bench::{lossy_partition_values, print_table, Args};
use fedsz_lossy::{pwrel, ErrorBound, LossyKind};
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    let codec = LossyKind::Sz2.codec();
    let mut rows = Vec::new();
    for spec in ModelSpec::all() {
        let dict = spec.instantiate_scaled(42, scale);
        let weights = lossy_partition_values(&dict, 1000);
        for eb in [1e-2f64, 1e-3] {
            // Value-range relative.
            let vr = codec.compress(&weights, ErrorBound::Relative(eb)).unwrap();
            let vr_out = codec.decompress(&vr).unwrap();
            // Pointwise relative.
            let pw = pwrel::compress(codec.as_ref(), &weights, eb).unwrap();
            let pw_out = pwrel::decompress(codec.as_ref(), &pw).unwrap();

            let worst_pointwise = |restored: &[f32]| -> f64 {
                weights
                    .iter()
                    .zip(restored)
                    .filter(|(&x, _)| x.abs() > 1e-6)
                    .map(|(&x, &y)| f64::from((x - y).abs()) / f64::from(x.abs()))
                    .fold(0.0f64, f64::max)
            };
            let ratio = |packed: &[u8]| (weights.len() * 4) as f64 / packed.len() as f64;
            rows.push(vec![
                spec.name().to_string(),
                format!("{eb:.0e}"),
                format!("{:.2}", ratio(&vr)),
                format!("{:.1}", worst_pointwise(&vr_out)),
                format!("{:.2}", ratio(&pw)),
                format!("{:.4}", worst_pointwise(&pw_out)),
            ]);
        }
    }
    print_table(
        "Extension: value-range REL vs pointwise relative (SZ2)",
        &["Model", "eb", "REL ratio", "REL worst pw err", "PWREL ratio", "PWREL worst pw err"],
        &rows,
    );
    println!("\nFinding: value-range mode gets far better ratios but leaves small");
    println!("weights with pointwise errors of 100%+ (the bound is set by the layer's");
    println!("outliers); pointwise mode guarantees every weight stays within eb of");
    println!("itself at a lower ratio. Which matters for FL accuracy depends on how");
    println!("sensitive the network is to its small weights — a natural follow-up to");
    println!("the paper's hyperparameter-tuning future work.");
}
