//! Figure 7: total communication time vs REL error bound at 10 Mbps.
//!
//! For each model, measures FedSZ compress/decompress wall time on the
//! full-size state dict (sampled by `--scale`; times are rescaled to
//! full-model equivalents) and computes Eqn 1's total transfer time on a
//! simulated 10 Mbps link, against the uncompressed baseline.

use fedsz::timing::{mbps, TransferPlan};
use fedsz::{ErrorBound, FedSz, FedSzConfig};
use fedsz_bench::{print_table, timed, Args};
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.05);
    let bandwidth = mbps(args.get("--mbps", 10.0));
    let bounds = [1e-5f64, 1e-4, 1e-3, 1e-2];
    println!("Figure 7 reproduction (scale = {scale}, bandwidth = {:.0} Mbps)", bandwidth / 1e6);

    let mut rows = Vec::new();
    for spec in [ModelSpec::alexnet(), ModelSpec::mobilenet_v2(), ModelSpec::resnet50()] {
        let dict = spec.instantiate_scaled(42, scale);
        let full_bytes = spec.byte_size();
        let inflate = full_bytes as f64 / dict.byte_size() as f64;
        let uncompressed = full_bytes as f64 * 8.0 / bandwidth;
        let mut cells = vec![spec.name().to_string(), format!("{uncompressed:.1}")];
        for &eb in &bounds {
            let fedsz =
                FedSz::new(FedSzConfig::default().with_error_bound(ErrorBound::Relative(eb)));
            let (packed, c_secs) = timed(|| fedsz.compress(&dict).unwrap());
            let (_, d_secs) = timed(|| fedsz.decompress(packed.bytes()).unwrap());
            let plan = TransferPlan {
                compress_secs: c_secs * inflate,
                decompress_secs: d_secs * inflate,
                original_bytes: full_bytes,
                compressed_bytes: (packed.bytes().len() as f64 * inflate) as usize,
            };
            cells.push(format!("{:.1}", plan.compressed_time(bandwidth)));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 7: total communication time (s) at 10 Mbps",
        &["Model", "Uncompressed", "FedSZ 1e-5", "FedSZ 1e-4", "FedSZ 1e-3", "FedSZ 1e-2"],
        &rows,
    );
    println!("\nShape check vs paper: every bound cuts communication time by roughly an");
    println!("order of magnitude at 10 Mbps (paper: 13.26x for AlexNet at 1e-2).");
}
