//! Figure 5: inference accuracy vs relative error bound (1e-5 .. 1e-1).
//!
//! For each model (and dataset with `--all-datasets`), runs FedAvg with
//! FedSZ at each bound plus an uncompressed baseline, reporting final
//! accuracy. The paper's key result: accuracy is flat up to REL 1e-2 and
//! collapses at 1e-1.

use fedsz::ErrorBound;
use fedsz_bench::{print_table, Args};
use fedsz_data::DatasetKind;
use fedsz_fl::{Experiment, FlConfig};
use fedsz_nn::models::tiny::TinyArch;

fn main() {
    let args = Args::parse();
    let rounds: usize = args.get("--rounds", 8);
    let bounds = [1e-5f64, 1e-4, 1e-3, 1e-2, 1e-1];
    let datasets: Vec<DatasetKind> = if args.has("--all-datasets") {
        DatasetKind::all().to_vec()
    } else {
        vec![DatasetKind::Cifar10Like]
    };

    for dataset in datasets {
        let mut rows = Vec::new();
        for arch in TinyArch::all() {
            let mut config = FlConfig::paper_default(arch, dataset);
            config.rounds = rounds;
            config.compression = None;
            let baseline =
                Experiment::new(config).run().last().map(|m| m.test_accuracy).unwrap_or(0.0);
            let mut cells = vec![arch.name().to_string(), format!("{:.1}", baseline * 100.0)];
            for &eb in &bounds {
                let mut config = FlConfig::paper_default(arch, dataset);
                config.rounds = rounds;
                config.compression = Some(
                    FlConfig::tiny_model_compression().with_error_bound(ErrorBound::Relative(eb)),
                );
                let acc =
                    Experiment::new(config).run().last().map(|m| m.test_accuracy).unwrap_or(0.0);
                cells.push(format!("{:.1}", acc * 100.0));
            }
            rows.push(cells);
        }
        print_table(
            &format!("Figure 5: final accuracy (%) vs REL bound — {dataset} ({rounds} rounds)"),
            &["Model", "No FedSZ", "1e-5", "1e-4", "1e-3", "1e-2", "1e-1"],
            &rows,
        );
    }
    println!("\nShape check vs paper: bounds <= 1e-2 track the uncompressed baseline;");
    println!("1e-1 degrades sharply (Fig 5's threshold effect).");
}
