//! Ablation: FedSZ as a "last step" on top of sparsification and
//! quantization (the paper's Section III-C composition argument).
//!
//! Trains one FL round, then compares the wire size of the client update
//! under: raw; FedSZ alone; top-k alone; top-k + FedSZ; QSGD alone;
//! QSGD + FedSZ. "Alone" baselines are serialized with the state-dict
//! wire format (sparsity/quantization by themselves don't shrink dense
//! float arrays — which is exactly why a byte-level last step helps).

use fedsz::FedSz;
use fedsz_bench::{print_table, Args};
use fedsz_data::DatasetKind;
use fedsz_fl::baselines::{qsgd_quantize, top_k_sparsify};
use fedsz_fl::{Experiment, FlConfig};
use fedsz_nn::models::tiny::TinyArch;
use fedsz_nn::StateDict;

fn main() {
    let args = Args::parse();
    let fraction: f64 = args.get("--topk", 0.05);
    let levels: u32 = args.get("--levels", 8);
    let threshold = FlConfig::tiny_model_compression().threshold;

    // One trained client update and the global model it started from.
    let mut config = FlConfig::paper_default(TinyArch::AlexNet, DatasetKind::Cifar10Like);
    config.rounds = 1;
    config.clients = 1;
    let mut exp = Experiment::new(config);
    let global = exp.global_state().clone();
    let _ = exp.run_round(0);
    let update = exp.global_state().clone(); // 1 client => global == its update

    let fedsz = FedSz::new(FlConfig::tiny_model_compression());
    let raw = update.byte_size();
    let size = |dict: &StateDict| fedsz.compress(dict).unwrap().bytes().len();

    let sparse = top_k_sparsify(&update, &global, fraction, threshold);
    let quant = qsgd_quantize(&update, &global, levels, threshold, 9);
    let delta_size = |dict: &StateDict| fedsz.compress_delta(dict, &global).unwrap().bytes().len();

    let rows = vec![
        vec!["raw update".into(), format!("{raw}"), "1.00".into()],
        vec![
            "FedSZ delta (vs global)".into(),
            format!("{}", delta_size(&update)),
            format!("{:.2}", raw as f64 / delta_size(&update) as f64),
        ],
        vec![
            format!("top-{:.0}% + FedSZ delta", fraction * 100.0),
            format!("{}", delta_size(&sparse)),
            format!("{:.2}", raw as f64 / delta_size(&sparse) as f64),
        ],
        vec![
            "FedSZ alone".into(),
            format!("{}", size(&update)),
            format!("{:.2}", raw as f64 / size(&update) as f64),
        ],
        vec![
            format!("top-{:.0}% alone (dense bytes)", fraction * 100.0),
            format!("{}", sparse.to_bytes().len()),
            format!("{:.2}", raw as f64 / sparse.to_bytes().len() as f64),
        ],
        vec![
            format!("top-{:.0}% + FedSZ", fraction * 100.0),
            format!("{}", size(&sparse)),
            format!("{:.2}", raw as f64 / size(&sparse) as f64),
        ],
        vec![
            format!("QSGD-{levels} alone (dense bytes)"),
            format!("{}", quant.to_bytes().len()),
            format!("{:.2}", raw as f64 / quant.to_bytes().len() as f64),
        ],
        vec![
            format!("QSGD-{levels} + FedSZ"),
            format!("{}", size(&quant)),
            format!("{:.2}", raw as f64 / size(&quant) as f64),
        ],
    ];
    print_table(
        "Ablation: composing FedSZ with sparsification/quantization",
        &["Pipeline", "Bytes", "Ratio vs raw"],
        &rows,
    );
    println!("\nFinding: FedSZ composes cleanly — it compresses transformed updates at");
    println!("least as well as raw ones, while the transforms alone shrink nothing (a");
    println!("dense float array is the same size no matter how many entries changed).");
    println!("QSGD + FedSZ is the standout: few distinct levels make the prediction");
    println!("residuals nearly constant. Top-k's win would grow with delta encoding");
    println!("(compressing update - global instead of the update), a natural extension.");
}
