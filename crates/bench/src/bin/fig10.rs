//! Figure 10: distribution of decompression errors vs Laplace fits.
//!
//! Pools FedSZ (SZ2) pointwise errors over a full-size model update at
//! REL bounds 0.5 / 0.1 / 0.05, prints text histograms, and fits
//! Laplace and Gaussian models by maximum likelihood, reporting KS
//! distances — the quantitative version of the paper's "looks
//! Laplacian" observation, plus the ε the Laplace mechanism would give.

use fedsz_bench::{print_table, render_histogram, Args};
use fedsz_codec::stats::Histogram;
use fedsz_dp::{analyze_noise, compression_errors};
use fedsz_lossy::{ErrorBound, LossyKind};
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    let dict = ModelSpec::alexnet().instantiate_scaled(42, scale);
    let codec = LossyKind::Sz2.codec();

    let mut rows = Vec::new();
    for &eb in &[0.5f64, 0.1, 0.05] {
        // Pool errors across tensors: each gets its own absolute bound
        // (value-range relative mode), exactly like a FedSZ update.
        let mut errors = Vec::new();
        for (name, tensor) in dict.iter() {
            if fedsz::partition::is_lossy(name, tensor.len(), 1000) {
                errors.extend(
                    compression_errors(codec.as_ref(), tensor.data(), ErrorBound::Relative(eb))
                        .unwrap(),
                );
            }
        }
        let report = analyze_noise(&errors);
        let spread = 3.0 * report.laplace.scale;
        let hist = Histogram::build(&errors, -spread, spread, 21);
        println!("\n{}", render_histogram(&format!("Figure 10: error density at REL {eb}"), &hist));
        rows.push(vec![
            format!("{eb}"),
            format!("{:.2e}", report.laplace.scale),
            format!("{:.4}", report.ks_laplace),
            format!("{:.4}", report.ks_gaussian),
            format!("{}", if report.laplace_preferred() { "Laplace" } else { "Gaussian" }),
            format!("{:.2}", report.laplace.epsilon_for_sensitivity(1.0)),
        ]);
    }
    print_table(
        "Figure 10: error-distribution fits",
        &["REL bound", "Laplace b", "KS(Laplace)", "KS(Gaussian)", "Better fit", "eps(sens=1)"],
        &rows,
    );
    println!("\nShape check vs paper: pooled errors are sharply peaked and Laplace-like.");
    println!("Nuance our substrate makes visible: when the bound is loose relative to");
    println!("the weight bulk (outlier-driven ranges make REL 0.05-0.5 bins wider than");
    println!("most weights), the error inherits the weight distribution itself — which");
    println!("is Laplacian-shaped — rather than scaling with the bound. As the paper");
    println!("notes, all of this is suggestive of DP, not a formal guarantee.");
}
