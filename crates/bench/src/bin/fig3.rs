//! Figure 3: weight distributions of the pretrained models.
//!
//! Text histograms of the full-size generated weights; all three models
//! cluster around zero with different dynamic ranges — the observation
//! that motivates value-range *relative* error bounds in the paper.

use fedsz_bench::{lossy_partition_values, render_histogram, Args};
use fedsz_codec::stats::Histogram;
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    for spec in ModelSpec::all() {
        let dict = spec.instantiate_scaled(42, scale);
        let weights = lossy_partition_values(&dict, 1000);
        let range = fedsz_codec::stats::value_range(&weights).unwrap();
        let lo = f64::from(range.min).max(-0.3);
        let hi = f64::from(range.max).min(0.3);
        let hist = Histogram::build(&weights, lo, hi, 24);
        println!(
            "\n{}",
            render_histogram(
                &format!(
                    "Figure 3: {} weight density (range [{:.3}, {:.3}], {} outliers)",
                    spec.name(),
                    range.min,
                    range.max,
                    hist.outliers
                ),
                &hist
            )
        );
    }
    println!("Shape check vs paper: all three distributions peak sharply at zero;");
    println!("dynamic ranges differ per model, motivating relative error bounds.");
}
