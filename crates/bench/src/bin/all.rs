//! Runs every table/figure/ablation binary in sequence with default
//! (quick) settings, forwarding any extra flags to each.
//!
//! ```text
//! cargo run -p fedsz-bench --bin all            # quick pass
//! cargo run -p fedsz-bench --bin all -- --scale 0.2
//! ```

use std::process::Command;

const BINARIES: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablation_sz2",
    "ablation_shuffle",
    "ablation_threshold",
    "ablation_composition",
    "extension_pwrel",
    "hetero_links",
];

fn main() {
    let extra: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("current exe path");
    let bin_dir = self_path.parent().expect("exe has a parent directory");
    let mut failures = Vec::new();
    for name in BINARIES {
        let path = bin_dir.join(name);
        if !path.exists() {
            eprintln!("skipping {name}: not built (run `cargo build -p fedsz-bench --bins`)");
            failures.push(*name);
            continue;
        }
        println!("\n================ {name} ================\n");
        let status = Command::new(&path).args(&extra).status().expect("spawn bench binary");
        if !status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!("\nall {} bench binaries completed", BINARIES.len());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
