//! Ablation: the Algorithm 1 partition threshold.
//!
//! Sweeps the element-count threshold that decides which `weight`
//! tensors are lossy-compressed, showing the trade-off the paper's
//! default of 1000 sits on: lower thresholds push small (often
//! accuracy-critical) tensors into the lossy path for negligible ratio
//! gain; higher thresholds waste ratio by storing big tensors losslessly.

use fedsz::{partition, FedSz, FedSzConfig};
use fedsz_bench::{print_table, Args};
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    let mut rows = Vec::new();
    for spec in [ModelSpec::mobilenet_v2(), ModelSpec::resnet50()] {
        // Thresholds are in elements of the FULL model; the sampled dict
        // scales tensor sizes, so scale the thresholds identically.
        let dict = spec.instantiate_scaled(42, scale);
        for threshold_full in [0usize, 100, 1000, 10_000, 1_000_000] {
            let threshold = (threshold_full as f64 * scale) as usize;
            let fedsz = FedSz::new(FedSzConfig { threshold, ..FedSzConfig::default() });
            let packed = fedsz.compress(&dict).unwrap();
            let report = partition::report(&dict, threshold);
            rows.push(vec![
                spec.name().to_string(),
                format!("{threshold_full}"),
                format!("{:.2}", packed.stats().ratio()),
                format!("{:.2}%", report.lossy_fraction() * 100.0),
                format!("{}", report.lossy_tensors),
            ]);
        }
    }
    print_table(
        "Ablation: partition threshold (full-model elements)",
        &["Model", "Threshold", "FedSZ ratio", "% lossy elements", "# lossy tensors"],
        &rows,
    );
    println!("\nExpected shape: ratio saturates once all large tensors are lossy");
    println!("(threshold <= ~1e3); the paper's 1000 takes nearly all the ratio while");
    println!("keeping every small/metadata tensor bit-exact.");
}
