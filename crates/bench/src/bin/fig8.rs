//! Figure 8: communication time vs bandwidth for AlexNet, per EBLC.
//!
//! Sweeps bandwidth from 1 Mbps to 10 Gbps, computing Eqn 1's total
//! time for SZ2/SZ3/ZFP-compressed transfers (measured codec runtimes,
//! rescaled to the full model) against the uncompressed transfer, and
//! reports each codec's break-even bandwidth. The paper's shape:
//! compression wins below ~500 Mbps, SZ2 is best below ~100 Mbps.

use fedsz::timing::{mbps, TransferPlan};
use fedsz::ErrorBound;
use fedsz_bench::{lossy_partition_values, print_table, timed, Args};
use fedsz_lossy::LossyKind;
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.05);
    let spec = ModelSpec::alexnet();
    let dict = spec.instantiate_scaled(42, scale);
    let weights = lossy_partition_values(&dict, 1000);
    let full_bytes = spec.byte_size();
    let inflate = full_bytes as f64 / (weights.len() * 4) as f64;
    println!("Figure 8 reproduction: AlexNet over variable bandwidth (scale = {scale})");

    let bandwidths = [1.0f64, 5.0, 10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 10_000.0];
    let mut plans = Vec::new();
    for kind in [LossyKind::Sz2, LossyKind::Sz3, LossyKind::Zfp] {
        let codec = kind.codec();
        let (packed, c_secs) =
            timed(|| codec.compress(&weights, ErrorBound::Relative(1e-2)).unwrap());
        let (_, d_secs) = timed(|| codec.decompress(&packed).unwrap());
        plans.push((
            kind.name(),
            TransferPlan {
                compress_secs: c_secs * inflate,
                decompress_secs: d_secs * inflate,
                original_bytes: full_bytes,
                compressed_bytes: (packed.len() as f64 * inflate) as usize,
            },
        ));
    }

    let mut rows = Vec::new();
    for &bw in &bandwidths {
        let mut cells = vec![format!("{bw:.0}")];
        cells.push(format!("{:.1}", full_bytes as f64 * 8.0 / mbps(bw)));
        for (_, plan) in &plans {
            cells.push(format!("{:.1}", plan.compressed_time(mbps(bw))));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 8: communication time (s) vs bandwidth (Mbps)",
        &["Mbps", "Original", "SZ2", "SZ3", "ZFP"],
        &rows,
    );

    let mut be_rows = Vec::new();
    for (name, plan) in &plans {
        be_rows.push(vec![
            name.to_string(),
            format!("{:.2}", plan.ratio()),
            format!("{:.0}", plan.breakeven_bandwidth() / 1e6),
        ]);
    }
    print_table(
        "Break-even bandwidths (compression wins below these)",
        &["Compressor", "Ratio", "Break-even (Mbps)"],
        &be_rows,
    );
    println!("\nShape check vs paper: compression is worthwhile up to a few hundred");
    println!("Mbps; above the break-even the codec overhead dominates. Absolute");
    println!("break-evens shift with codec speed (paper used a Raspberry Pi 5).");
}
