//! Scale study of the sharded aggregation tree: 10^2 → 10^4 clients.
//!
//! The paper's Fig. 9 stops at 127 clients because the flat server
//! merges one `O(clients · params)` serial loop behind one serialized
//! link. This bench sweeps client counts two orders of magnitude past
//! that and compares, per point:
//!
//! * flat aggregation (one serial exact merge in client-id order) vs
//!   the sharded tree (parallel edge merges, streamed so peak memory
//!   is one update per worker, not `N`),
//! * root ingress bytes: `N` serialized updates vs `S` partial-sum
//!   frames — the reduction the tree buys,
//! * the downlink stage's broadcast compression ratio, and
//! * a bit-parity check: the tree's global model must equal the flat
//!   reference byte for byte.
//!
//! Client updates are synthesized (base model + deterministic per-client
//! perturbation) instead of trained — aggregation throughput is the
//! quantity under study, and training 10^4 clients would drown it.
//!
//! Output is JSON (one array of sweep points) for CI and plotting.
//! Flags: `--clients 100,1000,10000` (sweep list), `--shards N`
//! (default 16), `--scale F` (model-size fraction, default 0.001),
//! `--seed N`.
//!
//! `merge_speedup` tracks the host's core count (each shard merges on
//! its own worker thread); the JSON carries `worker_threads` so a
//! single-core CI runner's ~1x reads as expected, not as a regression.
//! The byte reductions and the parity bit are hardware-independent.

use fedsz::{FedSzConfig, LossyKind};
use fedsz_bench::Args;
use fedsz_fl::agg::{Downlink, DownlinkMode, PartialSum, ShardPlan, ShardedTree};
use fedsz_nn::models::specs::ModelSpec;
use fedsz_nn::StateDict;
use fedsz_tensor::Tensor;
use std::time::Instant;

/// Deterministic per-client perturbation of the base model (splitmix64
/// stream keyed by client id), standing in for one round of local SGD.
fn synth_update(base: &StateDict, client: usize, seed: u64) -> StateDict {
    let mut state = seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    base.iter()
        .map(|(name, tensor)| {
            let data: Vec<f32> = tensor
                .data()
                .iter()
                .map(|&v| v + (next() as f32 / u64::MAX as f32 - 0.5) * 0.01)
                .collect();
            (name.to_owned(), Tensor::from_vec(tensor.shape().to_vec(), data))
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let shards: usize = args.get("--shards", 16);
    let scale: f64 = args.get("--scale", 0.001);
    let seed: u64 = args.get("--seed", 7);
    let clients_list: Vec<usize> = args
        .get("--clients", "100,1000,10000".to_string())
        .split(',')
        .map(|v| v.trim().parse().expect("--clients expects N,N,..."))
        .collect();

    let base = ModelSpec::alexnet().instantiate_scaled(seed, scale);
    let params = base.total_elements();
    let update_wire_bytes = base.to_bytes().len();

    // The downlink leg: encode the "global" once, as the engine would
    // each round, and report what the broadcast fan-out saves.
    let downlink = Downlink::new(
        DownlinkMode::Compressed,
        Some(FedSzConfig { threshold: 128, lossy: LossyKind::Sz2, ..FedSzConfig::default() }),
    );
    let payload = downlink.encode(&base, None, 1);

    let mut points = Vec::new();
    for &clients in &clients_list {
        let weight_of = |client: usize| 1.0 + (client % 7) as f64;
        let make = |client: usize| (synth_update(&base, client, seed), weight_of(client));

        // Flat reference: one serial exact merge in client-id order.
        let t_flat = Instant::now();
        let mut flat = PartialSum::new();
        for client in 0..clients {
            let (dict, weight) = make(client);
            flat.accumulate(&dict, weight);
        }
        let flat_global = flat.finish().expect("non-empty cohort");
        let flat_ms = t_flat.elapsed().as_secs_f64() * 1e3;
        let flat_ingress = clients * update_wire_bytes;

        // Sharded tree, streamed: parallel edge merges, one update in
        // memory per worker.
        let plan = ShardPlan::new(clients, shards);
        let mut tree = ShardedTree::new(plan, None);
        let t_tree = Instant::now();
        let outcome = tree.aggregate_streamed(0, &make).expect("non-empty cohort");
        let tree_ms = t_tree.elapsed().as_secs_f64() * 1e3;

        let parity = outcome.global.to_bytes() == flat_global.to_bytes();
        assert!(parity, "sharded tree diverged from the flat reference at {clients} clients");
        let reduction = flat_ingress as f64 / outcome.root_ingress_bytes.max(1) as f64;

        eprintln!(
            "{clients} clients / {} shards: flat {flat_ms:.0} ms, tree {tree_ms:.0} ms, \
             ingress {flat_ingress} -> {} ({reduction:.1}x)",
            plan.shards(),
            outcome.root_ingress_bytes
        );
        points.push(format!(
            concat!(
                "  {{\"clients\": {}, \"shards\": {}, \"params\": {}, \"worker_threads\": {}, ",
                "\"flat_ms\": {:.1}, \"tree_ms\": {:.1}, \"merge_speedup\": {:.2}, ",
                "\"flat_root_ingress_bytes\": {}, \"tree_root_ingress_bytes\": {}, ",
                "\"ingress_reduction\": {:.2}, \"fan_in\": {}, ",
                "\"downlink_ratio\": {:.2}, \"downlink_raw_bytes\": {}, ",
                "\"downlink_encoded_bytes\": {}, \"parity\": {}}}"
            ),
            clients,
            plan.shards(),
            params,
            std::thread::available_parallelism().map_or(1, usize::from),
            flat_ms,
            tree_ms,
            flat_ms / tree_ms.max(1e-9),
            flat_ingress,
            outcome.root_ingress_bytes,
            reduction,
            plan.shards(),
            payload.ratio(),
            payload.raw_bytes,
            payload.bytes.len(),
            parity,
        ));
    }
    println!("[\n{}\n]", points.join(",\n"));
}
