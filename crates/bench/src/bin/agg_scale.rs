//! Scale study of the hierarchical aggregation tree: 10^2 → 10^6
//! clients at depths 2 → 4.
//!
//! The paper's Fig. 9 stops at 127 clients because the flat server
//! merges one `O(clients · params)` serial loop behind one serialized
//! link. This bench sweeps client counts four orders of magnitude past
//! that and, per point, sweeps the tree depth, comparing:
//!
//! * flat aggregation (one serial exact merge in client-id order) vs
//!   the tree (leaf merges spread across a worker pool, streamed so
//!   peak memory is one update *per worker thread*, not `N` — the
//!   cohort is synthesized in place into per-worker scratch dicts, so
//!   a 10^6-client point costs the same resident memory as a
//!   10^2-client one),
//! * per-level ingress bytes: `N` serialized updates at the flat root
//!   vs partial-sum frames climbing the hierarchy — with the lossless
//!   psum codec on, so the frames ship compressed,
//! * the break-even arithmetic from `agg::shard`'s docs: with raw
//!   `f32` uploads of `U` bytes and frames of `2·U/ratio` bytes, root
//!   ingress shrinks by `fan-in · ratio / 2` — the bench asserts the
//!   measured reduction tracks that closed form (so the "fan-in must
//!   exceed `2/ratio`" break-even claim stays an invariant, not a
//!   footnote),
//! * a bit-parity check: every tree's global model must equal the flat
//!   reference byte for byte, lossless frames included.
//!
//! Client updates are synthesized (base model + deterministic
//! per-client perturbation) instead of trained — aggregation
//! throughput is the quantity under study, and training 10^6 clients
//! would drown it.
//!
//! Output is JSON (one array of sweep points) for CI and plotting.
//! Flags: `--clients 100,1000,10000` (sweep list; points at 10^5–10^6
//! are practical because of the streaming generator), `--shards N`
//! (leaf aggregator count, default 16), `--depths 2,3,4` (tree depths
//! to sweep), `--threads N` (merge worker pool width, default the
//! host's available parallelism), `--psum lossless|raw` (frame codec,
//! default lossless), `--scale F` (model-size fraction, default
//! 0.001), `--seed N`, `--min-speedup F` (assert `merge_speedup >= F`
//! on every point — the CI perf gate; omitted means no assertion),
//! `--out PATH` (stable-schema JSON report the repo tracks across PRs,
//! default `BENCH_agg_scale.json`; `-` disables the file), `--trace
//! FILE` (Chrome-trace JSONL of the sweep's `merge.level` spans and
//! pool counters, same `fedsz.trace.v1` schema the CLI emits — open it
//! in `about://tracing` to see where a slow point spends its merge
//! time).
//!
//! `merge_speedup` tracks `--threads` (each leaf merges on a pool
//! worker); the JSON carries `worker_threads` so a single-core CI
//! runner's ~1x reads as expected, not as a regression. The byte
//! reductions and the parity bit are hardware-independent.

use fedsz::{FedSzConfig, LossyKind};
use fedsz_bench::Args;
use fedsz_fl::agg::{Downlink, DownlinkMode, PartialSum, PsumMode, ShardedTree, TreePlan};
use fedsz_nn::models::specs::ModelSpec;
use fedsz_nn::StateDict;
use std::time::Instant;

/// Deterministic per-client perturbation of the base model (splitmix64
/// stream keyed by client id), standing in for one round of local SGD.
/// Written *into* `scratch` so the sweep's streaming paths synthesize
/// every client into one reused per-worker dict — zero allocations per
/// client, and peak update memory is one dict per worker thread.
fn synth_update_into(base: &StateDict, scratch: &mut StateDict, client: usize, seed: u64) {
    let mut state = seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for (name, tensor) in base.iter() {
        let out = scratch.get_mut(name).expect("scratch is a clone of base");
        for (dst, &v) in out.data_mut().iter_mut().zip(tensor.data()) {
            *dst = v + (next() as f32 / u64::MAX as f32 - 0.5) * 0.01;
        }
    }
}

/// Splits `leaves` into `levels` fan-out factors, each as close to the
/// geometric mean as its divisors allow (root downward; the last level
/// absorbs the remainder so the product is exactly `leaves`). Divisors
/// are enumerated in complement pairs up to `√rest`, so a level costs
/// `O(√rest)` instead of the old `O(rest)` trial division — the
/// difference between microseconds and minutes once shard counts reach
/// the 10^5–10^6 sweep's scale.
fn fanouts_for(leaves: usize, levels: usize) -> Vec<usize> {
    let mut fanouts = Vec::with_capacity(levels);
    let mut rest = leaves;
    for remaining in (1..=levels).rev() {
        if remaining == 1 {
            fanouts.push(rest);
            break;
        }
        let target = (rest as f64).powf(1.0 / remaining as f64);
        let mut best = 1usize;
        let mut best_gap = f64::INFINITY;
        let mut consider = |d: usize| {
            let gap = (d as f64 - target).abs();
            // Strict `<` keeps the old full-scan tie-break (smallest
            // divisor wins a tie) as long as candidates arrive in
            // ascending order — see the loop below.
            if gap < best_gap {
                best = d;
                best_gap = gap;
            }
        };
        // Ascending low divisors, then ascending high complements:
        // every candidate ≤ √rest before any > √rest, and each half is
        // itself ascending, so ties resolve exactly as the old
        // smallest-first scan did.
        let mut high = Vec::new();
        let mut d = 1usize;
        while d * d <= rest {
            if rest.is_multiple_of(d) {
                consider(d);
                if d != rest / d {
                    high.push(rest / d);
                }
            }
            d += 1;
        }
        for d in high.into_iter().rev() {
            consider(d);
        }
        fanouts.push(best);
        rest /= best;
    }
    fanouts
}

fn main() {
    let args = Args::parse();
    let shards: usize = args.get("--shards", 16);
    let scale: f64 = args.get("--scale", 0.001);
    let seed: u64 = args.get("--seed", 7);
    let threads: usize =
        args.get("--threads", std::thread::available_parallelism().map_or(1, usize::from)).max(1);
    let min_speedup: Option<f64> =
        args.has("--min-speedup").then(|| args.get("--min-speedup", 1.0));
    let clients_list: Vec<usize> = args
        .get("--clients", "100,1000,10000".to_string())
        .split(',')
        .map(|v| v.trim().parse().expect("--clients expects N,N,..."))
        .collect();
    let depths: Vec<usize> = args
        .get("--depths", "2,3,4".to_string())
        .split(',')
        .map(|v| {
            let d: usize = v.trim().parse().expect("--depths expects D,D,...");
            assert!(d >= 2, "a tree is at least depth 2 (root + leaves)");
            d
        })
        .collect();
    let psum = match args.get("--psum", "lossless".to_string()).as_str() {
        "lossless" => PsumMode::Lossless,
        "raw" => PsumMode::Raw,
        other => panic!("--psum expects lossless or raw, got `{other}`"),
    };
    // Tracing is observation only: the sweep's merges, parity checks
    // and reported numbers are identical with or without it.
    let telemetry = if args.has("--trace") {
        let path: String = args.get("--trace", String::new());
        fedsz_telemetry::Telemetry::with_trace(std::path::Path::new(&path))
            .unwrap_or_else(|e| panic!("cannot open trace file {path}: {e}"))
    } else {
        fedsz_telemetry::Telemetry::disabled()
    };

    let base = ModelSpec::alexnet().instantiate_scaled(seed, scale);
    let params = base.total_elements();
    let update_wire_bytes = base.to_bytes().len();
    // Streaming peak: each pool worker owns one scratch update; the
    // cohort never materializes. (The flat reference uses one.)
    let peak_update_mem_bytes = threads * base.byte_size();

    // The downlink leg: encode the "global" once, as the engine would
    // each round, and report what the broadcast fan-out saves.
    let downlink = Downlink::new(
        DownlinkMode::Compressed,
        Some(FedSzConfig { threshold: 128, lossy: LossyKind::Sz2, ..FedSzConfig::default() }),
    );
    let payload = downlink.encode(&base, None, 1);

    let mut points = Vec::new();
    for &clients in &clients_list {
        let weight_of = |client: usize| 1.0 + (client % 7) as f64;

        // Flat reference: one serial exact merge in client-id order,
        // synthesized through a single reused scratch dict.
        let t_flat = Instant::now();
        let mut flat = PartialSum::new();
        let mut scratch = base.clone();
        for client in 0..clients {
            synth_update_into(&base, &mut scratch, client, seed);
            flat.accumulate(&scratch, weight_of(client));
        }
        let flat_global = flat.finish().expect("non-empty cohort");
        let flat_ms = t_flat.elapsed().as_secs_f64() * 1e3;
        let flat_ingress = clients * update_wire_bytes;
        drop(scratch);

        for &depth in &depths {
            let fanouts = fanouts_for(shards, depth - 1);
            let plan = TreePlan::new(clients, fanouts.clone());
            let root_children = plan.nodes_at(1);
            let mut tree = ShardedTree::new(plan, None, psum)
                .with_threads(threads)
                .with_telemetry(telemetry.clone());
            let point_span = telemetry.span_with(
                "bench.point",
                &[
                    ("clients", fedsz_telemetry::Value::U64(clients as u64)),
                    ("depth", fedsz_telemetry::Value::U64(depth as u64)),
                ],
            );
            let t_tree = Instant::now();
            let outcome = tree
                .aggregate_streamed_with(
                    0,
                    || base.clone(),
                    |client, scratch: &mut StateDict| {
                        synth_update_into(&base, scratch, client, seed);
                        (&*scratch, weight_of(client))
                    },
                )
                .expect("non-empty cohort");
            let tree_ms = t_tree.elapsed().as_secs_f64() * 1e3;
            drop(point_span);
            let merge_speedup = flat_ms / tree_ms.max(1e-9);

            let parity = outcome.global.to_bytes() == flat_global.to_bytes();
            assert!(parity, "depth-{depth} tree diverged from flat at {clients} clients");
            if let Some(floor) = min_speedup {
                assert!(
                    merge_speedup >= floor,
                    "merge_speedup {merge_speedup:.2} below the --min-speedup {floor:.2} floor \
                     at {clients} clients depth {depth} ({threads} threads)"
                );
            }
            let reduction = flat_ingress as f64 / outcome.root_ingress_bytes.max(1) as f64;
            let psum_ratio = outcome.psum_ratio();

            // The break-even claim from agg::shard's docs, measured
            // with the codec on: raw f32 uploads carry ~4 B/element,
            // frames ~8 B/element over the lossless ratio, so the
            // root-ingress reduction must track fan-in · ratio / 2
            // (headers and entry names smear it by a few percent).
            let fan_in = clients as f64 / root_children as f64;
            let predicted = fan_in * psum_ratio / 2.0;
            assert!(
                (reduction / predicted - 1.0).abs() < 0.2,
                "reduction {reduction:.2}x strays from the fan-in·ratio/2 closed form \
                 ({predicted:.2}x) at {clients} clients depth {depth}"
            );
            assert!(
                psum != PsumMode::Lossless || psum_ratio > 1.2,
                "lossless psum ratio {psum_ratio:.2} below the 1.2x floor"
            );

            let level_ingress = outcome
                .level_ingress_bytes
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            eprintln!(
                "{clients} clients / depth {depth} ({}): flat {flat_ms:.0} ms, tree {tree_ms:.0} ms, \
                 ingress {flat_ingress} -> {} ({reduction:.1}x, psum {psum_ratio:.2}x)",
                fanouts.iter().map(usize::to_string).collect::<Vec<_>>().join("x"),
                outcome.root_ingress_bytes
            );
            points.push(format!(
                concat!(
                    "  {{\"clients\": {}, \"depth\": {}, \"fanouts\": \"{}\", \"params\": {}, ",
                    "\"worker_threads\": {}, \"peak_update_mem_bytes\": {}, ",
                    "\"flat_ms\": {:.1}, \"tree_ms\": {:.1}, \"merge_speedup\": {:.2}, ",
                    "\"flat_root_ingress_bytes\": {}, \"tree_root_ingress_bytes\": {}, ",
                    "\"level_ingress_bytes\": [{}], ",
                    "\"ingress_reduction\": {:.2}, \"fan_in\": {:.1}, ",
                    "\"psum_mode\": \"{}\", \"psum_ratio\": {:.3}, ",
                    "\"downlink_ratio\": {:.2}, \"downlink_raw_bytes\": {}, ",
                    "\"downlink_encoded_bytes\": {}, \"parity\": {}}}"
                ),
                clients,
                depth,
                fanouts.iter().map(usize::to_string).collect::<Vec<_>>().join("x"),
                params,
                threads,
                peak_update_mem_bytes,
                flat_ms,
                tree_ms,
                merge_speedup,
                flat_ingress,
                outcome.root_ingress_bytes,
                level_ingress,
                reduction,
                fan_in,
                psum.name(),
                psum_ratio,
                payload.ratio(),
                payload.raw_bytes,
                payload.bytes.len(),
                parity,
            ));
        }
    }
    let body = points.join(",\n");
    println!("[\n{body}\n]");
    // The perf-trajectory file: same points, wrapped in a stable
    // versioned schema so PR-over-PR diffs stay meaningful.
    let out_path: String = args.get("--out", "BENCH_agg_scale.json".to_string());
    if out_path != "-" {
        let wrapped = format!(
            "{{\n\"schema\": \"fedsz.agg_scale.v2\",\n\"schema_version\": 2,\n\"points\": [\n{body}\n]\n}}\n"
        );
        std::fs::write(&out_path, wrapped).expect("write --out report");
        eprintln!("wrote {out_path}");
    }
    telemetry.flush();
}
