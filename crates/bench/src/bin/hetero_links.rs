//! Heterogeneous-link and asynchronous-aggregation study on the round
//! engine (an extension beyond the paper's single shared 10 Mbps pipe).
//!
//! Runs the same federated session three ways — shared pipe, per-client
//! dedicated links with one straggler, and FedBuff-style buffered
//! aggregation over the same links — and prints per-round accuracy,
//! virtual comm time and virtual round-completion time side by side.
//!
//! Flags: `--clients N` (default 4), `--rounds N` (default 4),
//! `--straggler-slowdown F` (default 25).

use fedsz_bench::{print_table, Args};
use fedsz_data::DatasetKind;
use fedsz_fl::{AggregationPolicy, Experiment, FlConfig, LinkProfile, RoundMetrics};
use fedsz_nn::models::tiny::TinyArch;

fn base_config(clients: usize, rounds: usize) -> FlConfig {
    FlConfig::builder()
        .arch(TinyArch::AlexNet)
        .dataset(DatasetKind::Cifar10Like)
        .clients(clients)
        .rounds(rounds)
        .train_per_class(8)
        .test_per_class(4)
        .build()
}

fn hetero_links(clients: usize, slowdown: f64) -> Vec<LinkProfile> {
    (0..clients)
        .map(|id| {
            if id == clients - 1 {
                // The straggler: slow uplink, slow hardware.
                LinkProfile::symmetric(1e6).with_slowdown(slowdown)
            } else {
                LinkProfile::symmetric(50e6)
            }
        })
        .collect()
}

fn summarize(label: &str, metrics: &[RoundMetrics]) -> Vec<String> {
    let last = metrics.last().expect("at least one round");
    let comm: f64 = metrics.iter().map(|m| m.comm_secs).sum();
    let round: f64 = metrics.iter().map(|m| m.round_secs).sum();
    let stale: usize = metrics.iter().map(|m| m.stale_updates).sum();
    vec![
        label.to_string(),
        format!("{:.1}", last.test_accuracy * 100.0),
        format!("{comm:.3}"),
        format!("{round:.3}"),
        format!("{stale}"),
    ]
}

fn main() {
    let args = Args::parse();
    let clients: usize = args.get("--clients", 4);
    let rounds: usize = args.get("--rounds", 4);
    let slowdown: f64 = args.get("--straggler-slowdown", 25.0);

    let shared = base_config(clients, rounds);
    let mut dedicated = shared.clone();
    dedicated.links = Some(hetero_links(clients, slowdown));
    let mut buffered = dedicated.clone();
    buffered.aggregation = AggregationPolicy::Buffered { target: clients.saturating_sub(1).max(1) };

    let rows = vec![
        summarize("shared 10 Mbps pipe", &Experiment::new(shared).run()),
        summarize("dedicated links + straggler", &Experiment::new(dedicated).run()),
        summarize("buffered async (K = N-1)", &Experiment::new(buffered).run()),
    ];
    print_table(
        "Heterogeneous links and buffered-asynchronous aggregation",
        &["Scenario", "Final acc %", "Comm (s)", "Virtual time (s)", "Stale applied"],
        &rows,
    );
    println!(
        "\nDedicated links overlap transfers (comm = slowest link, not the sum); the \
         buffered policy stops waiting for the straggler, shrinking virtual round time \
         while its updates still arrive one round late."
    );
}
