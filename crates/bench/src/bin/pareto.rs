//! Accuracy / uplink-bytes / round-time Pareto sweep across the
//! uplink codec families.
//!
//! One training run per family on the same seed, data shards and
//! schedule — the only thing that varies is the uplink
//! [`StagePolicy`], so every difference in the table is attributable
//! to the codec:
//!
//! * `raw` — uncompressed f32 uploads (the accuracy/byte ceiling),
//! * `sz3` — the paper's error-bounded FedSZ pipeline (SZ3, REL 1e-2),
//! * `topk` / `topk+ef` — Top-K sparsified deltas, without and with
//!   the error-feedback residual (the pair shows what EF buys),
//! * `q8` — 8-bit linear quantization,
//! * `q4s+ef` — 4-bit stochastic quantization with error feedback,
//! * `auto` — the Eqn-1 advisor picking per client per round among
//!   {sz3, topk, q8}; its per-family decision counts ride along so
//!   the JSON shows *what* the advisor chose, not just what it cost.
//!
//! The headline gate (asserted unless `--no-gate`): `topk+ef` stays
//! within one accuracy point of `raw` while shipping at most 10% of
//! raw's uplink bytes. That is the FedSparQ-style claim this repo's
//! family codecs exist to reproduce, so it is an invariant here, not
//! a plot caption.
//!
//! Flags: `--rounds N` (default 20 — error feedback needs a horizon
//! to drain its residual), `--clients N` (default 4),
//! `--train-per-class N` (default 20, so the test split is 100
//! samples and a one-point accuracy gap is resolvable), `--seed N`,
//! `--bandwidth BPS` (shared uplink pipe, default 10 Mbps — makes
//! `round_secs` reward small payloads), `--topk RATIO` (default
//! 0.07 ≈ 9% of raw bytes after sparse-index overhead), `--no-gate`
//! (skip
//! the accuracy/bytes gate; the CI micro-sweep runs 2 rounds, too few
//! for the gate to be meaningful), `--out PATH` (stable-schema JSON
//! the repo tracks across PRs, default `BENCH_pareto.json`; `-`
//! disables the file), and `--dp-clip F` / `--dp-noise F` (default
//! off): clip+noise every client delta before the codec, re-running
//! the whole family sweep under the paper's §VII-D
//! compression-of-noised-updates regime — pair with `--no-gate`,
//! since the topk+ef gate calibrates against noise-free training.
//!
//! Output rows carry `on_frontier`: true when no other family got
//! both more accuracy and fewer uplink bytes — the Pareto frontier
//! over the (bytes, accuracy) plane.

use fedsz::timing::Eqn1Leg;
use fedsz::{ErrorBound, FedSzConfig, LossyKind};
use fedsz_bench::Args;
use fedsz_data::DatasetKind;
use fedsz_fl::plan::StagePolicy;
use fedsz_fl::{DpMechanism, DpPolicy, Experiment, FlConfig, RoundMetrics};
use fedsz_nn::models::tiny::TinyArch;
use std::collections::BTreeMap;

/// One family's sweep outcome, ready for JSON.
struct Row {
    name: &'static str,
    spec: String,
    final_accuracy: f64,
    best_accuracy: f64,
    uplink_bytes_per_round: f64,
    round_secs_mean: f64,
    compress_secs_mean: f64,
    decision_families: BTreeMap<&'static str, usize>,
    on_frontier: bool,
}

fn run_family(
    name: &'static str,
    spec: &str,
    uplink: Option<StagePolicy>,
    compression: Option<FedSzConfig>,
    args: &SweepArgs,
) -> Row {
    let mut config = FlConfig::paper_default(TinyArch::AlexNet, DatasetKind::Cifar10Like);
    config.rounds = args.rounds;
    config.clients = args.clients;
    config.seed = args.seed;
    config.data.seed = args.seed;
    config.data.train_per_class = args.train_per_class;
    config.data.test_per_class = (args.train_per_class / 2).max(2);
    config.bandwidth_bps = Some(args.bandwidth);
    config.compression = compression;
    config.uplink = uplink;
    if args.dp_clip > 0.0 {
        config.dp = Some(DpPolicy {
            clip_norm: args.dp_clip,
            noise_multiplier: args.dp_noise,
            mechanism: DpMechanism::Gaussian,
            seed: args.seed,
        });
    }

    let metrics: Vec<RoundMetrics> = Experiment::new(config).run();
    let rounds = metrics.len().max(1) as f64;
    let mut decision_families: BTreeMap<&'static str, usize> = BTreeMap::new();
    for m in &metrics {
        for d in &m.eqn1 {
            if d.leg == Eqn1Leg::Uplink {
                *decision_families.entry(d.family).or_insert(0) += 1;
            }
        }
    }
    Row {
        name,
        spec: spec.to_string(),
        final_accuracy: metrics.last().map_or(0.0, |m| m.test_accuracy),
        best_accuracy: metrics.iter().map(|m| m.test_accuracy).fold(0.0f64, f64::max),
        uplink_bytes_per_round: metrics.iter().map(|m| m.upstream_bytes as f64).sum::<f64>()
            / rounds,
        round_secs_mean: metrics.iter().map(|m| m.round_secs).sum::<f64>() / rounds,
        compress_secs_mean: metrics.iter().map(|m| m.compress_secs).sum::<f64>() / rounds,
        decision_families,
        on_frontier: false,
    }
}

struct SweepArgs {
    rounds: usize,
    clients: usize,
    train_per_class: usize,
    seed: u64,
    bandwidth: f64,
    dp_clip: f64,
    dp_noise: f64,
}

fn main() {
    let args = Args::parse();
    let sweep = SweepArgs {
        rounds: args.get("--rounds", 20),
        clients: args.get("--clients", 4),
        train_per_class: args.get("--train-per-class", 20),
        seed: args.get("--seed", 42),
        bandwidth: args.get("--bandwidth", 10e6),
        dp_clip: args.get("--dp-clip", 0.0),
        dp_noise: args.get("--dp-noise", 0.0),
    };
    let topk_ratio: f64 = args.get("--topk", 0.07);
    let gate = !args.has("--no-gate");

    let sz3 = FedSzConfig {
        lossy: LossyKind::Sz3,
        threshold: 128,
        error_bound: ErrorBound::Relative(1e-2),
        ..FedSzConfig::default()
    };
    let sweeps: Vec<(&'static str, String, Option<StagePolicy>, Option<FedSzConfig>)> = vec![
        ("raw", "raw".into(), Some(StagePolicy::Raw), None),
        ("sz3", "lossy (SZ3, REL 1e-2)".into(), Some(StagePolicy::Lossy(sz3)), Some(sz3)),
        (
            "topk",
            format!("topk:{topk_ratio}"),
            Some(StagePolicy::TopK { ratio: topk_ratio, error_feedback: false }),
            None,
        ),
        (
            "topk+ef",
            format!("topk:{topk_ratio}+ef"),
            Some(StagePolicy::TopK { ratio: topk_ratio, error_feedback: true }),
            None,
        ),
        (
            "q8",
            "q8".into(),
            Some(StagePolicy::Quant { bits: 8, stochastic: false, error_feedback: false }),
            None,
        ),
        (
            "q4s+ef",
            "q4s+ef".into(),
            Some(StagePolicy::Quant { bits: 4, stochastic: true, error_feedback: true }),
            None,
        ),
        (
            "auto",
            "auto {sz3, topk, q8}".into(),
            Some(StagePolicy::AutoFamily {
                candidates: vec![
                    StagePolicy::Lossy(sz3),
                    StagePolicy::TopK { ratio: topk_ratio, error_feedback: false },
                    StagePolicy::Quant { bits: 8, stochastic: false, error_feedback: false },
                ],
            }),
            Some(sz3),
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, spec, uplink, compression) in sweeps {
        let row = run_family(name, &spec, uplink, compression, &sweep);
        eprintln!(
            "{name:>8}: best acc {:.3}, final acc {:.3}, {:.0} B/round uplink, \
             round {:.3}s",
            row.best_accuracy, row.final_accuracy, row.uplink_bytes_per_round, row.round_secs_mean
        );
        rows.push(row);
    }

    // Pareto frontier over (uplink bytes, best accuracy): a row stays
    // on the frontier unless some other row beats it on one axis
    // without losing the other.
    for i in 0..rows.len() {
        let dominated = rows.iter().enumerate().any(|(j, other)| {
            j != i
                && other.uplink_bytes_per_round <= rows[i].uplink_bytes_per_round
                && other.best_accuracy >= rows[i].best_accuracy
                && (other.uplink_bytes_per_round < rows[i].uplink_bytes_per_round
                    || other.best_accuracy > rows[i].best_accuracy)
        });
        rows[i].on_frontier = !dominated;
    }

    let raw_bytes = rows[0].uplink_bytes_per_round;
    let raw_acc = rows[0].best_accuracy;
    let topk_ef = rows.iter().find(|r| r.name == "topk+ef").expect("topk+ef is swept");
    let acc_gap = raw_acc - topk_ef.best_accuracy;
    let bytes_fraction = topk_ef.uplink_bytes_per_round / raw_bytes.max(1.0);
    eprintln!(
        "gate: topk+ef accuracy gap {acc_gap:.4} (limit 0.01), uplink bytes \
         {:.1}% of raw (limit 10%)",
        bytes_fraction * 100.0
    );
    if gate {
        assert!(
            acc_gap <= 0.01,
            "topk+ef best accuracy {:.4} fell more than one point below raw {raw_acc:.4}",
            topk_ef.best_accuracy
        );
        assert!(
            bytes_fraction <= 0.10,
            "topk+ef shipped {:.1}% of raw uplink bytes — above the 10% ceiling",
            bytes_fraction * 100.0
        );
    }

    let body = rows
        .iter()
        .map(|r| {
            let decisions = r
                .decision_families
                .iter()
                .map(|(family, count)| format!("\"{family}\": {count}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                concat!(
                    "  {{\"family\": \"{}\", \"spec\": \"{}\", ",
                    "\"final_accuracy\": {:.4}, \"best_accuracy\": {:.4}, ",
                    "\"uplink_bytes_per_round\": {:.0}, \"bytes_vs_raw\": {:.4}, ",
                    "\"round_secs_mean\": {:.4}, \"compress_secs_mean\": {:.6}, ",
                    "\"eqn1_uplink_decisions\": {{{}}}, \"on_frontier\": {}}}"
                ),
                r.name,
                r.spec,
                r.final_accuracy,
                r.best_accuracy,
                r.uplink_bytes_per_round,
                r.uplink_bytes_per_round / raw_bytes.max(1.0),
                r.round_secs_mean,
                r.compress_secs_mean,
                decisions,
                r.on_frontier,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let wrapped = format!(
        concat!(
            "{{\n\"schema\": \"fedsz.pareto.v1\",\n\"schema_version\": 1,\n",
            "\"rounds\": {},\n\"clients\": {},\n\"bandwidth_bps\": {:.0},\n",
            "\"gate\": {{\"enforced\": {}, \"topk_ef_accuracy_gap\": {:.4}, ",
            "\"topk_ef_bytes_vs_raw\": {:.4}}},\n\"families\": [\n{}\n]\n}}\n"
        ),
        sweep.rounds, sweep.clients, sweep.bandwidth, gate, acc_gap, bytes_fraction, body
    );
    println!("{wrapped}");
    let out_path: String = args.get("--out", "BENCH_pareto.json".to_string());
    if out_path != "-" {
        std::fs::write(&out_path, &wrapped).expect("write --out report");
        eprintln!("wrote {out_path}");
    }
}
