//! Ablation: Blosc's byte-shuffle filter.
//!
//! Table II's blosc-lz wins hinge on shuffling float bytes so exponent
//! bytes become long compressible runs. This bench compares blosc-lz
//! with and without the shuffle on model metadata and on weight bytes.

use fedsz_bench::{lossless_partition_bytes, lossy_partition_values, print_table, timed, Args};
use fedsz_lossless::{BloscLz, Lossless};
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    // Metadata is tiny, so take it from full-size models (all three,
    // as in Table II); weights are sampled by --scale.
    let mut metadata = Vec::new();
    for spec in ModelSpec::all() {
        metadata.extend(lossless_partition_bytes(&spec.instantiate_scaled(42, 1.0), 1000));
    }
    let dict = ModelSpec::alexnet().instantiate_scaled(42, scale);
    let weights: Vec<u8> =
        lossy_partition_values(&dict, 1000).iter().flat_map(|v| v.to_le_bytes()).collect();

    let mut rows = Vec::new();
    for (label, data) in [("metadata bytes", &metadata), ("weight bytes", &weights)] {
        for (variant, codec) in
            [("shuffle (4B)", BloscLz::new()), ("no shuffle", BloscLz::without_shuffle())]
        {
            let (packed, secs) = timed(|| codec.compress(data));
            assert_eq!(codec.decompress(&packed).unwrap(), *data);
            rows.push(vec![
                label.to_string(),
                variant.to_string(),
                format!("{:.3}", data.len() as f64 / packed.len() as f64),
                format!("{:.1}", data.len() as f64 / 1e6 / secs),
            ]);
        }
    }
    print_table("Ablation: blosc-lz byte shuffle", &["Data", "Variant", "Ratio", "MB/s"], &rows);
    println!("\nExpected shape: the shuffle buys most of blosc-lz's ratio on float");
    println!("data (exponent bytes group into runs); without it the LZ stage finds");
    println!("almost nothing in high-entropy mantissas.");
}
