//! Table III: model statistics (parameters, size, % lossy data, FLOPs).
//!
//! Reads everything off the full-size model specs and the Algorithm 1
//! partition rule — no sampling or training involved.

use fedsz::partition;
use fedsz_bench::print_table;
use fedsz_nn::models::specs::ModelSpec;

fn main() {
    let mut rows = Vec::new();
    for spec in ModelSpec::all() {
        let dict = spec.instantiate(42);
        let report = partition::report(&dict, partition::DEFAULT_THRESHOLD);
        rows.push(vec![
            spec.name().to_string(),
            format!("{:.1e}", spec.parameter_count() as f64),
            format!("{} MB", spec.byte_size() / 1_000_000),
            format!("{:.2}%", report.lossy_fraction() * 100.0),
            format!("{:.2} G", spec.flops() as f64 / 1e9),
        ]);
    }
    print_table(
        "Table III: DNNs for FedSZ profiling",
        &["Model", "Parameters", "Size", "% Lossy Data", "FLOPs"],
        &rows,
    );
    println!("\nPaper reference: MobileNet-V2 3.5e6 / 14MB / 96.94%; ResNet50 4.5e7 /");
    println!("180MB / 99.47%; AlexNet 6.0e7 / 230MB / 99.98%.");
    println!("Deviation: torchvision ResNet50 is actually 25.6M params (102 MB); the");
    println!("paper's 45M/180MB row does not match any standard ResNet50 build.");
}
