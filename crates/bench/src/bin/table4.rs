//! Table IV: dataset characteristics.
//!
//! Reports the paper's reference characteristics for each dataset family
//! alongside the synthetic stand-in geometry this reproduction trains on.

use fedsz_bench::print_table;
use fedsz_data::{DatasetKind, SyntheticConfig};

fn main() {
    let cfg = SyntheticConfig::default();
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let (samples, dim, classes) = kind.paper_characteristics();
        let (train, test) = kind.generate(&cfg);
        rows.push(vec![
            kind.name().to_string(),
            format!("{samples}"),
            format!("{dim} x {dim}"),
            format!("{classes}"),
            format!("{} / {}", train.len(), test.len()),
            format!("{0} x {0} x {1}", cfg.resolution, kind.channels()),
        ]);
    }
    print_table(
        "Table IV: dataset characteristics (paper reference vs synthetic stand-in)",
        &[
            "Dataset",
            "# Samples (paper)",
            "Input Dim (paper)",
            "Classes",
            "Synthetic train/test",
            "Synthetic dims",
        ],
        &rows,
    );
    println!("\nThe synthetic datasets keep channel and class structure; resolution and");
    println!("sample counts are CPU-scale (see DESIGN.md substitution table).");
}
