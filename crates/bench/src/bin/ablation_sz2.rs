//! Ablation: SZ2's design choices — hybrid prediction and block size.
//!
//! The paper attributes SZ2's win to its hybrid Lorenzo/regression
//! prediction. This bench isolates that choice (hybrid vs Lorenzo-only)
//! and sweeps the block size, on both spiky weight data and a smooth
//! ramp where regression should shine.

use fedsz_bench::{lossy_partition_values, print_table, timed, Args};
use fedsz_lossy::{ErrorBound, ErrorBounded, Sz2};
use fedsz_nn::models::specs::ModelSpec;

fn measure(codec: &Sz2, data: &[f32]) -> (f64, f64) {
    let (packed, secs) = timed(|| codec.compress(data, ErrorBound::Relative(1e-2)).unwrap());
    ((data.len() * 4) as f64 / packed.len() as f64, secs)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.02);
    let dict = ModelSpec::alexnet().instantiate_scaled(42, scale);
    let weights = lossy_partition_values(&dict, 1000);
    let ramp: Vec<f32> = (0..weights.len()).map(|i| 0.1 + i as f32 * 1e-5).collect();

    let mut rows = Vec::new();
    for (label, data) in [("AlexNet weights", &weights), ("smooth ramp", &ramp)] {
        for (variant, codec) in
            [("hybrid", Sz2::new()), ("lorenzo-only", Sz2::new().lorenzo_only())]
        {
            let (ratio, secs) = measure(&codec, data);
            rows.push(vec![
                label.to_string(),
                variant.to_string(),
                format!("{ratio:.3}"),
                format!("{secs:.3}"),
            ]);
        }
    }
    print_table(
        "Ablation: SZ2 predictor choice @ REL 1e-2",
        &["Data", "Predictor", "Ratio", "Time (s)"],
        &rows,
    );

    let mut rows = Vec::new();
    for block in [16usize, 64, 128, 256, 1024] {
        let codec = Sz2::with_block_size(block);
        let (ratio, secs) = measure(&codec, &weights);
        rows.push(vec![format!("{block}"), format!("{ratio:.3}"), format!("{secs:.3}")]);
    }
    print_table(
        "Ablation: SZ2 block size on AlexNet weights @ REL 1e-2",
        &["Block", "Ratio", "Time (s)"],
        &rows,
    );
    println!("\nFinding: on 1D data the regression predictor almost never pays — on");
    println!("spiky weights Lorenzo is chosen anyway (ratios within ~2%), and on a");
    println!("smooth ramp the quantizer absorbs the tiny residuals either way while");
    println!("regression pays 8 bytes/block in coefficients. This matches the paper's");
    println!("own observation that SZ2/SZ3 \"default to using a Lorenzo predictor and");
    println!("quantization when data exhibit significant variations\"; regression's");
    println!("value is a 2D/3D-block phenomenon. Larger blocks help 1D weights");
    println!("monotonically (less per-block metadata, no adaptivity to lose).");
}
