//! Loopback benchmark of the multi-process socket runtime: one
//! `NetServer` root plus N `run_worker` clients over real TCP
//! connections on `127.0.0.1`, timed wall-clock.
//!
//! The simulator *prices* communication analytically; this bench
//! measures what the real runtime costs — session setup, framing,
//! kernel socket hops, the round barrier — and pins the bit-parity
//! contract at the same time: every sweep point asserts the socket
//! run's global checksum equals the in-memory engine's for the same
//! config (the run aborts on divergence, so CI cannot silently ship a
//! runtime that drifts).
//!
//! The server side is the single-threaded poll(2) reactor: one OS
//! thread multiplexes every session, so each point also records
//! `sessions`, `server_threads` (always 1 per serve process) and
//! `sessions_per_thread` — the C10K ratio CI asserts stays above 1,
//! and the tracked ≥100-worker point demonstrates at scale.
//!
//! Flags: `--workers 2,4,100` (cohort sweep), `--rounds N` (default 2),
//! `--shards S` (adds a relay tier: S relay servers between root and
//! workers, forwarding lossless `PartialSumCompressed` frames),
//! `--train-per-class N`, `--seed N`, `--out PATH` (stable-schema JSON
//! report, default `BENCH_net_round.json`, `-` disables).
//!
//! Output: a JSON array of sweep points on stdout (matching the other
//! bench bins), plus the schema-wrapped `--out` file the repo tracks
//! across PRs.

use fedsz_bench::Args;
use fedsz_fl::net::{global_checksum, run_worker, NetServer, ServeConfig, WorkerConfig};
use fedsz_fl::{Experiment, FlConfig, PsumMode};
use std::thread;
use std::time::{Duration, Instant};

/// The bench's base configuration: the CLI smoke shape, parameterized.
fn base_config(clients: usize, rounds: usize, train_per_class: usize, seed: u64) -> FlConfig {
    FlConfig::builder()
        .data(FlConfig::smoke_test().data)
        .batch_size(8) // the smoke shape, not paper_default's 16
        .clients(clients)
        .rounds(rounds)
        .seed(seed)
        .train_per_class(train_per_class)
        .test_per_class((train_per_class / 2).max(2))
        .compression(Some(FlConfig::tiny_model_compression()))
        .build()
}

/// One loopback deployment: root (+ optional relay tier) + workers,
/// all threads, every hop a real TCP connection. Returns (checksum,
/// total wall seconds, root upstream bytes, root downstream bytes).
fn run_deployment(config: &FlConfig, shards: Option<usize>) -> (u32, f64, usize, usize) {
    let timeout = Duration::from_secs(120);
    let mut fl = config.clone();
    fl.shards = shards;
    if shards.is_some() {
        fl.psum = PsumMode::Lossless;
    }
    let t0 = Instant::now();
    let root = NetServer::bind("127.0.0.1:0").expect("bind loopback root");
    let root_addr = root.local_addr().to_string();
    let mut serve_config = ServeConfig::root(fl.clone());
    serve_config.accept_timeout = timeout;
    serve_config.round_timeout = timeout;
    let root_thread = thread::spawn(move || root.run(serve_config));

    let mut workers = Vec::new();
    let mut relays = Vec::new();
    match shards {
        None => {
            for id in 0..fl.clients {
                let worker_config = WorkerConfig::new(fl.clone(), id, root_addr.clone());
                workers.push(thread::spawn(move || run_worker(worker_config)));
            }
        }
        Some(shards) => {
            let plan = fedsz_fl::ShardPlan::new(fl.clients, shards);
            for shard in 0..plan.shards() {
                let relay = NetServer::bind("127.0.0.1:0").expect("bind loopback relay");
                let relay_addr = relay.local_addr().to_string();
                let mut relay_config =
                    ServeConfig::relay(fl.clone(), shard as u32, root_addr.clone());
                relay_config.accept_timeout = timeout;
                relay_config.round_timeout = timeout;
                relays.push(thread::spawn(move || relay.run(relay_config)));
                for id in plan.range(shard) {
                    let worker_config = WorkerConfig::new(fl.clone(), id, relay_addr.clone());
                    workers.push(thread::spawn(move || run_worker(worker_config)));
                }
            }
        }
    }
    let report = root_thread.join().expect("root thread").expect("serve succeeds");
    for relay in relays {
        relay.join().expect("relay thread").expect("relay succeeds");
    }
    for worker in workers {
        worker.join().expect("worker thread").expect("worker succeeds");
    }
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.evicted, 0, "loopback deployment must not evict anyone");
    let up: usize = report.rounds.iter().map(|r| r.upstream_bytes).sum();
    let down: usize = report.rounds.iter().map(|r| r.downstream_bytes).sum();
    (report.checksum, wall, up, down)
}

fn main() {
    let args = Args::parse();
    let rounds: usize = args.get("--rounds", 2);
    let train_per_class: usize = args.get("--train-per-class", 4);
    let seed: u64 = args.get("--seed", 9);
    let shards: usize = args.get("--shards", 0);
    let out_path: String = args.get("--out", "BENCH_net_round.json".to_string());
    let workers_list: Vec<usize> = args
        .get("--workers", "2,4,100".to_string())
        .split(',')
        .map(|v| v.trim().parse().expect("--workers expects N,N,..."))
        .collect();

    let mut points = Vec::new();
    for &clients in &workers_list {
        let config = base_config(clients, rounds, train_per_class, seed);

        // The in-memory reference the socket run must reproduce.
        let t_mem = Instant::now();
        let mut reference = Experiment::new(config.clone());
        reference.run();
        let mem_secs = t_mem.elapsed().as_secs_f64();
        let want = global_checksum(reference.global_state());

        let shard_plan = (shards > 0).then_some(shards);
        let (checksum, wall, up, down) = run_deployment(&config, shard_plan);
        assert_eq!(
            checksum, want,
            "socket runtime diverged from the in-memory engine at {clients} workers"
        );
        // The root's session count: direct worker connections when
        // flat, one relay connection per shard when sharded. Either
        // way the reactor multiplexes them on exactly one OS thread —
        // the C10K ratio the schema tracks.
        let sessions = if shards > 0 { shards } else { clients };
        let server_threads = 1usize;
        eprintln!(
            "{clients} workers{}: {rounds} rounds in {wall:.2} s (in-memory {mem_secs:.2} s), \
             root up {up} B / down {down} B, {sessions} sessions on {server_threads} thread, \
             checksum 0x{checksum:08x} (parity ok)",
            if shards > 0 { format!(" via {shards} relays") } else { String::new() },
        );
        points.push(format!(
            concat!(
                "  {{\"workers\": {}, \"rounds\": {}, \"relays\": {}, ",
                "\"wall_secs\": {:.3}, \"in_memory_secs\": {:.3}, ",
                "\"secs_per_round\": {:.3}, ",
                "\"root_upstream_bytes\": {}, \"root_downstream_bytes\": {}, ",
                "\"sessions\": {}, \"server_threads\": {}, ",
                "\"sessions_per_thread\": {:.1}, ",
                "\"checksum\": \"0x{:08x}\", \"parity\": true}}"
            ),
            clients,
            rounds,
            shards,
            wall,
            mem_secs,
            wall / rounds.max(1) as f64,
            up,
            down,
            sessions,
            server_threads,
            sessions as f64 / server_threads as f64,
            checksum,
        ));
    }
    let body = points.join(",\n");
    println!("[\n{body}\n]");
    if out_path != "-" {
        let wrapped = format!(
            "{{\n\"schema\": \"fedsz.net_round.v2\",\n\"schema_version\": 2,\n\"points\": [\n{body}\n]\n}}\n"
        );
        std::fs::write(&out_path, wrapped).expect("write --out report");
        eprintln!("wrote {out_path}");
    }
}
