//! Figure 9: weak and strong scaling at 10 Mbps.
//!
//! Weak scaling: one client per worker thread, 2..N workers. Strong
//! scaling: a fixed client population over growing worker counts (the
//! paper fixes 127 clients; default here is 31, `--clients` to change).
//! Training and compression are real; the shared 10 Mbps server link is
//! simulated. Default worker sweep stops at 16 (`--max-workers`).

use fedsz_bench::{print_table, Args};
use fedsz_fl::scaling::{run_round, ScalingConfig};

fn main() {
    let args = Args::parse();
    let max_workers: usize = args.get("--max-workers", 16);
    let strong_clients: usize = args.get("--clients", 31);
    let mut worker_counts = Vec::new();
    let mut w = 2usize;
    while w <= max_workers {
        worker_counts.push(w);
        w *= 2;
    }

    let compressed = ScalingConfig::default();
    let plain = ScalingConfig { compression: None, ..ScalingConfig::default() };

    let mut rows = Vec::new();
    for &w in &worker_counts {
        let p_fedsz = run_round(&compressed, w, w);
        let p_plain = run_round(&plain, w, w);
        rows.push(vec![
            format!("{w}"),
            format!("{:.2}", p_fedsz.epoch_secs()),
            format!("{:.2}", p_plain.epoch_secs()),
            format!("{:.2}", p_fedsz.comm_secs),
            format!("{:.2}", p_plain.comm_secs),
        ]);
    }
    print_table(
        "Figure 9a: weak scaling (one client per worker, 10 Mbps)",
        &["Workers", "FedSZ epoch (s)", "Plain epoch (s)", "FedSZ comm (s)", "Plain comm (s)"],
        &rows,
    );

    let mut rows = Vec::new();
    for &w in &worker_counts {
        let p_fedsz = run_round(&compressed, strong_clients, w);
        let p_plain = run_round(&plain, strong_clients, w);
        rows.push(vec![
            format!("{w}"),
            format!("{:.2}", p_fedsz.epoch_secs()),
            format!("{:.2}", p_plain.epoch_secs()),
            format!("{:.2}", p_fedsz.compute_secs),
        ]);
    }
    print_table(
        &format!("Figure 9b: strong scaling ({strong_clients} clients, 10 Mbps)"),
        &["Workers", "FedSZ epoch (s)", "Plain epoch (s)", "FedSZ compute (s)"],
        &rows,
    );
    println!("\nShape check vs paper: weak-scaling epoch time grows with client count");
    println!("(shared link) but FedSZ's curve is ~an order of magnitude flatter;");
    println!("strong-scaling compute time shrinks with added workers.");
}
