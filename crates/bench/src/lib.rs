//! Shared infrastructure for the table/figure regeneration binaries.
//!
//! Every table and figure of the FedSZ paper has a binary under
//! `src/bin/` (`table1` … `table5`, `fig2` … `fig10`) that prints the
//! corresponding rows/series. This module provides the tiny CLI parser,
//! ASCII table/plot rendering and timing helpers they share.
//!
//! Most binaries accept `--scale <f>` (fraction of each full-size model
//! tensor used, default 0.05 — compression ratios are per-byte
//! quantities, so a prefix sample is representative) and `--full`
//! (equivalent to `--scale 1.0`). Training-based binaries accept
//! `--rounds <n>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Minimal argument accessor over `std::env::args`.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Self { raw: std::env::args().skip(1).collect() }
    }

    /// Builds from an explicit list (for tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// Whether a bare flag is present.
    pub fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    /// Value of `--key v`, parsed, or the default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.raw.iter().position(|a| a == key) {
            Some(i) => {
                let v = self.raw.get(i + 1).unwrap_or_else(|| panic!("{key} requires a value"));
                v.parse().unwrap_or_else(|_| panic!("could not parse `{v}` for {key}"))
            }
            None => default,
        }
    }

    /// The model-scale fraction (`--full` overrides `--scale`).
    pub fn scale(&self, default: f64) -> f64 {
        if self.has("--full") {
            1.0
        } else {
            self.get("--scale", default)
        }
    }
}

/// Times a closure, returning its value and elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let value = f();
    (value, t0.elapsed().as_secs_f64())
}

/// Renders an aligned ASCII table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Prints a table with a title banner.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===\n");
    print!("{}", render_table(headers, rows));
}

/// Renders one `(x, y)` series as an ASCII bar chart (log-ish friendly:
/// bars are proportional to `y / max(y)`).
pub fn render_series(title: &str, points: &[(String, f64)]) -> String {
    let max = points.iter().map(|(_, y)| *y).fold(f64::MIN_POSITIVE, f64::max);
    let label_w = points.iter().map(|(x, _)| x.len()).max().unwrap_or(4);
    let mut out = format!("{title}\n");
    for (x, y) in points {
        let bar = "#".repeat(((y / max) * 50.0).round().max(0.0) as usize);
        out.push_str(&format!("{x:<label_w$}  {y:>12.4}  {bar}\n"));
    }
    out
}

/// Renders a normalized text histogram (Fig 3/10 style).
pub fn render_histogram(title: &str, hist: &fedsz_codec::stats::Histogram) -> String {
    let mut out = format!("{title}\n");
    let peak = (0..hist.counts.len()).map(|i| hist.density(i)).fold(f64::MIN_POSITIVE, f64::max);
    for i in 0..hist.counts.len() {
        let d = hist.density(i);
        let bar = "#".repeat(((d / peak) * 40.0).round() as usize);
        out.push_str(&format!("{:>9.4}  {d:>9.4}  {bar}\n", hist.center(i)));
    }
    out
}

/// Concatenates the lossy-partition values of a state dict (the data the
/// EBLC benchmarks compress), using the given threshold.
pub fn lossy_partition_values(dict: &fedsz_nn::StateDict, threshold: usize) -> Vec<f32> {
    let mut values = Vec::new();
    for (name, tensor) in dict.iter() {
        if fedsz::partition::is_lossy(name, tensor.len(), threshold) {
            values.extend_from_slice(tensor.data());
        }
    }
    values
}

/// Serializes the lossless-partition values of a state dict to bytes
/// (what Table II's lossless codecs compress).
pub fn lossless_partition_bytes(dict: &fedsz_nn::StateDict, threshold: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (name, tensor) in dict.iter() {
        if !fedsz::partition::is_lossy(name, tensor.len(), threshold) {
            for &v in tensor.data() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_values_and_flags() {
        let args = Args::from_vec(vec![
            "--scale".into(),
            "0.25".into(),
            "--rounds".into(),
            "7".into(),
            "--verbose".into(),
        ]);
        assert_eq!(args.get("--rounds", 10usize), 7);
        assert!((args.scale(0.05) - 0.25).abs() < 1e-12);
        assert!(args.has("--verbose"));
        assert!(!args.has("--full"));
        assert_eq!(args.get("--missing", 3usize), 3);
    }

    #[test]
    fn full_overrides_scale() {
        let args = Args::from_vec(vec!["--full".into(), "--scale".into(), "0.1".into()]);
        assert_eq!(args.scale(0.05), 1.0);
    }

    #[test]
    fn tables_align() {
        let rendered = render_table(
            &["Model", "Ratio"],
            &[vec!["AlexNet".into(), "12.61".into()], vec!["MobileNet-V2".into(), "5.39".into()]],
        );
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[2].contains("12.61"));
    }

    #[test]
    fn series_renders_bars() {
        let s = render_series("comm time", &[("10".into(), 100.0), ("100".into(), 10.0)]);
        assert!(s.contains("##"));
    }

    #[test]
    fn partition_helpers_split_consistently() {
        let dict = fedsz_nn::models::specs::ModelSpec::mobilenet_v2().instantiate_scaled(1, 0.01);
        let lossy = lossy_partition_values(&dict, 100);
        let lossless = lossless_partition_bytes(&dict, 100);
        assert_eq!(lossy.len() * 4 + lossless.len(), dict.byte_size());
    }

    #[test]
    fn timed_measures_something() {
        let (v, secs) = timed(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(secs >= 0.0);
    }
}
