//! Criterion micro-benchmarks backing Table II: lossless codec
//! throughput on model metadata bytes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedsz_bench::lossless_partition_bytes;
use fedsz_lossless::LosslessKind;
use fedsz_nn::models::specs::ModelSpec;

fn metadata_sample() -> Vec<u8> {
    let dict = ModelSpec::alexnet().instantiate_scaled(42, 1.0);
    let mut bytes = lossless_partition_bytes(&dict, 1000);
    bytes.truncate(1 << 19);
    bytes
}

fn bench_lossless(c: &mut Criterion) {
    let data = metadata_sample();
    let mut group = c.benchmark_group("lossless_compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for kind in LosslessKind::all() {
        let codec = kind.codec();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &data, |b, data| {
            b.iter(|| codec.compress(data));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lossless_decompress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for kind in LosslessKind::all() {
        let codec = kind.codec();
        let packed = codec.compress(&data);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &packed, |b, packed| {
            b.iter(|| codec.decompress(packed).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lossless);
criterion_main!(benches);
