//! Criterion benchmarks of the end-to-end FedSZ pipeline (Fig 1):
//! partition + lossy + lossless + serialization, and the reverse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedsz::{ErrorBound, FedSz, FedSzConfig};
use fedsz_nn::models::specs::ModelSpec;

fn bench_pipeline(c: &mut Criterion) {
    let dict = ModelSpec::mobilenet_v2().instantiate_scaled(42, 0.1);
    let bytes = dict.byte_size() as u64;

    let mut group = c.benchmark_group("fedsz_pipeline");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    for eb in [1e-2f64, 1e-3] {
        let fedsz = FedSz::new(FedSzConfig::default().with_error_bound(ErrorBound::Relative(eb)));
        group.bench_with_input(
            BenchmarkId::new("compress", format!("{eb:.0e}")),
            &dict,
            |b, dict| {
                b.iter(|| fedsz.compress(dict).unwrap());
            },
        );
        let packed = fedsz.compress(&dict).unwrap();
        group.bench_with_input(
            BenchmarkId::new("decompress", format!("{eb:.0e}")),
            packed.bytes(),
            |b, bytes| {
                b.iter(|| fedsz.decompress(bytes).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
