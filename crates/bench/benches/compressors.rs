//! Criterion micro-benchmarks backing Table I: EBLC compress/decompress
//! throughput on model-weight data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedsz_bench::lossy_partition_values;
use fedsz_lossy::{ErrorBound, LossyKind};
use fedsz_nn::models::specs::ModelSpec;

fn weight_sample() -> Vec<f32> {
    let dict = ModelSpec::mobilenet_v2().instantiate_scaled(42, 0.2);
    let mut w = lossy_partition_values(&dict, 1000);
    w.truncate(1 << 18); // 1 MiB of f32s keeps iterations fast
    w
}

fn bench_lossy(c: &mut Criterion) {
    let data = weight_sample();
    let bytes = (data.len() * 4) as u64;

    let mut group = c.benchmark_group("eblc_compress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    for kind in LossyKind::all() {
        let codec = kind.codec();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &data, |b, data| {
            b.iter(|| codec.compress(data, ErrorBound::Relative(1e-2)).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("eblc_decompress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    for kind in LossyKind::all() {
        let codec = kind.codec();
        let packed = codec.compress(&data, ErrorBound::Relative(1e-2)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &packed, |b, packed| {
            b.iter(|| codec.decompress(packed).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lossy);
criterion_main!(benches);
