//! Shared coding primitives for the FedSZ reproduction.
//!
//! This crate hosts the low-level machinery every compressor in the
//! workspace is built from:
//!
//! * [`bitio`] — MSB-first bit readers/writers over byte buffers,
//! * [`huffman`] — canonical Huffman coding with a compact table header,
//! * [`range`] — an adaptive binary range coder (LZMA-style),
//! * [`quantizer`] — the linear-scale error-bounded quantizer used by the
//!   SZ family of compressors,
//! * [`shuffle`] — the byte-shuffle filter used by Blosc,
//! * [`checksum`] — CRC-32 (IEEE) and Adler-32,
//! * [`varint`] — LEB128 variable-length integers and fixed-width helpers,
//! * [`stats`] — summary statistics shared by compressors and analyses.
//!
//! # Examples
//!
//! ```
//! use fedsz_codec::bitio::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_bits(0b1011, 4);
//! let bytes = w.into_bytes();
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_bits(4).unwrap(), 0b1011);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod checksum;
pub mod huffman;
pub mod quantizer;
pub mod range;
pub mod shuffle;
pub mod stats;
pub mod varint;

use std::error::Error;
use std::fmt;

/// Errors produced while decoding a compressed stream.
///
/// All decoders in the workspace return this error instead of panicking
/// when handed truncated or corrupted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the decoder finished.
    UnexpectedEof,
    /// A structural invariant of the format was violated.
    Corrupt(&'static str),
    /// A stored checksum did not match the recomputed one.
    ChecksumMismatch {
        /// The checksum recorded in the stream.
        stored: u32,
        /// The checksum recomputed over the received bytes.
        computed: u32,
    },
    /// The stream was produced by an unsupported format version.
    UnsupportedVersion(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
        }
    }
}

impl Error for CodecError {}

/// Convenience alias used across the decoder APIs in this workspace.
pub type Result<T> = std::result::Result<T, CodecError>;
