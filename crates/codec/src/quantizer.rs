//! Linear-scale error-bounded quantizer, the heart of the SZ compressors.
//!
//! Given an absolute error bound `eb`, prediction residuals are quantized
//! into bins of width `2*eb`. Reconstructing the bin center therefore
//! deviates from the true value by at most `eb`. Values whose residual
//! falls outside the quantizer's radius are flagged *unpredictable* (code
//! 0) and stored verbatim — exactly the scheme of SZ2/SZ3.

/// Result of quantizing one value against its prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quantized {
    /// In-range residual: the code to entropy-encode and the value the
    /// decoder will reconstruct (which the encoder must also use as the
    /// basis for subsequent predictions).
    Code {
        /// Huffman symbol, in `1..capacity`.
        code: u16,
        /// Value the decoder reconstructs for this element.
        reconstructed: f32,
    },
    /// Out-of-range residual: stored losslessly as the original bits.
    Unpredictable(f32),
}

/// Error-bounded linear quantizer with a fixed code capacity.
///
/// # Examples
///
/// ```
/// use fedsz_codec::quantizer::{Quantized, Quantizer};
///
/// let q = Quantizer::new(0.01);
/// match q.quantize(1.0, 1.015) {
///     Quantized::Code { reconstructed, .. } => {
///         assert!((reconstructed - 1.015).abs() <= 0.01 + 1e-6);
///     }
///     Quantized::Unpredictable(_) => unreachable!("residual is tiny"),
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    eb: f32,
    radius: i32,
}

impl Quantizer {
    /// Default code radius: codes span `1..=2*radius-1`, fitting in `u16`.
    pub const DEFAULT_RADIUS: i32 = 32_768;

    /// Creates a quantizer for absolute error bound `eb` with the default
    /// radius.
    ///
    /// # Panics
    ///
    /// Panics if `eb` is not finite and positive.
    pub fn new(eb: f32) -> Self {
        Self::with_radius(eb, Self::DEFAULT_RADIUS)
    }

    /// Creates a quantizer with an explicit radius (number of bins on each
    /// side of the zero-residual code).
    ///
    /// # Panics
    ///
    /// Panics if `eb` is not finite/positive or `radius` is not in
    /// `2..=32768`.
    pub fn with_radius(eb: f32, radius: i32) -> Self {
        assert!(eb.is_finite() && eb > 0.0, "error bound must be positive and finite");
        assert!((2..=32_768).contains(&radius), "radius must be in 2..=32768");
        Self { eb, radius }
    }

    /// The absolute error bound this quantizer enforces.
    pub fn error_bound(&self) -> f32 {
        self.eb
    }

    /// Code reserved for unpredictable values.
    pub const UNPREDICTABLE: u16 = 0;

    /// Quantizes `actual` against prediction `pred`.
    ///
    /// Returns either a code plus the exact reconstruction the decoder
    /// will produce, or [`Quantized::Unpredictable`] when the residual
    /// exceeds the representable range *or* floating-point rounding would
    /// break the bound.
    #[inline]
    pub fn quantize(&self, pred: f32, actual: f32) -> Quantized {
        let diff = f64::from(actual) - f64::from(pred);
        let bin = f64::from(self.eb) * 2.0;
        let q = (diff / bin).round();
        if q.abs() >= f64::from(self.radius) || !q.is_finite() {
            return Quantized::Unpredictable(actual);
        }
        let reconstructed = (f64::from(pred) + q * bin) as f32;
        // Guard against f32 rounding pushing the reconstruction out of
        // bounds (can happen when |pred| >> eb).
        if (f64::from(reconstructed) - f64::from(actual)).abs() > f64::from(self.eb) {
            return Quantized::Unpredictable(actual);
        }
        let code = (q as i32 + self.radius) as u16;
        debug_assert_ne!(code, Self::UNPREDICTABLE);
        Quantized::Code { code, reconstructed }
    }

    /// Reconstructs the value for `code` (which must not be
    /// [`Quantizer::UNPREDICTABLE`]) given the same prediction the encoder
    /// used.
    #[inline]
    pub fn dequantize(&self, pred: f32, code: u16) -> f32 {
        debug_assert_ne!(code, Self::UNPREDICTABLE, "unpredictable codes carry no residual");
        let q = i32::from(code) - self.radius;
        (f64::from(pred) + f64::from(q) * f64::from(self.eb) * 2.0) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_bound() {
        let q = Quantizer::new(0.05);
        let pred = 0.3f32;
        for actual in [-1.0f32, 0.0, 0.29, 0.301, 0.35, 1.5] {
            match q.quantize(pred, actual) {
                Quantized::Code { code, reconstructed } => {
                    assert!((reconstructed - actual).abs() <= 0.05 + 1e-6);
                    let decoded = q.dequantize(pred, code);
                    assert_eq!(decoded, reconstructed);
                }
                Quantized::Unpredictable(v) => assert_eq!(v, actual),
            }
        }
    }

    #[test]
    fn zero_residual_maps_to_radius_code() {
        let q = Quantizer::new(0.01);
        match q.quantize(1.0, 1.0) {
            Quantized::Code { code, reconstructed } => {
                assert_eq!(code, Quantizer::DEFAULT_RADIUS as u16);
                assert_eq!(reconstructed, 1.0);
            }
            Quantized::Unpredictable(_) => panic!("zero residual must be codable"),
        }
    }

    #[test]
    fn large_residual_is_unpredictable() {
        let q = Quantizer::with_radius(1e-6, 16);
        assert!(matches!(q.quantize(0.0, 1.0), Quantized::Unpredictable(_)));
    }

    #[test]
    fn huge_magnitude_rounding_guard() {
        // pred is so large that pred + q*2eb rounds away more than eb in f32.
        let q = Quantizer::new(1e-7);
        match q.quantize(1.0e8, 1.0e8 + 3e-7) {
            Quantized::Code { reconstructed, .. } => {
                assert!((reconstructed - (1.0e8 + 3e-7)).abs() <= 1e-7);
            }
            Quantized::Unpredictable(v) => assert_eq!(v, 1.0e8 + 3e-7),
        }
    }

    #[test]
    fn dequantize_matches_encoder_reconstruction() {
        let q = Quantizer::new(0.001);
        let mut pred = 0.0f32;
        for i in 0..1000 {
            let actual = (i as f32 * 0.01).sin();
            if let Quantized::Code { code, reconstructed } = q.quantize(pred, actual) {
                assert_eq!(q.dequantize(pred, code), reconstructed);
                pred = reconstructed;
            } else {
                pred = actual;
            }
        }
    }

    #[test]
    #[should_panic(expected = "error bound must be positive")]
    fn zero_bound_rejected() {
        let _ = Quantizer::new(0.0);
    }
}
