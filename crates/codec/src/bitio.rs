//! MSB-first bit-granular readers and writers.
//!
//! Every entropy-coded format in this workspace (Huffman streams, ZFP bit
//! planes, SZx truncated mantissas) is built on these two types. Bits are
//! packed most-significant-bit first within each byte, which keeps the
//! streams easy to inspect in hex dumps.

use crate::{CodecError, Result};

/// Accumulates bits MSB-first into a growable byte buffer.
///
/// # Examples
///
/// ```
/// use fedsz_codec::bitio::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_bits(0, 7);
/// assert_eq!(w.into_bytes(), vec![0b1000_0000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits currently buffered in `acc`, 0..=7.
    nbits: u32,
    acc: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for roughly `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self { bytes: Vec::with_capacity(bytes), nbits: 0, acc: 0 }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u8;
        self.nbits += 1;
        if self.nbits == 8 {
            self.bytes.push(self.acc);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        let mut remaining = count;
        while remaining > 0 {
            let free = 8 - self.nbits;
            let take = free.min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            // `take` can be 8 when the accumulator is empty; shift in u32
            // to avoid the u8 shift overflow.
            self.acc = ((u32::from(self.acc) << take) | u32::from(chunk)) as u8;
            self.nbits += take;
            remaining -= take;
            if self.nbits == 8 {
                self.bytes.push(self.acc);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Pads the final partial byte with zeros and returns the buffer.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.acc <<= 8 - self.nbits;
            self.bytes.push(self.acc);
        }
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
///
/// # Examples
///
/// ```
/// use fedsz_codec::bitio::BitReader;
///
/// let mut r = BitReader::new(&[0b1010_0000]);
/// assert!(r.read_bit().unwrap());
/// assert!(!r.read_bit().unwrap());
/// assert!(r.read_bit().unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor from the start of `bytes`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes` starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Number of bits still available.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] when the input is exhausted.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = *self.bytes.get(self.pos / 8).ok_or(CodecError::UnexpectedEof)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Reads `count` bits as the low bits of a `u64`, MSB first.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than `count` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u64> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if self.remaining() < count as usize {
            return Err(CodecError::UnexpectedEof);
        }
        let mut value = 0u64;
        let mut remaining = count;
        while remaining > 0 {
            let byte = self.bytes[self.pos / 8];
            let offset = (self.pos % 8) as u32;
            let avail = 8 - offset;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            value = (value << take) | chunk as u64;
            self.pos += take as usize;
            remaining -= take;
        }
        Ok(value)
    }

    /// Skips to the next byte boundary (no-op when already aligned).
    pub fn align_to_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0x3, 2);
        w.write_bits(0x1234_5678_9abc_def0, 64);
        w.write_bits(0x1f, 5);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0x3);
        assert_eq!(r.read_bits(64).unwrap(), 0x1234_5678_9abc_def0);
        assert_eq!(r.read_bits(5).unwrap(), 0x1f);
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xffff, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn eof_is_reported() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
        assert_eq!(r.read_bits(4), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn align_to_byte_skips_padding() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xab, 8); // will straddle after alignment in reader test below
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0xab);
        r.align_to_byte();
        assert_eq!(r.remaining() % 8, 0);
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
        assert_eq!(w.into_bytes().len(), 2);
    }
}
