//! LEB128 variable-length integers plus fixed-width little-endian helpers.
//!
//! These functions define the byte-level conventions of every container
//! format in the workspace (lossless frames, lossy headers, the FedSZ
//! bitstream). Keeping them in one place guarantees the formats agree.

use crate::{CodecError, Result};

/// Appends `value` as unsigned LEB128.
///
/// # Examples
///
/// ```
/// let mut buf = Vec::new();
/// fedsz_codec::varint::write_uvarint(&mut buf, 300);
/// assert_eq!(buf, vec![0xac, 0x02]);
/// ```
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// The byte length [`write_uvarint`] would append for `value`, without
/// writing anything — the sizing half of the encoding, for callers
/// that account for frames they never materialize.
///
/// # Examples
///
/// ```
/// use fedsz_codec::varint::{uvarint_len, write_uvarint};
///
/// for value in [0, 1, 127, 128, 300, u64::MAX] {
///     let mut buf = Vec::new();
///     write_uvarint(&mut buf, value);
///     assert_eq!(uvarint_len(value), buf.len());
/// }
/// ```
pub fn uvarint_len(value: u64) -> usize {
    (1 + 63u32.saturating_sub(value.leading_zeros()) / 7) as usize
}

/// Reads an unsigned LEB128 integer, advancing `pos`.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] when the buffer ends mid-integer
/// and [`CodecError::Corrupt`] when the encoding exceeds 10 bytes.
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("uvarint overflows u64"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("uvarint too long"));
        }
    }
}

/// Appends `value` as zig-zag-encoded signed LEB128.
pub fn write_ivarint(out: &mut Vec<u8>, value: i64) {
    write_uvarint(out, ((value << 1) ^ (value >> 63)) as u64);
}

/// Reads a zig-zag-encoded signed LEB128 integer, advancing `pos`.
///
/// # Errors
///
/// Propagates the errors of [`read_uvarint`].
pub fn read_ivarint(buf: &[u8], pos: &mut usize) -> Result<i64> {
    let raw = read_uvarint(buf, pos)?;
    Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

/// Appends a `u32` little-endian.
pub fn write_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Reads a little-endian `u32`, advancing `pos`.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] when fewer than four bytes remain.
pub fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let bytes = buf.get(*pos..*pos + 4).ok_or(CodecError::UnexpectedEof)?;
    *pos += 4;
    Ok(u32::from_le_bytes(bytes.try_into().expect("slice of length 4")))
}

/// Appends a `u64` little-endian.
pub fn write_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Reads a little-endian `u64`, advancing `pos`.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] when fewer than eight bytes remain.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let bytes = buf.get(*pos..*pos + 8).ok_or(CodecError::UnexpectedEof)?;
    *pos += 8;
    Ok(u64::from_le_bytes(bytes.try_into().expect("slice of length 8")))
}

/// Appends an `f32` little-endian.
pub fn write_f32(out: &mut Vec<u8>, value: f32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Reads a little-endian `f32`, advancing `pos`.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] when fewer than four bytes remain.
pub fn read_f32(buf: &[u8], pos: &mut usize) -> Result<f32> {
    let bytes = buf.get(*pos..*pos + 4).ok_or(CodecError::UnexpectedEof)?;
    *pos += 4;
    Ok(f32::from_le_bytes(bytes.try_into().expect("slice of length 4")))
}

/// Appends an `f64` little-endian.
pub fn write_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Reads a little-endian `f64`, advancing `pos`.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] when fewer than eight bytes remain.
pub fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    let bytes = buf.get(*pos..*pos + 8).ok_or(CodecError::UnexpectedEof)?;
    *pos += 8;
    Ok(f64::from_le_bytes(bytes.try_into().expect("slice of length 8")))
}

/// Appends a length-prefixed byte string.
pub fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_uvarint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte string, advancing `pos`.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] when the buffer is shorter than
/// the stored length claims.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8]> {
    let len = read_uvarint(buf, pos)? as usize;
    let bytes = buf.get(*pos..*pos + len).ok_or(CodecError::UnexpectedEof)?;
    *pos += len;
    Ok(bytes)
}

/// Appends a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_bytes(out, s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string, advancing `pos`.
///
/// # Errors
///
/// Returns [`CodecError::Corrupt`] when the bytes are not valid UTF-8.
pub fn read_str<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a str> {
    let bytes = read_bytes(buf, pos)?;
    std::str::from_utf8(bytes).map_err(|_| CodecError::Corrupt("invalid UTF-8 string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trip() {
        let values = [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn ivarint_round_trip() {
        let values = [0i64, -1, 1, -64, 63, i32::MIN as i64, i64::MAX, i64::MIN];
        let mut buf = Vec::new();
        for &v in &values {
            write_ivarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_uvarint_errors() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn overlong_uvarint_errors() {
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert!(matches!(read_uvarint(&buf, &mut pos), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn fixed_width_round_trip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xdead_beef);
        write_u64(&mut buf, 0x0123_4567_89ab_cdef);
        write_f32(&mut buf, -1.25);
        write_f64(&mut buf, std::f64::consts::PI);
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos).unwrap(), 0xdead_beef);
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(read_f32(&buf, &mut pos).unwrap(), -1.25);
        assert_eq!(read_f64(&buf, &mut pos).unwrap(), std::f64::consts::PI);
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "features.0.weight");
        write_bytes(&mut buf, &[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos).unwrap(), "features.0.weight");
        assert_eq!(read_bytes(&buf, &mut pos).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, &[0xff, 0xfe]);
        let mut pos = 0;
        assert!(matches!(read_str(&buf, &mut pos), Err(CodecError::Corrupt(_))));
    }
}
