//! Summary statistics shared across compressors and analyses.

/// Minimum, maximum and value range of a slice of finite floats.
///
/// Returned by [`value_range`]; the SZ-family compressors use `range` to
/// convert relative error bounds into absolute ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueRange {
    /// Smallest value observed.
    pub min: f32,
    /// Largest value observed.
    pub max: f32,
}

impl ValueRange {
    /// `max - min`, the dynamic range used by relative error bounds.
    pub fn span(&self) -> f32 {
        self.max - self.min
    }
}

/// Scans `data` for its min/max. Returns `None` for empty input.
///
/// Non-finite values are ignored; if all values are non-finite the result
/// is `None` as well, so callers can reject such inputs explicitly.
pub fn value_range(data: &[f32]) -> Option<ValueRange> {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut seen = false;
    for &v in data {
        if v.is_finite() {
            seen = true;
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
    }
    seen.then_some(ValueRange { min, max })
}

/// Arithmetic mean of `data`; 0.0 for empty input.
pub fn mean(data: &[f32]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().map(|&v| f64::from(v)).sum::<f64>() / data.len() as f64
}

/// Population variance of `data`; 0.0 for fewer than two elements.
pub fn variance(data: &[f32]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&v| (f64::from(v) - m).powi(2)).sum::<f64>() / data.len() as f64
}

/// Maximum absolute pointwise difference between two equal-length slices.
///
/// This is the quantity every error-bounded compressor must keep below its
/// absolute bound.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn max_abs_error(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).fold(0.0f32, f32::max)
}

/// Root-mean-square pointwise error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn rmse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    (sum / a.len() as f64).sqrt()
}

/// Peak signal-to-noise ratio in dB between original `a` and
/// reconstruction `b`, using the value range of `a` as the peak.
///
/// Returns `f64::INFINITY` for identical inputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn psnr(a: &[f32], b: &[f32]) -> f64 {
    let range = value_range(a).map(|r| f64::from(r.span())).unwrap_or(0.0);
    let e = rmse(a, b);
    if e == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (range / e).log10()
    }
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets.
///
/// Used by the Fig 2/3/10 analyses to summarize weight and error
/// distributions without plotting libraries.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower edge of the histogram domain.
    pub lo: f64,
    /// Exclusive upper edge of the histogram domain.
    pub hi: f64,
    /// Per-bucket counts.
    pub counts: Vec<u64>,
    /// Number of samples that fell outside `[lo, hi)`.
    pub outliers: u64,
}

impl Histogram {
    /// Builds a histogram of `data` over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn build(data: &[f32], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let mut counts = vec![0u64; bins];
        let mut outliers = 0u64;
        let scale = bins as f64 / (hi - lo);
        for &v in data {
            let v = f64::from(v);
            if v >= lo && v < hi {
                let idx = ((v - lo) * scale) as usize;
                counts[idx.min(bins - 1)] += 1;
            } else {
                outliers += 1;
            }
        }
        Self { lo, hi, counts, outliers }
    }

    /// Total number of in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Probability-density value of bucket `i` (count normalized by total
    /// samples and bucket width). Returns 0.0 when the histogram is empty.
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts[i] as f64 / (total as f64 * width)
    }

    /// Midpoint of bucket `i`.
    pub fn center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_range_basic() {
        let r = value_range(&[1.0, -2.0, 3.0]).unwrap();
        assert_eq!(r.min, -2.0);
        assert_eq!(r.max, 3.0);
        assert_eq!(r.span(), 5.0);
    }

    #[test]
    fn value_range_ignores_non_finite() {
        let r = value_range(&[f32::NAN, 1.0, f32::INFINITY, -1.0]).unwrap();
        assert_eq!(r.min, -1.0);
        assert_eq!(r.max, 1.0);
        assert!(value_range(&[f32::NAN]).is_none());
        assert!(value_range(&[]).is_none());
    }

    #[test]
    fn mean_and_variance() {
        let data = [1.0f32, 2.0, 3.0, 4.0];
        assert!((mean(&data) - 2.5).abs() < 1e-12);
        assert!((variance(&data) - 1.25).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn error_metrics() {
        let a = [0.0f32, 1.0, 2.0];
        let b = [0.5f32, 1.0, 1.0];
        assert_eq!(max_abs_error(&a, &b), 1.0);
        assert!((rmse(&a, &b) - ((0.25 + 0.0 + 1.0) / 3.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        assert!(psnr(&a, &b).is_finite());
    }

    #[test]
    fn histogram_counts_and_density() {
        let data = [0.15f32, 0.25, 0.95, -1.0, 2.0];
        let h = Histogram::build(&data, 0.0, 1.0, 10);
        assert_eq!(h.total(), 3);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 1);
        assert_eq!(h.counts[9], 1);
        // Density integrates to ~1 over in-range mass.
        let integral: f64 = (0..10).map(|i| h.density(i) * 0.1).sum();
        assert!((integral - 1.0).abs() < 1e-12);
        assert!((h.center(0) - 0.05).abs() < 1e-12);
    }
}
