//! Adaptive binary range coder (LZMA-style).
//!
//! This is the entropy stage of the xz-like lossless compressor. Symbols
//! are coded one bit at a time against adaptive probability models that
//! learn the stream's statistics on the fly — slow but close to the
//! empirical entropy, which is exactly the niche xz occupies in the
//! paper's Table II.

use crate::{CodecError, Result};

/// Number of probability bits (probabilities live in `0..=1<<11`).
const PROB_BITS: u32 = 11;
/// Adaptation speed: larger shifts adapt more slowly.
const MOVE_BITS: u32 = 5;
/// Renormalization threshold.
const TOP: u32 = 1 << 24;

/// An adaptive probability for a single binary decision.
///
/// Starts at 1/2 and moves toward the observed bit frequency with an
/// exponential window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitModel {
    prob0: u16,
}

impl BitModel {
    /// Creates a model with probability 1/2.
    pub fn new() -> Self {
        Self { prob0: (1 << PROB_BITS) / 2 }
    }
}

impl Default for BitModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Range encoder producing a byte stream.
///
/// # Examples
///
/// ```
/// use fedsz_codec::range::{BitModel, RangeDecoder, RangeEncoder};
///
/// let mut model = BitModel::new();
/// let mut enc = RangeEncoder::new();
/// for bit in [true, false, true, true] {
///     enc.encode_bit(&mut model, bit);
/// }
/// let bytes = enc.finish();
///
/// let mut model = BitModel::new();
/// let mut dec = RangeDecoder::new(&bytes).unwrap();
/// for bit in [true, false, true, true] {
///     assert_eq!(dec.decode_bit(&mut model).unwrap(), bit);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl RangeEncoder {
    /// Creates an encoder with an empty output buffer.
    pub fn new() -> Self {
        Self { low: 0, range: u32::MAX, cache: 0, cache_size: 1, out: Vec::new() }
    }

    /// Encodes one bit against an adaptive model.
    #[inline]
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: bool) {
        let bound = (self.range >> PROB_BITS) * u32::from(model.prob0);
        if !bit {
            self.range = bound;
            model.prob0 += ((1 << PROB_BITS) - model.prob0) >> MOVE_BITS;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
            model.prob0 -= model.prob0 >> MOVE_BITS;
        }
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes `count` equiprobable bits (MSB first) without a model.
    pub fn encode_direct_bits(&mut self, value: u32, count: u32) {
        for i in (0..count).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit != 0 {
                self.low += u64::from(self.range);
            }
            while self.range < TOP {
                self.shift_low();
                self.range <<= 8;
            }
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            while self.cache_size > 0 {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
            }
            self.cache = ((self.low >> 24) & 0xFF) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Flushes the coder state and returns the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Range decoder over a byte slice produced by [`RangeEncoder`].
#[derive(Debug, Clone)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Initializes the decoder, consuming the 5-byte preamble.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] when the input is shorter
    /// than the preamble.
    pub fn new(input: &'a [u8]) -> Result<Self> {
        if input.len() < 5 {
            return Err(CodecError::UnexpectedEof);
        }
        let mut code = 0u32;
        for &b in &input[1..5] {
            code = (code << 8) | u32::from(b);
        }
        Ok(Self { code, range: u32::MAX, input, pos: 5 })
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zero bytes; the encoder's 5-byte
        // flush guarantees well-formed streams never need them, and
        // truncated streams surface as corrupt payloads at a higher layer
        // (every frame stores its decoded length and a checksum).
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decodes one bit against an adaptive model.
    ///
    /// # Errors
    ///
    /// This method itself cannot fail; it returns `Result` for symmetry
    /// with the encoder-side API and future-proofing.
    #[inline]
    pub fn decode_bit(&mut self, model: &mut BitModel) -> Result<bool> {
        let bound = (self.range >> PROB_BITS) * u32::from(model.prob0);
        let bit = if self.code < bound {
            self.range = bound;
            model.prob0 += ((1 << PROB_BITS) - model.prob0) >> MOVE_BITS;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            model.prob0 -= model.prob0 >> MOVE_BITS;
            true
        };
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | u32::from(self.next_byte());
        }
        Ok(bit)
    }

    /// Decodes `count` equiprobable bits (MSB first).
    ///
    /// # Errors
    ///
    /// See [`RangeDecoder::decode_bit`].
    pub fn decode_direct_bits(&mut self, count: u32) -> Result<u32> {
        let mut value = 0u32;
        for _ in 0..count {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | u32::from(self.next_byte());
            }
        }
        Ok(value)
    }
}

/// A tree of bit models coding an `n`-bit symbol MSB-first.
///
/// Standard LZMA construct: node `1` is the root; taking bit `b` from node
/// `i` moves to node `2i + b`.
#[derive(Debug, Clone)]
pub struct BitTreeModel {
    models: Vec<BitModel>,
    bits: u32,
}

impl BitTreeModel {
    /// Creates a tree coding `bits`-wide symbols.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "bit-tree width must be in 1..=16");
        Self { models: vec![BitModel::new(); 1 << (bits + 1)], bits }
    }

    /// Encodes `symbol` (must fit in the configured width).
    pub fn encode(&mut self, enc: &mut RangeEncoder, symbol: u32) {
        debug_assert!(symbol < (1 << self.bits));
        let mut node = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (symbol >> i) & 1 != 0;
            enc.encode_bit(&mut self.models[node], bit);
            node = (node << 1) | usize::from(bit);
        }
    }

    /// Decodes one symbol.
    ///
    /// # Errors
    ///
    /// See [`RangeDecoder::decode_bit`].
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> Result<u32> {
        let mut node = 1usize;
        for _ in 0..self.bits {
            let bit = dec.decode_bit(&mut self.models[node])?;
            node = (node << 1) | usize::from(bit);
        }
        Ok(node as u32 - (1 << self.bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_round_trip_biased() {
        // 95% zeros: the adaptive model should compress well below 1 bpb.
        let bits: Vec<bool> = (0..20_000).map(|i| i % 20 == 0).collect();
        let mut model = BitModel::new();
        let mut enc = RangeEncoder::new();
        for &b in &bits {
            enc.encode_bit(&mut model, b);
        }
        let bytes = enc.finish();
        assert!(bytes.len() < bits.len() / 8 / 2, "biased stream should halve: {}", bytes.len());

        let mut model = BitModel::new();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut model).unwrap(), b);
        }
    }

    #[test]
    fn direct_bits_round_trip() {
        let values = [0u32, 1, 0xff, 0x1234, 0xffff_ffff >> 4];
        let mut enc = RangeEncoder::new();
        for &v in &values {
            enc.encode_direct_bits(v, 28);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &v in &values {
            assert_eq!(dec.decode_direct_bits(28).unwrap(), v);
        }
    }

    #[test]
    fn mixed_models_round_trip() {
        let mut m1 = BitModel::new();
        let mut m2 = BitModel::new();
        let mut enc = RangeEncoder::new();
        let pattern: Vec<(bool, bool)> = (0..5000).map(|i| (i % 3 == 0, i % 7 < 3)).collect();
        for &(a, b) in &pattern {
            enc.encode_bit(&mut m1, a);
            enc.encode_bit(&mut m2, b);
            enc.encode_direct_bits(u32::from(a) * 2 + u32::from(b), 2);
        }
        let bytes = enc.finish();
        let mut m1 = BitModel::new();
        let mut m2 = BitModel::new();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &(a, b) in &pattern {
            assert_eq!(dec.decode_bit(&mut m1).unwrap(), a);
            assert_eq!(dec.decode_bit(&mut m2).unwrap(), b);
            assert_eq!(dec.decode_direct_bits(2).unwrap(), u32::from(a) * 2 + u32::from(b));
        }
    }

    #[test]
    fn bit_tree_round_trip() {
        let symbols: Vec<u32> = (0..4000u32).map(|i| (i * 37) % 256).collect();
        let mut tree = BitTreeModel::new(8);
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            tree.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut tree = BitTreeModel::new(8);
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &s in &symbols {
            assert_eq!(tree.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn empty_stream_decodes() {
        let enc = RangeEncoder::new();
        let bytes = enc.finish();
        assert!(RangeDecoder::new(&bytes).is_ok());
    }

    #[test]
    fn short_input_is_eof() {
        assert_eq!(RangeDecoder::new(&[1, 2, 3]).err(), Some(CodecError::UnexpectedEof));
    }
}
