//! Canonical, length-limited Huffman coding.
//!
//! Used by the SZ2/SZ3 quantization-code streams and by the DEFLATE-style
//! and zstd-like lossless compressors. Codes are canonical (assigned in
//! `(length, symbol)` order), so only the code lengths need to be stored;
//! the header uses a sparse `(symbol, length)` list which is compact for
//! the very skewed alphabets produced by SZ quantization.

use crate::bitio::{BitReader, BitWriter};
use crate::varint::{read_uvarint, write_uvarint};
use crate::{CodecError, Result};
use std::collections::BinaryHeap;

/// Maximum code length supported by the canonical tables.
pub const MAX_CODE_LEN: u8 = 24;

/// A canonical Huffman code table over `u16` symbols.
///
/// # Examples
///
/// ```
/// use fedsz_codec::huffman::HuffmanTable;
/// use fedsz_codec::bitio::{BitReader, BitWriter};
///
/// let symbols = [3u16, 3, 3, 7, 7, 1];
/// let table = HuffmanTable::from_symbols(&symbols, 16);
/// let mut w = BitWriter::new();
/// table.encode_into(&symbols, &mut w);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(table.decode_from(&mut r, symbols.len()).unwrap(), symbols);
/// ```
#[derive(Debug, Clone)]
pub struct HuffmanTable {
    /// `lengths[sym]` is the code length in bits, 0 when unused.
    lengths: Vec<u8>,
    /// `codes[sym]` is the canonical code, valid when `lengths[sym] > 0`.
    codes: Vec<u32>,
    /// Decoding acceleration: count of codes per length.
    bl_count: [u32; MAX_CODE_LEN as usize + 1],
    /// First canonical code of each length.
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    /// Offset into `sorted` of the first symbol of each length.
    first_sym: [u32; MAX_CODE_LEN as usize + 1],
    /// Symbols sorted by `(length, symbol)`.
    sorted: Vec<u16>,
}

impl HuffmanTable {
    /// Builds a table from raw symbol frequencies.
    ///
    /// `freqs[sym]` is the occurrence count of `sym`; symbols with zero
    /// frequency get no code. `max_len` limits code lengths (clamped to
    /// [`MAX_CODE_LEN`]).
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is longer than `u16::MAX + 1` entries.
    pub fn from_frequencies(freqs: &[u64], max_len: u8) -> Self {
        assert!(freqs.len() <= (u16::MAX as usize) + 1, "alphabet too large for u16 symbols");
        let max_len = max_len.clamp(1, MAX_CODE_LEN);
        let lengths = build_lengths(freqs, max_len);
        Self::from_lengths(lengths)
    }

    /// Counts the symbols in `data` and builds a table for them.
    pub fn from_symbols(data: &[u16], max_len: u8) -> Self {
        let alphabet = data.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        let mut freqs = vec![0u64; alphabet];
        for &s in data {
            freqs[s as usize] += 1;
        }
        Self::from_frequencies(&freqs, max_len)
    }

    /// Rebuilds the canonical table from a code-length vector.
    fn from_lengths(lengths: Vec<u8>) -> Self {
        let mut bl_count = [0u32; MAX_CODE_LEN as usize + 1];
        for &len in &lengths {
            if len > 0 {
                bl_count[len as usize] += 1;
            }
        }
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code + bl_count[len - 1]) << 1;
            first_code[len] = code;
        }
        let mut sorted: Vec<u16> = (0..lengths.len() as u32)
            .filter(|&s| lengths[s as usize] > 0)
            .map(|s| s as u16)
            .collect();
        sorted.sort_by_key(|&s| (lengths[s as usize], s));
        let mut first_sym = [0u32; MAX_CODE_LEN as usize + 1];
        let mut offset = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            first_sym[len] = offset;
            offset += bl_count[len];
        }
        let mut codes = vec![0u32; lengths.len()];
        let mut next = first_code;
        for &sym in &sorted {
            let len = lengths[sym as usize] as usize;
            codes[sym as usize] = next[len];
            next[len] += 1;
        }
        Self { lengths, codes, bl_count, first_code, first_sym, sorted }
    }

    /// Code length in bits for `sym` (0 when the symbol has no code).
    pub fn code_len(&self, sym: u16) -> u8 {
        self.lengths.get(sym as usize).copied().unwrap_or(0)
    }

    /// Number of symbols with assigned codes.
    pub fn coded_symbols(&self) -> usize {
        self.sorted.len()
    }

    /// Writes one symbol to `w`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` has no code in this table.
    #[inline]
    pub fn write_symbol(&self, sym: u16, w: &mut BitWriter) {
        let len = self.lengths[sym as usize];
        assert!(len > 0, "symbol {sym} has no Huffman code");
        w.write_bits(u64::from(self.codes[sym as usize]), u32::from(len));
    }

    /// Encodes an entire slice of symbols.
    ///
    /// # Panics
    ///
    /// Panics if any symbol has no code in this table.
    pub fn encode_into(&self, data: &[u16], w: &mut BitWriter) {
        for &sym in data {
            self.write_symbol(sym, w);
        }
    }

    /// Reads one symbol from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] on truncation or
    /// [`CodecError::Corrupt`] when the bits match no code.
    #[inline]
    pub fn read_symbol(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | u32::from(r.read_bit()?);
            let count = self.bl_count[len];
            if count > 0 {
                let idx = code.wrapping_sub(self.first_code[len]);
                if idx < count {
                    return Ok(self.sorted[(self.first_sym[len] + idx) as usize]);
                }
            }
        }
        Err(CodecError::Corrupt("invalid Huffman code"))
    }

    /// Decodes exactly `count` symbols.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`HuffmanTable::read_symbol`].
    pub fn decode_from(&self, r: &mut BitReader<'_>, count: usize) -> Result<Vec<u16>> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.read_symbol(r)?);
        }
        Ok(out)
    }

    /// Serializes the table as a sparse `(symbol delta, length)` list.
    pub fn write_header(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.sorted.len() as u64);
        let mut by_symbol: Vec<u16> = self.sorted.clone();
        by_symbol.sort_unstable();
        let mut prev = 0u64;
        for &sym in &by_symbol {
            write_uvarint(out, u64::from(sym) - prev);
            write_uvarint(out, u64::from(self.lengths[sym as usize]));
            prev = u64::from(sym);
        }
    }

    /// Reads a header written by [`HuffmanTable::write_header`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] for out-of-range symbols or lengths
    /// and [`CodecError::UnexpectedEof`] on truncation.
    pub fn read_header(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let n = read_uvarint(buf, pos)? as usize;
        if n > (u16::MAX as usize) + 1 {
            return Err(CodecError::Corrupt("Huffman table too large"));
        }
        let mut lengths = Vec::new();
        let mut sym = 0u64;
        let mut first = true;
        for _ in 0..n {
            let delta = read_uvarint(buf, pos)?;
            let len = read_uvarint(buf, pos)?;
            sym = if first { delta } else { sym + delta };
            first = false;
            if sym > u64::from(u16::MAX) {
                return Err(CodecError::Corrupt("Huffman symbol out of range"));
            }
            if len == 0 || len > u64::from(MAX_CODE_LEN) {
                return Err(CodecError::Corrupt("Huffman code length out of range"));
            }
            if lengths.len() <= sym as usize {
                lengths.resize(sym as usize + 1, 0);
            }
            lengths[sym as usize] = len as u8;
        }
        // Reject tables violating the Kraft inequality: they cannot come
        // from a well-formed encoder and would produce overlapping codes.
        let kraft: u64 =
            lengths.iter().filter(|&&l| l > 0).map(|&l| 1u64 << (MAX_CODE_LEN - l)).sum();
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(CodecError::Corrupt("Huffman table violates Kraft inequality"));
        }
        Ok(Self::from_lengths(lengths))
    }
}

/// One-shot helper: Huffman-encode `data` into a self-contained block
/// (header + symbol count + padded bitstream).
pub fn encode_block(data: &[u16]) -> Vec<u8> {
    let table = HuffmanTable::from_symbols(data, 16);
    let mut out = Vec::new();
    table.write_header(&mut out);
    write_uvarint(&mut out, data.len() as u64);
    let mut w = BitWriter::new();
    table.encode_into(data, &mut w);
    let bits = w.into_bytes();
    write_uvarint(&mut out, bits.len() as u64);
    out.extend_from_slice(&bits);
    out
}

/// Decodes a block produced by [`encode_block`], advancing `pos`.
///
/// # Errors
///
/// Returns a [`CodecError`] for truncated or malformed blocks.
pub fn decode_block(buf: &[u8], pos: &mut usize) -> Result<Vec<u16>> {
    let table = HuffmanTable::read_header(buf, pos)?;
    let count = read_uvarint(buf, pos)? as usize;
    let nbytes = read_uvarint(buf, pos)? as usize;
    let bits = buf.get(*pos..*pos + nbytes).ok_or(CodecError::UnexpectedEof)?;
    *pos += nbytes;
    if count == 0 {
        return Ok(Vec::new());
    }
    if table.coded_symbols() == 0 {
        return Err(CodecError::Corrupt("nonempty block with empty Huffman table"));
    }
    let mut r = BitReader::new(bits);
    table.decode_from(&mut r, count)
}

/// Computes length-limited code lengths from frequencies.
///
/// Builds an ordinary Huffman tree, then repairs any over-long codes with
/// the zlib-style Kraft fix-up (demote over-long codes to `max_len`, then
/// rebalance until the Kraft sum fits). The result is always decodable;
/// it is optimal whenever no length exceeded `max_len`.
fn build_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        // Tie-break on id for determinism.
        id: u32,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u16),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed: BinaryHeap is a max-heap, we need min-weight first.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths = vec![0u8; freqs.len()];
    let used: Vec<u16> = (0..freqs.len()).filter(|&s| freqs[s] > 0).map(|s| s as u16).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0] as usize] = 1;
            return lengths;
        }
        _ => {}
    }

    let mut heap: BinaryHeap<Node> = used
        .iter()
        .map(|&s| Node { weight: freqs[s as usize], id: u32::from(s), kind: NodeKind::Leaf(s) })
        .collect();
    let mut next_id = freqs.len() as u32;
    while heap.len() > 1 {
        let a = heap.pop().expect("heap has >= 2 nodes");
        let b = heap.pop().expect("heap has >= 2 nodes");
        heap.push(Node {
            weight: a.weight.saturating_add(b.weight),
            id: next_id,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
        next_id += 1;
    }
    let root = heap.pop().expect("tree root");

    // Iterative depth-first walk to collect leaf depths.
    let mut stack = vec![(&root, 0u32)];
    while let Some((node, depth)) = stack.pop() {
        match &node.kind {
            NodeKind::Leaf(sym) => {
                lengths[*sym as usize] = depth.max(1).min(u32::from(MAX_CODE_LEN)) as u8;
            }
            NodeKind::Internal(a, b) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
        }
    }

    // Kraft fix-up for codes longer than max_len.
    let cap = max_len;
    for len in lengths.iter_mut() {
        if *len > cap {
            *len = cap;
        }
    }
    let kraft = |lengths: &[u8]| -> u64 {
        lengths.iter().filter(|&&l| l > 0).map(|&l| 1u64 << (cap - l)).sum()
    };
    let budget = 1u64 << cap;
    while kraft(&lengths) > budget {
        // Lengthen the shortest over-represented code that can still grow.
        let sym = (0..lengths.len())
            .filter(|&s| lengths[s] > 0 && lengths[s] < cap)
            .max_by_key(|&s| lengths[s])
            .expect("kraft overflow implies a shortenable code exists");
        lengths[sym] += 1;
    }
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u16]) {
        let block = encode_block(data);
        let mut pos = 0;
        let decoded = decode_block(&block, &mut pos).unwrap();
        assert_eq!(decoded, data);
        assert_eq!(pos, block.len());
    }

    #[test]
    fn empty_input() {
        round_trip(&[]);
    }

    #[test]
    fn single_distinct_symbol() {
        round_trip(&[42u16; 100]);
    }

    #[test]
    fn two_symbols() {
        round_trip(&[0, 1, 0, 0, 1, 0, 1, 1, 1, 0]);
    }

    #[test]
    fn skewed_distribution_compresses() {
        let mut data = vec![7u16; 10_000];
        data.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        let block = encode_block(&data);
        // 10k near-constant symbols must compress far below 2 bytes each.
        assert!(block.len() < data.len() / 4, "block len {} too large", block.len());
        round_trip(&data);
    }

    #[test]
    fn wide_alphabet_round_trip() {
        let data: Vec<u16> = (0..2000u32).map(|i| ((i * i) % 1024) as u16).collect();
        round_trip(&data);
    }

    #[test]
    fn length_limit_respected() {
        // Fibonacci-like frequencies force very skewed trees.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let table = HuffmanTable::from_frequencies(&freqs, 12);
        for sym in 0..40u16 {
            assert!(table.code_len(sym) <= 12, "sym {sym} len {}", table.code_len(sym));
            assert!(table.code_len(sym) > 0);
        }
        // Round-trip a sample drawn from that alphabet.
        let data: Vec<u16> = (0..500u16).map(|i| i % 40).collect();
        let mut w = BitWriter::new();
        table.encode_into(&data, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(table.decode_from(&mut r, data.len()).unwrap(), data);
    }

    #[test]
    fn truncated_block_errors() {
        let data = vec![5u16; 64];
        let block = encode_block(&data);
        let mut pos = 0;
        assert!(decode_block(&block[..block.len() - 8], &mut pos).is_err());
    }

    #[test]
    fn corrupt_header_errors() {
        let data = vec![5u16; 64];
        let mut block = encode_block(&data);
        block[0] = 0xff; // implausible table size
        let mut pos = 0;
        assert!(decode_block(&block, &mut pos).is_err());
    }

    #[test]
    fn header_round_trip_preserves_codes() {
        let data: Vec<u16> = (0..300u16).map(|i| i % 17).collect();
        let table = HuffmanTable::from_symbols(&data, 16);
        let mut hdr = Vec::new();
        table.write_header(&mut hdr);
        let mut pos = 0;
        let table2 = HuffmanTable::read_header(&hdr, &mut pos).unwrap();
        for sym in 0..17u16 {
            assert_eq!(table.code_len(sym), table2.code_len(sym));
        }
    }
}

#[cfg(test)]
mod adversarial_tests {
    use super::*;
    use crate::varint::write_uvarint;

    /// Builds a raw header from explicit (symbol, length) pairs.
    fn raw_header(pairs: &[(u16, u8)]) -> Vec<u8> {
        let mut out = Vec::new();
        write_uvarint(&mut out, pairs.len() as u64);
        let mut prev = 0u64;
        for &(sym, len) in pairs {
            write_uvarint(&mut out, u64::from(sym) - prev);
            write_uvarint(&mut out, u64::from(len));
            prev = u64::from(sym);
        }
        out
    }

    #[test]
    fn kraft_violating_header_rejected() {
        // Three symbols of length 1 cannot coexist: 3 * 2^-1 > 1.
        let hdr = raw_header(&[(0, 1), (1, 1), (2, 1)]);
        let mut pos = 0;
        assert!(matches!(HuffmanTable::read_header(&hdr, &mut pos), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn zero_length_code_rejected() {
        let hdr = raw_header(&[(0, 0)]);
        let mut pos = 0;
        assert!(HuffmanTable::read_header(&hdr, &mut pos).is_err());
    }

    #[test]
    fn overlong_code_rejected() {
        let hdr = raw_header(&[(0, MAX_CODE_LEN + 1)]);
        let mut pos = 0;
        assert!(HuffmanTable::read_header(&hdr, &mut pos).is_err());
    }

    #[test]
    fn valid_saturated_header_accepted() {
        // Exactly saturating Kraft (two length-1 codes) must be fine.
        let hdr = raw_header(&[(3, 1), (9, 1)]);
        let mut pos = 0;
        let table = HuffmanTable::read_header(&hdr, &mut pos).unwrap();
        assert_eq!(table.coded_symbols(), 2);
        assert_eq!(table.code_len(3), 1);
        assert_eq!(table.code_len(9), 1);
    }

    #[test]
    fn decoding_with_incomplete_table_errors_cleanly() {
        // A single length-2 code leaves most bit patterns invalid; the
        // decoder must report Corrupt, not loop or panic.
        let hdr = raw_header(&[(5, 2)]);
        let mut pos = 0;
        let table = HuffmanTable::read_header(&hdr, &mut pos).unwrap();
        let bits = [0xFFu8; 4];
        let mut r = crate::bitio::BitReader::new(&bits);
        // Code for symbol 5 is 00; all-ones input never matches.
        assert!(table.read_symbol(&mut r).is_err());
    }
}
