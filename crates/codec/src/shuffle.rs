//! Byte-shuffle filter as used by Blosc.
//!
//! Shuffling transposes an array of fixed-size elements so that the first
//! bytes of every element become contiguous, then the second bytes, and so
//! on. For IEEE-754 floats this groups sign/exponent bytes together, which
//! makes them far more compressible by an LZ stage — the core trick behind
//! blosc-lz's speed/ratio balance on float data.

/// Transposes `data` (a packed array of `elem_size`-byte elements) into
/// byte-plane order. Trailing bytes that do not form a whole element are
/// copied through unchanged at the end.
///
/// # Examples
///
/// ```
/// use fedsz_codec::shuffle::{shuffle, unshuffle};
///
/// let data = [1u8, 2, 3, 4, 5, 6, 7, 8];
/// let shuffled = shuffle(&data, 4);
/// assert_eq!(shuffled, vec![1, 5, 2, 6, 3, 7, 4, 8]);
/// assert_eq!(unshuffle(&shuffled, 4), data);
/// ```
pub fn shuffle(data: &[u8], elem_size: usize) -> Vec<u8> {
    assert!(elem_size > 0, "element size must be positive");
    let n = data.len() / elem_size;
    let body = n * elem_size;
    let mut out = Vec::with_capacity(data.len());
    for byte_idx in 0..elem_size {
        for elem in 0..n {
            out.push(data[elem * elem_size + byte_idx]);
        }
    }
    out.extend_from_slice(&data[body..]);
    out
}

/// Inverse of [`shuffle`].
pub fn unshuffle(data: &[u8], elem_size: usize) -> Vec<u8> {
    assert!(elem_size > 0, "element size must be positive");
    let n = data.len() / elem_size;
    let body = n * elem_size;
    let mut out = vec![0u8; data.len()];
    for byte_idx in 0..elem_size {
        for elem in 0..n {
            out[elem * elem_size + byte_idx] = data[byte_idx * n + elem];
        }
    }
    out[body..].copy_from_slice(&data[body..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_multiple() {
        let data: Vec<u8> = (0..64).collect();
        assert_eq!(unshuffle(&shuffle(&data, 4), 4), data);
        assert_eq!(unshuffle(&shuffle(&data, 8), 8), data);
    }

    #[test]
    fn round_trip_with_tail() {
        let data: Vec<u8> = (0..67).collect();
        let shuffled = shuffle(&data, 4);
        assert_eq!(shuffled.len(), data.len());
        assert_eq!(unshuffle(&shuffled, 4), data);
    }

    #[test]
    fn empty_input() {
        assert!(shuffle(&[], 4).is_empty());
        assert!(unshuffle(&[], 4).is_empty());
    }

    #[test]
    fn elem_size_one_is_identity() {
        let data = [9u8, 8, 7];
        assert_eq!(shuffle(&data, 1), data);
        assert_eq!(unshuffle(&data, 1), data);
    }

    #[test]
    fn float_bytes_grouped() {
        // Two little-endian f32s with identical exponents: after the
        // shuffle the exponent bytes must be adjacent.
        let a = 1.5f32.to_le_bytes();
        let b = 1.25f32.to_le_bytes();
        let mut data = Vec::new();
        data.extend_from_slice(&a);
        data.extend_from_slice(&b);
        let s = shuffle(&data, 4);
        assert_eq!(s[6], a[3]);
        assert_eq!(s[7], b[3]);
    }
}
