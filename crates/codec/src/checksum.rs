//! CRC-32 (IEEE 802.3) and Adler-32 checksums.
//!
//! The gzip-style frames in `fedsz-lossless` use CRC-32; the zlib-style
//! frames use Adler-32, mirroring the real formats' integrity checks.

/// Computes the IEEE CRC-32 of `data` (polynomial `0xEDB88320`, as used
/// by gzip, PNG and Ethernet).
///
/// # Examples
///
/// ```
/// assert_eq!(fedsz_codec::checksum::crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

/// Incremental CRC-32 state, for hashing data produced in chunks.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

/// Table of CRC remainders for every byte value, built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

impl Crc32 {
    /// Creates a fresh checksum state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc_table();
        for &byte in data {
            self.state =
                table[((self.state ^ u32::from(byte)) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// Returns the final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the Adler-32 checksum of `data` as used by zlib.
///
/// # Examples
///
/// ```
/// // Adler-32 of the empty string is 1.
/// assert_eq!(fedsz_codec::checksum::adler32(&[]), 1);
/// ```
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    // Process in chunks small enough that the u32 accumulators cannot
    // overflow before the modulo reduction (5552 is the classic bound).
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(&[]), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414FA339);
    }

    #[test]
    fn crc32_incremental_matches_oneshot() {
        let data = b"hello federated world";
        let mut inc = Crc32::new();
        inc.update(&data[..5]);
        inc.update(&data[5..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(&[]), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E60398);
    }

    #[test]
    fn adler32_large_input_no_overflow() {
        let data = vec![0xffu8; 1 << 16];
        // Must not panic and must be stable.
        assert_eq!(adler32(&data), adler32(&data));
    }
}
