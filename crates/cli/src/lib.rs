//! Command-line interface for the FedSZ pipeline.
//!
//! Ships a `fedsz` binary with four subcommands:
//!
//! * `fedsz gen <model> <out.fsd>` — generate a full-size model state
//!   dict (AlexNet / MobileNetV2 / ResNet50) for experimentation,
//! * `fedsz compress <in.fsd> <out.fsz>` — run the FedSZ pipeline,
//! * `fedsz decompress <in.fsz> <out.fsd>` — reverse it,
//! * `fedsz inspect <file>` — describe either format.
//!
//! The library half exposes [`run`] so the whole surface is unit-tested
//! without spawning processes.

#![forbid(unsafe_code)]

use fedsz::{ErrorBound, FedSz, FedSzConfig, LosslessKind, LossyKind};
use fedsz_nn::models::specs::ModelSpec;
use fedsz_nn::StateDict;
use std::fmt::Write as _;
use std::path::Path;

/// Outcome of a CLI invocation: the text to print and the exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Human-readable report for stdout.
    pub report: String,
    /// Process exit code (0 = success).
    pub code: i32,
}

impl Outcome {
    fn ok(report: String) -> Self {
        Self { report, code: 0 }
    }

    fn fail(report: String) -> Self {
        Self { report, code: 2 }
    }
}

/// Usage text shown for `--help` and argument errors.
pub const USAGE: &str = "\
fedsz — error-bounded lossy compression for FL model updates

USAGE:
  fedsz gen <alexnet|mobilenetv2|resnet50> <out.fsd> [--seed N] [--scale F]
  fedsz compress <in.fsd> <out.fsz> [--eb REL] [--abs ABS] [--lossy sz2|sz3|szx|zfp]
                 [--lossless blosc-lz|zlib|gzip|zstd|xz] [--threshold N]
  fedsz decompress <in.fsz> <out.fsd>
  fedsz inspect <file>
";

/// Executes a CLI invocation (argv without the program name).
pub fn run(args: &[String]) -> Outcome {
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("compress") => compress(&args[1..]),
        Some("decompress") => decompress(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("--help") | Some("-h") => Outcome::ok(USAGE.to_string()),
        _ => Outcome::fail(USAGE.to_string()),
    }
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn gen(args: &[String]) -> Outcome {
    let (Some(model), Some(out)) = (args.first(), args.get(1)) else {
        return Outcome::fail(USAGE.to_string());
    };
    let Some(spec) = ModelSpec::by_name(model) else {
        return Outcome::fail(format!("unknown model `{model}`; try alexnet, mobilenetv2, resnet50"));
    };
    let seed: u64 = match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(42),
        Err(_) => return Outcome::fail("--seed expects an integer".into()),
    };
    let scale: f64 = match flag_value(args, "--scale").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(1.0),
        Err(_) => return Outcome::fail("--scale expects a number".into()),
    };
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Outcome::fail("--scale must be in (0, 1]".into());
    }
    let dict =
        if scale < 1.0 { spec.instantiate_scaled(seed, scale) } else { spec.instantiate(seed) };
    if let Err(e) = std::fs::write(out, dict.to_bytes()) {
        return Outcome::fail(format!("cannot write {out}: {e}"));
    }
    Outcome::ok(format!(
        "wrote {} ({} tensors, {:.1} MB) to {out}",
        spec.name(),
        dict.len(),
        dict.byte_size() as f64 / 1e6
    ))
}

fn parse_lossy(name: &str) -> Option<LossyKind> {
    match name.to_ascii_lowercase().as_str() {
        "sz2" => Some(LossyKind::Sz2),
        "sz3" => Some(LossyKind::Sz3),
        "szx" => Some(LossyKind::Szx),
        "zfp" => Some(LossyKind::Zfp),
        _ => None,
    }
}

fn parse_lossless(name: &str) -> Option<LosslessKind> {
    match name.to_ascii_lowercase().as_str() {
        "blosc-lz" | "blosclz" => Some(LosslessKind::BloscLz),
        "zlib" => Some(LosslessKind::Zlib),
        "gzip" => Some(LosslessKind::Gzip),
        "zstd" => Some(LosslessKind::Zstd),
        "xz" => Some(LosslessKind::Xz),
        _ => None,
    }
}

fn compress(args: &[String]) -> Outcome {
    let (Some(input), Some(output)) = (args.first(), args.get(1)) else {
        return Outcome::fail(USAGE.to_string());
    };
    let mut config = FedSzConfig::default();
    if let Some(eb) = flag_value(args, "--eb") {
        match eb.parse::<f64>() {
            Ok(v) => config.error_bound = ErrorBound::Relative(v),
            Err(_) => return Outcome::fail("--eb expects a number (relative bound)".into()),
        }
    }
    if let Some(eb) = flag_value(args, "--abs") {
        match eb.parse::<f64>() {
            Ok(v) => config.error_bound = ErrorBound::Absolute(v),
            Err(_) => return Outcome::fail("--abs expects a number (absolute bound)".into()),
        }
    }
    if let Some(name) = flag_value(args, "--lossy") {
        match parse_lossy(name) {
            Some(kind) => config.lossy = kind,
            None => return Outcome::fail(format!("unknown lossy codec `{name}`")),
        }
    }
    if let Some(name) = flag_value(args, "--lossless") {
        match parse_lossless(name) {
            Some(kind) => config.lossless = kind,
            None => return Outcome::fail(format!("unknown lossless codec `{name}`")),
        }
    }
    if let Some(t) = flag_value(args, "--threshold") {
        match t.parse::<usize>() {
            Ok(v) => config.threshold = v,
            Err(_) => return Outcome::fail("--threshold expects an integer".into()),
        }
    }
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => return Outcome::fail(format!("cannot read {input}: {e}")),
    };
    let dict = match StateDict::from_bytes(&bytes) {
        Ok(d) => d,
        Err(e) => return Outcome::fail(format!("{input} is not a state dict: {e}")),
    };
    let packed = match FedSz::new(config).compress(&dict) {
        Ok(p) => p,
        Err(e) => return Outcome::fail(format!("compression failed: {e}")),
    };
    let stats = *packed.stats();
    if let Err(e) = std::fs::write(output, packed.bytes()) {
        return Outcome::fail(format!("cannot write {output}: {e}"));
    }
    Outcome::ok(format!(
        "{:.2} MB -> {:.2} MB (ratio {:.2}x, {} lossy / {} lossless tensors) -> {output}",
        stats.original_bytes as f64 / 1e6,
        stats.compressed_bytes as f64 / 1e6,
        stats.ratio(),
        stats.lossy_tensors,
        stats.lossless_tensors,
    ))
}

fn decompress(args: &[String]) -> Outcome {
    let (Some(input), Some(output)) = (args.first(), args.get(1)) else {
        return Outcome::fail(USAGE.to_string());
    };
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => return Outcome::fail(format!("cannot read {input}: {e}")),
    };
    let (dict, config) = match FedSz::decompress_with_config(&bytes) {
        Ok(d) => d,
        Err(e) => return Outcome::fail(format!("{input} is not a FedSZ stream: {e}")),
    };
    if let Err(e) = std::fs::write(output, dict.to_bytes()) {
        return Outcome::fail(format!("cannot write {output}: {e}"));
    }
    Outcome::ok(format!(
        "restored {} tensors ({:.2} MB) compressed with {}+{} @ {} -> {output}",
        dict.len(),
        dict.byte_size() as f64 / 1e6,
        config.lossy.name(),
        config.lossless.name(),
        config.error_bound,
    ))
}

fn inspect(args: &[String]) -> Outcome {
    let Some(input) = args.first() else {
        return Outcome::fail(USAGE.to_string());
    };
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => return Outcome::fail(format!("cannot read {input}: {e}")),
    };
    let mut report = String::new();
    if let Ok(dict) = StateDict::from_bytes(&bytes) {
        let _ = writeln!(
            report,
            "{input}: state dict, {} tensors, {} elements, {:.2} MB",
            dict.len(),
            dict.total_elements(),
            dict.byte_size() as f64 / 1e6
        );
        for (name, tensor) in dict.iter().take(12) {
            let _ = writeln!(report, "  {name}: {:?}", tensor.shape());
        }
        if dict.len() > 12 {
            let _ = writeln!(report, "  ... and {} more", dict.len() - 12);
        }
        return Outcome::ok(report);
    }
    match FedSz::decompress_with_config(&bytes) {
        Ok((dict, config)) => {
            let _ = writeln!(
                report,
                "{input}: FedSZ stream ({} bytes), {}+{} @ {}, threshold {}",
                bytes.len(),
                config.lossy.name(),
                config.lossless.name(),
                config.error_bound,
                config.threshold,
            );
            let _ = writeln!(
                report,
                "  decodes to {} tensors / {} elements ({:.2} MB, ratio {:.2}x)",
                dict.len(),
                dict.total_elements(),
                dict.byte_size() as f64 / 1e6,
                dict.byte_size() as f64 / bytes.len() as f64,
            );
            Outcome::ok(report)
        }
        Err(e) => Outcome::fail(format!("{input}: unrecognized format ({e})")),
    }
}

/// Test helper: a scratch file path in the OS temp dir.
pub fn temp_path(tag: &str) -> String {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    dir.join(format!("fedsz-cli-{pid}-{tag}")).to_string_lossy().into_owned()
}

/// Removes scratch files, ignoring errors.
pub fn cleanup(paths: &[&str]) {
    for p in paths {
        let _ = std::fs::remove_file(Path::new(p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runv(args: &[&str]) -> Outcome {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_unknown_commands() {
        assert_eq!(runv(&["--help"]).code, 0);
        assert_ne!(runv(&["frobnicate"]).code, 0);
        assert_ne!(runv(&[]).code, 0);
    }

    #[test]
    fn full_pipeline_via_cli() {
        let fsd = temp_path("gen.fsd");
        let fsz = temp_path("packed.fsz");
        let back = temp_path("restored.fsd");

        let out = runv(&["gen", "mobilenetv2", &fsd, "--seed", "7", "--scale", "0.02"]);
        assert_eq!(out.code, 0, "{}", out.report);

        let out = runv(&["compress", &fsd, &fsz, "--eb", "1e-3", "--lossy", "sz3"]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("ratio"));

        let out = runv(&["decompress", &fsz, &back]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("SZ3"));

        let original = StateDict::from_bytes(&std::fs::read(&fsd).unwrap()).unwrap();
        let restored = StateDict::from_bytes(&std::fs::read(&back).unwrap()).unwrap();
        assert_eq!(original.len(), restored.len());

        let out = runv(&["inspect", &fsz]);
        assert_eq!(out.code, 0);
        assert!(out.report.contains("FedSZ stream"));
        let out = runv(&["inspect", &fsd]);
        assert_eq!(out.code, 0);
        assert!(out.report.contains("state dict"));

        cleanup(&[&fsd, &fsz, &back]);
    }

    #[test]
    fn bad_inputs_fail_cleanly() {
        assert_ne!(runv(&["gen", "vgg", "/tmp/x.fsd"]).code, 0);
        assert_ne!(runv(&["gen", "alexnet", "/tmp/x.fsd", "--scale", "2.0"]).code, 0);
        assert_ne!(runv(&["compress", "/nonexistent.fsd", "/tmp/y.fsz"]).code, 0);
        assert_ne!(runv(&["decompress", "/nonexistent.fsz", "/tmp/y.fsd"]).code, 0);
        assert_ne!(runv(&["inspect", "/nonexistent"]).code, 0);
        let junk = temp_path("junk");
        std::fs::write(&junk, b"not a recognized format at all").unwrap();
        assert_ne!(runv(&["inspect", &junk]).code, 0);
        assert_ne!(runv(&["compress", &junk, "/tmp/z.fsz"]).code, 0);
        cleanup(&[&junk]);
    }

    #[test]
    fn codec_flags_are_validated() {
        let fsd = temp_path("flags.fsd");
        let out = runv(&["gen", "alexnet", &fsd, "--scale", "0.005"]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert_ne!(runv(&["compress", &fsd, "/tmp/a.fsz", "--lossy", "lz4"]).code, 0);
        assert_ne!(runv(&["compress", &fsd, "/tmp/a.fsz", "--lossless", "brotli"]).code, 0);
        assert_ne!(runv(&["compress", &fsd, "/tmp/a.fsz", "--eb", "abc"]).code, 0);
        cleanup(&[&fsd]);
    }
}
