//! Command-line interface for the FedSZ pipeline.
//!
//! Ships a `fedsz` binary with seven subcommands:
//!
//! * `fedsz gen <model> <out.fsd>` — generate a full-size model state
//!   dict (AlexNet / MobileNetV2 / ResNet50) for experimentation,
//! * `fedsz compress <in.fsd> <out.fsz>` — run the FedSZ pipeline,
//! * `fedsz decompress <in.fsz> <out.fsd>` — reverse it,
//! * `fedsz inspect <file>` — describe either format,
//! * `fedsz fl` — run a *simulated* federated session on the round
//!   engine, with per-client heterogeneous links, straggler/drop
//!   injection and synchronous or buffered-asynchronous aggregation,
//! * `fedsz serve` — run a *real* federated server: a blocking TCP
//!   listener that aggregates worker processes' updates (or, with
//!   `--shard`, an edge relay forwarding partial-sum frames upstream),
//! * `fedsz worker` — one real training client process, connecting to
//!   a `serve` over TCP.
//!
//! `fl`, `serve` and `worker` share one config parser for every flag
//! that shapes the *bits* of the run (seeds, data geometry, codec,
//! architecture), so a loopback `serve` + `worker` deployment prints
//! the same `global checksum` as the in-memory `fl` run — the
//! bit-parity contract the CI smoke job asserts across processes.
//! All three also accept `--config run.toml` ([`spec`]): a declarative
//! run spec whose keys are the same flags, with explicit command-line
//! flags overriding file values. Every configuration is validated
//! through [`FlConfig::plan`] before anything runs, so a bad spec
//! fails with a [`PlanError`](fedsz_fl::PlanError) message instead of
//! a clamp or a mid-round panic. `fl` and `serve` additionally emit
//! one shared machine-readable schema with `--json` ([`report`]).
//!
//! The library half exposes [`run`] so the whole surface is unit-tested
//! without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod spec;
pub mod sweep;

use fedsz::{ErrorBound, FedSz, FedSzConfig, LosslessKind, LossyKind};
use fedsz_data::DatasetKind;
use fedsz_fl::net::{global_checksum, run_worker, NetServer, Role, ServeConfig, WorkerConfig};
use fedsz_fl::{
    AggregationPolicy, DownlinkMode, DpMechanism, DpPolicy, Experiment, FlConfig, LinkProfile,
    PsumMode, StagePolicy, TreePlan,
};
use fedsz_net::MetricsServer;
use fedsz_nn::models::specs::ModelSpec;
use fedsz_nn::models::tiny::TinyArch;
use fedsz_nn::StateDict;
use fedsz_telemetry::Telemetry;
use report::{RoundRow, RunReport};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

/// Outcome of a CLI invocation: the text to print and the exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Human-readable report for stdout.
    pub report: String,
    /// Process exit code (0 = success).
    pub code: i32,
}

impl Outcome {
    fn ok(report: String) -> Self {
        Self { report, code: 0 }
    }

    fn fail(report: String) -> Self {
        Self { report, code: 2 }
    }
}

/// Usage text shown for `--help` and argument errors.
pub const USAGE: &str = "\
fedsz — error-bounded lossy compression for FL model updates

USAGE:
  fedsz gen <alexnet|mobilenetv2|resnet50> <out.fsd> [--seed N] [--scale F]
  fedsz compress <in.fsd> <out.fsz> [--eb REL] [--abs ABS] [--lossy sz2|sz3|szx|zfp]
                 [--lossless blosc-lz|zlib|gzip|zstd|xz] [--threshold N]
  fedsz decompress <in.fsz> <out.fsd>
  fedsz inspect <file>
  fedsz fl [--config FILE] [--json] [--clients N] [--rounds N]
           [--arch alexnet|mobilenetv2|resnet]
           [--participation F] [--bandwidth MBPS] [--links MBPS,MBPS,...]
           [--latency MS] [--straggler ID:FACTOR]... [--drop ID:PROB]...
           [--policy sync|buffered:K] [--adaptive] [--non-iid ALPHA]
           [--weighted] [--no-compress] [--seed N] [--train-per-class N]
           [--shards S] [--tree F1xF2x...] [--psum raw|lossless|auto]
           [--downlink raw|fedsz|auto] [--uplink CODEC] [--threads N]
           [--dp-clip F] [--dp-noise F] [--dp-mechanism gaussian|laplace]
           [--dp-seed N] [--trace FILE]
  fedsz sweep <SPEC.toml|DIR> [--json [FILE]] [--threads N]
  fedsz serve [--config FILE] [--json] [--bind ADDR] [--clients N]
              [--rounds N] [--seed N]
              [--train-per-class N] [--arch ...] [--no-compress]
              [--downlink raw|fedsz] [--uplink CODEC] [--shards S]
              [--psum raw|lossless]
              [--dp-clip F] [--dp-noise F]
              [--dp-mechanism gaussian|laplace] [--dp-seed N]
              [--shard I --connect ADDR] [--accept-timeout SECS]
              [--round-timeout SECS] [--reconnect-grace SECS]
              [--max-sessions N] [--fail-at-round R] [--threads N]
              [--trace FILE] [--metrics-addr ADDR]
  fedsz worker --id K [--config FILE] [--connect ADDR] [--clients N]
               [--rounds N] [--seed N] [--train-per-class N] [--arch ...]
               [--no-compress] [--adaptive] [--uplink CODEC]
               [--dp-clip F] [--dp-noise F]
               [--dp-mechanism gaussian|laplace] [--dp-seed N]
               [--fallback ADDR] [--retries N] [--drop-at-round R]
               [--timeout SECS] [--trace FILE]

`fedsz fl` runs a federated session on the shared round engine. With
--links each client gets its own simulated uplink (comm time comes from
the virtual-time event queue, so fast links overlap instead of queueing
on one pipe); --straggler slows a client's compute; --policy buffered:K
aggregates after the first K arrivals and applies stragglers stale.
--shards S aggregates through a two-level tree of S edge aggregators
(bit-identical to the flat server, but root ingress drops to S
partial-sum frames); --tree 4x8 builds an arbitrary-depth hierarchy
(4 mid-tier nodes over 32 leaves, still bit-identical); --psum
lossless compresses the inter-aggregator partial-sum frames with the
byte-shuffle codec, --psum auto decides per edge with Eqn 1.
--downlink fedsz FedSZ-encodes the broadcast once per round,
--downlink auto applies Eqn 1 with a raw fallback. --uplink picks the
upload codec family: raw, lossy, adaptive, topk:RATIO (Top-K delta
sparsification, e.g. topk:0.01), q4/q8 (linear quantization; q4s/q8s
stochastic), or auto (Eqn 1 prices lossy vs topk:0.01 vs q8 per link
and picks the fastest, probing unmeasured families first). Appending
+ef (topk:0.01+ef, q8+ef) adds per-client error feedback: mass the
codec dropped re-enters the next round's delta. EF keeps state across
rounds, so it is rejected with --policy buffered:K and by
serve/worker. --threads N sets
the tree's merge worker-pool width (default: host parallelism); it
changes wall-clock only — any width produces identical bits.
--dp-clip C turns on the differential-privacy stage: each client's
update delta is clipped to L2 norm <= C, then per-element noise of
scale sigma = C x --dp-noise is added (--dp-mechanism picks gaussian
or laplace) BEFORE the uplink codec sees the update — so compression
ratios, Eqn-1 decisions and accuracy all feel the noise, which is
the trade-off the paper's Section VII-D is about. The noise stream
is derived from (--dp-seed, round, client id) alone — stateless, so
it is legal under buffered aggregation and on socket workers, and
every runtime produces identical bits. --dp-seed defaults to --seed;
--dp-noise 0 means clip-only.

`fedsz sweep` executes a grid of `fl` scenarios from one spec file: a
flat run spec plus a [matrix] table whose keys are run-spec keys and
whose values are arrays (dp-noise = [0.0, 0.5], uplink =
[\"topk:0.01\", \"q8\"]). Axes expand cross-product style in
declaration order with the last axis varying fastest; every expanded
cell's plan is validated before any cell runs (a bad cell fails the
whole sweep up front, naming the cell); each cell derives its seed
from the base seed and its cell index — cell 0 keeps the base seed
exactly, so a one-cell sweep is bit-identical to the equivalent
`fedsz fl` run. Cells execute across a worker pool (--threads N,
default host parallelism) and the merged fedsz.sweep_report.v1
document (--json [FILE]; stdout without FILE) embeds every cell's
coordinates, seed and full run_report.v2 rows, plus the Pareto front
over final accuracy / total uplink bytes / virtual time. Passing a
directory instead of a file sweeps every *.toml inside it, one cell
per spec.

`fedsz serve` + `fedsz worker` run the SAME round across real
processes over TCP: `serve` listens (default 127.0.0.1:7070), waits
for every worker's Join, then drives rounds of framed broadcast →
barrier → exact aggregation, evicting children that miss the round
timeout. With --shards S the root expects S relay servers instead of
workers; each relay runs `fedsz serve --shard I --connect ROOT` and
forwards one PartialSum[Compressed] frame per round. Config flags that
shape the bits (seed, data, arch, codec) must match across every
process; both `fl` and `serve` print a `global checksum` line so
parity is a diff away. A worker with --adaptive applies Eqn 1 to its
own MEASURED send bandwidth and codec times instead of a simulated
link profile.

Membership is elastic: `serve` runs a single-threaded poll(2) reactor
(one event loop handles every session; --max-sessions caps them), so
a dropped worker is evicted from the round but its seat survives — a
worker that reconnects within --reconnect-grace resumes by resending
its cached update, bit-parity intact. Workers retry with bounded
id-jittered backoff (--retries attempts per outage) and fail over to
--fallback (usually the root) when their relay stops answering; a
sharded root adopts a dead relay's orphans using the shard plan.
--fail-at-round / --drop-at-round are fault-injection knobs for churn
tests: a relay exits after forwarding round R's broadcast; a worker
drops (and resumes) its session on receiving round R.

`fl`, `serve` and `worker` all accept --config FILE: a flat TOML
run spec whose keys are these flags (clients = 8, tree = \"2x4\",
weighted = true, straggler = [\"0:4\"]...). Explicit flags override
file values, so one spec can drive a whole fleet while each process
sets only --id/--bind/--connect (see examples/configs/). Every
configuration is validated up front — out-of-range shard counts,
contradictory topology, bad participation and the like fail with an
actionable message before anything runs. `fl` and `serve` emit one
shared stable JSON schema (fedsz.run_report.v2: per-round metrics
columns, per-level merge nanos and Eqn-1 decision records, plus the
global checksum) with --json.

Observability: --trace FILE writes a Chrome-trace-format JSONL stream
(schema fedsz.trace.v1, loadable in chrome://tracing or Perfetto) of
engine stage spans, per-level merge spans and eqn1.decision events;
it never changes the bits — a traced run prints the same global
checksum as an untraced one. `serve --metrics-addr ADDR` additionally
exposes a Prometheus text endpoint (session, eviction and frame-byte
counters) for the life of the process. FEDSZ_LOG=debug|info|warn sets
the stderr log level (default info).
";

/// Executes a CLI invocation (argv without the program name).
pub fn run(args: &[String]) -> Outcome {
    // The run subcommands accept declarative specs: `--config FILE`
    // expands to the file's equivalent flags, appended after the
    // explicit ones so the command line wins.
    let with_spec = |f: fn(&[String]) -> Outcome, args: &[String]| match spec::expand_config(args) {
        Ok(expanded) => f(&expanded),
        Err(e) => Outcome::fail(e),
    };
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("compress") => compress(&args[1..]),
        Some("decompress") => decompress(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("fl") => with_spec(fl, &args[1..]),
        Some("serve") => with_spec(serve, &args[1..]),
        Some("worker") => with_spec(worker, &args[1..]),
        // `sweep` owns its spec handling: the spec file is the
        // positional argument and may carry a [matrix] table the flat
        // --config expansion rejects.
        Some("sweep") => sweep::sweep(&args[1..]),
        Some("--help") | Some("-h") => Outcome::ok(USAGE.to_string()),
        _ => Outcome::fail(USAGE.to_string()),
    }
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Every value of a repeatable `--key v` flag, in order.
fn flag_values<'a>(args: &'a [String], key: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == key)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn gen(args: &[String]) -> Outcome {
    let (Some(model), Some(out)) = (args.first(), args.get(1)) else {
        return Outcome::fail(USAGE.to_string());
    };
    let Some(spec) = ModelSpec::by_name(model) else {
        return Outcome::fail(format!(
            "unknown model `{model}`; try alexnet, mobilenetv2, resnet50"
        ));
    };
    let seed: u64 = match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(42),
        Err(_) => return Outcome::fail("--seed expects an integer".into()),
    };
    let scale: f64 = match flag_value(args, "--scale").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(1.0),
        Err(_) => return Outcome::fail("--scale expects a number".into()),
    };
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Outcome::fail("--scale must be in (0, 1]".into());
    }
    let dict =
        if scale < 1.0 { spec.instantiate_scaled(seed, scale) } else { spec.instantiate(seed) };
    if let Err(e) = std::fs::write(out, dict.to_bytes()) {
        return Outcome::fail(format!("cannot write {out}: {e}"));
    }
    Outcome::ok(format!(
        "wrote {} ({} tensors, {:.1} MB) to {out}",
        spec.name(),
        dict.len(),
        dict.byte_size() as f64 / 1e6
    ))
}

fn parse_lossy(name: &str) -> Option<LossyKind> {
    match name.to_ascii_lowercase().as_str() {
        "sz2" => Some(LossyKind::Sz2),
        "sz3" => Some(LossyKind::Sz3),
        "szx" => Some(LossyKind::Szx),
        "zfp" => Some(LossyKind::Zfp),
        _ => None,
    }
}

fn parse_lossless(name: &str) -> Option<LosslessKind> {
    match name.to_ascii_lowercase().as_str() {
        "blosc-lz" | "blosclz" => Some(LosslessKind::BloscLz),
        "zlib" => Some(LosslessKind::Zlib),
        "gzip" => Some(LosslessKind::Gzip),
        "zstd" => Some(LosslessKind::Zstd),
        "xz" => Some(LosslessKind::Xz),
        _ => None,
    }
}

fn compress(args: &[String]) -> Outcome {
    let (Some(input), Some(output)) = (args.first(), args.get(1)) else {
        return Outcome::fail(USAGE.to_string());
    };
    let mut config = FedSzConfig::default();
    if let Some(eb) = flag_value(args, "--eb") {
        match eb.parse::<f64>() {
            Ok(v) => config.error_bound = ErrorBound::Relative(v),
            Err(_) => return Outcome::fail("--eb expects a number (relative bound)".into()),
        }
    }
    if let Some(eb) = flag_value(args, "--abs") {
        match eb.parse::<f64>() {
            Ok(v) => config.error_bound = ErrorBound::Absolute(v),
            Err(_) => return Outcome::fail("--abs expects a number (absolute bound)".into()),
        }
    }
    if let Some(name) = flag_value(args, "--lossy") {
        match parse_lossy(name) {
            Some(kind) => config.lossy = kind,
            None => return Outcome::fail(format!("unknown lossy codec `{name}`")),
        }
    }
    if let Some(name) = flag_value(args, "--lossless") {
        match parse_lossless(name) {
            Some(kind) => config.lossless = kind,
            None => return Outcome::fail(format!("unknown lossless codec `{name}`")),
        }
    }
    if let Some(t) = flag_value(args, "--threshold") {
        match t.parse::<usize>() {
            Ok(v) => config.threshold = v,
            Err(_) => return Outcome::fail("--threshold expects an integer".into()),
        }
    }
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => return Outcome::fail(format!("cannot read {input}: {e}")),
    };
    let dict = match StateDict::from_bytes(&bytes) {
        Ok(d) => d,
        Err(e) => return Outcome::fail(format!("{input} is not a state dict: {e}")),
    };
    let packed = match FedSz::new(config).compress(&dict) {
        Ok(p) => p,
        Err(e) => return Outcome::fail(format!("compression failed: {e}")),
    };
    let stats = *packed.stats();
    if let Err(e) = std::fs::write(output, packed.bytes()) {
        return Outcome::fail(format!("cannot write {output}: {e}"));
    }
    Outcome::ok(format!(
        "{:.2} MB -> {:.2} MB (ratio {:.2}x, {} lossy / {} lossless tensors) -> {output}",
        stats.original_bytes as f64 / 1e6,
        stats.compressed_bytes as f64 / 1e6,
        stats.ratio(),
        stats.lossy_tensors,
        stats.lossless_tensors,
    ))
}

fn decompress(args: &[String]) -> Outcome {
    let (Some(input), Some(output)) = (args.first(), args.get(1)) else {
        return Outcome::fail(USAGE.to_string());
    };
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => return Outcome::fail(format!("cannot read {input}: {e}")),
    };
    let (dict, config) = match FedSz::decompress_with_config(&bytes) {
        Ok(d) => d,
        Err(e) => return Outcome::fail(format!("{input} is not a FedSZ stream: {e}")),
    };
    if let Err(e) = std::fs::write(output, dict.to_bytes()) {
        return Outcome::fail(format!("cannot write {output}: {e}"));
    }
    Outcome::ok(format!(
        "restored {} tensors ({:.2} MB) compressed with {}+{} @ {} -> {output}",
        dict.len(),
        dict.byte_size() as f64 / 1e6,
        config.lossy.name(),
        config.lossless.name(),
        config.error_bound,
    ))
}

fn inspect(args: &[String]) -> Outcome {
    let Some(input) = args.first() else {
        return Outcome::fail(USAGE.to_string());
    };
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => return Outcome::fail(format!("cannot read {input}: {e}")),
    };
    let mut report = String::new();
    if let Ok(dict) = StateDict::from_bytes(&bytes) {
        let _ = writeln!(
            report,
            "{input}: state dict, {} tensors, {} elements, {:.2} MB",
            dict.len(),
            dict.total_elements(),
            dict.byte_size() as f64 / 1e6
        );
        for (name, tensor) in dict.iter().take(12) {
            let _ = writeln!(report, "  {name}: {:?}", tensor.shape());
        }
        if dict.len() > 12 {
            let _ = writeln!(report, "  ... and {} more", dict.len() - 12);
        }
        return Outcome::ok(report);
    }
    match FedSz::decompress_with_config(&bytes) {
        Ok((dict, config)) => {
            let _ = writeln!(
                report,
                "{input}: FedSZ stream ({} bytes), {}+{} @ {}, threshold {}",
                bytes.len(),
                config.lossy.name(),
                config.lossless.name(),
                config.error_bound,
                config.threshold,
            );
            let _ = writeln!(
                report,
                "  decodes to {} tensors / {} elements ({:.2} MB, ratio {:.2}x)",
                dict.len(),
                dict.total_elements(),
                dict.byte_size() as f64 / 1e6,
                dict.byte_size() as f64 / bytes.len() as f64,
            );
            Outcome::ok(report)
        }
        Err(e) => Outcome::fail(format!("{input}: unrecognized format ({e})")),
    }
}

fn parse_arch(name: &str) -> Option<TinyArch> {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Some(TinyArch::AlexNet),
        "mobilenetv2" | "mobilenet" => Some(TinyArch::MobileNetV2),
        "resnet" | "resnet50" => Some(TinyArch::ResNet),
        _ => None,
    }
}

/// Parses repeatable `ID:VALUE` flags into `(client, value)` pairs.
/// Parses an `--uplink` codec spec into its [`StagePolicy`]: `raw`,
/// `lossy`, `adaptive`, `topk:RATIO[+ef]`, `q4[s][+ef]`, `q8[s][+ef]`
/// or `auto` (an [`StagePolicy::AutoFamily`] over lossy, `topk:0.01`
/// and `q8`, priced per link with Eqn 1). `+ef` turns on per-client
/// error feedback — legal only in the simulator, and rejected with a
/// typed plan error under buffered aggregation or socket workers.
fn parse_uplink(spec: &str, compression: Option<FedSzConfig>) -> Result<StagePolicy, String> {
    let lower = spec.to_ascii_lowercase();
    let (base, ef) = match lower.strip_suffix("+ef") {
        Some(base) => (base, true),
        None => (lower.as_str(), false),
    };
    let need_codec = |name: &str| {
        compression
            .ok_or_else(|| format!("--uplink {name} requires compression (drop --no-compress)"))
    };
    if !ef {
        match base {
            "raw" => return Ok(StagePolicy::Raw),
            "lossy" | "fedsz" => return Ok(StagePolicy::Lossy(need_codec(base)?)),
            "adaptive" | "eqn1" => {
                return Ok(StagePolicy::Adaptive {
                    compressed: Box::new(StagePolicy::Lossy(need_codec(base)?)),
                })
            }
            "auto" => {
                // EF candidates are illegal under AutoFamily (a
                // residual has no meaning when the codec changes per
                // round), so the default slate is EF-free.
                let mut candidates = Vec::new();
                if let Some(cfg) = compression {
                    candidates.push(StagePolicy::Lossy(cfg));
                }
                candidates.push(StagePolicy::TopK { ratio: 0.01, error_feedback: false });
                candidates.push(StagePolicy::Quant {
                    bits: 8,
                    stochastic: false,
                    error_feedback: false,
                });
                return Ok(StagePolicy::AutoFamily { candidates });
            }
            _ => {}
        }
    }
    if let Some(ratio) = base.strip_prefix("topk:") {
        let ratio: f64 = ratio.parse().map_err(|_| {
            format!("--uplink topk expects a keep ratio, e.g. topk:0.01, got `{spec}`")
        })?;
        return Ok(StagePolicy::TopK { ratio, error_feedback: ef });
    }
    let quant = match base {
        "q4" => Some((4, false)),
        "q4s" => Some((4, true)),
        "q8" => Some((8, false)),
        "q8s" => Some((8, true)),
        _ => None,
    };
    if let Some((bits, stochastic)) = quant {
        return Ok(StagePolicy::Quant { bits, stochastic, error_feedback: ef });
    }
    Err(format!(
        "unknown uplink codec `{spec}`; try raw, lossy, adaptive, topk:RATIO[+ef], \
         q4[s][+ef], q8[s][+ef], auto"
    ))
}

fn parse_client_pairs(values: &[&str], flag: &str) -> Result<Vec<(usize, f64)>, String> {
    values
        .iter()
        .map(|spec| {
            let (id, value) = spec
                .split_once(':')
                .ok_or_else(|| format!("{flag} expects ID:VALUE, got `{spec}`"))?;
            let id = id.parse::<usize>().map_err(|_| format!("{flag}: bad client id `{id}`"))?;
            let value = value.parse::<f64>().map_err(|_| format!("{flag}: bad value `{value}`"))?;
            Ok((id, value))
        })
        .collect()
}

/// Parses a numeric `--key value` flag, falling back to `default`.
fn parse_flag<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match flag_value(args, key).map(str::parse::<T>).transpose() {
        Ok(v) => Ok(v.unwrap_or(default)),
        Err(_) => Err(format!("{key} expects a number")),
    }
}

/// Parses the flags shared by `fl`, `serve` and `worker`: everything
/// that shapes the *bits* of the run (cohort and data geometry, seeds,
/// architecture, codec, topology, downlink/psum modes). Multi-process
/// deployments must pass identical values of these to every process;
/// parsing them in one place is what lets the `serve`/`worker`
/// checksum be compared against the in-memory `fl` run's.
fn shared_fl_config(args: &[String]) -> Result<FlConfig, String> {
    let clients: usize = parse_flag(args, "--clients", 4)?;
    let rounds: usize = parse_flag(args, "--rounds", 5)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let train_per_class: usize = parse_flag(args, "--train-per-class", 8)?;
    if clients == 0 || rounds == 0 {
        return Err("--clients and --rounds must be positive".into());
    }
    let arch = match flag_value(args, "--arch") {
        None => TinyArch::AlexNet,
        Some(name) => match parse_arch(name) {
            Some(a) => a,
            None => return Err(format!("unknown arch `{name}`")),
        },
    };

    let mut config = FlConfig::paper_default(arch, DatasetKind::Cifar10Like);
    config.clients = clients;
    config.rounds = rounds;
    config.seed = seed;
    config.data.seed = seed;
    config.data.train_per_class = train_per_class;
    config.data.test_per_class = (train_per_class / 2).max(2);
    config.data.resolution = 16;
    if args.iter().any(|a| a == "--no-compress") {
        config.compression = None;
    }
    if let Some(alpha) = flag_value(args, "--non-iid") {
        match alpha.parse::<f64>() {
            Ok(a) if a > 0.0 => config.non_iid_alpha = Some(a),
            _ => return Err("--non-iid expects a positive Dirichlet alpha".into()),
        }
    }
    let has_shards = flag_value(args, "--shards").is_some();
    let has_tree = flag_value(args, "--tree").is_some();
    if has_shards && has_tree {
        return Err("contradictory topology flags: --shards and --tree both set; \
                    pick one (--tree S is the two-level equivalent of --shards S)"
            .into());
    }
    if let Some(shards) = flag_value(args, "--shards") {
        match shards.parse::<usize>() {
            Ok(s) if s > 0 => config.shards = Some(s),
            _ => return Err("--shards expects a positive shard count".into()),
        }
    }
    if let Some(spec) = flag_value(args, "--tree") {
        match TreePlan::parse_fanouts(spec) {
            Ok(fanouts) => config.tree = Some(fanouts),
            Err(e) => return Err(format!("--tree: {e}")),
        }
    }
    if let Some(mode) = flag_value(args, "--psum") {
        config.psum = match mode.to_ascii_lowercase().as_str() {
            "raw" => PsumMode::Raw,
            "lossless" => PsumMode::Lossless,
            "auto" | "adaptive" => PsumMode::Adaptive,
            other => return Err(format!("unknown psum mode `{other}`; try raw, lossless, auto")),
        };
        if config.psum != PsumMode::Raw && config.tree_fanouts().is_none() {
            return Err("--psum needs an aggregation tree (--shards or --tree)".into());
        }
    }
    if let Some(mode) = flag_value(args, "--downlink") {
        config.downlink = match mode.to_ascii_lowercase().as_str() {
            "raw" => DownlinkMode::Raw,
            "fedsz" => DownlinkMode::Compressed,
            "auto" | "adaptive" => DownlinkMode::Adaptive,
            other => return Err(format!("unknown downlink mode `{other}`; try raw, fedsz, auto")),
        };
        if config.downlink != DownlinkMode::Raw && config.compression.is_none() {
            return Err("--downlink fedsz/auto requires compression (drop --no-compress)".into());
        }
    }
    // The uplink codec family, overriding the legacy
    // compression/adaptive pair entirely (FlConfig.uplink wins in
    // plan()); parsed here so `fl`, `serve` and `worker` agree.
    if let Some(spec) = flag_value(args, "--uplink") {
        config.uplink = Some(parse_uplink(spec, config.compression)?);
    }
    // The DP stage: --dp-clip is the switch (a clip bound is the one
    // part a DP deployment cannot omit); the other dp flags refine it
    // and are rejected alone so a spec that forgot the clip fails
    // loudly instead of silently running without privacy.
    let dp_noise = flag_value(args, "--dp-noise");
    let dp_mechanism = flag_value(args, "--dp-mechanism");
    let dp_seed = flag_value(args, "--dp-seed");
    match flag_value(args, "--dp-clip") {
        None => {
            if dp_noise.is_some() || dp_mechanism.is_some() || dp_seed.is_some() {
                return Err("--dp-noise/--dp-mechanism/--dp-seed need --dp-clip \
                            (the clip bound is what turns the DP stage on)"
                    .into());
            }
        }
        Some(clip) => {
            let clip_norm: f64 = clip
                .parse()
                .map_err(|_| "--dp-clip expects a number (the L2 clip bound)".to_string())?;
            let noise_multiplier: f64 = match dp_noise {
                None => 0.0, // clip-only
                Some(v) => v.parse().map_err(|_| {
                    "--dp-noise expects a number (the noise multiplier)".to_string()
                })?,
            };
            let mechanism = match dp_mechanism {
                None => DpMechanism::Gaussian,
                Some(name) => DpMechanism::parse(name).ok_or_else(|| {
                    format!("unknown DP mechanism `{name}`; try gaussian or laplace")
                })?,
            };
            let seed = match dp_seed {
                // The run seed, so one spec keeps every process's
                // noise stream aligned by default.
                None => seed,
                Some(v) => v.parse().map_err(|_| "--dp-seed expects an integer".to_string())?,
            };
            config.dp = Some(DpPolicy { clip_norm, noise_multiplier, mechanism, seed });
        }
    }
    // Execution width, not semantics: the aggregation tree merges its
    // leaves/levels on this many worker threads (default: the host's
    // available parallelism). Any width produces identical bits, so
    // multi-process peers need not agree on it.
    if let Some(threads) = flag_value(args, "--threads") {
        match threads.parse::<usize>() {
            Ok(t) if t > 0 => config.worker_threads = Some(t),
            _ => return Err("--threads expects a positive worker-thread count".into()),
        }
    }
    Ok(config)
}

/// Assembles the full simulator configuration — the shared bit-shaping
/// flags plus the simulator-only knobs (participation, links,
/// stragglers, drops, aggregation policy) — and validates it through
/// the plan. `fl` and every `sweep` cell go through this one function,
/// which is what makes a sweep cell exactly an `fl` run.
fn simulator_config(args: &[String]) -> Result<FlConfig, String> {
    let mut config = shared_fl_config(args)?;
    let clients = config.clients;
    let participation: f64 = parse_flag(args, "--participation", 1.0)?;
    let bandwidth_mbps: f64 = parse_flag(args, "--bandwidth", 10.0)?;
    let latency_ms: f64 = parse_flag(args, "--latency", 0.0)?;
    if !(bandwidth_mbps.is_finite() && bandwidth_mbps > 0.0) {
        return Err("--bandwidth must be positive".into());
    }
    if !(participation.is_finite() && participation > 0.0 && participation <= 1.0) {
        return Err("--participation must be in (0, 1]".into());
    }
    if !(latency_ms.is_finite() && latency_ms >= 0.0) {
        return Err("--latency must be non-negative".into());
    }
    config.participation = participation;
    config.bandwidth_bps = Some(bandwidth_mbps * 1e6);
    config.weighted_aggregation = args.iter().any(|a| a == "--weighted");
    config.adaptive_compression = args.iter().any(|a| a == "--adaptive");

    // Per-client links: a bandwidth list plus straggler/drop injection.
    let stragglers = parse_client_pairs(&flag_values(args, "--straggler"), "--straggler")?;
    let drops = parse_client_pairs(&flag_values(args, "--drop"), "--drop")?;
    // --latency alone keeps the paper's shared pipe (with per-message
    // latency); only per-client knobs switch to dedicated links.
    config.latency_secs = latency_ms / 1e3;
    let heterogeneous =
        flag_value(args, "--links").is_some() || !stragglers.is_empty() || !drops.is_empty();
    if heterogeneous {
        let mut mbps: Vec<f64> = vec![bandwidth_mbps; clients];
        if let Some(list) = flag_value(args, "--links") {
            let parsed: Result<Vec<f64>, _> =
                list.split(',').map(|v| v.trim().parse::<f64>()).collect();
            match parsed {
                Ok(values) if !values.is_empty() => {
                    // Cycle the list so `--links 100,1` alternates fast/slow.
                    for (i, m) in mbps.iter_mut().enumerate() {
                        *m = values[i % values.len()];
                    }
                }
                _ => return Err("--links expects MBPS,MBPS,...".into()),
            }
        }
        let mut links: Vec<LinkProfile> = mbps
            .iter()
            .map(|&m| {
                if m > 0.0 && m.is_finite() {
                    Ok(LinkProfile::symmetric(m * 1e6).with_latency(latency_ms / 1e3))
                } else {
                    Err(format!("--links: bandwidth must be positive, got {m}"))
                }
            })
            .collect::<Result<_, _>>()?;
        for (id, factor) in stragglers {
            let Some(link) = links.get_mut(id) else {
                return Err(format!("--straggler: no client {id}"));
            };
            if !(factor.is_finite() && factor >= 1.0) {
                return Err("--straggler factor must be >= 1".into());
            }
            *link = link.with_slowdown(factor);
        }
        for (id, prob) in drops {
            let Some(link) = links.get_mut(id) else {
                return Err(format!("--drop: no client {id}"));
            };
            if !(0.0..=1.0).contains(&prob) {
                return Err("--drop probability must be in [0, 1]".into());
            }
            *link = link.with_drop_prob(prob);
        }
        config.links = Some(links);
    }

    if let Some(policy) = flag_value(args, "--policy") {
        config.aggregation = match policy.to_ascii_lowercase().as_str() {
            "sync" | "synchronous" => AggregationPolicy::Synchronous,
            other => match other.strip_prefix("buffered:").map(str::parse::<usize>) {
                Some(Ok(k)) if k > 0 => AggregationPolicy::Buffered { target: k },
                _ => return Err(format!("unknown policy `{policy}`; try sync or buffered:K")),
            },
        };
    }

    // One validation pass over the assembled configuration: anything
    // the targeted flag checks above missed (out-of-range shard
    // counts, contradictory topology, link-list mismatches) fails
    // here with the plan's actionable message instead of a panic.
    if let Err(e) = config.plan() {
        return Err(format!("invalid configuration: {e}"));
    }
    Ok(config)
}

fn fl(args: &[String]) -> Outcome {
    let config = match simulator_config(args) {
        Ok(config) => config,
        Err(e) => return Outcome::fail(e),
    };
    let clients = config.clients;
    let arch = config.arch;

    // A tree implies per-client last miles into the leaves (the tree
    // topology), even when no explicit link list was given.
    let fanouts = config.tree_fanouts();
    let topology = if config.links.is_some() {
        "per-client links"
    } else if fanouts.is_some() {
        "per-client last miles"
    } else {
        "shared pipe"
    };
    let server = match &fanouts {
        Some(f) if f.len() == 1 => format!("{}-shard tree", f[0]),
        Some(f) => format!(
            "depth-{} tree ({})",
            f.len() + 1,
            f.iter().map(usize::to_string).collect::<Vec<_>>().join("x")
        ),
        None => "flat server".to_string(),
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "fl: {clients} clients, {} rounds, {:?} on {topology}, {server}, policy {:?}, downlink {:?}, psum {}",
        config.rounds, arch, config.aggregation, config.downlink, config.psum.name()
    );
    let _ = writeln!(
        report,
        "round    acc%  train(s)  codec(s)  comm(s)  round(s)     upKB   downKB  ratio  agg  stale  drop"
    );
    let json = args.iter().any(|a| a == "--json");
    let telemetry = match telemetry_from_args(args, false) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(e),
    };
    let mut experiment = Experiment::new(config).with_telemetry(telemetry.clone());
    let metrics = experiment.run();
    let checksum = global_checksum(experiment.global_state());
    telemetry.flush();
    if json {
        // RoundRow::simulator owns the fills-vs-nulls column contract.
        let rounds = metrics.iter().map(RoundRow::simulator).collect();
        let report = RunReport { command: "fl", clients, rounds, checksum: Some(checksum) };
        return Outcome::ok(report.to_json());
    }
    for m in &metrics {
        let _ = writeln!(
            report,
            "{:>5}  {:>5.1}  {:>8.3}  {:>8.3}  {:>7.3}  {:>8.3}  {:>7.1}  {:>7.1}  {:>5.2}  {:>3}  {:>5}  {:>4}",
            m.round + 1,
            m.test_accuracy * 100.0,
            m.train_secs,
            m.compress_secs + m.decompress_secs,
            m.comm_secs,
            m.round_secs,
            m.upstream_bytes as f64 / 1e3,
            m.downstream_bytes as f64 / 1e3,
            m.ratio,
            m.aggregated_updates,
            m.stale_updates,
            m.dropped_updates,
        );
    }
    let total_comm: f64 = metrics.iter().map(|m| m.comm_secs).sum();
    let total_round: f64 = metrics.iter().map(|m| m.round_secs).sum();
    let _ = writeln!(
        report,
        "total simulated comm {total_comm:.3}s, virtual session time {total_round:.3}s"
    );
    let total_down: usize = metrics.iter().map(|m| m.downstream_bytes).sum();
    let total_up: usize = metrics.iter().map(|m| m.upstream_bytes).sum();
    let root_in: usize = metrics.iter().map(|m| m.root_ingress_bytes).sum();
    let root_out: usize = metrics.iter().map(|m| m.root_egress_bytes).sum();
    let n = metrics.len().max(1) as f64;
    let downlink_ratio: f64 = metrics.iter().map(|m| m.downlink_ratio).sum::<f64>() / n;
    let psum_ratio: f64 = metrics.iter().map(|m| m.psum_ratio).sum::<f64>() / n;
    let _ = writeln!(
        report,
        "bytes: up {:.1} KB, down {:.1} KB (downlink ratio {downlink_ratio:.2}x); root ingress {:.1} KB (psum ratio {psum_ratio:.2}x), egress {:.1} KB",
        total_up as f64 / 1e3,
        total_down as f64 / 1e3,
        root_in as f64 / 1e3,
        root_out as f64 / 1e3,
    );
    // The bit-parity fingerprint a loopback `serve` + `worker` run of
    // the same config must reproduce.
    let _ = writeln!(report, "global checksum: 0x{checksum:08x}");
    Outcome::ok(report)
}

/// Rejects flags the socket runtime cannot honor. Several of them
/// shape the bits of the run (`--weighted` changes aggregation
/// weights, `--participation` the cohort, `--policy` the barrier,
/// `--drop` loses uploads), so silently ignoring them would let a
/// `serve`/`worker` deployment print a checksum that can never match
/// the `fl` run it claims to mirror; the rest price a simulated
/// network that does not exist here.
fn reject_simulator_flags(args: &[String], subcommand: &str, extra: &[&str]) -> Result<(), String> {
    let simulator_only = [
        "--weighted",
        "--participation",
        "--policy",
        "--links",
        "--straggler",
        "--drop",
        "--bandwidth",
        "--latency",
    ];
    for flag in simulator_only.iter().chain(extra) {
        if args.iter().any(|a| a == flag) {
            return Err(format!(
                "{flag} is simulator-only: `fedsz {subcommand}` cannot honor it (use `fedsz fl`)"
            ));
        }
    }
    Ok(())
}

/// Builds the invocation's telemetry handle: `--trace FILE` opens the
/// Chrome-trace JSONL writer, `require_registry` (serve's
/// `--metrics-addr` without a trace file) turns on the in-memory
/// counter registry alone, and otherwise the handle stays disabled —
/// a no-op off the hot path.
fn telemetry_from_args(args: &[String], require_registry: bool) -> Result<Telemetry, String> {
    match flag_value(args, "--trace") {
        Some(path) => Telemetry::with_trace(Path::new(path))
            .map_err(|e| format!("cannot open trace file {path}: {e}")),
        None if require_registry => Ok(Telemetry::enabled()),
        None => Ok(Telemetry::disabled()),
    }
}

/// Parses a `--key SECS` duration flag.
fn parse_secs(args: &[String], key: &str, default: f64) -> Result<Duration, String> {
    let secs: f64 = match flag_value(args, key).map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(default),
        Err(_) => return Err(format!("{key} expects seconds")),
    };
    if !(secs.is_finite() && secs > 0.0) {
        return Err(format!("{key} must be positive"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn serve(args: &[String]) -> Outcome {
    let config = match shared_fl_config(args) {
        Ok(config) => config,
        Err(e) => return Outcome::fail(e),
    };
    // `--adaptive` is a per-worker measured decision; on the server it
    // would be a silent no-op.
    if let Err(e) = reject_simulator_flags(args, "serve", &["--adaptive"]) {
        return Outcome::fail(e);
    }
    // Validate once; the socket runtime consumes the canonical plan,
    // never the raw precedence-ridden knobs.
    let plan = match config.plan() {
        Ok(plan) => plan,
        Err(e) => return Outcome::fail(format!("invalid configuration: {e}")),
    };
    if plan.tree_fanouts().is_some_and(|f| f.len() > 1) {
        return Outcome::fail(
            "the socket runtime runs two-level trees: use --shards S \
             (deeper --tree hierarchies are simulator-only for now)"
                .into(),
        );
    }
    if config.downlink == DownlinkMode::Adaptive {
        return Outcome::fail(
            "serve supports --downlink raw|fedsz (auto needs the simulator's link model)".into(),
        );
    }
    let accept_timeout = match parse_secs(args, "--accept-timeout", 30.0) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(e),
    };
    let round_timeout = match parse_secs(args, "--round-timeout", 120.0) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(e),
    };
    let reconnect_grace = match parse_secs(args, "--reconnect-grace", 3.0) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(e),
    };
    let max_sessions = match flag_value(args, "--max-sessions").map(str::parse::<usize>) {
        None => 1024,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => return Outcome::fail("--max-sessions expects a positive count".into()),
    };
    let fail_at_round = match flag_value(args, "--fail-at-round").map(str::parse::<u32>) {
        None => None,
        Some(Ok(r)) => Some(r),
        Some(Err(_)) => return Outcome::fail("--fail-at-round expects a round index".into()),
    };
    let role = match flag_value(args, "--shard") {
        None => Role::Root,
        Some(spec) => {
            let Ok(shard) = spec.parse::<u32>() else {
                return Outcome::fail("--shard expects a shard index".into());
            };
            let Some(upstream) = flag_value(args, "--connect") else {
                return Outcome::fail("--shard requires --connect UPSTREAM".into());
            };
            let Some(shards) = plan.shard_count() else {
                return Outcome::fail("--shard requires --shards S (the full tree shape)".into());
            };
            // Checked here so a typo'd index fails as a CLI error
            // instead of a panic later.
            if shard as usize >= shards {
                return Outcome::fail(format!(
                    "--shard {shard} outside the {shards}-shard plan (valid: 0..{shards})"
                ));
            }
            Role::Relay { shard, upstream: upstream.to_string() }
        }
    };
    let json = args.iter().any(|a| a == "--json");
    let clients = config.clients;
    let metrics_addr = flag_value(args, "--metrics-addr");
    let telemetry = match telemetry_from_args(args, metrics_addr.is_some()) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(e),
    };
    if fail_at_round.is_some() && matches!(role, Role::Root) {
        return Outcome::fail(
            "--fail-at-round is the relay fault-injection knob: it requires --shard".into(),
        );
    }
    let serve_config = ServeConfig {
        fl: config,
        role,
        accept_timeout,
        round_timeout,
        max_sessions,
        reconnect_grace,
        fail_at_round,
        telemetry: telemetry.clone(),
    };
    // The socket runtime's own constraints (e.g. a `--tree S` spec
    // that out-leafs the cohort — every shard here is a real relay
    // process) live in one place: ServeConfig::plan. Reuse its plan
    // for the child expectation instead of re-validating.
    let serve_plan = match serve_config.plan() {
        Ok(plan) => plan,
        Err(e) => return Outcome::fail(e.to_string()),
    };
    let expected = ServeConfig::expected_children_of(&serve_plan, &serve_config.role).len();
    let bind = flag_value(args, "--bind").unwrap_or("127.0.0.1:7070");
    let server = match NetServer::bind(bind) {
        Ok(server) => server,
        Err(e) => return Outcome::fail(format!("cannot bind {bind}: {e}")),
    };
    // The scrape endpoint outlives the round loop (the accept thread
    // is detached), so late scrapes after the last round still see
    // final counter values.
    let metrics_server = match metrics_addr {
        None => None,
        Some(addr) => match MetricsServer::bind(addr, telemetry.clone()) {
            Ok(server) => Some(server),
            Err(e) => return Outcome::fail(format!("cannot bind metrics endpoint {addr}: {e}")),
        },
    };
    // Announced before the blocking run so scripts can synchronize on
    // it (stderr keeps stdout reserved for the final report).
    fedsz_telemetry::info!(
        "serve: listening on {} ({expected} children expected)",
        server.local_addr()
    );
    if let Some(metrics_server) = &metrics_server {
        fedsz_telemetry::info!("serve: metrics on http://{}/metrics", metrics_server.addr());
    }
    let relay = matches!(serve_config.role, Role::Relay { .. });
    let report = match server.run(serve_config) {
        Ok(report) => report,
        Err(e) => return Outcome::fail(format!("serve failed: {e}")),
    };
    telemetry.flush();
    if json {
        // RoundRow::socket owns the fills-vs-nulls column contract;
        // dp_sigma comes from the shared plan (the noise itself is
        // applied worker-side, but the policy is part of the plan
        // every process agrees on).
        let dp_sigma = plan.dp.map(|p| p.sigma());
        let rounds = report.rounds.iter().map(|r| RoundRow::socket(r, relay, dp_sigma)).collect();
        let run_report = RunReport {
            command: "serve",
            clients,
            rounds,
            checksum: (!relay).then_some(report.checksum),
        };
        return Outcome::ok(run_report.to_json());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} rounds, {} children expected, {} evicted",
        report.rounds.len(),
        expected,
        report.evicted
    );
    let _ = writeln!(out, "round  merged  evicted     upKB   downKB  wall(s)  checksum");
    for r in &report.rounds {
        let _ = writeln!(
            out,
            "{:>5}  {:>6}  {:>7}  {:>7.1}  {:>7.1}  {:>7.3}  0x{:08x}",
            r.round + 1,
            r.merged,
            r.evicted,
            r.upstream_bytes as f64 / 1e3,
            r.downstream_bytes as f64 / 1e3,
            r.wall_secs,
            r.checksum,
        );
    }
    for (id, round, reason) in &report.evictions {
        let _ = writeln!(out, "evicted child {id} at round {}: {reason}", round + 1);
    }
    if report.reconnects + report.reparented > 0 {
        let _ = writeln!(
            out,
            "elastic membership: {} reconnects, {} re-parented",
            report.reconnects, report.reparented
        );
    }
    if report.psum_raw_frames + report.psum_compressed_frames > 0 {
        let _ = writeln!(
            out,
            "psum frames: {} compressed, {} raw",
            report.psum_compressed_frames, report.psum_raw_frames
        );
    }
    if !relay {
        let _ = writeln!(out, "global checksum: 0x{:08x}", report.checksum);
    }
    Outcome::ok(out)
}

fn worker(args: &[String]) -> Outcome {
    let mut config = match shared_fl_config(args) {
        Ok(config) => config,
        Err(e) => return Outcome::fail(e),
    };
    if let Err(e) = reject_simulator_flags(args, "worker", &[]) {
        return Outcome::fail(e);
    }
    config.adaptive_compression = args.iter().any(|a| a == "--adaptive");
    match config.plan() {
        // A worker process cannot carry error-feedback residuals
        // across reconnects, so stateful uplinks fail here — before
        // any socket work — with the typed plan error.
        Ok(plan) => {
            if let Err(e) = plan.validate_for_workers() {
                return Outcome::fail(format!("invalid configuration: {e}"));
            }
        }
        Err(e) => return Outcome::fail(format!("invalid configuration: {e}")),
    }
    let Some(id_spec) = flag_value(args, "--id") else {
        return Outcome::fail("worker requires --id K (the client id to embody)".into());
    };
    let Ok(id) = id_spec.parse::<usize>() else {
        return Outcome::fail("--id expects a client index".into());
    };
    if id >= config.clients {
        return Outcome::fail(format!(
            "--id {id} outside the cohort of {} (set --clients to the full cohort size)",
            config.clients
        ));
    }
    let timeout = match parse_secs(args, "--timeout", 120.0) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(e),
    };
    let connect = flag_value(args, "--connect").unwrap_or("127.0.0.1:7070").to_string();
    let fallback = flag_value(args, "--fallback").map(str::to_string);
    let retries = match flag_value(args, "--retries").map(str::parse::<u32>) {
        None => 8,
        Some(Ok(n)) => n,
        Some(Err(_)) => return Outcome::fail("--retries expects an attempt count".into()),
    };
    let drop_session_at_round = match flag_value(args, "--drop-at-round").map(str::parse::<u32>) {
        None => None,
        Some(Ok(r)) => Some(r),
        Some(Err(_)) => return Outcome::fail("--drop-at-round expects a round index".into()),
    };
    let telemetry = match telemetry_from_args(args, false) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(e),
    };
    let fl = config.clone();
    let mut worker_config = WorkerConfig::new(fl, id, connect);
    worker_config.fallback = fallback;
    worker_config.retries = retries;
    worker_config.drop_session_at_round = drop_session_at_round;
    worker_config.timeout = timeout;
    worker_config.telemetry = telemetry.clone();
    let report = match run_worker(worker_config) {
        Ok(report) => report,
        Err(e) => return Outcome::fail(format!("worker {id} failed: {e}")),
    };
    telemetry.flush();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "worker {id}: {} rounds, up {:.1} KB, down {:.1} KB, compressed {}/{} rounds, \
         {} reconnects{}",
        report.rounds,
        report.uploaded_bytes as f64 / 1e3,
        report.downloaded_bytes as f64 / 1e3,
        report.compressed_rounds,
        report.rounds,
        report.reconnects,
        if config.adaptive_compression {
            format!(", measured uplink {:.0} Mbps", report.measured_bps / 1e6)
        } else {
            String::new()
        }
    );
    Outcome::ok(out)
}

/// Test helper: a scratch file path in the OS temp dir.
pub fn temp_path(tag: &str) -> String {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    dir.join(format!("fedsz-cli-{pid}-{tag}")).to_string_lossy().into_owned()
}

/// Removes scratch files, ignoring errors.
pub fn cleanup(paths: &[&str]) {
    for p in paths {
        let _ = std::fs::remove_file(Path::new(p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runv(args: &[&str]) -> Outcome {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_unknown_commands() {
        assert_eq!(runv(&["--help"]).code, 0);
        assert_ne!(runv(&["frobnicate"]).code, 0);
        assert_ne!(runv(&[]).code, 0);
    }

    #[test]
    fn full_pipeline_via_cli() {
        let fsd = temp_path("gen.fsd");
        let fsz = temp_path("packed.fsz");
        let back = temp_path("restored.fsd");

        let out = runv(&["gen", "mobilenetv2", &fsd, "--seed", "7", "--scale", "0.02"]);
        assert_eq!(out.code, 0, "{}", out.report);

        let out = runv(&["compress", &fsd, &fsz, "--eb", "1e-3", "--lossy", "sz3"]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("ratio"));

        let out = runv(&["decompress", &fsz, &back]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("SZ3"));

        let original = StateDict::from_bytes(&std::fs::read(&fsd).unwrap()).unwrap();
        let restored = StateDict::from_bytes(&std::fs::read(&back).unwrap()).unwrap();
        assert_eq!(original.len(), restored.len());

        let out = runv(&["inspect", &fsz]);
        assert_eq!(out.code, 0);
        assert!(out.report.contains("FedSZ stream"));
        let out = runv(&["inspect", &fsd]);
        assert_eq!(out.code, 0);
        assert!(out.report.contains("state dict"));

        cleanup(&[&fsd, &fsz, &back]);
    }

    #[test]
    fn bad_inputs_fail_cleanly() {
        assert_ne!(runv(&["gen", "vgg", "/tmp/x.fsd"]).code, 0);
        assert_ne!(runv(&["gen", "alexnet", "/tmp/x.fsd", "--scale", "2.0"]).code, 0);
        assert_ne!(runv(&["compress", "/nonexistent.fsd", "/tmp/y.fsz"]).code, 0);
        assert_ne!(runv(&["decompress", "/nonexistent.fsz", "/tmp/y.fsd"]).code, 0);
        assert_ne!(runv(&["inspect", "/nonexistent"]).code, 0);
        let junk = temp_path("junk");
        std::fs::write(&junk, b"not a recognized format at all").unwrap();
        assert_ne!(runv(&["inspect", &junk]).code, 0);
        assert_ne!(runv(&["compress", &junk, "/tmp/z.fsz"]).code, 0);
        cleanup(&[&junk]);
    }

    #[test]
    fn fl_session_runs_with_heterogeneous_links() {
        let out = runv(&[
            "fl",
            "--clients",
            "2",
            "--rounds",
            "1",
            "--train-per-class",
            "2",
            "--links",
            "100,1",
            "--straggler",
            "1:4",
            "--policy",
            "buffered:1",
        ]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("per-client links"), "{}", out.report);
        assert!(out.report.contains("Buffered"), "{}", out.report);
        assert!(out.report.contains("virtual session time"), "{}", out.report);
    }

    #[test]
    fn fl_shared_pipe_and_flags_validate() {
        let out = runv(&["fl", "--clients", "2", "--rounds", "1", "--train-per-class", "2"]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("shared pipe"), "{}", out.report);

        // --latency alone must keep the paper's shared-pipe semantics,
        // not silently switch to overlapping dedicated links.
        let out = runv(&[
            "fl",
            "--clients",
            "2",
            "--rounds",
            "1",
            "--train-per-class",
            "2",
            "--latency",
            "20",
        ]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("shared pipe"), "{}", out.report);

        assert_ne!(runv(&["fl", "--clients", "abc"]).code, 0);
        assert_ne!(runv(&["fl", "--clients", "0"]).code, 0);
        assert_ne!(runv(&["fl", "--bandwidth", "0"]).code, 0);
        assert_ne!(runv(&["fl", "--bandwidth", "-5"]).code, 0);
        assert_ne!(runv(&["fl", "--participation", "0"]).code, 0);
        assert_ne!(runv(&["fl", "--participation", "1.5"]).code, 0);
        assert_ne!(runv(&["fl", "--links", "10", "--latency", "-3", "--clients", "1"]).code, 0);
        assert_ne!(runv(&["fl", "--arch", "vgg"]).code, 0);
        assert_ne!(runv(&["fl", "--policy", "eventually"]).code, 0);
        assert_ne!(runv(&["fl", "--policy", "buffered:0"]).code, 0);
        assert_ne!(runv(&["fl", "--links", "10,-3"]).code, 0);
        assert_ne!(runv(&["fl", "--straggler", "9:2", "--clients", "2"]).code, 0);
        assert_ne!(runv(&["fl", "--straggler", "0:0.5", "--clients", "2"]).code, 0);
        assert_ne!(runv(&["fl", "--drop", "0:1.5", "--clients", "2"]).code, 0);
        assert_ne!(runv(&["fl", "--drop", "zero", "--clients", "2"]).code, 0);
        assert_ne!(runv(&["fl", "--non-iid", "-1"]).code, 0);
        assert_ne!(runv(&["fl", "--shards", "0"]).code, 0);
        assert_ne!(runv(&["fl", "--shards", "two"]).code, 0);
        assert_ne!(runv(&["fl", "--tree", "4x0"]).code, 0);
        assert_ne!(runv(&["fl", "--tree", "4xtwo"]).code, 0);
        assert_ne!(runv(&["fl", "--psum", "gzip", "--shards", "2"]).code, 0);
        assert_ne!(runv(&["fl", "--psum", "lossless"]).code, 0, "--psum needs a tree");
        assert_ne!(runv(&["fl", "--downlink", "gzip"]).code, 0);
        assert_ne!(runv(&["fl", "--downlink", "fedsz", "--no-compress"]).code, 0);
    }

    #[test]
    fn contradictory_topology_flags_rejected() {
        // --shards and --tree silently disagreeing was a footgun: the
        // config preferred --tree and ignored --shards. Now it's an
        // error, on every subcommand sharing the parser.
        for cmd in ["fl", "serve", "worker"] {
            let out = runv(&[cmd, "--shards", "2", "--tree", "2x2", "--clients", "4"]);
            assert_ne!(out.code, 0, "{cmd} accepted --shards with --tree");
            assert!(out.report.contains("contradictory"), "{}", out.report);
        }
    }

    #[test]
    fn fl_prints_the_parity_checksum() {
        let out = runv(&["fl", "--clients", "2", "--rounds", "1", "--train-per-class", "2"]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("global checksum: 0x"), "{}", out.report);
        // Same config, same checksum — the line is a stable fingerprint.
        let again = runv(&["fl", "--clients", "2", "--rounds", "1", "--train-per-class", "2"]);
        let line =
            |r: &str| r.lines().find(|l| l.starts_with("global checksum")).map(str::to_owned);
        assert_eq!(line(&out.report), line(&again.report));
    }

    #[test]
    fn serve_and_worker_flags_validate() {
        // Worker: id is mandatory and must be inside the cohort.
        assert_ne!(runv(&["worker"]).code, 0);
        assert_ne!(runv(&["worker", "--id", "abc"]).code, 0);
        assert_ne!(runv(&["worker", "--id", "9", "--clients", "4"]).code, 0);
        assert_ne!(runv(&["worker", "--id", "0", "--timeout", "-5"]).code, 0);
        // Serve: relay mode needs the tree shape and an upstream.
        assert_ne!(runv(&["serve", "--shard", "0", "--clients", "4"]).code, 0);
        assert_ne!(runv(&["serve", "--shard", "0", "--shards", "2", "--clients", "4"]).code, 0);
        assert_ne!(runv(&["serve", "--shard", "x", "--connect", "h:1", "--shards", "2"]).code, 0);
        // A relay shard index outside the plan is a CLI error, not a
        // later panic.
        let out =
            runv(&["serve", "--shard", "7", "--connect", "h:1", "--shards", "2", "--clients", "4"]);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("outside the 2-shard plan"), "{}", out.report);
        // Deep trees and adaptive downlink are simulator-only, and a
        // tree spec that out-leafs the cohort would stall empty relays.
        assert_ne!(runv(&["serve", "--tree", "2x2", "--clients", "4"]).code, 0);
        assert_ne!(runv(&["serve", "--downlink", "auto"]).code, 0);
        let out = runv(&["serve", "--tree", "9", "--clients", "2"]);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("shards <= clients"), "{}", out.report);
        // Bit-shaping simulator flags must be rejected, not silently
        // ignored with a checksum that can never match `fedsz fl`.
        for flag in ["--weighted", "--policy", "--drop"] {
            let out = runv(&["serve", flag, "x", "--clients", "2"]);
            assert_ne!(out.code, 0, "serve accepted {flag}");
            assert!(out.report.contains("simulator-only"), "{}", out.report);
            let out = runv(&["worker", "--id", "0", flag, "x", "--clients", "2"]);
            assert_ne!(out.code, 0, "worker accepted {flag}");
        }
        assert_ne!(runv(&["serve", "--participation", "0.5", "--clients", "2"]).code, 0);
        assert_ne!(runv(&["serve", "--adaptive", "--clients", "2"]).code, 0);
        // And a bad bind fails cleanly instead of hanging.
        assert_ne!(runv(&["serve", "--bind", "256.0.0.1:1", "--clients", "1"]).code, 0);
    }

    #[test]
    fn fl_deep_tree_with_lossless_psum() {
        let out = runv(&[
            "fl",
            "--clients",
            "8",
            "--rounds",
            "1",
            "--train-per-class",
            "2",
            "--tree",
            "2x4",
            "--psum",
            "lossless",
        ]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("depth-3 tree (2x4)"), "{}", out.report);
        assert!(out.report.contains("psum lossless"), "{}", out.report);
        assert!(out.report.contains("psum ratio"), "{}", out.report);
    }

    #[test]
    fn fl_sharded_tree_with_downlink_compression() {
        let out = runv(&[
            "fl",
            "--clients",
            "4",
            "--rounds",
            "1",
            "--train-per-class",
            "2",
            "--shards",
            "2",
            "--downlink",
            "fedsz",
        ]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("2-shard tree"), "{}", out.report);
        assert!(out.report.contains("Compressed"), "{}", out.report);
        assert!(out.report.contains("downKB"), "{}", out.report);
        assert!(out.report.contains("root ingress"), "{}", out.report);
    }

    #[test]
    fn config_specs_drive_fl_and_flags_override() {
        let path = temp_path("spec.toml");
        std::fs::write(&path, "clients = 2\nrounds = 3\ntrain-per-class = 2\nseed = 5\n").unwrap();
        let out = runv(&["fl", "--config", &path]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("2 clients, 3 rounds"), "{}", out.report);
        // Explicit flags win over the file.
        let out = runv(&["fl", "--rounds", "1", "--config", &path]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("2 clients, 1 rounds"), "{}", out.report);
        // A typo'd key is a hard error naming the line.
        std::fs::write(&path, "clientz = 2\n").unwrap();
        let out = runv(&["fl", "--config", &path]);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("unknown key"), "{}", out.report);
        assert_ne!(runv(&["fl", "--config", "/nonexistent.toml"]).code, 0);
        cleanup(&[&path]);
    }

    #[test]
    fn json_report_carries_the_shared_schema_and_checksum() {
        let out =
            runv(&["fl", "--clients", "2", "--rounds", "1", "--train-per-class", "2", "--json"]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("\"schema\": \"fedsz.run_report.v2\""), "{}", out.report);
        assert!(out.report.contains("\"command\": \"fl\""), "{}", out.report);
        assert!(out.report.contains("\"checksum\": \"0x"), "{}", out.report);
        // The v2 observability columns carry values on the fl side.
        assert!(out.report.contains("\"level_merge_nanos\": ["), "{}", out.report);
        assert!(out.report.contains("\"eqn1\": [{\"leg\": "), "{}", out.report);
        // The JSON checksum equals the table output's parity line.
        let table = runv(&["fl", "--clients", "2", "--rounds", "1", "--train-per-class", "2"]);
        let fingerprint = table
            .report
            .lines()
            .find(|l| l.starts_with("global checksum"))
            .and_then(|l| l.split_whitespace().last())
            .expect("table prints the checksum");
        assert!(out.report.contains(fingerprint), "{} missing {fingerprint}", out.report);
    }

    #[test]
    fn invalid_plans_fail_with_actionable_messages() {
        // Out-of-range shard counts used to be clamped by the library;
        // they now fail the plan with the range in the message.
        let out = runv(&["fl", "--clients", "2", "--shards", "9"]);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("9 shards for 2 clients"), "{}", out.report);
        let out = runv(&["serve", "--clients", "2", "--shards", "9"]);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("invalid configuration"), "{}", out.report);
        let out = runv(&["worker", "--id", "0", "--clients", "2", "--shards", "9"]);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("invalid configuration"), "{}", out.report);
    }

    #[test]
    fn uplink_codec_flags_run_and_reach_the_report() {
        let base = ["fl", "--clients", "2", "--rounds", "1", "--train-per-class", "2", "--json"];
        for (spec, family) in [
            ("topk:0.5", "\"family\": \"topk\""),
            ("topk:0.5+ef", "\"family\": \"topk+ef\""),
            ("q8", "\"family\": \"q8\""),
            ("q4s", "\"family\": \"q4s\""),
        ] {
            let mut args = base.to_vec();
            args.extend(["--uplink", spec]);
            let out = runv(&args);
            assert_eq!(out.code, 0, "--uplink {spec}: {}", out.report);
            assert!(
                out.report.contains(family),
                "--uplink {spec} missing {family}: {}",
                out.report
            );
        }
        // The auto slate needs a bandwidth before Eqn 1 prices
        // families; the probe rounds still run and are recorded.
        let mut args = base.to_vec();
        args.extend(["--uplink", "auto", "--bandwidth", "1"]);
        let out = runv(&args);
        assert_eq!(out.code, 0, "{}", out.report);
        assert!(out.report.contains("\"family\""), "{}", out.report);
    }

    #[test]
    fn invalid_uplink_specs_are_hard_errors() {
        let base = ["fl", "--clients", "2", "--rounds", "1", "--train-per-class", "2"];
        for spec in ["bogus", "topk", "topk:zero", "q5", "q8+fe", "raw+ef", "auto+ef"] {
            let mut args = base.to_vec();
            args.extend(["--uplink", spec]);
            let out = runv(&args);
            assert_ne!(out.code, 0, "--uplink {spec} must fail");
        }
        // Parametrically wrong specs surface the plan's typed message.
        let mut args = base.to_vec();
        args.extend(["--uplink", "topk:0"]);
        let out = runv(&args);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("(0, 1]"), "{}", out.report);
        // Codec-dependent specs need the codec.
        let mut args = base.to_vec();
        args.extend(["--uplink", "lossy", "--no-compress"]);
        let out = runv(&args);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("requires compression"), "{}", out.report);
    }

    #[test]
    fn stateful_uplinks_are_rejected_where_state_cannot_live() {
        // EF + buffered aggregation: typed plan error through `fl`.
        let out = runv(&[
            "fl",
            "--clients",
            "2",
            "--rounds",
            "1",
            "--train-per-class",
            "2",
            "--uplink",
            "topk:0.5+ef",
            "--policy",
            "buffered:1",
        ]);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("error-feedback"), "{}", out.report);
        // EF + a worker process: rejected before any socket work.
        let out = runv(&["worker", "--id", "0", "--clients", "2", "--uplink", "q8+ef"]);
        assert_ne!(out.code, 0);
        assert!(out.report.contains("error-feedback"), "{}", out.report);
    }

    #[test]
    fn codec_flags_are_validated() {
        let fsd = temp_path("flags.fsd");
        let out = runv(&["gen", "alexnet", &fsd, "--scale", "0.005"]);
        assert_eq!(out.code, 0, "{}", out.report);
        assert_ne!(runv(&["compress", &fsd, "/tmp/a.fsz", "--lossy", "lz4"]).code, 0);
        assert_ne!(runv(&["compress", &fsd, "/tmp/a.fsz", "--lossless", "brotli"]).code, 0);
        assert_ne!(runv(&["compress", &fsd, "/tmp/a.fsz", "--eb", "abc"]).code, 0);
        cleanup(&[&fsd]);
    }
}
