//! The `fedsz` command-line tool; all logic lives in `fedsz_cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = fedsz_cli::run(&args);
    if outcome.code == 0 {
        print!("{}", outcome.report);
        if !outcome.report.ends_with('\n') {
            println!();
        }
    } else {
        eprint!("{}", outcome.report);
        if !outcome.report.ends_with('\n') {
            eprintln!();
        }
    }
    std::process::exit(outcome.code);
}
