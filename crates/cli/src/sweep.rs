//! The `fedsz sweep` subcommand: declarative scenario matrices.
//!
//! One `fedsz fl` run answers one question; evaluation questions are
//! grids. `fedsz sweep SPEC.toml` reads a run spec whose optional
//! `[matrix]` table sweeps any value-taking spec keys:
//!
//! ```toml
//! clients = 4
//! rounds = 2
//! dp-clip = 0.5
//!
//! [matrix]
//! dp-noise = [0.0, 1.0]
//! uplink = ["topk:0.01", "q8"]
//! ```
//!
//! Axes expand cross-product style ([`SweepMatrix`] — declaration
//! order, last axis fastest), every expanded cell's configuration is
//! validated **before any cell runs** (a bad cell fails the whole
//! sweep with one error naming the cell — no partial sweeps), and the
//! cells then execute across a worker pool. Each cell's config is
//! assembled by the *same* `simulator_config` path `fedsz fl` uses,
//! with its seed derived from the base seed and the cell index
//! ([`cell_seed`]; cell 0 keeps the base seed exactly, so a one-cell
//! sweep reproduces the plain `fl` run bit for bit). Sweeping `seed`
//! as an axis takes over seeding entirely — no derivation then.
//!
//! `fedsz sweep DIR` instead treats every `*.toml` inside `DIR`
//! (sorted by name) as one cell of a single `spec` axis; those specs
//! must be flat (a `[matrix]` spec runs directly, not from a
//! directory).
//!
//! The merged output (`--json [FILE]`) is one `fedsz.sweep_report.v1`
//! document: top-level `schema`/`schema_version`/`cell_count`, the
//! `axes` (key + values, in declaration order), one entry per cell
//! carrying its `index`, effective `seed`, `coords` object and the
//! cell's complete embedded `fedsz.run_report.v2` (the exact document
//! `fedsz fl --json` would print for that configuration, nulls never
//! omitted), plus the `pareto` front — the non-dominated cells over
//! final accuracy ↑ / total uplink bytes ↓ / total virtual seconds ↓.

use crate::report::{json_f64, json_string, RoundRow, RunReport};
use crate::spec::{self, SpecValue};
use crate::{flag_value, simulator_config, Outcome};
use fedsz_fl::sweep::{
    cell_seed, pareto_front, run_cells, CellOutcome, MatrixAxis, ParetoPoint, SweepMatrix,
};
use fedsz_fl::FlConfig;
use std::fmt::Write as _;
use std::path::Path;

/// The schema tag every sweep report carries.
pub const SWEEP_REPORT_SCHEMA: &str = "fedsz.sweep_report.v1";

/// The schema version every sweep report carries.
pub const SWEEP_SCHEMA_VERSION: u32 = 1;

/// One fully planned (not yet executed) cell.
struct PlannedCell {
    index: usize,
    coords: Vec<(String, String)>,
    config: FlConfig,
}

/// The axes (key + values, declaration order) and per-cell flag
/// vectors an expansion produces.
type ExpandedCells = (Vec<(String, Vec<String>)>, Vec<Vec<String>>);

/// Expands a `[matrix]` spec file into per-cell flag vectors plus the
/// axes for the report header.
fn cells_from_file(path: &str) -> Result<ExpandedCells, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let sweep = spec::parse_sweep_spec(&text).map_err(|e| format!("{path}: {e}"))?;
    let axes: Vec<MatrixAxis> = sweep
        .axes
        .iter()
        .map(|(key, values)| MatrixAxis { key: key.clone(), values: values.clone() })
        .collect();
    let matrix = SweepMatrix::new(axes).map_err(|e| format!("{path}: {e}"))?;
    let base_args = spec::spec_to_args(&sweep.base);
    // An explicit `seed` axis takes over seeding; otherwise every cell
    // derives its own from the spec's base seed (default 42) and its
    // index, so neighbouring cells never share RNG streams.
    let seed_swept = sweep.axes.iter().any(|(key, _)| key == "seed");
    let base_seed: u64 = sweep
        .base
        .iter()
        .find(|(key, _)| key == "seed")
        .and_then(|(_, value)| match value {
            SpecValue::Scalar(s) => s.parse().ok(),
            _ => None,
        })
        .unwrap_or(42);
    let mut cells = Vec::with_capacity(matrix.cell_count());
    for cell in matrix.cells() {
        let mut args: Vec<String> = Vec::new();
        for (key, value) in &cell.coords {
            args.push(format!("--{key}"));
            args.push(value.clone());
        }
        if !seed_swept {
            args.push("--seed".into());
            args.push(cell_seed(base_seed, cell.index).to_string());
        }
        // The flat section comes last: the flag parser reads the first
        // occurrence, so the coordinates and the derived seed win.
        args.extend(base_args.iter().cloned());
        cells.push(args);
    }
    Ok((sweep.axes, cells))
}

/// Treats every `*.toml` in a directory as one cell of a `spec` axis.
fn cells_from_dir(path: &str) -> Result<ExpandedCells, String> {
    let entries = std::fs::read_dir(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut files: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .filter_map(|p| p.to_str().map(str::to_string))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{path}: no .toml run specs to sweep"));
    }
    let mut names = Vec::with_capacity(files.len());
    let mut cells = Vec::with_capacity(files.len());
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let sweep = spec::parse_sweep_spec(&text).map_err(|e| format!("{file}: {e}"))?;
        if !sweep.axes.is_empty() {
            return Err(format!(
                "{file}: directory sweeps take flat specs; run a [matrix] spec directly \
                 (fedsz sweep {file})"
            ));
        }
        let name = Path::new(file)
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(file.as_str())
            .to_string();
        names.push(name);
        cells.push(spec::spec_to_args(&sweep.base));
    }
    Ok((vec![("spec".to_string(), names)], cells))
}

fn coords_label(coords: &[(String, String)]) -> String {
    coords.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
}

/// One cell's Pareto objectives from its executed metrics.
fn pareto_point(outcome: &CellOutcome) -> ParetoPoint {
    ParetoPoint {
        accuracy: outcome.metrics.last().map_or(0.0, |m| m.test_accuracy),
        bytes: outcome.metrics.iter().map(|m| m.upstream_bytes).sum::<usize>() as f64,
        secs: outcome.metrics.iter().map(|m| m.round_secs).sum(),
    }
}

/// Renders the merged `fedsz.sweep_report.v1` document.
fn sweep_json(
    axes: &[(String, Vec<String>)],
    planned: &[PlannedCell],
    outcomes: &[CellOutcome],
    points: &[ParetoPoint],
    front: &[usize],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": {},", json_string(SWEEP_REPORT_SCHEMA));
    let _ = writeln!(out, "  \"schema_version\": {SWEEP_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"cell_count\": {},", planned.len());
    let _ = writeln!(out, "  \"axes\": [");
    for (i, (key, values)) in axes.iter().enumerate() {
        let body = values.iter().map(|v| json_string(v)).collect::<Vec<_>>().join(", ");
        let _ = write!(out, "    {{\"key\": {}, \"values\": [{body}]}}", json_string(key));
        let _ = writeln!(out, "{}", if i + 1 < axes.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"cells\": [");
    for (cell, outcome) in planned.iter().zip(outcomes) {
        let coords = cell
            .coords
            .iter()
            .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
            .collect::<Vec<_>>()
            .join(", ");
        // The embedded document is built by the exact code `fedsz fl
        // --json` runs, so a one-cell sweep's report diffs clean
        // against the plain run's.
        let report = RunReport {
            command: "fl",
            clients: cell.config.clients,
            rounds: outcome.metrics.iter().map(RoundRow::simulator).collect(),
            checksum: Some(outcome.checksum),
        };
        let _ = writeln!(
            out,
            "    {{\"index\": {}, \"seed\": {}, \"coords\": {{{coords}}}, \"report\":",
            cell.index, cell.config.seed
        );
        let _ = write!(out, "{}", report.to_json().trim_end());
        let _ = writeln!(out, "}}{}", if cell.index + 1 < planned.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"pareto\": [");
    for (i, &index) in front.iter().enumerate() {
        let p = &points[index];
        let _ = write!(
            out,
            "    {{\"index\": {index}, \"accuracy\": {}, \"upstream_bytes\": {}, \"secs\": {}}}",
            json_f64(p.accuracy),
            p.bytes as usize,
            json_f64(p.secs),
        );
        let _ = writeln!(out, "{}", if i + 1 < front.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Runs `fedsz sweep SPEC.toml|DIR [--json [FILE]] [--threads N]`.
pub fn sweep(args: &[String]) -> Outcome {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")).map(String::as_str) else {
        return Outcome::fail(
            "sweep requires a spec: fedsz sweep <SPEC.toml|DIR> [--json [FILE]] [--threads N]"
                .into(),
        );
    };
    let flags = &args[1..];
    let threads = match flag_value(flags, "--threads").map(str::parse::<usize>) {
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        Some(Ok(n)) if n > 0 => n,
        Some(_) => return Outcome::fail("--threads expects a positive worker-thread count".into()),
    };
    let is_dir = Path::new(path).is_dir();
    let (axes, cell_args) = match if is_dir { cells_from_dir(path) } else { cells_from_file(path) }
    {
        Ok(expanded) => expanded,
        Err(e) => return Outcome::fail(e),
    };

    // Validate the WHOLE grid before running any of it: one bad cell
    // fails the sweep up front, naming the cell, so a sweep either
    // starts completely or not at all.
    let matrix = match SweepMatrix::new(
        axes.iter()
            .map(|(key, values)| MatrixAxis { key: key.clone(), values: values.clone() })
            .collect(),
    ) {
        Ok(matrix) => matrix,
        Err(e) => return Outcome::fail(e),
    };
    let mut planned = Vec::with_capacity(cell_args.len());
    for (index, args) in cell_args.iter().enumerate() {
        let coords = matrix.coords(index);
        match simulator_config(args) {
            Ok(config) => planned.push(PlannedCell { index, coords, config }),
            Err(e) => {
                return Outcome::fail(format!(
                    "cell {index} ({}): {e}",
                    coords_label(&matrix.coords(index))
                ))
            }
        }
    }

    let configs: Vec<FlConfig> = planned.iter().map(|c| c.config.clone()).collect();
    let outcomes = run_cells(&configs, threads);
    let points: Vec<ParetoPoint> = outcomes.iter().map(pareto_point).collect();
    let front = pareto_front(&points);

    if let Some(pos) = flags.iter().position(|a| a == "--json") {
        let doc = sweep_json(&axes, &planned, &outcomes, &points, &front);
        return match flags.get(pos + 1).filter(|a| !a.starts_with("--")) {
            None => Outcome::ok(doc),
            Some(file) => match std::fs::write(file, &doc) {
                Ok(()) => Outcome::ok(format!(
                    "wrote {} cells ({SWEEP_REPORT_SCHEMA}) to {file}\n",
                    planned.len()
                )),
                Err(e) => Outcome::fail(format!("cannot write {file}: {e}")),
            },
        };
    }

    // Human table: one line per cell, Pareto cells starred.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep: {} cells over {} axes, {} worker threads",
        planned.len(),
        axes.len(),
        threads
    );
    let _ = writeln!(out, " cell                  seed    acc%     upKB  virt(s)  coords");
    for (cell, outcome) in planned.iter().zip(&outcomes) {
        let p = pareto_point(outcome);
        let star = if front.contains(&cell.index) { "*" } else { " " };
        let _ = writeln!(
            out,
            "{star}{:>4}  {:>20}  {:>5.1}  {:>7.1}  {:>7.3}  {}",
            cell.index,
            cell.config.seed,
            p.accuracy * 100.0,
            p.bytes / 1e3,
            p.secs,
            coords_label(&cell.coords),
        );
    }
    let _ = writeln!(
        out,
        "pareto front (accuracy vs uplink bytes vs time): cells [{}]",
        front.iter().map(usize::to_string).collect::<Vec<_>>().join(", ")
    );
    Outcome::ok(out)
}
