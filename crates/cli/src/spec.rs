//! Declarative run specs: a dependency-free TOML-subset parser that
//! turns `run.toml` files into the exact flag vocabulary the CLI
//! already speaks.
//!
//! `fedsz fl|serve|worker --config run.toml` reads a key/value file
//! and appends the equivalent flags after the command-line ones,
//! dropping any file key whose flag the command line already set —
//! command-line flags override file values (repeatable flags
//! included: an explicit `--straggler` replaces the file's whole
//! `straggler` list, it does not merge with it). The same config file
//! can therefore drive a whole fleet while each process overrides
//! only what differs (`--id`, `--bind`, `--connect`).
//!
//! The accepted grammar is the flat subset of TOML a run spec needs:
//!
//! ```toml
//! # comments and blank lines
//! clients = 8              # integers / floats stay verbatim
//! tree = "2x4"             # quoted or bare strings
//! psum = "lossless"
//! weighted = true          # booleans become bare flags
//! straggler = ["0:4", "1:2"]   # arrays repeat the flag
//! ```
//!
//! No tables/sections, no multi-line values, no escapes — a `[table]`
//! header or an unknown key is a *hard error*, because a silently
//! ignored key in a run spec is exactly the class of misconfiguration
//! the plan layer exists to reject. Keys may use `_` or `-`
//! interchangeably (`train_per_class` = `train-per-class`).

use std::fmt::Write as _;

/// One parsed spec value.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecValue {
    /// A scalar: number or string, kept verbatim for the flag parser
    /// to re-parse (so the file and the flag path share one
    /// validation).
    Scalar(String),
    /// A boolean: `true` appends the bare flag, `false` omits it.
    Bool(bool),
    /// An array of scalars: the flag is repeated once per element.
    List(Vec<String>),
}

/// Every key a run spec may set, i.e. every `--flag` of the `fl`,
/// `serve` and `worker` subcommands (bit-shaping flags shared by all
/// three, simulator-only knobs for `fl`, socket knobs for
/// `serve`/`worker`). A key behaves exactly like the equivalent flag
/// on the invoked subcommand — including `serve`/`worker` *rejecting*
/// simulator-only keys (`bandwidth`, `weighted`, `participation`, …),
/// since several of them shape the bits and silently ignoring one
/// would let a deployment print a checksum that can never match its
/// `fl` twin. A spec meant to drive a whole serve+worker fleet must
/// therefore stick to the bit-shaping keys (see
/// `examples/configs/socket.toml`); fl-only specs may use everything.
const KNOWN_KEYS: &[&str] = &[
    // Shared bit-shaping configuration.
    "clients",
    "rounds",
    "seed",
    "train-per-class",
    "arch",
    "non-iid",
    "shards",
    "tree",
    "psum",
    "downlink",
    "uplink",
    "dp-clip",
    "dp-noise",
    "dp-mechanism",
    "dp-seed",
    // Execution width (wall-clock only — never shapes the bits, so
    // multi-process peers may differ).
    "threads",
    // fl simulator knobs.
    "participation",
    "bandwidth",
    "latency",
    "links",
    "straggler",
    "drop",
    "policy",
    // Socket runtime knobs.
    "bind",
    "connect",
    "shard",
    "id",
    "accept-timeout",
    "round-timeout",
    "timeout",
];

/// Keys that are bare boolean flags rather than `--key value` pairs.
const BOOL_KEYS: &[&str] = &["no-compress", "adaptive", "weighted"];

/// Keys whose flag is genuinely repeatable — the only ones an array
/// value is legal for. Everything else takes one value (the CLI's
/// flag parser reads only the first occurrence, so an array on a
/// scalar key would silently drop all but its head — the exact silent
/// misconfiguration run specs exist to reject).
const REPEATABLE_KEYS: &[&str] = &["straggler", "drop"];

fn normalize_key(key: &str) -> String {
    key.replace('_', "-")
}

/// Parses one value token: quoted string, boolean, bare scalar, or a
/// single-line array of those.
fn parse_value(raw: &str, line_no: usize) -> Result<SpecValue, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(format!("line {line_no}: missing value"));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(format!("line {line_no}: unterminated array (arrays are single-line)"));
        };
        let mut items = Vec::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // tolerate a trailing comma
            }
            match parse_value(item, line_no)? {
                SpecValue::Scalar(s) => items.push(s),
                SpecValue::Bool(_) => {
                    return Err(format!("line {line_no}: arrays may not contain booleans"))
                }
                SpecValue::List(_) => {
                    return Err(format!("line {line_no}: nested arrays are not supported"))
                }
            }
        }
        // Arrays must be one type throughout: a `[0.0, "q8"]` mix is
        // almost always a quoting slip, and down a [matrix] axis it
        // would silently sweep a value the flag parser then rejects
        // mid-grid.
        let numeric = items.iter().filter(|i| i.parse::<f64>().is_ok()).count();
        if numeric != 0 && numeric != items.len() {
            return Err(format!(
                "line {line_no}: array mixes numbers and strings — an array (and a \
                 [matrix] axis) must be all one type; quote every value or none"
            ));
        }
        return Ok(SpecValue::List(items));
    }
    if let Some(body) = raw.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("line {line_no}: unterminated string"));
        };
        if body.contains('"') || body.contains('\\') {
            return Err(format!("line {line_no}: escapes are not supported in spec strings"));
        }
        return Ok(SpecValue::Scalar(body.to_string()));
    }
    match raw {
        "true" => Ok(SpecValue::Bool(true)),
        "false" => Ok(SpecValue::Bool(false)),
        _ => {
            if raw.contains('"') {
                return Err(format!("line {line_no}: malformed value `{raw}`"));
            }
            Ok(SpecValue::Scalar(raw.to_string()))
        }
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a run spec into `(key, value)` entries, in file order.
///
/// # Errors
///
/// Returns a message naming the offending line for any syntax the
/// subset does not cover, and for unknown keys (silently ignoring a
/// typo'd key is exactly what run specs must not do).
pub fn parse_spec(text: &str) -> Result<Vec<(String, SpecValue)>, String> {
    let mut entries = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if line == "[matrix]" {
                return Err(format!(
                    "line {line_no}: [matrix] makes this a sweep spec — run it with \
                     `fedsz sweep FILE`, not --config"
                ));
            }
            return Err(format!(
                "line {line_no}: tables like `{line}` are not supported (run specs are flat)"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {line_no}: expected `key = value`, got `{line}`"));
        };
        let key = normalize_key(key.trim());
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return Err(format!("line {line_no}: bad key `{key}`"));
        }
        if !KNOWN_KEYS.contains(&key.as_str()) && !BOOL_KEYS.contains(&key.as_str()) {
            return Err(format!(
                "line {line_no}: unknown key `{key}` (see `fedsz --help` for the flag list)"
            ));
        }
        if entries.iter().any(|(k, _)| *k == key) {
            return Err(format!("line {line_no}: duplicate key `{key}`"));
        }
        let value = parse_value(value, line_no)?;
        if BOOL_KEYS.contains(&key.as_str()) && !matches!(value, SpecValue::Bool(_)) {
            return Err(format!("line {line_no}: `{key}` expects true or false"));
        }
        if KNOWN_KEYS.contains(&key.as_str()) && matches!(value, SpecValue::Bool(_)) {
            return Err(format!("line {line_no}: `{key}` expects a value, not a boolean"));
        }
        if matches!(value, SpecValue::List(_)) && !REPEATABLE_KEYS.contains(&key.as_str()) {
            return Err(format!(
                "line {line_no}: `{key}` takes one value, not an array (arrays are only \
                 legal for repeatable flags: {})",
                REPEATABLE_KEYS.join(", ")
            ));
        }
        entries.push((key, value));
    }
    Ok(entries)
}

/// Renders parsed entries as the flag vector they are equivalent to.
pub fn spec_to_args(entries: &[(String, SpecValue)]) -> Vec<String> {
    let mut args = Vec::new();
    for (key, value) in entries {
        let flag = format!("--{key}");
        match value {
            SpecValue::Scalar(v) => {
                args.push(flag);
                args.push(v.clone());
            }
            SpecValue::Bool(true) => args.push(flag),
            SpecValue::Bool(false) => {}
            SpecValue::List(items) => {
                for item in items {
                    args.push(flag.clone());
                    args.push(item.clone());
                }
            }
        }
    }
    args
}

/// Expands a `--config FILE` flag: returns the argument vector with
/// the file's equivalent flags appended *after* the command-line ones.
/// A file key whose `--flag` already appears on the command line is
/// dropped entirely, so explicit flags override file values for
/// scalars *and* for repeatable flags (where the flag parser would
/// otherwise merge both sources and apply the file's values last).
/// Without `--config` the args pass through untouched.
///
/// # Errors
///
/// Returns a message when the file cannot be read or fails to parse.
pub fn expand_config(args: &[String]) -> Result<Vec<String>, String> {
    let Some(pos) = args.iter().position(|a| a == "--config") else {
        return Ok(args.to_vec());
    };
    let Some(path) = args.get(pos + 1) else {
        return Err("--config requires a file path".into());
    };
    if args[pos + 2..].iter().any(|a| a == "--config") {
        return Err("--config may be given at most once".into());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut entries = parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;
    // `shards` and `tree` are two spellings of one logical topology
    // setting (the plan layer rejects them together), so an explicit
    // topology flag overrides the file's topology under either name —
    // otherwise `--shards 4` against a spec with `tree = "2x4"` would
    // hard-fail as a conflict the user cannot resolve from the CLI.
    let cli_sets_topology = args.iter().any(|a| a == "--shards" || a == "--tree");
    entries.retain(|(key, _)| {
        if cli_sets_topology && (key == "shards" || key == "tree") {
            return false;
        }
        !args.iter().any(|a| *a == format!("--{key}"))
    });
    let mut expanded: Vec<String> = Vec::with_capacity(args.len() + entries.len() * 2);
    expanded.extend_from_slice(&args[..pos]);
    expanded.extend_from_slice(&args[pos + 2..]);
    expanded.extend(spec_to_args(&entries));
    Ok(expanded)
}

/// A parsed sweep spec: the flat base entries plus the `[matrix]`
/// axes, both in declaration order. A spec without `[matrix]` parses
/// to an empty axis list — the degenerate single-cell sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The flat section, exactly what [`parse_spec`] returns for it.
    pub base: Vec<(String, SpecValue)>,
    /// `(key, values)` per matrix axis, in declaration order.
    pub axes: Vec<(String, Vec<String>)>,
}

/// Parses a sweep spec: the flat run-spec grammar, optionally followed
/// by one `[matrix]` table whose entries are `key = [v1, v2, ...]`
/// arrays over the value-taking run-spec keys.
///
/// # Errors
///
/// Returns a line-numbered message for everything [`parse_spec`]
/// rejects in the flat section, and for matrix-specific faults: a
/// non-array axis, an empty or mixed-type array, an unknown or
/// duplicate axis key, an axis also pinned in the flat section, or
/// anything after `[matrix]` that is not an axis line.
pub fn parse_sweep_spec(text: &str) -> Result<SweepSpec, String> {
    let mut base_lines: Vec<&str> = Vec::new();
    let mut axes: Vec<(String, Vec<String>)> = Vec::new();
    let mut matrix_line = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if matrix_line.is_none() {
            if line == "[matrix]" {
                matrix_line = Some(line_no);
            } else {
                base_lines.push(raw_line);
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {line_no}: `{line}` — [matrix] must be the only and last table \
                 in a sweep spec"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {line_no}: expected `key = [v1, v2, ...]`, got `{line}`"));
        };
        let key = normalize_key(key.trim());
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(format!(
                "line {line_no}: unknown matrix axis `{key}` (axes are the value-taking \
                 run-spec keys; see `fedsz --help`)"
            ));
        }
        if axes.iter().any(|(k, _)| *k == key) {
            return Err(format!("line {line_no}: duplicate matrix axis `{key}`"));
        }
        match parse_value(value, line_no)? {
            SpecValue::List(items) if !items.is_empty() => axes.push((key, items)),
            SpecValue::List(_) => {
                return Err(format!("line {line_no}: matrix axis `{key}` has no values"))
            }
            SpecValue::Scalar(_) | SpecValue::Bool(_) => {
                return Err(format!(
                    "line {line_no}: matrix axis `{key}` must be an array of values \
                     (a fixed value belongs above [matrix])"
                ));
            }
        }
    }
    // The base section re-parses through the flat grammar; it comes
    // first in the file, so its error line numbers stay accurate.
    let base = parse_spec(&base_lines.join("\n"))?;
    for (key, _) in &axes {
        if base.iter().any(|(k, _)| k == key) {
            return Err(format!(
                "matrix axis `{key}` is also pinned in the flat section; sweep it or \
                 pin it, not both"
            ));
        }
    }
    if let Some(line_no) = matrix_line {
        if axes.is_empty() {
            return Err(format!(
                "line {line_no}: [matrix] has no axes (delete the table or add \
                 `key = [v1, v2]` lines)"
            ));
        }
    }
    Ok(SweepSpec { base, axes })
}

/// Renders entries back as canonical spec text (used by tests to
/// assert round-tripping, and handy for generating example files).
pub fn render_spec(entries: &[(String, SpecValue)]) -> String {
    let mut out = String::new();
    for (key, value) in entries {
        match value {
            SpecValue::Scalar(v) => {
                if v.parse::<f64>().is_ok() {
                    let _ = writeln!(out, "{key} = {v}");
                } else {
                    let _ = writeln!(out, "{key} = \"{v}\"");
                }
            }
            SpecValue::Bool(b) => {
                let _ = writeln!(out, "{key} = {b}");
            }
            SpecValue::List(items) => {
                let quoted: Vec<String> = items.iter().map(|i| format!("\"{i}\"")).collect();
                let _ = writeln!(out, "{key} = [{}]", quoted.join(", "));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_subset() {
        let spec = r#"
            # a run spec
            clients = 8
            tree = "2x4"            # inline comment
            psum = lossless
            weighted = true
            adaptive = false
            participation = 0.5
            straggler = ["0:4", "1:2"]
        "#;
        let entries = parse_spec(spec).unwrap();
        let args = spec_to_args(&entries);
        assert_eq!(
            args,
            vec![
                "--clients",
                "8",
                "--tree",
                "2x4",
                "--psum",
                "lossless",
                "--weighted",
                "--participation",
                "0.5",
                "--straggler",
                "0:4",
                "--straggler",
                "1:2",
            ]
        );
    }

    #[test]
    fn underscores_normalize_to_dashes() {
        let entries = parse_spec("train_per_class = 4").unwrap();
        assert_eq!(spec_to_args(&entries), vec!["--train-per-class", "4"]);
    }

    #[test]
    fn junk_is_rejected_with_line_numbers() {
        for (spec, needle) in [
            ("[section]\nclients = 2", "tables"),
            ("clients 2", "key = value"),
            ("frobnicate = 2", "unknown key"),
            ("clients = ", "missing value"),
            ("clients = \"2", "unterminated string"),
            ("straggler = [\"0:1\"", "unterminated array"),
            ("weighted = 3", "expects true or false"),
            ("clients = true", "expects a value"),
            ("clients = 2\nclients = 3", "duplicate"),
            ("straggler = [true]", "booleans"),
            ("tree = \"a\\\"b\"", "escapes"),
            // An array on a scalar key would silently drop all but its
            // first element at the flag parser; reject it outright.
            ("links = [100, 1]", "takes one value"),
            ("clients = [2, 4]", "takes one value"),
        ] {
            let err = parse_spec(spec).unwrap_err();
            assert!(err.contains(needle), "spec {spec:?} gave `{err}`, wanted `{needle}`");
            assert!(err.contains("line "), "error must name a line: {err}");
        }
    }

    #[test]
    fn expand_appends_file_flags_after_cli_flags() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fedsz-spec-{}.toml", std::process::id()));
        std::fs::write(&path, "clients = 8\nrounds = 3\n").unwrap();
        let args: Vec<String> = ["--rounds", "1", "--config", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let expanded = expand_config(&args).unwrap();
        // The CLI set --rounds, so the file's rounds entry is dropped.
        assert_eq!(expanded, vec!["--rounds", "1", "--clients", "8"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cli_topology_flags_override_either_file_spelling() {
        // `shards` and `tree` are one logical setting: an explicit
        // --shards must displace a file's `tree` (and vice versa)
        // instead of colliding into a contradictory-topology error.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fedsz-spec-topo-{}.toml", std::process::id()));
        std::fs::write(&path, "tree = \"2x4\"\nrounds = 2\n").unwrap();
        let args: Vec<String> = ["--shards", "4", "--config", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let expanded = expand_config(&args).unwrap();
        assert_eq!(expanded, vec!["--shards", "4", "--rounds", "2"]);
        std::fs::write(&path, "shards = 2\n").unwrap();
        let args: Vec<String> = ["--tree", "2x2", "--config", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let expanded = expand_config(&args).unwrap();
        assert_eq!(expanded, vec!["--tree", "2x2"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cli_flags_override_repeatable_file_flags_too() {
        // Repeatable flags are applied in order by the CLI (last
        // assignment to a client wins), so merging file values after
        // the command line's would silently invert precedence — the
        // whole file entry must be dropped instead.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fedsz-spec-rep-{}.toml", std::process::id()));
        std::fs::write(&path, "straggler = [\"0:8\"]\ndrop = [\"1:0.5\"]\n").unwrap();
        let args: Vec<String> = ["--straggler", "0:2", "--config", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let expanded = expand_config(&args).unwrap();
        assert_eq!(
            expanded,
            vec!["--straggler", "0:2", "--drop", "1:0.5"],
            "the file's straggler list must be dropped, its drop list kept"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn expand_without_config_is_identity_and_errors_are_clean() {
        let args: Vec<String> = vec!["--clients".into(), "2".into()];
        assert_eq!(expand_config(&args).unwrap(), args);
        let missing: Vec<String> = vec!["--config".into()];
        assert!(expand_config(&missing).unwrap_err().contains("file path"));
        let nofile: Vec<String> = vec!["--config".into(), "/nonexistent.toml".into()];
        assert!(expand_config(&nofile).unwrap_err().contains("cannot read"));
        let twice: Vec<String> =
            vec!["--config".into(), "/a".into(), "--config".into(), "/b".into()];
        assert!(expand_config(&twice).unwrap_err().contains("at most once"));
    }

    #[test]
    fn matrix_tables_are_routed_to_sweep() {
        let err = parse_spec("clients = 2\n[matrix]\nseed = [1, 2]\n").unwrap_err();
        assert!(err.contains("fedsz sweep"), "{err}");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn mixed_type_arrays_are_rejected() {
        let err = parse_spec("straggler = [\"0:4\", 7]").unwrap_err();
        assert!(err.contains("all one type"), "{err}");
    }

    #[test]
    fn sweep_specs_split_base_from_matrix() {
        let spec = "\
            clients = 4\n\
            rounds = 2\n\
            [matrix]\n\
            dp-noise = [0.0, 0.5]\n\
            uplink = [\"topk:0.01\", \"q8\"]\n";
        let sweep = parse_sweep_spec(spec).unwrap();
        assert_eq!(
            sweep.base,
            vec![
                ("clients".to_string(), SpecValue::Scalar("4".into())),
                ("rounds".to_string(), SpecValue::Scalar("2".into())),
            ]
        );
        assert_eq!(
            sweep.axes,
            vec![
                ("dp-noise".to_string(), vec!["0.0".to_string(), "0.5".to_string()]),
                ("uplink".to_string(), vec!["topk:0.01".to_string(), "q8".to_string()]),
            ]
        );
    }

    #[test]
    fn a_flat_spec_is_a_single_cell_sweep() {
        let sweep = parse_sweep_spec("clients = 2\nrounds = 1\n").unwrap();
        assert_eq!(sweep.base.len(), 2);
        assert!(sweep.axes.is_empty());
    }

    #[test]
    fn bad_sweep_specs_fail_with_actionable_messages() {
        for (spec, needle) in [
            ("[matrix]\n", "no axes"),
            ("[matrix]\ndp-noise = 0.5\n", "must be an array"),
            ("[matrix]\ndp-noise = []\n", "no values"),
            ("[matrix]\nfrobnicate = [1]\n", "unknown matrix axis"),
            ("[matrix]\nseed = [1]\nseed = [2]\n", "duplicate matrix axis"),
            ("[matrix]\nseed = [1]\n[again]\n", "only and last table"),
            ("[matrix]\nseed = [1, \"x\"]\n", "all one type"),
            ("seed = 1\n[matrix]\nseed = [1, 2]\n", "sweep it or pin it"),
            ("clients 2\n[matrix]\nseed = [1]\n", "key = value"),
        ] {
            let err = parse_sweep_spec(spec).unwrap_err();
            assert!(err.contains(needle), "spec {spec:?} gave `{err}`, wanted `{needle}`");
        }
    }

    #[test]
    fn dp_keys_are_spec_keys() {
        let entries =
            parse_spec("dp-clip = 1.0\ndp-noise = 0.5\ndp-mechanism = \"laplace\"\ndp-seed = 9\n")
                .unwrap();
        assert_eq!(
            spec_to_args(&entries),
            vec![
                "--dp-clip",
                "1.0",
                "--dp-noise",
                "0.5",
                "--dp-mechanism",
                "laplace",
                "--dp-seed",
                "9",
            ]
        );
    }

    #[test]
    fn render_round_trips() {
        let entries = parse_spec("clients = 4\narch = \"alexnet\"\nweighted = true\n").unwrap();
        let rendered = render_spec(&entries);
        assert_eq!(parse_spec(&rendered).unwrap(), entries);
    }
}
