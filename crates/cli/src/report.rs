//! The structured run report behind `--json` on `fedsz fl` and
//! `fedsz serve`.
//!
//! Both subcommands print human tables by default; automation needs
//! one stable, parseable schema instead — the config-smoke CI job
//! parses every example spec's output and checks the checksum field.
//! [`RunReport`] is that schema, shared by the simulator and the
//! socket runtime so a parity harness can diff the two without
//! scraping either one's table format:
//!
//! ```json
//! {
//!   "schema": "fedsz.run_report.v2",
//!   "schema_version": 2,
//!   "command": "fl",
//!   "clients": 4,
//!   "rounds": [
//!     {"round": 0, "accuracy": 0.25, "merged": 4, "lost": 0,
//!      "upstream_bytes": 1234, "downstream_bytes": 5678,
//!      "secs": 0.125, "checksum": null,
//!      "level_merge_nanos": [810, 5230],
//!      "eqn1": [{"leg": "uplink", "node": 0, "compressed": true,
//!                "family": "lossy",
//!                "predicted_compressed_secs": null,
//!                "predicted_raw_secs": null,
//!                "measured_codec_secs": 0.0021}, ...],
//!      "reconnects": null, "reparented": null,
//!      "dp_sigma": 0.05, "clipped_fraction": 0.25},
//!     ...
//!   ],
//!   "checksum": "0x82c3c3f4"
//! }
//! ```
//!
//! Fields a side cannot produce are `null`, never omitted: `fl` has
//! accuracies but no per-round checksums, `serve` the reverse — the
//! column set itself is identical, which is what makes the schema
//! *one* schema. The top-level `checksum` is the same bit-parity
//! fingerprint both subcommands print as `global checksum: 0x…` in
//! table mode.
//!
//! v2 added the observability columns: `level_merge_nanos` (wall
//! nanoseconds merging into each tree level, root first; the
//! simulator fills it, `serve` reports `null`) and `eqn1` (every
//! Eqn-1 compression decision the round made — leg, node, chosen
//! path, the predicted costs of both paths when the decision was
//! priced, and the measured codec seconds), and later the elastic
//! membership columns: `reconnects` (sessions that reconnected and
//! resumed during the round) and `reparented` (orphans a sharded root
//! adopted after their relay died) — the simulator nulls both, the
//! socket runtime fills them. The DP columns came with the sweep
//! subsystem: `dp_sigma` (the per-element noise scale of the plan's
//! DP stage; both sides fill it whenever DP is on, `null` otherwise)
//! and `clipped_fraction` (the fraction of this round's client deltas
//! the clip bound actually touched — the simulator observes its
//! clients, a root only sees ciphertext-like payloads, so `serve`
//! always nulls it).
//!
//! Which side fills which column is a contract with two ends, so it
//! lives in exactly one place: the [`RoundRow::simulator`] and
//! [`RoundRow::socket`] constructors. `fl`, `serve` and `sweep` all
//! build their rows through them instead of hand-maintaining the
//! null pattern at each call site.
//!
//! The emitter is hand-rolled (no serde in the dependency-free
//! workspace); every string that reaches it is machine-generated, but
//! [`json_string`] escapes defensively anyway.

use fedsz::timing::Eqn1Decision;
use fedsz_fl::net::NetRound;
use fedsz_fl::RoundMetrics;
use std::fmt::Write as _;

/// One round's columns, shared by `fl` and `serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRow {
    /// Round index (0-based).
    pub round: usize,
    /// Post-round test accuracy (`None` for `serve`, which never
    /// evaluates).
    pub accuracy: Option<f64>,
    /// Updates folded into the aggregate.
    pub merged: usize,
    /// Updates that never made it: simulator transit drops, or socket
    /// evictions.
    pub lost: usize,
    /// Client/child → server bytes on the wire.
    pub upstream_bytes: usize,
    /// Server → client/child bytes on the wire.
    pub downstream_bytes: usize,
    /// Round duration: virtual seconds for the simulator, wall-clock
    /// for the socket runtime.
    pub secs: f64,
    /// Post-round global checksum (`None` for `fl`, which fingerprints
    /// only the final model).
    pub checksum: Option<u32>,
    /// Wall nanoseconds merging into each aggregation-tree level, root
    /// first (`None` for `serve`, whose relays own their own merges).
    pub level_merge_nanos: Option<Vec<u64>>,
    /// Every Eqn-1 compression decision the round made (`None` for
    /// `serve`; workers price their own uplinks).
    pub eqn1: Option<Vec<Eqn1Decision>>,
    /// Sessions that reconnected and resumed this round (`None` for
    /// `fl`; the simulator has no sockets to lose).
    pub reconnects: Option<usize>,
    /// Orphaned workers re-parented to this node after their relay
    /// died (`None` for `fl`, and always 0 on relays and flat roots).
    pub reparented: Option<usize>,
    /// Per-element noise scale of the plan's DP stage (clip norm ×
    /// noise multiplier). Both sides fill it when DP is on; `None`
    /// means the run had no DP stage.
    pub dp_sigma: Option<f64>,
    /// Fraction of this round's client deltas the DP clip bound
    /// actually scaled (`None` for `serve` — clipping happens inside
    /// worker processes the server cannot observe — and for runs
    /// without DP).
    pub clipped_fraction: Option<f64>,
}

impl RoundRow {
    /// Builds a simulator (`fl`/`sweep`) row from the round engine's
    /// metrics. This constructor owns the simulator half of the
    /// fills-vs-nulls contract: accuracies, merge timings, Eqn-1
    /// decisions and DP observations are filled; per-round checksums
    /// and the elastic-membership counters are `null` (the simulator
    /// has no sockets to lose).
    pub fn simulator(m: &RoundMetrics) -> Self {
        Self {
            round: m.round,
            accuracy: Some(m.test_accuracy),
            merged: m.aggregated_updates,
            lost: m.dropped_updates,
            upstream_bytes: m.upstream_bytes,
            downstream_bytes: m.downstream_bytes,
            secs: m.round_secs,
            checksum: None,
            level_merge_nanos: Some(m.level_merge_nanos.clone()),
            eqn1: Some(m.eqn1.clone()),
            reconnects: None,
            reparented: None,
            dp_sigma: m.dp_sigma,
            clipped_fraction: m.clipped_fraction,
        }
    }

    /// Builds a socket (`serve`) row — the other half of the
    /// contract: per-round checksums and membership counters are
    /// filled, while accuracies, merge timings, Eqn-1 records and the
    /// clipped fraction stay `null` (they happen inside worker and
    /// relay processes this server cannot see). A relay never holds
    /// the global, so `relay` nulls the checksum rather than emitting
    /// a bogus `0x00000000`. `dp_sigma` comes from the shared plan —
    /// the server knows the policy even though the noise is applied
    /// worker-side.
    pub fn socket(r: &NetRound, relay: bool, dp_sigma: Option<f64>) -> Self {
        Self {
            round: r.round as usize,
            accuracy: None,
            merged: r.merged,
            lost: r.evicted,
            upstream_bytes: r.upstream_bytes,
            downstream_bytes: r.downstream_bytes,
            secs: r.wall_secs,
            checksum: (!relay).then_some(r.checksum),
            level_merge_nanos: None,
            eqn1: None,
            reconnects: Some(r.reconnects),
            reparented: Some(r.reparented),
            dp_sigma,
            clipped_fraction: None,
        }
    }
}

/// The complete `--json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Which subcommand produced the report (`"fl"` or `"serve"`).
    pub command: &'static str,
    /// Cohort size.
    pub clients: usize,
    /// Per-round columns.
    pub rounds: Vec<RoundRow>,
    /// The final global model's bit-parity fingerprint (`None` for a
    /// relay `serve`, which never holds the global — emitting a zero
    /// here would read as a bogus divergence to a parity harness).
    pub checksum: Option<u32>,
}

/// The schema tag every report carries.
pub const RUN_REPORT_SCHEMA: &str = "fedsz.run_report.v2";

/// The schema version every report carries.
pub const SCHEMA_VERSION: u32 = 2;

/// Escapes a string for a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite f64 with fixed precision; non-finite values
/// become `null` (JSON has no Infinity/NaN). Shared with the sweep
/// report emitter.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string() // JSON has no Infinity/NaN
    }
}

fn json_u64_array(values: &[u64]) -> String {
    let body = values.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    format!("[{body}]")
}

/// One Eqn-1 decision as a JSON object; `None` predictions (the
/// unconditional modes and the profile-less probe rounds) render as
/// `null`, never omitted.
fn json_eqn1(d: &Eqn1Decision) -> String {
    format!(
        "{{\"leg\": {}, \"node\": {}, \"compressed\": {}, \"family\": {}, \
         \"predicted_compressed_secs\": {}, \"predicted_raw_secs\": {}, \
         \"measured_codec_secs\": {}}}",
        json_string(d.leg.name()),
        d.node,
        d.compressed,
        json_string(d.family),
        d.predicted_compressed_secs.map_or("null".to_string(), json_f64),
        d.predicted_raw_secs.map_or("null".to_string(), json_f64),
        json_f64(d.measured_codec_secs),
    )
}

impl RunReport {
    /// Renders the stable-schema JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": {},", json_string(RUN_REPORT_SCHEMA));
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"command\": {},", json_string(self.command));
        let _ = writeln!(out, "  \"clients\": {},", self.clients);
        let _ = writeln!(out, "  \"rounds\": [");
        for (i, row) in self.rounds.iter().enumerate() {
            let accuracy = row.accuracy.map_or("null".to_string(), json_f64);
            let checksum =
                row.checksum.map_or("null".to_string(), |c| json_string(&format!("0x{c:08x}")));
            let level_merge_nanos =
                row.level_merge_nanos.as_deref().map_or("null".to_string(), json_u64_array);
            let eqn1 = row.eqn1.as_deref().map_or("null".to_string(), |decisions| {
                let body = decisions.iter().map(json_eqn1).collect::<Vec<_>>().join(", ");
                format!("[{body}]")
            });
            let reconnects = row.reconnects.map_or("null".to_string(), |n| n.to_string());
            let reparented = row.reparented.map_or("null".to_string(), |n| n.to_string());
            let dp_sigma = row.dp_sigma.map_or("null".to_string(), json_f64);
            let clipped_fraction = row.clipped_fraction.map_or("null".to_string(), json_f64);
            let _ = write!(
                out,
                "    {{\"round\": {}, \"accuracy\": {}, \"merged\": {}, \"lost\": {}, \
                 \"upstream_bytes\": {}, \"downstream_bytes\": {}, \"secs\": {}, \
                 \"checksum\": {}, \"level_merge_nanos\": {}, \"eqn1\": {}, \
                 \"reconnects\": {}, \"reparented\": {}, \
                 \"dp_sigma\": {}, \"clipped_fraction\": {}}}",
                row.round,
                accuracy,
                row.merged,
                row.lost,
                row.upstream_bytes,
                row.downstream_bytes,
                json_f64(row.secs),
                checksum,
                level_merge_nanos,
                eqn1,
                reconnects,
                reparented,
                dp_sigma,
                clipped_fraction,
            );
            let _ = writeln!(out, "{}", if i + 1 < self.rounds.len() { "," } else { "" });
        }
        let _ = writeln!(out, "  ],");
        let checksum =
            self.checksum.map_or("null".to_string(), |c| json_string(&format!("0x{c:08x}")));
        let _ = writeln!(out, "  \"checksum\": {checksum}");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            command: "fl",
            clients: 2,
            rounds: vec![
                RoundRow {
                    round: 0,
                    accuracy: Some(0.25),
                    merged: 2,
                    lost: 0,
                    upstream_bytes: 100,
                    downstream_bytes: 200,
                    secs: 0.5,
                    checksum: None,
                    level_merge_nanos: Some(vec![810, 5230]),
                    eqn1: Some(vec![
                        Eqn1Decision::unpriced(fedsz::timing::Eqn1Leg::Uplink, 0, true, 0.002),
                        Eqn1Decision {
                            leg: fedsz::timing::Eqn1Leg::Downlink,
                            node: 0,
                            compressed: false,
                            family: "raw",
                            predicted_compressed_secs: Some(0.5),
                            predicted_raw_secs: Some(0.25),
                            measured_codec_secs: 0.0,
                        },
                    ]),
                    reconnects: None,
                    reparented: None,
                    dp_sigma: Some(0.05),
                    clipped_fraction: Some(0.25),
                },
                RoundRow {
                    round: 1,
                    accuracy: None,
                    merged: 1,
                    lost: 1,
                    upstream_bytes: 50,
                    downstream_bytes: 100,
                    secs: f64::INFINITY,
                    checksum: Some(0xdeadbeef),
                    level_merge_nanos: None,
                    eqn1: None,
                    reconnects: Some(2),
                    reparented: Some(1),
                    dp_sigma: None,
                    clipped_fraction: None,
                },
            ],
            checksum: Some(0x82c3c3f4),
        }
    }

    #[test]
    fn report_carries_schema_and_checksum() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\": \"fedsz.run_report.v2\""), "{json}");
        assert!(json.contains("\"schema_version\": 2"), "{json}");
        assert!(json.contains("\"checksum\": \"0x82c3c3f4\""), "{json}");
        assert!(json.contains("\"checksum\": \"0xdeadbeef\""), "{json}");
        // Missing columns are null, never omitted (one schema).
        assert!(json.contains("\"accuracy\": null"), "{json}");
        assert!(json.contains("\"checksum\": null"), "{json}");
        // Non-finite values cannot leak into JSON.
        assert!(json.contains("\"secs\": null"), "{json}");
        assert!(!json.contains("inf"), "{json}");
        // A relay report (no global model) nulls the fingerprint
        // instead of printing a bogus 0x00000000.
        let relay = RunReport { checksum: None, ..sample() };
        assert!(relay.to_json().contains("\"checksum\": null"), "{}", relay.to_json());
        assert!(!relay.to_json().contains("0x00000000"));
    }

    #[test]
    fn v2_observability_columns_render_values_and_nulls() {
        let json = sample().to_json();
        // Round 0 carries the simulator's measurements...
        assert!(json.contains("\"level_merge_nanos\": [810, 5230]"), "{json}");
        assert!(json.contains("\"leg\": \"uplink\""), "{json}");
        assert!(json.contains("\"leg\": \"downlink\""), "{json}");
        // ...with unpriced decisions nulling both predictions, never
        // omitting the keys.
        assert!(
            json.contains("\"predicted_compressed_secs\": null, \"predicted_raw_secs\": null"),
            "{json}"
        );
        assert!(json.contains("\"predicted_raw_secs\": 0.250000"), "{json}");
        assert!(json.contains("\"measured_codec_secs\": 0.002000"), "{json}");
        // Every decision names its codec family.
        assert!(json.contains("\"family\": \"lossy\""), "{json}");
        assert!(json.contains("\"family\": \"raw\""), "{json}");
        // ...and round 1 (a serve-style row) nulls whole columns.
        assert!(json.contains("\"level_merge_nanos\": null"), "{json}");
        assert!(json.contains("\"eqn1\": null"), "{json}");
        // The elastic-membership columns follow the same rule: the
        // simulator's row nulls them, the socket row fills them.
        assert!(json.contains("\"reconnects\": null, \"reparented\": null"), "{json}");
        assert!(json.contains("\"reconnects\": 2, \"reparented\": 1"), "{json}");
        // The DP columns: filled on the DP round, nulled (never
        // omitted) on the DP-free one.
        assert!(json.contains("\"dp_sigma\": 0.050000, \"clipped_fraction\": 0.250000"), "{json}");
        assert!(json.contains("\"dp_sigma\": null, \"clipped_fraction\": null"), "{json}");
    }

    #[test]
    fn constructors_own_the_fills_vs_nulls_contract() {
        let net = NetRound {
            round: 3,
            downstream_bytes: 200,
            upstream_bytes: 100,
            merged: 4,
            evicted: 1,
            reconnects: 2,
            reparented: 1,
            wall_secs: 0.25,
            checksum: 0xdeadbeef,
        };
        let row = RoundRow::socket(&net, false, Some(0.1));
        assert_eq!(row.round, 3);
        assert_eq!(row.checksum, Some(0xdeadbeef));
        assert_eq!(row.reconnects, Some(2));
        assert_eq!(row.dp_sigma, Some(0.1));
        // The socket side can never observe these.
        assert_eq!(row.accuracy, None);
        assert_eq!(row.level_merge_nanos, None);
        assert_eq!(row.eqn1, None);
        assert_eq!(row.clipped_fraction, None);
        // A relay never holds the global model.
        assert_eq!(RoundRow::socket(&net, true, None).checksum, None);
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_is_structurally_valid_json() {
        // A tiny structural walk: balanced braces/brackets outside
        // strings — the full parse happens in the CI smoke with a real
        // JSON parser.
        let json = sample().to_json();
        let (mut depth, mut in_string, mut escaped) = (0i32, false, false);
        for c in json.chars() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_string => escaped = true,
                '"' => in_string = !in_string,
                '{' | '[' if !in_string => depth += 1,
                '}' | ']' if !in_string => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {json}");
        }
        assert_eq!(depth, 0, "unbalanced braces in {json}");
        assert!(!in_string, "unterminated string in {json}");
    }
}
