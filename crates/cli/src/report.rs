//! The structured run report behind `--json` on `fedsz fl` and
//! `fedsz serve`.
//!
//! Both subcommands print human tables by default; automation needs
//! one stable, parseable schema instead — the config-smoke CI job
//! parses every example spec's output and checks the checksum field.
//! [`RunReport`] is that schema, shared by the simulator and the
//! socket runtime so a parity harness can diff the two without
//! scraping either one's table format:
//!
//! ```json
//! {
//!   "schema": "fedsz.run_report.v2",
//!   "schema_version": 2,
//!   "command": "fl",
//!   "clients": 4,
//!   "rounds": [
//!     {"round": 0, "accuracy": 0.25, "merged": 4, "lost": 0,
//!      "upstream_bytes": 1234, "downstream_bytes": 5678,
//!      "secs": 0.125, "checksum": null,
//!      "level_merge_nanos": [810, 5230],
//!      "eqn1": [{"leg": "uplink", "node": 0, "compressed": true,
//!                "family": "lossy",
//!                "predicted_compressed_secs": null,
//!                "predicted_raw_secs": null,
//!                "measured_codec_secs": 0.0021}, ...],
//!      "reconnects": null, "reparented": null},
//!     ...
//!   ],
//!   "checksum": "0x82c3c3f4"
//! }
//! ```
//!
//! Fields a side cannot produce are `null`, never omitted: `fl` has
//! accuracies but no per-round checksums, `serve` the reverse — the
//! column set itself is identical, which is what makes the schema
//! *one* schema. The top-level `checksum` is the same bit-parity
//! fingerprint both subcommands print as `global checksum: 0x…` in
//! table mode.
//!
//! v2 added the observability columns: `level_merge_nanos` (wall
//! nanoseconds merging into each tree level, root first; the
//! simulator fills it, `serve` reports `null`) and `eqn1` (every
//! Eqn-1 compression decision the round made — leg, node, chosen
//! path, the predicted costs of both paths when the decision was
//! priced, and the measured codec seconds), and later the elastic
//! membership columns: `reconnects` (sessions that reconnected and
//! resumed during the round) and `reparented` (orphans a sharded root
//! adopted after their relay died) — the simulator nulls both, the
//! socket runtime fills them.
//!
//! The emitter is hand-rolled (no serde in the dependency-free
//! workspace); every string that reaches it is machine-generated, but
//! [`json_string`] escapes defensively anyway.

use fedsz::timing::Eqn1Decision;
use std::fmt::Write as _;

/// One round's columns, shared by `fl` and `serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRow {
    /// Round index (0-based).
    pub round: usize,
    /// Post-round test accuracy (`None` for `serve`, which never
    /// evaluates).
    pub accuracy: Option<f64>,
    /// Updates folded into the aggregate.
    pub merged: usize,
    /// Updates that never made it: simulator transit drops, or socket
    /// evictions.
    pub lost: usize,
    /// Client/child → server bytes on the wire.
    pub upstream_bytes: usize,
    /// Server → client/child bytes on the wire.
    pub downstream_bytes: usize,
    /// Round duration: virtual seconds for the simulator, wall-clock
    /// for the socket runtime.
    pub secs: f64,
    /// Post-round global checksum (`None` for `fl`, which fingerprints
    /// only the final model).
    pub checksum: Option<u32>,
    /// Wall nanoseconds merging into each aggregation-tree level, root
    /// first (`None` for `serve`, whose relays own their own merges).
    pub level_merge_nanos: Option<Vec<u64>>,
    /// Every Eqn-1 compression decision the round made (`None` for
    /// `serve`; workers price their own uplinks).
    pub eqn1: Option<Vec<Eqn1Decision>>,
    /// Sessions that reconnected and resumed this round (`None` for
    /// `fl`; the simulator has no sockets to lose).
    pub reconnects: Option<usize>,
    /// Orphaned workers re-parented to this node after their relay
    /// died (`None` for `fl`, and always 0 on relays and flat roots).
    pub reparented: Option<usize>,
}

/// The complete `--json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Which subcommand produced the report (`"fl"` or `"serve"`).
    pub command: &'static str,
    /// Cohort size.
    pub clients: usize,
    /// Per-round columns.
    pub rounds: Vec<RoundRow>,
    /// The final global model's bit-parity fingerprint (`None` for a
    /// relay `serve`, which never holds the global — emitting a zero
    /// here would read as a bogus divergence to a parity harness).
    pub checksum: Option<u32>,
}

/// The schema tag every report carries.
pub const RUN_REPORT_SCHEMA: &str = "fedsz.run_report.v2";

/// The schema version every report carries.
pub const SCHEMA_VERSION: u32 = 2;

/// Escapes a string for a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string() // JSON has no Infinity/NaN
    }
}

fn json_u64_array(values: &[u64]) -> String {
    let body = values.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    format!("[{body}]")
}

/// One Eqn-1 decision as a JSON object; `None` predictions (the
/// unconditional modes and the profile-less probe rounds) render as
/// `null`, never omitted.
fn json_eqn1(d: &Eqn1Decision) -> String {
    format!(
        "{{\"leg\": {}, \"node\": {}, \"compressed\": {}, \"family\": {}, \
         \"predicted_compressed_secs\": {}, \"predicted_raw_secs\": {}, \
         \"measured_codec_secs\": {}}}",
        json_string(d.leg.name()),
        d.node,
        d.compressed,
        json_string(d.family),
        d.predicted_compressed_secs.map_or("null".to_string(), json_f64),
        d.predicted_raw_secs.map_or("null".to_string(), json_f64),
        json_f64(d.measured_codec_secs),
    )
}

impl RunReport {
    /// Renders the stable-schema JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": {},", json_string(RUN_REPORT_SCHEMA));
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"command\": {},", json_string(self.command));
        let _ = writeln!(out, "  \"clients\": {},", self.clients);
        let _ = writeln!(out, "  \"rounds\": [");
        for (i, row) in self.rounds.iter().enumerate() {
            let accuracy = row.accuracy.map_or("null".to_string(), json_f64);
            let checksum =
                row.checksum.map_or("null".to_string(), |c| json_string(&format!("0x{c:08x}")));
            let level_merge_nanos =
                row.level_merge_nanos.as_deref().map_or("null".to_string(), json_u64_array);
            let eqn1 = row.eqn1.as_deref().map_or("null".to_string(), |decisions| {
                let body = decisions.iter().map(json_eqn1).collect::<Vec<_>>().join(", ");
                format!("[{body}]")
            });
            let reconnects = row.reconnects.map_or("null".to_string(), |n| n.to_string());
            let reparented = row.reparented.map_or("null".to_string(), |n| n.to_string());
            let _ = write!(
                out,
                "    {{\"round\": {}, \"accuracy\": {}, \"merged\": {}, \"lost\": {}, \
                 \"upstream_bytes\": {}, \"downstream_bytes\": {}, \"secs\": {}, \
                 \"checksum\": {}, \"level_merge_nanos\": {}, \"eqn1\": {}, \
                 \"reconnects\": {}, \"reparented\": {}}}",
                row.round,
                accuracy,
                row.merged,
                row.lost,
                row.upstream_bytes,
                row.downstream_bytes,
                json_f64(row.secs),
                checksum,
                level_merge_nanos,
                eqn1,
                reconnects,
                reparented,
            );
            let _ = writeln!(out, "{}", if i + 1 < self.rounds.len() { "," } else { "" });
        }
        let _ = writeln!(out, "  ],");
        let checksum =
            self.checksum.map_or("null".to_string(), |c| json_string(&format!("0x{c:08x}")));
        let _ = writeln!(out, "  \"checksum\": {checksum}");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            command: "fl",
            clients: 2,
            rounds: vec![
                RoundRow {
                    round: 0,
                    accuracy: Some(0.25),
                    merged: 2,
                    lost: 0,
                    upstream_bytes: 100,
                    downstream_bytes: 200,
                    secs: 0.5,
                    checksum: None,
                    level_merge_nanos: Some(vec![810, 5230]),
                    eqn1: Some(vec![
                        Eqn1Decision::unpriced(fedsz::timing::Eqn1Leg::Uplink, 0, true, 0.002),
                        Eqn1Decision {
                            leg: fedsz::timing::Eqn1Leg::Downlink,
                            node: 0,
                            compressed: false,
                            family: "raw",
                            predicted_compressed_secs: Some(0.5),
                            predicted_raw_secs: Some(0.25),
                            measured_codec_secs: 0.0,
                        },
                    ]),
                    reconnects: None,
                    reparented: None,
                },
                RoundRow {
                    round: 1,
                    accuracy: None,
                    merged: 1,
                    lost: 1,
                    upstream_bytes: 50,
                    downstream_bytes: 100,
                    secs: f64::INFINITY,
                    checksum: Some(0xdeadbeef),
                    level_merge_nanos: None,
                    eqn1: None,
                    reconnects: Some(2),
                    reparented: Some(1),
                },
            ],
            checksum: Some(0x82c3c3f4),
        }
    }

    #[test]
    fn report_carries_schema_and_checksum() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\": \"fedsz.run_report.v2\""), "{json}");
        assert!(json.contains("\"schema_version\": 2"), "{json}");
        assert!(json.contains("\"checksum\": \"0x82c3c3f4\""), "{json}");
        assert!(json.contains("\"checksum\": \"0xdeadbeef\""), "{json}");
        // Missing columns are null, never omitted (one schema).
        assert!(json.contains("\"accuracy\": null"), "{json}");
        assert!(json.contains("\"checksum\": null"), "{json}");
        // Non-finite values cannot leak into JSON.
        assert!(json.contains("\"secs\": null"), "{json}");
        assert!(!json.contains("inf"), "{json}");
        // A relay report (no global model) nulls the fingerprint
        // instead of printing a bogus 0x00000000.
        let relay = RunReport { checksum: None, ..sample() };
        assert!(relay.to_json().contains("\"checksum\": null"), "{}", relay.to_json());
        assert!(!relay.to_json().contains("0x00000000"));
    }

    #[test]
    fn v2_observability_columns_render_values_and_nulls() {
        let json = sample().to_json();
        // Round 0 carries the simulator's measurements...
        assert!(json.contains("\"level_merge_nanos\": [810, 5230]"), "{json}");
        assert!(json.contains("\"leg\": \"uplink\""), "{json}");
        assert!(json.contains("\"leg\": \"downlink\""), "{json}");
        // ...with unpriced decisions nulling both predictions, never
        // omitting the keys.
        assert!(
            json.contains("\"predicted_compressed_secs\": null, \"predicted_raw_secs\": null"),
            "{json}"
        );
        assert!(json.contains("\"predicted_raw_secs\": 0.250000"), "{json}");
        assert!(json.contains("\"measured_codec_secs\": 0.002000"), "{json}");
        // Every decision names its codec family.
        assert!(json.contains("\"family\": \"lossy\""), "{json}");
        assert!(json.contains("\"family\": \"raw\""), "{json}");
        // ...and round 1 (a serve-style row) nulls whole columns.
        assert!(json.contains("\"level_merge_nanos\": null"), "{json}");
        assert!(json.contains("\"eqn1\": null"), "{json}");
        // The elastic-membership columns follow the same rule: the
        // simulator's row nulls them, the socket row fills them.
        assert!(json.contains("\"reconnects\": null, \"reparented\": null"), "{json}");
        assert!(json.contains("\"reconnects\": 2, \"reparented\": 1"), "{json}");
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_is_structurally_valid_json() {
        // A tiny structural walk: balanced braces/brackets outside
        // strings — the full parse happens in the CI smoke with a real
        // JSON parser.
        let json = sample().to_json();
        let (mut depth, mut in_string, mut escaped) = (0i32, false, false);
        for c in json.chars() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_string => escaped = true,
                '"' => in_string = !in_string,
                '{' | '[' if !in_string => depth += 1,
                '}' | ']' if !in_string => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {json}");
        }
        assert_eq!(depth, 0, "unbalanced braces in {json}");
        assert!(!in_string, "unterminated string in {json}");
    }
}
