//! Differential-privacy analysis of lossy-compression error.
//!
//! Section VII-D of the paper observes that the pointwise error
//! introduced by FedSZ's decompression is distributed very much like
//! Laplacian noise — the distribution used by the classic Laplace
//! mechanism for differential privacy. This crate provides the analysis
//! machinery behind Figure 10: error extraction, maximum-likelihood fits
//! of Laplace and Gaussian models, and Kolmogorov–Smirnov distances to
//! judge which fits better — plus the *mechanism* side: [`DpPolicy`], a
//! seeded clip+noise stage the round plan applies to client updates
//! before the uplink codec.
//!
//! # Examples
//!
//! ```
//! use fedsz_dp::{laplace_mle, sample_laplace_errors};
//!
//! let errors = sample_laplace_errors(42, 10_000, 0.05);
//! let fit = laplace_mle(&errors);
//! assert!((fit.scale - 0.05).abs() < 0.005);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fedsz_lossy::{ErrorBound, ErrorBounded};

/// Pointwise reconstruction errors `original - decompressed`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn error_vector(original: &[f32], decompressed: &[f32]) -> Vec<f32> {
    assert_eq!(original.len(), decompressed.len(), "length mismatch");
    original.iter().zip(decompressed).map(|(&a, &b)| a - b).collect()
}

/// Compresses `data` with `codec` at `bound` and returns the error
/// vector — the quantity Figure 10 histograms.
///
/// # Errors
///
/// Propagates compressor errors.
pub fn compression_errors(
    codec: &dyn ErrorBounded,
    data: &[f32],
    bound: ErrorBound,
) -> Result<Vec<f32>, fedsz_lossy::LossyError> {
    let packed = codec.compress(data, bound)?;
    let restored = codec.decompress(&packed).expect("self-produced stream decodes");
    Ok(error_vector(data, &restored))
}

/// A fitted Laplace(μ, b) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceFit {
    /// Location (median).
    pub location: f64,
    /// Scale `b` (mean absolute deviation from the median).
    pub scale: f64,
}

impl LaplaceFit {
    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.location) / self.scale;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        (-((x - self.location).abs() / self.scale)).exp() / (2.0 * self.scale)
    }

    /// The ε differential-privacy parameter this noise *would* provide
    /// for a query of the given L1 `sensitivity` under the Laplace
    /// mechanism (`ε = sensitivity / b`). The paper is careful to note
    /// this is suggestive, not a formal guarantee; so are we.
    pub fn epsilon_for_sensitivity(&self, sensitivity: f64) -> f64 {
        sensitivity / self.scale
    }
}

/// A fitted Normal(μ, σ) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianFit {
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
}

impl GaussianFit {
    /// Cumulative distribution function (via `erf`-free approximation).
    pub fn cdf(&self, x: f64) -> f64 {
        // Abramowitz–Stegun style logistic approximation of Φ, accurate
        // to ~1e-4 — plenty for KS comparison purposes.
        let z = (x - self.mean) / self.std.max(1e-300);
        1.0 / (1.0 + (-1.5976 * z - 0.070566 * z * z * z).exp())
    }
}

/// Maximum-likelihood Laplace fit: location = median, scale = mean
/// absolute deviation from it.
///
/// # Panics
///
/// Panics on empty input.
pub fn laplace_mle(errors: &[f32]) -> LaplaceFit {
    assert!(!errors.is_empty(), "cannot fit an empty sample");
    let mut sorted: Vec<f32> = errors.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let location = f64::from(sorted[sorted.len() / 2]);
    let scale =
        errors.iter().map(|&e| (f64::from(e) - location).abs()).sum::<f64>() / errors.len() as f64;
    LaplaceFit { location, scale: scale.max(1e-300) }
}

/// Maximum-likelihood Gaussian fit.
///
/// # Panics
///
/// Panics on empty input.
pub fn gaussian_mle(errors: &[f32]) -> GaussianFit {
    assert!(!errors.is_empty(), "cannot fit an empty sample");
    let n = errors.len() as f64;
    let mean = errors.iter().map(|&e| f64::from(e)).sum::<f64>() / n;
    let var = errors.iter().map(|&e| (f64::from(e) - mean).powi(2)).sum::<f64>() / n;
    GaussianFit { mean, std: var.sqrt().max(1e-300) }
}

/// Kolmogorov–Smirnov statistic between a sample and a model CDF.
///
/// # Panics
///
/// Panics on empty input.
pub fn ks_statistic(sample: &[f32], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!sample.is_empty(), "cannot compare an empty sample");
    let mut sorted: Vec<f64> = sample.iter().map(|&v| f64::from(v)).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let model = cdf(x);
        let emp_hi = (i + 1) as f64 / n;
        let emp_lo = i as f64 / n;
        d = d.max((model - emp_lo).abs()).max((emp_hi - model).abs());
    }
    d
}

/// Verdict of the Laplace-vs-Gaussian comparison for one error sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseReport {
    /// Fitted Laplace parameters.
    pub laplace: LaplaceFit,
    /// Fitted Gaussian parameters.
    pub gaussian: GaussianFit,
    /// KS distance of the Laplace fit.
    pub ks_laplace: f64,
    /// KS distance of the Gaussian fit.
    pub ks_gaussian: f64,
}

impl NoiseReport {
    /// Whether the Laplace model explains the errors better (the paper's
    /// Figure 10 claim).
    pub fn laplace_preferred(&self) -> bool {
        self.ks_laplace < self.ks_gaussian
    }
}

/// Fits both models and computes their KS distances.
pub fn analyze_noise(errors: &[f32]) -> NoiseReport {
    let laplace = laplace_mle(errors);
    let gaussian = gaussian_mle(errors);
    let ks_laplace = ks_statistic(errors, |x| laplace.cdf(x));
    let ks_gaussian = ks_statistic(errors, |x| gaussian.cdf(x));
    NoiseReport { laplace, gaussian, ks_laplace, ks_gaussian }
}

/// Synthesizes Laplace(0, b) samples (test helper and doc examples).
pub fn sample_laplace_errors(seed: u64, n: usize, b: f32) -> Vec<f32> {
    let mut rng = fedsz_tensor::rng::seeded(seed);
    (0..n).map(|_| fedsz_tensor::rng::laplace(&mut rng, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_lossy::LossyKind;
    use fedsz_tensor::rng::{self, seeded};

    #[test]
    fn laplace_fit_recovers_parameters() {
        let sample = sample_laplace_errors(1, 50_000, 0.02);
        let fit = laplace_mle(&sample);
        assert!(fit.location.abs() < 1e-3, "location {}", fit.location);
        assert!((fit.scale - 0.02).abs() < 1e-3, "scale {}", fit.scale);
    }

    #[test]
    fn gaussian_fit_recovers_parameters() {
        let mut rng = seeded(2);
        let sample: Vec<f32> = (0..50_000).map(|_| rng::normal(&mut rng) * 0.5 + 1.0).collect();
        let fit = gaussian_mle(&sample);
        assert!((fit.mean - 1.0).abs() < 0.01);
        assert!((fit.std - 0.5).abs() < 0.01);
    }

    #[test]
    fn ks_prefers_the_true_model() {
        let laplace_sample = sample_laplace_errors(3, 20_000, 1.0);
        let report = analyze_noise(&laplace_sample);
        assert!(report.laplace_preferred(), "{report:?}");

        let mut rng = seeded(4);
        let gauss_sample: Vec<f32> = (0..20_000).map(|_| rng::normal(&mut rng)).collect();
        let report = analyze_noise(&gauss_sample);
        assert!(!report.laplace_preferred(), "{report:?}");
    }

    #[test]
    fn cdfs_are_monotone_and_bounded() {
        let lap = LaplaceFit { location: 0.0, scale: 1.0 };
        let gauss = GaussianFit { mean: 0.0, std: 1.0 };
        let mut last_l = 0.0;
        let mut last_g = 0.0;
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            let l = lap.cdf(x);
            let g = gauss.cdf(x);
            assert!((0.0..=1.0).contains(&l));
            assert!((0.0..=1.0).contains(&g));
            assert!(l >= last_l && g >= last_g);
            last_l = l;
            last_g = g;
        }
        assert!((lap.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((gauss.cdf(0.0) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn sz2_whole_model_errors_look_laplacian() {
        // The paper's Fig 10 histograms errors pooled over a whole model
        // update. Per-tensor quantization error is near-uniform within a
        // bin, but each layer gets its own absolute bound (value-range
        // relative mode), so the pooled mixture across layer scales is
        // sharply peaked — the Laplace-like shape the paper reports.
        let mut rng = seeded(5);
        let codec = LossyKind::Sz2.codec();
        let mut errors = Vec::new();
        for &scale in &[0.005f32, 0.02, 0.08, 0.3, 1.0] {
            let data: Vec<f32> = (0..12_000)
                .map(|_| rng::normal(&mut rng) * scale + rng::laplace(&mut rng, scale * 0.2))
                .collect();
            errors.extend(
                compression_errors(codec.as_ref(), &data, ErrorBound::Relative(0.05)).unwrap(),
            );
        }
        let nonzero = errors.iter().filter(|e| e.abs() > 0.0).count();
        assert!(nonzero > errors.len() / 2, "errors should be nontrivial");
        let report = analyze_noise(&errors);
        assert!(report.laplace_preferred(), "expected Laplace-like pooled errors: {report:?}");
    }

    #[test]
    fn epsilon_scales_inversely_with_noise() {
        let small = LaplaceFit { location: 0.0, scale: 0.01 };
        let large = LaplaceFit { location: 0.0, scale: 0.1 };
        assert!(small.epsilon_for_sensitivity(1.0) > large.epsilon_for_sensitivity(1.0));
    }

    #[test]
    fn error_vector_is_signed() {
        let e = error_vector(&[1.0, 2.0], &[0.5, 2.5]);
        assert_eq!(e, vec![0.5, -0.5]);
    }
}

/// The classic Laplace mechanism: adds calibrated Laplace(0, Δ/ε) noise
/// to every element of `data`, giving ε-differential privacy for a query
/// with L1 sensitivity `sensitivity`.
///
/// This is the formal mechanism the paper's Section VII-D gestures at;
/// pairing it with [`analyze_noise`] lets experiments compare the noise
/// FedSZ injects "for free" against the noise a given ε would require.
///
/// # Panics
///
/// Panics unless `sensitivity` and `epsilon` are positive and finite.
pub fn laplace_mechanism(data: &mut [f32], sensitivity: f64, epsilon: f64, seed: u64) {
    assert!(sensitivity.is_finite() && sensitivity > 0.0, "sensitivity must be positive");
    assert!(epsilon.is_finite() && epsilon > 0.0, "epsilon must be positive");
    let scale = (sensitivity / epsilon) as f32;
    let mut rng = fedsz_tensor::rng::seeded(seed);
    for v in data {
        *v += fedsz_tensor::rng::laplace(&mut rng, scale);
    }
}

/// Compares the noise FedSZ's compression injects against the Laplace
/// mechanism: returns the ε whose calibrated noise has the same scale as
/// the measured compression error (for L1 sensitivity `sensitivity`).
///
/// A *smaller* returned ε means the compression error is at least as
/// strong as that mechanism's noise. As the paper stresses, this is an
/// equivalence of noise magnitude, not a DP proof — the compression
/// error is data-dependent, which formal DP forbids.
pub fn equivalent_epsilon(errors: &[f32], sensitivity: f64) -> f64 {
    let fit = laplace_mle(errors);
    fit.epsilon_for_sensitivity(sensitivity)
}

#[cfg(test)]
mod mechanism_tests {
    use super::*;

    #[test]
    fn mechanism_noise_matches_requested_scale() {
        let mut data = vec![0.0f32; 50_000];
        laplace_mechanism(&mut data, 1.0, 10.0, 7);
        let fit = laplace_mle(&data);
        // Δ/ε = 0.1.
        assert!((fit.scale - 0.1).abs() < 0.005, "scale {}", fit.scale);
        assert!(fit.location.abs() < 0.01);
    }

    #[test]
    fn mechanism_is_deterministic_per_seed() {
        let mut a = vec![1.0f32; 100];
        let mut b = vec![1.0f32; 100];
        laplace_mechanism(&mut a, 1.0, 1.0, 3);
        laplace_mechanism(&mut b, 1.0, 1.0, 3);
        assert_eq!(a, b);
        let mut c = vec![1.0f32; 100];
        laplace_mechanism(&mut c, 1.0, 1.0, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn stronger_privacy_means_more_noise() {
        let mut weak = vec![0.0f32; 20_000];
        let mut strong = vec![0.0f32; 20_000];
        laplace_mechanism(&mut weak, 1.0, 10.0, 1); // big epsilon = weak privacy
        laplace_mechanism(&mut strong, 1.0, 0.5, 1);
        let var = |v: &[f32]| v.iter().map(|&x| f64::from(x).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(var(&strong) > 50.0 * var(&weak));
    }

    #[test]
    fn equivalent_epsilon_matches_fit() {
        let errors = sample_laplace_errors(5, 30_000, 0.05);
        let eps = equivalent_epsilon(&errors, 1.0);
        assert!((eps - 20.0).abs() < 1.0, "eps {eps}");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        laplace_mechanism(&mut [0.0], 1.0, 0.0, 1);
    }
}

// ---------------------------------------------------------------------------
// The DP *mechanism*: a clip-and-noise stage for client updates.
//
// Everything above analyzes noise after the fact; this section injects it
// on purpose. A `DpPolicy` is carried by the round plan and applied to the
// client's update delta *before* the uplink codec, so every runtime
// (simulator engine, socket worker) noises the exact same bits.
// ---------------------------------------------------------------------------

/// Which calibrated distribution a [`DpPolicy`] draws its noise from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpMechanism {
    /// Per-element `N(0, σ²)` with `σ = clip_norm × noise_multiplier`
    /// (the Gaussian mechanism of DP-SGD).
    Gaussian,
    /// Per-element `Laplace(0, b)` with `b = clip_norm × noise_multiplier`
    /// (the classic Laplace mechanism — the shape the paper's Figure 10
    /// finds in FedSZ's own decompression error).
    Laplace,
}

impl DpMechanism {
    /// Stable lowercase name, used by CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            DpMechanism::Gaussian => "gaussian",
            DpMechanism::Laplace => "laplace",
        }
    }

    /// Parses the CLI/TOML spelling. Returns `None` for anything but
    /// `gaussian` or `laplace`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "gaussian" => Some(DpMechanism::Gaussian),
            "laplace" => Some(DpMechanism::Laplace),
            _ => None,
        }
    }
}

/// A seeded, deterministic clip+noise stage for one client update delta.
///
/// The delta (client update minus the round's broadcast reference) is
/// clipped to global L2 norm ≤ `clip_norm`, then per-element noise of
/// scale [`DpPolicy::sigma`] is added. The noise stream is derived from
/// `(seed, round, client)` only — no per-client state survives a round,
/// which is what makes the stage legal on stateless socket workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpPolicy {
    /// Maximum L2 norm of the update delta; larger deltas are scaled down.
    pub clip_norm: f64,
    /// Noise scale as a multiple of `clip_norm` (`0` means clip-only).
    pub noise_multiplier: f64,
    /// Which distribution the noise is drawn from.
    pub mechanism: DpMechanism,
    /// Base seed; the per-(round, client) noise seed is derived from it.
    pub seed: u64,
}

impl DpPolicy {
    /// The per-element noise scale: `clip_norm × noise_multiplier`
    /// (σ for Gaussian, b for Laplace).
    pub fn sigma(&self) -> f64 {
        self.clip_norm * self.noise_multiplier
    }

    /// Derives the noise seed for one `(round, client)` cell so engine and
    /// worker draw bit-identical streams (same mixer shape as the uplink
    /// codec's dither seed).
    pub fn noise_seed(&self, round: u64, client: u64) -> u64 {
        self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(round << 20).wrapping_add(client)
    }

    /// Clips and noises a delta spread across `chunks` (one chunk per
    /// tensor). Two passes: the global L2 norm over every chunk decides
    /// the clip scale, then each element is scaled and noised in place.
    pub fn apply(&self, chunks: &mut [&mut [f32]], round: u64, client: u64) -> DpOutcome {
        let sq: f64 = chunks
            .iter()
            .map(|c| c.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>())
            .sum();
        let pre_norm = sq.sqrt();
        let clipped = pre_norm > self.clip_norm;
        let scale = if clipped { (self.clip_norm / pre_norm) as f32 } else { 1.0 };
        let sigma = self.sigma();
        let mut rng = fedsz_tensor::rng::seeded(self.noise_seed(round, client));
        for chunk in chunks.iter_mut() {
            for v in chunk.iter_mut() {
                let noise = if sigma > 0.0 {
                    match self.mechanism {
                        DpMechanism::Gaussian => fedsz_tensor::rng::normal(&mut rng) * sigma as f32,
                        DpMechanism::Laplace => fedsz_tensor::rng::laplace(&mut rng, sigma as f32),
                    }
                } else {
                    0.0
                };
                *v = *v * scale + noise;
            }
        }
        DpOutcome { pre_norm, clipped, sigma }
    }
}

/// What [`DpPolicy::apply`] did to one client's delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpOutcome {
    /// L2 norm of the delta before clipping.
    pub pre_norm: f64,
    /// Whether the delta exceeded `clip_norm` and was scaled down.
    pub clipped: bool,
    /// The per-element noise scale that was applied.
    pub sigma: f64,
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    fn policy(mechanism: DpMechanism) -> DpPolicy {
        DpPolicy { clip_norm: 1.0, noise_multiplier: 0.5, mechanism, seed: 42 }
    }

    fn apply_to(policy: &DpPolicy, data: &mut [Vec<f32>], round: u64, client: u64) -> DpOutcome {
        let mut chunks: Vec<&mut [f32]> = data.iter_mut().map(|v| v.as_mut_slice()).collect();
        policy.apply(&mut chunks, round, client)
    }

    #[test]
    fn clipping_bounds_the_norm() {
        let policy = DpPolicy { noise_multiplier: 0.0, ..policy(DpMechanism::Gaussian) };
        let mut data = vec![vec![3.0f32; 4], vec![4.0f32; 3]];
        let outcome = apply_to(&policy, &mut data, 0, 0);
        assert!(outcome.clipped);
        assert!((outcome.pre_norm - (9.0f64 * 4.0 + 16.0 * 3.0).sqrt()).abs() < 1e-9);
        let post: f64 = data.iter().flatten().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
        assert!((post.sqrt() - 1.0).abs() < 1e-5, "post-clip norm {}", post.sqrt());
    }

    #[test]
    fn small_deltas_pass_unclipped() {
        let policy = DpPolicy { noise_multiplier: 0.0, ..policy(DpMechanism::Laplace) };
        let mut data = vec![vec![0.01f32; 8]];
        let outcome = apply_to(&policy, &mut data, 1, 2);
        assert!(!outcome.clipped);
        assert_eq!(data[0], vec![0.01f32; 8]);
    }

    #[test]
    fn noise_is_deterministic_per_coordinates() {
        for mech in [DpMechanism::Gaussian, DpMechanism::Laplace] {
            let policy = policy(mech);
            let mut a = vec![vec![0.1f32; 64]];
            let mut b = vec![vec![0.1f32; 64]];
            apply_to(&policy, &mut a, 3, 7);
            apply_to(&policy, &mut b, 3, 7);
            assert_eq!(a, b, "{mech:?} must be deterministic per (seed, round, client)");
            let mut c = vec![vec![0.1f32; 64]];
            apply_to(&policy, &mut c, 3, 8);
            assert_ne!(a, c, "{mech:?} must vary across clients");
            let mut d = vec![vec![0.1f32; 64]];
            apply_to(&policy, &mut d, 4, 7);
            assert_ne!(a, d, "{mech:?} must vary across rounds");
        }
    }

    #[test]
    fn noise_scale_matches_sigma() {
        let policy = DpPolicy {
            clip_norm: 1.0,
            noise_multiplier: 0.2,
            mechanism: DpMechanism::Laplace,
            seed: 9,
        };
        let mut data = vec![vec![0.0f32; 50_000]];
        apply_to(&policy, &mut data, 0, 0);
        let fit = laplace_mle(&data[0]);
        assert!((fit.scale - 0.2).abs() < 0.01, "scale {}", fit.scale);
    }

    #[test]
    fn zero_multiplier_is_clip_only() {
        let policy = DpPolicy { noise_multiplier: 0.0, ..policy(DpMechanism::Gaussian) };
        assert_eq!(policy.sigma(), 0.0);
        let mut data = vec![vec![0.25f32; 4]];
        apply_to(&policy, &mut data, 0, 0);
        assert_eq!(data[0], vec![0.25f32; 4]);
    }

    #[test]
    fn mechanism_names_round_trip() {
        for mech in [DpMechanism::Gaussian, DpMechanism::Laplace] {
            assert_eq!(DpMechanism::parse(mech.name()), Some(mech));
        }
        assert_eq!(DpMechanism::parse("exponential"), None);
    }
}
