//! Synthetic datasets for the FedSZ reproduction.
//!
//! The paper evaluates on CIFAR-10, Fashion-MNIST and Caltech101. Those
//! datasets are not available offline, so this crate generates *learnable
//! class-conditional synthetic tasks* with the same tensor geometry
//! (channel counts and class counts; resolution is configurable and
//! defaults to a CPU-friendly 16×16). Each class gets a smooth random
//! prototype pattern; samples are jittered, shifted copies with additive
//! noise, so convolutional models genuinely have to learn class structure
//! — which is what the FL accuracy experiments need.
//!
//! The crate also generates Miranda-like smooth turbulence fields used by
//! the Figure 2 smoothness contrast (FL weights vs. scientific data).
//!
//! # Examples
//!
//! ```
//! use fedsz_data::{DatasetKind, SyntheticConfig};
//!
//! let (train, test) = DatasetKind::Cifar10Like.generate(&SyntheticConfig {
//!     seed: 1,
//!     train_per_class: 8,
//!     test_per_class: 4,
//!     resolution: 16,
//! });
//! assert_eq!(train.len(), 80);
//! assert_eq!(test.classes(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fedsz_tensor::rng::{self, seeded};
use fedsz_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// The three dataset families from the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 3-channel, 10 classes (CIFAR-10 analogue).
    Cifar10Like,
    /// 1-channel, 10 classes (Fashion-MNIST analogue).
    FashionMnistLike,
    /// 3-channel, 101 classes (Caltech101 analogue).
    Caltech101Like,
}

impl DatasetKind {
    /// All three datasets in the paper's Table IV order.
    pub fn all() -> [DatasetKind; 3] {
        [Self::Cifar10Like, Self::FashionMnistLike, Self::Caltech101Like]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Self::Cifar10Like => "CIFAR-10",
            Self::FashionMnistLike => "Fashion-MNIST",
            Self::Caltech101Like => "Caltech101",
        }
    }

    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            Self::Cifar10Like | Self::FashionMnistLike => 10,
            Self::Caltech101Like => 101,
        }
    }

    /// Image channels.
    pub fn channels(self) -> usize {
        match self {
            Self::FashionMnistLike => 1,
            _ => 3,
        }
    }

    /// The *reference* dataset characteristics from the paper's Table IV
    /// (sample count, native input side, classes) — reported verbatim by
    /// the Table IV bench; the synthetic generator works at
    /// [`SyntheticConfig::resolution`] instead.
    pub fn paper_characteristics(self) -> (usize, usize, usize) {
        match self {
            Self::Cifar10Like => (60_000, 32, 10),
            Self::FashionMnistLike => (70_000, 28, 10),
            Self::Caltech101Like => (9_000, 224, 101),
        }
    }

    /// Generates seeded train/test splits.
    pub fn generate(self, config: &SyntheticConfig) -> (Dataset, Dataset) {
        let mut rng = seeded(config.seed ^ self.class_seed());
        let protos = Prototypes::new(&mut rng, self, config.resolution);
        let train = protos.sample_split(&mut rng, config.train_per_class);
        let test = protos.sample_split(&mut rng, config.test_per_class);
        (train, test)
    }

    fn class_seed(self) -> u64 {
        match self {
            Self::Cifar10Like => 0x5a5a_0001,
            Self::FashionMnistLike => 0x5a5a_0002,
            Self::Caltech101Like => 0x5a5a_0003,
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generation parameters for the synthetic datasets.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Base RNG seed (combined with a per-dataset constant).
    pub seed: u64,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Image side length (images are square).
    pub resolution: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self { seed: 42, train_per_class: 16, test_per_class: 8, resolution: 16 }
    }
}

/// Smooth class prototypes shared by a dataset's samples.
struct Prototypes {
    kind: DatasetKind,
    hw: usize,
    /// `[class][channel][pixel]` smooth base patterns.
    fields: Vec<Vec<Vec<f32>>>,
}

impl Prototypes {
    fn new(rng: &mut StdRng, kind: DatasetKind, hw: usize) -> Self {
        let fields = (0..kind.classes())
            .map(|_| (0..kind.channels()).map(|_| smooth_field(rng, hw)).collect())
            .collect();
        Self { kind, hw, fields }
    }

    fn sample_split(&self, rng: &mut StdRng, per_class: usize) -> Dataset {
        let mut samples = Vec::with_capacity(per_class * self.kind.classes());
        for class in 0..self.kind.classes() {
            for _ in 0..per_class {
                samples.push((self.sample(rng, class), class));
            }
        }
        // Shuffle so mini-batches mix classes.
        for i in (1..samples.len()).rev() {
            let j = rng.gen_range(0..=i);
            samples.swap(i, j);
        }
        Dataset { kind: self.kind, hw: self.hw, samples }
    }

    /// One jittered sample of `class`: scaled prototype + shift + noise.
    fn sample(&self, rng: &mut StdRng, class: usize) -> Tensor {
        let hw = self.hw;
        let c = self.kind.channels();
        let gain = 0.8 + 0.4 * rng.gen::<f32>();
        // Small cyclic jitter: enough variety to require generalization,
        // small enough that class structure stays learnable by tiny CNNs.
        let dx = rng.gen_range(0..4).min(hw - 1);
        let dy = rng.gen_range(0..4).min(hw - 1);
        let mut data = Vec::with_capacity(c * hw * hw);
        for ch in 0..c {
            let field = &self.fields[class][ch];
            for y in 0..hw {
                for x in 0..hw {
                    let sx = (x + dx) % hw;
                    let sy = (y + dy) % hw;
                    let v = gain * field[sy * hw + sx] + 0.15 * rng::normal(rng);
                    data.push(v);
                }
            }
        }
        Tensor::from_vec(vec![c, hw, hw], data)
    }
}

/// A labelled image collection.
#[derive(Debug, Clone)]
pub struct Dataset {
    kind: DatasetKind,
    hw: usize,
    samples: Vec<(Tensor, usize)>,
}

impl Dataset {
    /// Which dataset family this is.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.kind.classes()
    }

    /// Image channels.
    pub fn channels(&self) -> usize {
        self.kind.channels()
    }

    /// Image side length.
    pub fn resolution(&self) -> usize {
        self.hw
    }

    /// Assembles a `[N, C, H, W]` batch plus targets from sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let c = self.channels();
        let hw = self.hw;
        let mut data = Vec::with_capacity(indices.len() * c * hw * hw);
        let mut targets = Vec::with_capacity(indices.len());
        for &i in indices {
            let (img, label) = &self.samples[i];
            data.extend_from_slice(img.data());
            targets.push(*label);
        }
        (Tensor::from_vec(vec![indices.len(), c, hw, hw], data), targets)
    }

    /// The full dataset as one batch.
    pub fn full_batch(&self) -> (Tensor, Vec<usize>) {
        let indices: Vec<usize> = (0..self.len()).collect();
        self.batch(&indices)
    }

    /// Splits into `n` IID shards (round-robin), one per FL client.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn shard(&self, n: usize) -> Vec<Dataset> {
        assert!(n > 0, "cannot shard into zero pieces");
        let mut shards: Vec<Vec<(Tensor, usize)>> = (0..n).map(|_| Vec::new()).collect();
        for (i, sample) in self.samples.iter().enumerate() {
            shards[i % n].push(sample.clone());
        }
        shards
            .into_iter()
            .map(|samples| Dataset { kind: self.kind, hw: self.hw, samples })
            .collect()
    }

    /// Splits into `n` non-IID shards with Dirichlet(`alpha`) label skew
    /// — the standard heterogeneity model for FL experiments. Small
    /// `alpha` (e.g. 0.1) gives each client a few dominant classes;
    /// large `alpha` approaches IID. Every shard is guaranteed at least
    /// one sample.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is not positive and finite.
    pub fn shard_dirichlet(&self, n: usize, alpha: f64, seed: u64) -> Vec<Dataset> {
        assert!(n > 0, "cannot shard into zero pieces");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        let mut rng = seeded(seed);
        let classes = self.classes();
        // Per-class client proportions ~ Dirichlet(alpha).
        let mut shards: Vec<Vec<(Tensor, usize)>> = (0..n).map(|_| Vec::new()).collect();
        for class in 0..classes {
            let weights: Vec<f64> = (0..n).map(|_| gamma_sample(&mut rng, alpha)).collect();
            let total: f64 = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);
            let cdf: Vec<f64> = weights
                .iter()
                .scan(0.0, |acc, w| {
                    *acc += w / total;
                    Some(*acc)
                })
                .collect();
            for sample in self.samples.iter().filter(|(_, l)| *l == class) {
                let u: f64 = rng.gen();
                let client = cdf.iter().position(|&c| u <= c).unwrap_or(n - 1);
                shards[client].push(sample.clone());
            }
        }
        // No client may be empty (it could not train at all).
        for i in 0..n {
            if shards[i].is_empty() {
                let donor = (0..n).max_by_key(|&j| shards[j].len()).expect("at least one shard");
                if let Some(sample) = shards[donor].pop() {
                    shards[i].push(sample);
                }
            }
        }
        shards
            .into_iter()
            .map(|samples| Dataset { kind: self.kind, hw: self.hw, samples })
            .collect()
    }

    /// Per-class sample counts (test/analysis helper).
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes()];
        for (_, label) in &self.samples {
            counts[*label] += 1;
        }
        counts
    }
}

/// Marsaglia–Tsang gamma sampler (shape `a`, scale 1), used for the
/// Dirichlet draws in [`Dataset::shard_dirichlet`].
fn gamma_sample(rng: &mut StdRng, a: f64) -> f64 {
    if a < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(rng, a + 1.0) * u.powf(1.0 / a);
    }
    let d = a - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = f64::from(rng::normal(rng));
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// A smooth random field: a small sum of low-frequency sinusoids, the
/// same construction used for the Miranda-like data below.
fn smooth_field(rng: &mut StdRng, hw: usize) -> Vec<f32> {
    let mut field = vec![0.0f32; hw * hw];
    for _ in 0..4 {
        let fx = rng.gen_range(1..4) as f32;
        let fy = rng.gen_range(1..4) as f32;
        let phase = rng.gen::<f32>() * std::f32::consts::TAU;
        let amp = 0.3 + 0.7 * rng.gen::<f32>();
        for y in 0..hw {
            for x in 0..hw {
                let t = std::f32::consts::TAU
                    * (fx * x as f32 / hw as f32 + fy * y as f32 / hw as f32)
                    + phase;
                field[y * hw + x] += amp * t.sin();
            }
        }
    }
    field
}

/// Miranda-like 1D data slice: a smooth multi-scale signal with 1/f
/// amplitude decay, standing in for the turbulence simulation snapshots
/// the paper contrasts against FL weights in Figure 2.
pub fn miranda_like_series(seed: u64, n: usize) -> Vec<f32> {
    let mut rng = seeded(seed);
    let mut out = vec![0.0f32; n];
    for octave in 0..8 {
        let freq = (1 << octave) as f32;
        let amp = 1.0 / freq;
        let phase = rng.gen::<f32>() * std::f32::consts::TAU;
        for (i, v) in out.iter_mut().enumerate() {
            *v += amp * (std::f32::consts::TAU * freq * i as f32 / n as f32 + phase).sin();
        }
    }
    // Gentle positive offset so the series resembles a density field.
    let min = out.iter().copied().fold(f32::INFINITY, f32::min);
    for v in &mut out {
        *v += 1.0 - min;
    }
    out
}

/// Mean absolute first difference — the smoothness metric used by the
/// Figure 2 bench to quantify "spikiness" (FL weights score much higher
/// than Miranda-like fields).
pub fn mean_abs_diff(data: &[f32]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let sum: f64 = data.windows(2).map(|w| (f64::from(w[1]) - f64::from(w[0])).abs()).sum();
    sum / (data.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::default();
        let (a, _) = DatasetKind::Cifar10Like.generate(&cfg);
        let (b, _) = DatasetKind::Cifar10Like.generate(&cfg);
        assert_eq!(a.len(), b.len());
        let (xa, ya) = a.batch(&[0, 1]);
        let (xb, yb) = b.batch(&[0, 1]);
        assert_eq!(xa.data(), xb.data());
        assert_eq!(ya, yb);
    }

    #[test]
    fn geometry_matches_dataset_kind() {
        let cfg = SyntheticConfig { train_per_class: 2, test_per_class: 1, ..Default::default() };
        for kind in DatasetKind::all() {
            let (train, test) = kind.generate(&cfg);
            assert_eq!(train.channels(), kind.channels());
            assert_eq!(train.classes(), kind.classes());
            assert_eq!(train.len(), 2 * kind.classes());
            assert_eq!(test.len(), kind.classes());
            let (x, y) = train.batch(&[0]);
            assert_eq!(x.shape(), &[1, kind.channels(), 16, 16]);
            assert!(y[0] < kind.classes());
        }
    }

    #[test]
    fn class_labels_are_balanced() {
        let cfg = SyntheticConfig { train_per_class: 5, test_per_class: 1, ..Default::default() };
        let (train, _) = DatasetKind::FashionMnistLike.generate(&cfg);
        let (_, labels) = train.full_batch();
        let mut counts = vec![0usize; 10];
        for l in labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5), "{counts:?}");
    }

    #[test]
    fn sharding_partitions_all_samples() {
        let cfg = SyntheticConfig { train_per_class: 4, test_per_class: 1, ..Default::default() };
        let (train, _) = DatasetKind::Cifar10Like.generate(&cfg);
        let shards = train.shard(4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), train.len());
        // Shards should be near-equal in size.
        for s in &shards {
            assert!((s.len() as i64 - (train.len() / 4) as i64).abs() <= 1);
        }
    }

    #[test]
    fn same_class_samples_are_correlated() {
        // Samples of one class should correlate more with each other
        // than with another class's prototype-driven samples. A single
        // pair is dominated by the random cyclic jitter (a shifted
        // sinusoid can anti-correlate with itself), so average over all
        // pairs of a larger per-class sample to measure the *expected*
        // correlations the generator is designed around.
        let cfg = SyntheticConfig { train_per_class: 8, test_per_class: 1, ..Default::default() };
        let (train, _) = DatasetKind::Cifar10Like.generate(&cfg);
        let mut by_class: Vec<Vec<&Tensor>> = vec![Vec::new(); 10];
        for (img, label) in &train.samples {
            by_class[*label].push(img);
        }
        let corr = |a: &Tensor, b: &Tensor| -> f64 {
            let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
            for (&x, &y) in a.data().iter().zip(b.data()) {
                dot += f64::from(x) * f64::from(y);
                na += f64::from(x) * f64::from(x);
                nb += f64::from(y) * f64::from(y);
            }
            dot / (na.sqrt() * nb.sqrt()).max(1e-12)
        };
        let (mut same, mut same_n) = (0.0f64, 0usize);
        let (mut cross, mut cross_n) = (0.0f64, 0usize);
        for c in 0..10 {
            for i in 0..by_class[c].len() {
                for j in (i + 1)..by_class[c].len() {
                    same += corr(by_class[c][i], by_class[c][j]);
                    same_n += 1;
                }
                for other in &by_class[(c + 1) % 10] {
                    cross += corr(by_class[c][i], other);
                    cross_n += 1;
                }
            }
        }
        let (same, cross) = (same / same_n as f64, cross / cross_n as f64);
        assert!(same > cross, "same-class {same:.3} <= cross-class {cross:.3}");
    }

    #[test]
    fn miranda_series_is_smooth_compared_to_noise() {
        let smooth = miranda_like_series(1, 4096);
        let mut rng = seeded(2);
        let noisy: Vec<f32> = (0..4096).map(|_| rng::normal(&mut rng)).collect();
        // Normalize by std so the comparison is scale-free.
        let std = |v: &[f32]| {
            let m = v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64;
            (v.iter().map(|&x| (f64::from(x) - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let s1 = mean_abs_diff(&smooth) / std(&smooth);
        let s2 = mean_abs_diff(&noisy) / std(&noisy);
        assert!(s1 * 10.0 < s2, "smooth {s1:.4} vs noisy {s2:.4}");
    }

    #[test]
    fn paper_characteristics_match_table_iv() {
        assert_eq!(DatasetKind::Cifar10Like.paper_characteristics(), (60_000, 32, 10));
        assert_eq!(DatasetKind::FashionMnistLike.paper_characteristics(), (70_000, 28, 10));
        assert_eq!(DatasetKind::Caltech101Like.paper_characteristics(), (9_000, 224, 101));
    }
}

#[cfg(test)]
mod noniid_tests {
    use super::*;

    fn train() -> Dataset {
        let cfg =
            SyntheticConfig { seed: 9, train_per_class: 20, test_per_class: 1, resolution: 16 };
        DatasetKind::Cifar10Like.generate(&cfg).0
    }

    #[test]
    fn dirichlet_partitions_everything() {
        let data = train();
        let shards = data.shard_dirichlet(4, 0.5, 7);
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), data.len());
        assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn small_alpha_is_more_skewed_than_large() {
        let data = train();
        // Skew metric: mean max-class share across clients.
        let skew = |alpha: f64| -> f64 {
            let shards = data.shard_dirichlet(4, alpha, 11);
            shards
                .iter()
                .map(|s| {
                    let h = s.label_histogram();
                    let max = *h.iter().max().unwrap() as f64;
                    max / s.len() as f64
                })
                .sum::<f64>()
                / 4.0
        };
        let skewed = skew(0.05);
        let near_iid = skew(100.0);
        assert!(
            skewed > near_iid + 0.1,
            "alpha 0.05 skew {skewed:.3} should exceed alpha 100 skew {near_iid:.3}"
        );
    }

    #[test]
    fn dirichlet_is_deterministic_per_seed() {
        let data = train();
        let a = data.shard_dirichlet(3, 0.3, 5);
        let b = data.shard_dirichlet(3, 0.3, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label_histogram(), y.label_histogram());
        }
    }

    #[test]
    fn label_histogram_counts() {
        let data = train();
        let h = data.label_histogram();
        assert_eq!(h.len(), 10);
        assert_eq!(h.iter().sum::<usize>(), 200);
        assert!(h.iter().all(|&c| c == 20));
    }
}
