//! Dense `f32` tensors for the FedSZ reproduction.
//!
//! A deliberately small tensor library: row-major dense storage, shape
//! arithmetic, the elementwise/matrix operations the neural-network crate
//! needs, and seeded random initializers. FedSZ itself only ever sees
//! tensors through flattened `&[f32]` views (Algorithm 1 flattens every
//! state-dict entry before compression), which [`Tensor::data`] provides.
//!
//! # Examples
//!
//! ```
//! use fedsz_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;

use std::fmt;

/// A dense, row-major `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, len={})", self.shape, self.data.len())
    }
}

impl Tensor {
    /// Creates a tensor of zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape's element count overflows `usize`.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = element_count(&shape);
        Self { shape, data: vec![0.0; n] }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: Vec<usize>, value: f32) -> Self {
        let n = element_count(&shape);
        Self { shape, data: vec![value; n] }
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: Vec<usize>) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps existing data in a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert_eq!(
            element_count(&shape),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flattened element view (row-major), as consumed by the compressors.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flattened element view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing no storage.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshaped(&self, shape: Vec<usize>) -> Self {
        assert_eq!(element_count(&shape), self.data.len(), "reshape must preserve element count");
        Self { shape, data: self.data.clone() }
    }

    /// Reinterprets the shape in place.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&mut self, shape: Vec<usize>) {
        assert_eq!(element_count(&shape), self.data.len(), "reshape must preserve element count");
        self.shape = shape;
    }

    /// Element at a 2D index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2D or the index is out of bounds.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// In-place elementwise update.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise combine with `f`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += alpha * other`, the FedAvg/SGD workhorse.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of all elements (accumulated in f64).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v)).sum()
    }

    /// Index of the largest element (ties broken by first occurrence);
    /// `None` for empty tensors.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Matrix product of two 2D tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2D with compatible inner dims.
    pub fn matmul(&self, other: &Tensor) -> Self {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let lhs_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &l) in lhs_row.iter().enumerate() {
                if l == 0.0 {
                    continue;
                }
                let rhs_row = &other.data[p * n..(p + 1) * n];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += l * r;
                }
            }
        }
        Self { shape: vec![m, n], data: out }
    }

    /// Transpose of a 2D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2D.
    pub fn transposed(&self) -> Self {
        assert_eq!(self.shape.len(), 2, "transpose requires a 2D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Self { shape: vec![n, m], data: out }
    }

    /// Serializes shape + data as little-endian bytes (4 bytes/element).
    pub fn byte_size(&self) -> usize {
        self.data.len() * 4
    }
}

/// Product of the dims, panicking on overflow.
fn element_count(shape: &[usize]) -> usize {
    shape.iter().copied().fold(1usize, |acc, d| acc.checked_mul(d).expect("shape overflows usize"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.data().iter().all(|&v| v == 0.0));
        let u = Tensor::filled(vec![3], 2.5);
        assert_eq!(u.data(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "does not match data length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(vec![6], (0..6).map(|i| i as f32).collect());
        t.reshape(vec![2, 3]);
        assert_eq!(t.at2(1, 2), 5.0);
        let r = t.reshaped(vec![3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![3], vec![0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b).data(), &[1.5, 2.5, 3.5]);
        assert_eq!(a.sub(&b).data(), &[0.5, 1.5, 2.5]);
        assert_eq!(a.mul(&b).data(), &[0.5, 1.0, 1.5]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[2.0, 3.0, 4.0]);
        c.scale(0.5);
        assert_eq!(c.data(), &[1.0, 1.5, 2.0]);
    }

    #[test]
    fn matmul_identity_and_known() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i3 = Tensor::eye(3);
        assert_eq!(a.matmul(&i3).data(), a.data());
        let b = Tensor::from_vec(vec![3, 1], vec![1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1]);
        assert_eq!(c.data(), &[6.0, 15.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transposed();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at2(2, 1), 6.0);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn argmax_and_sum() {
        let a = Tensor::from_vec(vec![4], vec![0.1, 0.9, 0.3, 0.9]);
        assert_eq!(a.argmax(), Some(1));
        assert!((a.sum() - 2.2).abs() < 1e-6);
        assert_eq!(Tensor::zeros(vec![0]).argmax(), None);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![2], vec![-1.0, 2.0]);
        assert_eq!(a.map(|v| v.max(0.0)).data(), &[0.0, 2.0]);
        let mut b = a.clone();
        b.map_inplace(|v| v * 10.0);
        assert_eq!(b.data(), &[-10.0, 20.0]);
    }
}
