//! Seeded random initializers used across models and datasets.
//!
//! Everything in the reproduction is deterministic given a seed, so every
//! experiment binary can be re-run bit-for-bit.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Standard normal sample via Box–Muller (keeps `rand` usage minimal).
pub fn normal(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        let u2: f32 = rng.gen::<f32>();
        if u1 > f32::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }
}

/// Laplace(0, b) sample by inverse CDF.
pub fn laplace(rng: &mut StdRng, b: f32) -> f32 {
    let u: f32 = rng.gen::<f32>() - 0.5;
    -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Tensor of N(0, std^2) samples.
pub fn randn(rng: &mut StdRng, shape: Vec<usize>, std: f32) -> Tensor {
    let mut t = Tensor::zeros(shape);
    for v in t.data_mut() {
        *v = normal(rng) * std;
    }
    t
}

/// Tensor of Uniform(-bound, bound) samples.
pub fn rand_uniform(rng: &mut StdRng, shape: Vec<usize>, bound: f32) -> Tensor {
    let mut t = Tensor::zeros(shape);
    for v in t.data_mut() {
        *v = rng.gen_range(-bound..bound);
    }
    t
}

/// Kaiming-normal initialization for a weight with `fan_in` inputs.
pub fn kaiming(rng: &mut StdRng, shape: Vec<usize>, fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    randn(rng, shape, std)
}

/// "Trained-looking" weights: a Gaussian bulk with a Laplacian spike
/// mixture, matching the spiky per-layer distributions the paper shows in
/// Figures 2–3. Used by the full-size model generators whose weights are
/// never trained here.
pub fn trained_like(rng: &mut StdRng, shape: Vec<usize>, fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let mut t = Tensor::zeros(shape);
    for v in t.data_mut() {
        *v =
            if rng.gen::<f32>() < 0.08 { laplace(rng, std * 2.0) } else { normal(rng) * std * 0.7 };
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        let ta = randn(&mut a, vec![100], 1.0);
        let tb = randn(&mut b, vec![100], 1.0);
        assert_eq!(ta.data(), tb.data());
    }

    #[test]
    fn normal_moments_plausible() {
        let mut rng = seeded(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean: f64 = samples.iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64;
        let var: f64 =
            samples.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn laplace_is_heavier_tailed_than_normal() {
        let mut rng = seeded(9);
        let n = 20_000;
        let lap: Vec<f32> = (0..n).map(|_| laplace(&mut rng, 1.0)).collect();
        // Laplace(0,1) variance is 2.
        let var: f64 = lap.iter().map(|&v| f64::from(v).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 2.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = seeded(3);
        let w = kaiming(&mut rng, vec![64, 64], 64);
        let var: f64 = w.data().iter().map(|&v| f64::from(v).powi(2)).sum::<f64>() / 4096.0;
        assert!((var - 2.0 / 64.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn trained_like_is_spiky() {
        let mut rng = seeded(5);
        let w = trained_like(&mut rng, vec![10_000], 100);
        let max = w.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let std = (w.data().iter().map(|&v| f64::from(v).powi(2)).sum::<f64>() / 10_000.0).sqrt();
        // Spikes should push the max far beyond the bulk's std.
        assert!(f64::from(max) > 4.0 * std, "max {max} std {std}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded(11);
        let t = rand_uniform(&mut rng, vec![1000], 0.25);
        assert!(t.data().iter().all(|&v| (-0.25..0.25).contains(&v)));
    }
}
