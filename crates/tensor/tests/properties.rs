//! Algebraic property tests for the tensor primitives.

use fedsz_tensor::Tensor;
use proptest::collection::vec;
use proptest::prelude::*;

/// A small matrix as (rows, cols, data).
fn matrix(max_dim: usize) -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1..=max_dim, 1..=max_dim)
        .prop_flat_map(|(r, c)| vec(-10.0f32..10.0, r * c).prop_map(move |data| (r, c, data)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_an_involution((r, c, data) in matrix(8)) {
        let m = Tensor::from_vec(vec![r, c], data);
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn matmul_transpose_identity((r, c, a) in matrix(6), k in 1usize..6) {
        // (A B)^T == B^T A^T
        let a = Tensor::from_vec(vec![r, c], a);
        let b = Tensor::from_vec(vec![c, k], (0..c * k).map(|i| (i as f32 * 0.37).sin()).collect());
        let lhs = a.matmul(&b).transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        prop_assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()), "{} vs {}", x, y);
        }
    }

    #[test]
    fn identity_is_matmul_neutral((r, c, data) in matrix(8)) {
        let m = Tensor::from_vec(vec![r, c], data);
        prop_assert_eq!(m.matmul(&Tensor::eye(c)), m.clone());
        prop_assert_eq!(Tensor::eye(r).matmul(&m), m);
    }

    #[test]
    fn axpy_matches_scalar_arithmetic(data in vec(-5.0f32..5.0, 1..64), alpha in -2.0f32..2.0) {
        let n = data.len();
        let x = Tensor::from_vec(vec![n], data.clone());
        let mut y = Tensor::filled(vec![n], 1.0);
        y.axpy(alpha, &x);
        for (out, orig) in y.data().iter().zip(&data) {
            prop_assert!((out - (1.0 + alpha * orig)).abs() < 1e-5);
        }
    }

    #[test]
    fn add_sub_round_trip(data in vec(-100.0f32..100.0, 1..64)) {
        let n = data.len();
        let a = Tensor::from_vec(vec![n], data);
        let b = Tensor::filled(vec![n], 3.5);
        let back = a.add(&b).sub(&b);
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn reshape_preserves_flat_order((r, c, data) in matrix(8)) {
        let m = Tensor::from_vec(vec![r, c], data.clone());
        let flat = m.reshaped(vec![r * c]);
        prop_assert_eq!(flat.data(), &data[..]);
    }

    #[test]
    fn sum_is_permutation_invariant(mut data in vec(-10.0f32..10.0, 2..64)) {
        let n = data.len();
        let a = Tensor::from_vec(vec![n], data.clone());
        data.reverse();
        let b = Tensor::from_vec(vec![n], data);
        prop_assert!((a.sum() - b.sum()).abs() < 1e-3);
    }
}
