//! A minimal recursive-descent JSON parser.
//!
//! The workspace is dependency-free, so the golden trace tests (and
//! the report-schema tests) need a real parser of their own rather
//! than string grepping. This implements RFC 8259 minus two
//! liberties taken nowhere in our emitters: no `\uXXXX` surrogate
//! pairs beyond the BMP, and numbers parse through [`f64`] (every
//! value we emit is exactly representable or explicitly a float).

use std::collections::BTreeMap;
use std::str::Chars;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a byte-offset-tagged message on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser { chars: text.chars(), total: text.len() };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.peek().is_some() {
        return Err(format!("trailing garbage at byte {}", parser.offset()));
    }
    Ok(value)
}

struct Parser<'a> {
    chars: Chars<'a>,
    total: usize,
}

impl Parser<'_> {
    fn offset(&self) -> usize {
        self.total - self.chars.as_str().len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.clone().next()
    }

    fn bump(&mut self) -> Option<char> {
        self.chars.next()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected '{want}', found {other:?} at byte {}", self.offset())),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.offset())),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit =
                                self.bump().and_then(|c| c.to_digit(16)).ok_or("bad \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                other => {
                    return Err(format!("expected ',' or ']', found {other:?}"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(map)),
                other => {
                    return Err(format!("expected ',' or '}}', found {other:?}"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(parse(r#""a\"b\ncA""#).unwrap(), Json::Str("a\"b\ncA".into()));
        let doc = parse(r#"{"xs":[1,2,{"y":null}],"z":"w"}"#).unwrap();
        assert_eq!(doc.get("z").and_then(Json::as_str), Some("w"));
        let xs = doc.get("xs").and_then(Json::as_array).unwrap();
        assert_eq!(xs.len(), 3);
        assert!(xs[2].get("y").unwrap().is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn parses_empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{ }").unwrap(), Json::Obj(BTreeMap::new()));
    }
}
