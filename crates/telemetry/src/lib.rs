//! Structured telemetry for the FedSZ runtime: spans, counters and
//! gauges behind one cheap cloneable handle, with two sinks.
//!
//! - A **Chrome-trace-event JSONL writer** ([`Telemetry::with_trace`]):
//!   each span becomes one complete (`"ph":"X"`) event, each instant
//!   event one `"ph":"i"` line, timestamps in microseconds on a
//!   monotonic clock relative to handle creation. The first line is a
//!   metadata event declaring the stable [`TRACE_SCHEMA`]
//!   (`fedsz.trace.v1`); the file loads directly in `chrome://tracing`
//!   / Perfetto.
//! - A **Prometheus text-exposition snapshot**
//!   ([`Telemetry::render_prometheus`]): counters and gauges rendered
//!   in the text format, served over HTTP by
//!   `fedsz_net::MetricsServer`.
//!
//! The disabled handle ([`Telemetry::disabled`], also [`Default`]) is a
//! `None` behind the same API: every call returns immediately without
//! reading the clock or allocating, so instrumented hot paths (the
//! aggregation tree, the worker pool) pay one branch when telemetry is
//! off. The existing perf-smoke gate therefore doubles as the overhead
//! regression test.
//!
//! Thread safety follows the same no-`unsafe` discipline as
//! `fedsz_fl`'s worker pool: interior state lives behind [`Mutex`]es in
//! one [`Arc`]'d registry, and handles clone freely across threads.
//!
//! The crate also hosts the runtime's [`log`] facility (leveled stderr
//! lines gated by `FEDSZ_LOG`) and a dependency-free [`json`] parser
//! used by the golden trace tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod log;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema tag declared by the first line of every trace file.
///
/// The line is a Chrome metadata event (`"ph":"M"`, name
/// `trace.schema`) whose `args.schema` carries this tag; consumers
/// should reject files that do not lead with it.
pub const TRACE_SCHEMA: &str = "fedsz.trace.v1";

/// A borrowed key/value argument attached to spans and events.
///
/// Values are borrowed so that call sites build their `&[(key, value)]`
/// slices on the stack; nothing is rendered (or allocated) unless the
/// handle is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// Unsigned integer (ids, counts, byte sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (seconds, ratios). Non-finite values render as `null`.
    F64(f64),
    /// Boolean (decision outcomes).
    Bool(bool),
    /// Text (codec names, eviction reasons).
    Str(&'a str),
}

impl Value<'_> {
    fn render_into(&self, out: &mut String) {
        match *self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(v) => push_json_string(out, v),
        }
    }
}

/// Escapes `s` as a JSON string (with quotes) onto `out`.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Per-thread trace lane: stable small integers assigned in first-use
/// order, so one process's spans land on compact `tid` rows.
fn trace_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// The shared registry behind an enabled handle.
struct Inner {
    /// Monotonic origin; all trace timestamps are microseconds since.
    t0: Instant,
    /// JSONL sink, absent for a counters-only handle.
    trace: Option<Mutex<BufWriter<File>>>,
    /// Monotonically increasing series, rendered as Prometheus
    /// counters. Keys may carry one `{label="value"}` suffix.
    counters: Mutex<BTreeMap<String, f64>>,
    /// Last-write-wins series, rendered as Prometheus gauges.
    gauges: Mutex<BTreeMap<String, f64>>,
}

impl Inner {
    fn write_line(&self, line: &str) {
        if let Some(trace) = &self.trace {
            let mut w = trace.lock().expect("trace writer poisoned");
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        }
    }

    fn elapsed_micros(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(trace) = &self.trace {
            if let Ok(mut w) = trace.lock() {
                let _ = w.flush();
            }
        }
    }
}

/// A cheap, cloneable telemetry handle.
///
/// Disabled (the default) it is a `None` — every operation is a single
/// branch, no clock reads, no allocation. Enabled it shares one
/// registry (and optionally one trace file) across all clones.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("trace", &inner.trace.is_some())
                .finish_non_exhaustive(),
        }
    }
}

impl Telemetry {
    /// The no-op handle: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with the counter/gauge registry but no trace
    /// file — for serving `/metrics` without writing a trace.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                t0: Instant::now(),
                trace: None,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// An enabled handle that also streams Chrome trace events to
    /// `path` as JSONL, leading with the [`TRACE_SCHEMA`] metadata
    /// line.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if `path` cannot be created.
    pub fn with_trace(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        let telemetry = Self {
            inner: Some(Arc::new(Inner {
                t0: Instant::now(),
                trace: Some(Mutex::new(BufWriter::new(file))),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
            })),
        };
        // Schema declaration first, so consumers can reject foreign
        // files before parsing event lines.
        let mut line = String::with_capacity(96);
        line.push_str(r#"{"name":"trace.schema","cat":"meta","ph":"M","ts":0,"pid":1,"tid":0,"args":{"schema":"#);
        push_json_string(&mut line, TRACE_SCHEMA);
        line.push_str("}}");
        if let Some(inner) = &telemetry.inner {
            inner.write_line(&line);
        }
        Ok(telemetry)
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the handle was created (`0` when disabled).
    ///
    /// This is the trace-relative clock: eviction events and other
    /// out-of-band records use it so their timestamps line up with the
    /// span stream.
    pub fn elapsed_micros(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.elapsed_micros(),
            None => 0,
        }
    }

    /// Opens a span: a named interval that closes (and writes one
    /// `"ph":"X"` trace line) when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// Opens a span with key/value arguments.
    ///
    /// `kv` is only read when the handle is enabled; a disabled handle
    /// returns an inert guard without rendering anything.
    pub fn span_with(&self, name: &'static str, kv: &[(&'static str, Value<'_>)]) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        SpanGuard {
            active: Some(ActiveSpan {
                inner: Arc::clone(inner),
                name,
                args: render_args(kv),
                start_us: inner.elapsed_micros(),
            }),
        }
    }

    /// Writes an instant event (`"ph":"i"`) with key/value arguments.
    pub fn event(&self, name: &'static str, kv: &[(&'static str, Value<'_>)]) {
        let Some(inner) = &self.inner else {
            return;
        };
        let line = render_event(name, "i", inner.elapsed_micros(), None, &render_args(kv));
        inner.write_line(&line);
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    ///
    /// Counters are monotonic by convention; rendered with
    /// `# TYPE ... counter`.
    pub fn add(&self, name: &'static str, delta: f64) {
        if let Some(inner) = &self.inner {
            let mut counters = inner.counters.lock().expect("counter registry poisoned");
            *counters.entry(name.to_string()).or_insert(0.0) += delta;
        }
    }

    /// Adds `delta` to the counter `name{label="value"}`.
    pub fn add_labeled(&self, name: &'static str, label: &'static str, value: &str, delta: f64) {
        if let Some(inner) = &self.inner {
            let mut key = String::with_capacity(name.len() + label.len() + value.len() + 6);
            key.push_str(name);
            key.push('{');
            key.push_str(label);
            key.push_str("=\"");
            key.push_str(value);
            key.push_str("\"}");
            let mut counters = inner.counters.lock().expect("counter registry poisoned");
            *counters.entry(key).or_insert(0.0) += delta;
        }
    }

    /// Ensures the counter `name` exists (at zero if new), so scrapes
    /// observe it deterministically before the first increment.
    pub fn declare_counter(&self, name: &'static str) {
        self.add(name, 0.0);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut gauges = inner.gauges.lock().expect("gauge registry poisoned");
            gauges.insert(name.to_string(), value);
        }
    }

    /// Renders the counter/gauge registry in the Prometheus text
    /// exposition format (stable ordering: sorted by series name).
    pub fn render_prometheus(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let mut out = String::new();
        let counters = inner.counters.lock().expect("counter registry poisoned");
        let mut last_family = "";
        for (key, value) in counters.iter() {
            let family = key.split('{').next().unwrap_or(key);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} counter");
                last_family = family;
            }
            let _ = writeln!(out, "{key} {}", format_metric(*value));
        }
        drop(counters);
        let gauges = inner.gauges.lock().expect("gauge registry poisoned");
        for (key, value) in gauges.iter() {
            let _ = writeln!(out, "# TYPE {key} gauge");
            let _ = writeln!(out, "{key} {}", format_metric(*value));
        }
        out
    }

    /// Flushes the trace sink (no-op without one).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Some(trace) = &inner.trace {
                let _ = trace.lock().expect("trace writer poisoned").flush();
            }
        }
    }
}

/// Renders a metric value: integers without a fraction, floats as-is.
fn format_metric(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a kv slice as a JSON object body (`{"k":v,...}`).
fn render_args(kv: &[(&'static str, Value<'_>)]) -> String {
    let mut out = String::with_capacity(16 + kv.len() * 16);
    out.push('{');
    for (i, (key, value)) in kv.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, key);
        out.push(':');
        value.render_into(&mut out);
    }
    out.push('}');
    out
}

/// Renders one Chrome trace event line.
fn render_event(name: &str, ph: &str, ts: u64, dur: Option<u64>, args: &str) -> String {
    let cat = name.split('.').next().unwrap_or(name);
    let mut line = String::with_capacity(96 + name.len() + args.len());
    line.push_str(r#"{"name":"#);
    push_json_string(&mut line, name);
    line.push_str(r#","cat":"#);
    push_json_string(&mut line, cat);
    let _ = write!(line, r#","ph":"{ph}","ts":{ts}"#);
    if let Some(dur) = dur {
        let _ = write!(line, r#","dur":{dur}"#);
    }
    let _ = write!(line, r#","pid":1,"tid":{}"#, trace_tid());
    line.push_str(r#","args":"#);
    line.push_str(args);
    line.push('}');
    line
}

/// The live half of an enabled span guard.
struct ActiveSpan {
    inner: Arc<Inner>,
    name: &'static str,
    args: String,
    start_us: u64,
}

/// Closes its span on drop, writing one complete (`"ph":"X"`) trace
/// event with the measured duration. Inert when the handle that opened
/// it was disabled.
#[must_use = "a span measures the interval until the guard drops"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Duration so far in nanoseconds-precision microseconds (`0` for
    /// an inert guard).
    pub fn elapsed_micros(&self) -> u64 {
        match &self.active {
            Some(span) => span.inner.elapsed_micros().saturating_sub(span.start_us),
            None => 0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let end = span.inner.elapsed_micros();
            let line = render_event(
                span.name,
                "X",
                span.start_us,
                Some(end.saturating_sub(span.start_us)),
                &span.args,
            );
            span.inner.write_line(&line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fedsz-telemetry-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let guard = t.span_with("x.y", &[("k", Value::U64(1))]);
        drop(guard);
        t.add("c", 1.0);
        t.set_gauge("g", 2.0);
        assert_eq!(t.elapsed_micros(), 0);
        assert_eq!(t.render_prometheus(), "");
    }

    #[test]
    fn trace_file_leads_with_schema_and_nests_spans() {
        let path = temp_path("schema");
        {
            let t = Telemetry::with_trace(&path).unwrap();
            let outer = t.span_with("engine.round", &[("round", Value::U64(0))]);
            {
                let _inner = t.span_with(
                    "merge.level",
                    &[("level", Value::U64(1)), ("codec", Value::Str("raw"))],
                );
            }
            t.event("serve.evict", &[("reason", Value::Str("silent \"child\""))]);
            drop(outer);
            t.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        let header = json::parse(lines[0]).unwrap();
        assert_eq!(header.get("ph").and_then(json::Json::as_str), Some("M"));
        assert_eq!(
            header.get("args").and_then(|a| a.get("schema")).and_then(json::Json::as_str),
            Some(TRACE_SCHEMA)
        );
        // Every line parses; the inner span closed before the outer.
        let events: Vec<json::Json> = lines.iter().map(|l| json::parse(l).unwrap()).collect();
        let merge = &events[1];
        let evict = &events[2];
        let round = &events[3];
        assert_eq!(merge.get("name").and_then(json::Json::as_str), Some("merge.level"));
        assert_eq!(merge.get("cat").and_then(json::Json::as_str), Some("merge"));
        assert_eq!(evict.get("ph").and_then(json::Json::as_str), Some("i"));
        assert_eq!(round.get("name").and_then(json::Json::as_str), Some("engine.round"));
        let outer_ts = round.get("ts").and_then(json::Json::as_f64).unwrap();
        let outer_dur = round.get("dur").and_then(json::Json::as_f64).unwrap();
        let inner_ts = merge.get("ts").and_then(json::Json::as_f64).unwrap();
        let inner_dur = merge.get("dur").and_then(json::Json::as_f64).unwrap();
        assert!(inner_ts >= outer_ts);
        assert!(inner_ts + inner_dur <= outer_ts + outer_dur);
    }

    #[test]
    fn prometheus_snapshot_renders_counters_and_gauges() {
        let t = Telemetry::enabled();
        t.declare_counter("fedsz_net_evictions_total");
        t.add("fedsz_pool_tasks_total", 32.0);
        t.add("fedsz_pool_tasks_total", 32.0);
        t.add_labeled("fedsz_net_frame_bytes_total", "dir", "in", 100.0);
        t.add_labeled("fedsz_net_frame_bytes_total", "dir", "out", 250.0);
        t.set_gauge("fedsz_pool_width", 2.0);
        let text = t.render_prometheus();
        assert!(
            text.contains(
                "# TYPE fedsz_net_evictions_total counter\nfedsz_net_evictions_total 0\n"
            ),
            "{text}"
        );
        assert!(text.contains("fedsz_pool_tasks_total 64\n"), "{text}");
        assert!(text.contains("# TYPE fedsz_net_frame_bytes_total counter\n"), "{text}");
        assert!(text.contains("fedsz_net_frame_bytes_total{dir=\"in\"} 100\n"), "{text}");
        assert!(text.contains("fedsz_net_frame_bytes_total{dir=\"out\"} 250\n"), "{text}");
        assert!(text.contains("# TYPE fedsz_pool_width gauge\nfedsz_pool_width 2\n"), "{text}");
        // The TYPE header appears once per family, not once per series.
        assert_eq!(text.matches("# TYPE fedsz_net_frame_bytes_total").count(), 1);
    }

    #[test]
    fn handles_share_one_registry_across_threads() {
        let t = Telemetry::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        t.add("shared_total", 1.0);
                    }
                });
            }
        });
        assert!(t.render_prometheus().contains("shared_total 400\n"));
    }
}
