//! Leveled stderr logging, gated by the `FEDSZ_LOG` environment
//! variable.
//!
//! `FEDSZ_LOG=debug|info|warn` picks the minimum level that prints
//! (default `info`); anything quieter is skipped before its message is
//! even formatted. Lines go to **stderr** with a `[level]` prefix, so
//! machine-parsed stdout (the `global checksum:` lines net_smoke.sh
//! greps, `--json` reports) stays byte-identical whatever the level.
//!
//! ```
//! fedsz_telemetry::info!("listening on {}", "127.0.0.1:7453");
//! fedsz_telemetry::debug!("only with FEDSZ_LOG=debug");
//! ```

use std::sync::OnceLock;

/// Log severity, ordered quiet-to-loud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Development detail (`FEDSZ_LOG=debug`).
    Debug = 0,
    /// Operational progress (the default).
    Info = 1,
    /// Something degraded but the run continues.
    Warn = 2,
}

impl Level {
    /// The `[level]` prefix used on stderr lines.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// The minimum level that prints, read once from `FEDSZ_LOG`.
///
/// Unknown values fall back to the default (`info`), matching the
/// principle that a typo'd environment must not silence warnings.
pub fn threshold() -> Level {
    static THRESHOLD: OnceLock<Level> = OnceLock::new();
    *THRESHOLD.get_or_init(|| match std::env::var("FEDSZ_LOG").as_deref() {
        Ok("debug") => Level::Debug,
        Ok("warn") => Level::Warn,
        _ => Level::Info,
    })
}

/// Whether a message at `level` should print.
pub fn enabled(level: Level) -> bool {
    level >= threshold()
}

/// Formats and prints one stderr line; prefer the [`crate::info!`]
/// family, which skips formatting when the level is filtered.
pub fn write(level: Level, message: std::fmt::Arguments<'_>) {
    eprintln!("[{}] {}", level.tag(), message);
}

/// Logs at debug level (printed only with `FEDSZ_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

/// Logs at info level (the default threshold).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Logs at warn level (never filtered by a valid `FEDSZ_LOG`).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::write($crate::log::Level::Warn, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_quiet_to_loud() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert_eq!(Level::Warn.tag(), "warn");
    }

    #[test]
    fn warn_is_never_below_any_threshold() {
        // Whatever FEDSZ_LOG says in this test environment, warnings
        // must pass the filter.
        assert!(enabled(Level::Warn));
    }
}
