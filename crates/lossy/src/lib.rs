//! Error-bounded lossy compressors (EBLCs) for the FedSZ reproduction.
//!
//! The FedSZ paper compares four EBLCs on flattened model-weight arrays
//! and selects SZ2. This crate reimplements all four families from
//! scratch for 1D `f32` data:
//!
//! * [`Sz2`] — block-based hybrid Lorenzo/linear-regression prediction,
//!   linear-scale quantization, Huffman coding, zstd-class backend
//!   (prediction-based model),
//! * [`Sz3`] — multi-level spline-interpolation prediction with the same
//!   quantization/entropy pipeline but no per-block coefficients
//!   (interpolation-based model),
//! * [`Szx`] — constant-block detection plus bit-plane truncation with no
//!   entropy stage (bit-wise encoding model, built for speed),
//! * [`Zfp`] — block-floating-point + orthogonal lifting transform +
//!   negabinary + embedded bit-plane coding (transform-based model), with
//!   fixed-precision and fixed-accuracy modes.
//!
//! # Error-bound semantics
//!
//! [`ErrorBound::Relative`] follows SZ's *value-range relative* mode: the
//! absolute bound is `eb * (max - min)` of the input. All SZ-family
//! codecs guarantee `max_i |x_i - x'_i| <= eb_abs` (up to f32 rounding);
//! ZFP guarantees it in [`ErrorBound::Absolute`] mode, while
//! [`ErrorBound::FixedPrecision`] — the mode the paper uses for ZFP —
//! bounds the bit budget instead of the error, exactly like real ZFP.
//!
//! # Examples
//!
//! ```
//! use fedsz_lossy::{ErrorBound, LossyKind};
//!
//! let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin() * 0.1).collect();
//! let codec = LossyKind::Sz2.codec();
//! let packed = codec.compress(&data, ErrorBound::Relative(1e-3)).unwrap();
//! let restored = codec.decompress(&packed).unwrap();
//! let range = 0.2f32; // data spans about [-0.1, 0.1]
//! for (a, b) in data.iter().zip(&restored) {
//!     assert!((a - b).abs() <= 1e-3 * range * 1.01);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pwrel;
pub mod quant;
pub mod sparse;
pub mod sz2;
pub mod sz3;
pub mod szx;
pub mod zfp;

pub use fedsz_codec::{CodecError, Result};
pub use sz2::Sz2;
pub use sz3::Sz3;
pub use szx::Szx;
pub use zfp::Zfp;

use fedsz_codec::stats;
use std::error::Error;
use std::fmt;

/// The error-control mode requested from an EBLC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Pointwise absolute bound: `|x - x'| <= eb`.
    Absolute(f64),
    /// Value-range relative bound: `|x - x'| <= eb * (max - min)`.
    ///
    /// This is the mode the paper sweeps (`10^-5` to `10^-1`).
    Relative(f64),
    /// ZFP-style fixed precision: keep this many bit planes per value.
    /// Not error-bounded; only [`Zfp`] accepts it.
    FixedPrecision(u32),
}

impl ErrorBound {
    /// Resolves the bound to an absolute epsilon for `data`.
    ///
    /// Returns `None` for [`ErrorBound::FixedPrecision`], for empty
    /// input, or when the bound value is not positive/finite.
    pub fn absolute_for(&self, data: &[f32]) -> Option<f64> {
        match *self {
            ErrorBound::Absolute(eb) => (eb.is_finite() && eb > 0.0).then_some(eb),
            ErrorBound::Relative(rel) => {
                if !(rel.is_finite() && rel > 0.0) {
                    return None;
                }
                let range = stats::value_range(data)?;
                // A constant array has zero range; any positive epsilon
                // preserves it exactly, so fall back to a tiny bound.
                let span = f64::from(range.span());
                Some(if span > 0.0 { rel * span } else { rel * 1e-30 })
            }
            ErrorBound::FixedPrecision(_) => None,
        }
    }
}

impl fmt::Display for ErrorBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorBound::Absolute(eb) => write!(f, "ABS {eb:.3e}"),
            ErrorBound::Relative(eb) => write!(f, "REL {eb:.0e}"),
            ErrorBound::FixedPrecision(p) => write!(f, "PREC {p}"),
        }
    }
}

/// Errors raised when compression itself cannot proceed.
#[derive(Debug, Clone, PartialEq)]
pub enum LossyError {
    /// Input contained NaN or infinity; EBLCs require finite data.
    NonFiniteInput,
    /// The bound is unusable (non-positive, non-finite, or a mode the
    /// codec does not support).
    InvalidBound(ErrorBound),
    /// A codec parameter is out of range (Top-K ratio outside `(0, 1]`,
    /// a non-positive threshold, a quantizer width other than 4/8 bits).
    InvalidParameter(&'static str),
}

impl fmt::Display for LossyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossyError::NonFiniteInput => write!(f, "input contains non-finite values"),
            LossyError::InvalidBound(b) => write!(f, "unusable error bound {b}"),
            LossyError::InvalidParameter(what) => write!(f, "invalid codec parameter: {what}"),
        }
    }
}

impl Error for LossyError {}

/// An error-bounded lossy compressor over 1D `f32` data.
///
/// Implementations must honour the absolute epsilon derived from the
/// bound (see [`ErrorBound::absolute_for`]) except in
/// [`ErrorBound::FixedPrecision`] mode.
pub trait ErrorBounded: Send + Sync {
    /// Which compressor family this is.
    fn kind(&self) -> LossyKind;

    /// Compresses `data` under `bound` into a self-contained stream.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError::NonFiniteInput`] for NaN/infinite inputs and
    /// [`LossyError::InvalidBound`] for unusable bounds.
    fn compress(&self, data: &[f32], bound: ErrorBound)
        -> std::result::Result<Vec<u8>, LossyError>;

    /// Decompresses a stream produced by [`ErrorBounded::compress`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for truncated or corrupt streams.
    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>>;

    /// Display name (defaults to the kind's name).
    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

/// Identifies one of the EBLC families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LossyKind {
    /// Prediction-based SZ2.
    Sz2,
    /// Interpolation-based SZ3.
    Sz3,
    /// Speed-first SZx.
    Szx,
    /// Transform-based ZFP.
    Zfp,
}

impl LossyKind {
    /// All four EBLCs in the paper's Table I order.
    pub fn all() -> [LossyKind; 4] {
        [Self::Sz2, Self::Sz3, Self::Szx, Self::Zfp]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Self::Sz2 => "SZ2",
            Self::Sz3 => "SZ3",
            Self::Szx => "SZx",
            Self::Zfp => "ZFP",
        }
    }

    /// Instantiates the codec with default settings.
    pub fn codec(self) -> Box<dyn ErrorBounded> {
        match self {
            Self::Sz2 => Box::new(Sz2::new()),
            Self::Sz3 => Box::new(Sz3::new()),
            Self::Szx => Box::new(Szx::new()),
            Self::Zfp => Box::new(Zfp::new()),
        }
    }

    /// Stable one-byte stream identifier.
    pub fn id(self) -> u8 {
        match self {
            Self::Sz2 => 16,
            Self::Sz3 => 17,
            Self::Szx => 18,
            Self::Zfp => 19,
        }
    }

    /// Inverse of [`LossyKind::id`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] for unknown identifiers.
    pub fn from_id(id: u8) -> Result<Self> {
        match id {
            16 => Ok(Self::Sz2),
            17 => Ok(Self::Sz3),
            18 => Ok(Self::Szx),
            19 => Ok(Self::Zfp),
            _ => Err(CodecError::Corrupt("unknown lossy codec id")),
        }
    }
}

impl fmt::Display for LossyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Validates input for the SZ-family compressors and resolves the bound.
pub(crate) fn resolve_bound(
    data: &[f32],
    bound: ErrorBound,
) -> std::result::Result<f64, LossyError> {
    if data.iter().any(|v| !v.is_finite()) {
        return Err(LossyError::NonFiniteInput);
    }
    match bound {
        ErrorBound::FixedPrecision(_) => Err(LossyError::InvalidBound(bound)),
        _ => {
            if data.is_empty() {
                // Empty inputs have no range; any positive epsilon works.
                return match bound {
                    ErrorBound::Absolute(eb) | ErrorBound::Relative(eb)
                        if eb.is_finite() && eb > 0.0 =>
                    {
                        Ok(eb.max(1e-30))
                    }
                    _ => Err(LossyError::InvalidBound(bound)),
                };
            }
            bound.absolute_for(data).ok_or(LossyError::InvalidBound(bound))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spiky_weights(n: usize) -> Vec<f32> {
        // Deterministic weight-like data: near-zero bulk with spikes,
        // similar to the flattened FL parameters in the paper's Fig 2.
        (0..n)
            .map(|i| {
                let base = ((i as f32 * 0.7).sin() + (i as f32 * 0.13).cos()) * 0.02;
                if i % 97 == 0 {
                    base + 0.5
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn kinds_round_trip_ids() {
        for kind in LossyKind::all() {
            assert_eq!(LossyKind::from_id(kind.id()).unwrap(), kind);
        }
        assert!(LossyKind::from_id(0).is_err());
    }

    #[test]
    fn every_codec_respects_relative_bound() {
        let data = spiky_weights(10_000);
        let range = {
            let r = fedsz_codec::stats::value_range(&data).unwrap();
            f64::from(r.span())
        };
        for kind in LossyKind::all() {
            let codec = kind.codec();
            for rel in [1e-2f64, 1e-3, 1e-4] {
                let bound = if kind == LossyKind::Zfp {
                    // The paper runs ZFP in fixed-precision mode; use the
                    // bounded (fixed-accuracy) mode for this invariant.
                    ErrorBound::Absolute(rel * range)
                } else {
                    ErrorBound::Relative(rel)
                };
                let packed = codec.compress(&data, bound).unwrap();
                let restored = codec.decompress(&packed).unwrap();
                assert_eq!(restored.len(), data.len());
                let max_err = fedsz_codec::stats::max_abs_error(&data, &restored);
                let eps = rel * range;
                assert!(
                    f64::from(max_err) <= eps * (1.0 + 1e-5),
                    "{kind} at {rel:e}: max_err {max_err:e} > eps {eps:e}"
                );
            }
        }
    }

    #[test]
    fn every_codec_compresses_weight_data() {
        let data = spiky_weights(20_000);
        for kind in LossyKind::all() {
            let codec = kind.codec();
            let bound = match kind {
                LossyKind::Zfp => ErrorBound::FixedPrecision(12),
                _ => ErrorBound::Relative(1e-2),
            };
            let packed = codec.compress(&data, bound).unwrap();
            let ratio = (data.len() * 4) as f64 / packed.len() as f64;
            assert!(ratio > 1.5, "{kind} ratio {ratio:.2} too low");
            assert_eq!(codec.decompress(&packed).unwrap().len(), data.len());
        }
    }

    #[test]
    fn every_codec_handles_empty_and_tiny() {
        for kind in LossyKind::all() {
            let codec = kind.codec();
            for data in [vec![], vec![1.0f32], vec![0.5, -0.5, 0.25]] {
                let bound = match kind {
                    LossyKind::Zfp => ErrorBound::Absolute(1e-3),
                    _ => ErrorBound::Relative(1e-3),
                };
                let packed = codec.compress(&data, bound).unwrap();
                let restored = codec.decompress(&packed).unwrap();
                assert_eq!(restored.len(), data.len(), "{kind}");
                for (a, b) in data.iter().zip(&restored) {
                    assert!((a - b).abs() <= 1e-2, "{kind}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn non_finite_input_rejected() {
        for kind in LossyKind::all() {
            let codec = kind.codec();
            let err = codec.compress(&[1.0, f32::NAN], ErrorBound::Relative(1e-2)).unwrap_err();
            assert_eq!(err, LossyError::NonFiniteInput, "{kind}");
        }
    }

    #[test]
    fn invalid_bounds_rejected() {
        for kind in LossyKind::all() {
            let codec = kind.codec();
            assert!(codec.compress(&[1.0, 2.0], ErrorBound::Relative(0.0)).is_err(), "{kind}");
            assert!(codec.compress(&[1.0, 2.0], ErrorBound::Absolute(-1.0)).is_err(), "{kind}");
        }
        // FixedPrecision is ZFP-only.
        for kind in [LossyKind::Sz2, LossyKind::Sz3, LossyKind::Szx] {
            let codec = kind.codec();
            assert!(codec.compress(&[1.0], ErrorBound::FixedPrecision(10)).is_err(), "{kind}");
        }
    }

    #[test]
    fn garbage_streams_error_not_panic() {
        let garbage = vec![0x5Au8; 128];
        for kind in LossyKind::all() {
            let codec = kind.codec();
            assert!(codec.decompress(&garbage).is_err(), "{kind}");
            assert!(codec.decompress(&[]).is_err(), "{kind}");
        }
    }

    #[test]
    fn constant_data_compresses_extremely_well() {
        let data = vec![0.25f32; 8192];
        for kind in LossyKind::all() {
            let codec = kind.codec();
            let bound = match kind {
                LossyKind::Zfp => ErrorBound::Absolute(1e-4),
                _ => ErrorBound::Relative(1e-3),
            };
            let packed = codec.compress(&data, bound).unwrap();
            let restored = codec.decompress(&packed).unwrap();
            for v in &restored {
                assert!((v - 0.25).abs() <= 1e-3, "{kind}");
            }
            let ratio = (data.len() * 4) as f64 / packed.len() as f64;
            // ZFP must still spend ~maxprec bits on each block's DC
            // coefficient, so it cannot collapse constants like the SZ
            // family does (true of real ZFP as well).
            let floor = if kind == LossyKind::Zfp { 2.5 } else { 20.0 };
            assert!(ratio > floor, "{kind} constant-data ratio {ratio:.1}");
        }
    }
}

#[cfg(test)]
mod monotonicity_tests {
    use super::*;

    fn weight_like(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 * 0.37).sin() * 0.05) + if i % 71 == 0 { 0.4 } else { 0.0 })
            .collect()
    }

    #[test]
    fn looser_bounds_never_compress_worse() {
        let data = weight_like(30_000);
        for kind in [LossyKind::Sz2, LossyKind::Sz3, LossyKind::Szx] {
            let codec = kind.codec();
            let mut last: Option<usize> = None;
            for rel in [1e-4f64, 1e-3, 1e-2, 1e-1] {
                let packed = codec.compress(&data, ErrorBound::Relative(rel)).unwrap();
                if let Some(prev) = last {
                    // Allow 2% slack for container constants.
                    assert!(
                        packed.len() <= prev + prev / 50,
                        "{kind}: size grew when loosening to {rel:e} ({prev} -> {})",
                        packed.len()
                    );
                }
                last = Some(packed.len());
            }
        }
    }

    #[test]
    fn zfp_rate_tracks_precision() {
        let data = weight_like(20_000);
        let codec = LossyKind::Zfp.codec();
        let mut last = 0usize;
        for prec in [4u32, 8, 16, 28] {
            let packed = codec.compress(&data, ErrorBound::FixedPrecision(prec)).unwrap();
            assert!(
                packed.len() >= last,
                "rate should grow with precision: {} then {}",
                last,
                packed.len()
            );
            last = packed.len();
        }
    }

    #[test]
    fn tighter_bounds_reconstruct_more_accurately() {
        let data = weight_like(20_000);
        for kind in [LossyKind::Sz2, LossyKind::Sz3, LossyKind::Szx] {
            let codec = kind.codec();
            let mut last_err = f32::INFINITY;
            for rel in [1e-1f64, 1e-2, 1e-3, 1e-4] {
                let packed = codec.compress(&data, ErrorBound::Relative(rel)).unwrap();
                let restored = codec.decompress(&packed).unwrap();
                let err = fedsz_codec::stats::max_abs_error(&data, &restored);
                assert!(err <= last_err, "{kind}: error grew when tightening to {rel:e}");
                last_err = err;
            }
        }
    }

    #[test]
    fn psnr_improves_with_tighter_bounds() {
        let data = weight_like(20_000);
        let codec = LossyKind::Sz2.codec();
        let loose = codec.compress(&data, ErrorBound::Relative(1e-1)).unwrap();
        let tight = codec.compress(&data, ErrorBound::Relative(1e-4)).unwrap();
        let psnr_loose = fedsz_codec::stats::psnr(&data, &codec.decompress(&loose).unwrap());
        let psnr_tight = fedsz_codec::stats::psnr(&data, &codec.decompress(&tight).unwrap());
        assert!(psnr_tight > psnr_loose + 20.0, "{psnr_loose:.1} vs {psnr_tight:.1} dB");
    }
}
