//! ZFP-class compressor: block transform + embedded bit-plane coding.
//!
//! Follows the published ZFP design (Lindstrom, TVCG 2014) for 1D data:
//! 4-value blocks are aligned to a common exponent (block floating
//! point), converted to 30-bit fixed point, decorrelated with ZFP's
//! integer lifting transform, mapped to negabinary, and bit-plane coded
//! with the group-tested embedded scheme from the reference encoder.
//!
//! Two modes are supported:
//!
//! * **fixed precision** (the mode FedSZ uses, since ZFP has no relative
//!   error bound): keep a fixed number of bit planes per block — bounds
//!   the rate, not the error;
//! * **fixed accuracy**: derive the per-block plane budget from an
//!   absolute error tolerance, which does bound the error.

use crate::{ErrorBound, ErrorBounded, LossyError, LossyKind};
use fedsz_codec::bitio::{BitReader, BitWriter};
use fedsz_codec::varint::{read_f64, read_uvarint, write_f64, write_uvarint};
use fedsz_codec::{CodecError, Result};

/// Stream format version.
const VERSION: u8 = 1;
/// Values per ZFP block (1D).
const BSIZE: usize = 4;
/// Bits in the fixed-point representation.
const INTPREC: u32 = 32;
/// Negabinary conversion mask.
const NBMASK: u32 = 0xaaaa_aaaa;

/// Operating mode, stored in the stream header.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    FixedPrecision(u32),
    FixedAccuracy(f64),
}

/// ZFP-class transform compressor.
///
/// # Examples
///
/// ```
/// use fedsz_lossy::{ErrorBound, ErrorBounded, Zfp};
///
/// let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).sin()).collect();
/// let codec = Zfp::new();
/// // Fixed precision: 14 bit planes per value (rate-bounded).
/// let packed = codec.compress(&data, ErrorBound::FixedPrecision(14)).unwrap();
/// let restored = codec.decompress(&packed).unwrap();
/// assert_eq!(restored.len(), data.len());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Zfp {
    _private: (),
}

impl Zfp {
    /// Creates the codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// The precision the paper's "closest analogous option" maps a
    /// relative bound to (used when callers pass
    /// [`ErrorBound::Relative`] to ZFP, which has no native REL mode).
    pub fn precision_for_relative(rel: f64) -> u32 {
        let p = (1.0 / rel).log2().ceil() as i64 + 2;
        p.clamp(1, i64::from(INTPREC)) as u32
    }
}

/// frexp-style exponent: `2^(e-1) <= |v| < 2^e` for normal values.
#[inline]
fn exponent_of(v: f32) -> i32 {
    let a = v.abs();
    if a == 0.0 {
        -126
    } else {
        // ilogb + 1; use bit tricks for speed and subnormal safety.
        let bits = a.to_bits();
        let raw = (bits >> 23) as i32;
        if raw == 0 {
            -125 - (bits.leading_zeros() as i32 - 9)
        } else {
            raw - 126
        }
    }
}

/// ZFP forward lifting transform (1D, 4 values).
#[inline]
fn fwd_lift(p: &mut [i32; 4]) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[1], p[2], p[3]);
    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    *p = [x, y, z, w];
}

/// ZFP inverse lifting transform (1D, 4 values).
#[inline]
fn inv_lift(p: &mut [i32; 4]) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[1], p[2], p[3]);
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w <<= 1;
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z <<= 1;
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(w);
    *p = [x, y, z, w];
}

/// Two's complement -> negabinary.
#[inline]
fn int2uint(i: i32) -> u32 {
    ((i as u32).wrapping_add(NBMASK)) ^ NBMASK
}

/// Negabinary -> two's complement.
#[inline]
fn uint2int(u: u32) -> i32 {
    (u ^ NBMASK).wrapping_sub(NBMASK) as i32
}

/// Embedded bit-plane encoder for one block (ZFP's `encode_ints`).
fn encode_ints(w: &mut BitWriter, data: &[u32; BSIZE], maxprec: u32) {
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut n = 0usize;
    for k in (kmin..INTPREC).rev() {
        // Extract bit plane k: bit i of x is value i's bit k.
        let mut x = 0u64;
        for (i, &v) in data.iter().enumerate() {
            x |= u64::from((v >> k) & 1) << i;
        }
        // First n values are already significant: emit verbatim.
        w.write_bits(x & ((1u64 << n) - 1), n as u32);
        x >>= n;
        // Group-tested unary coding for the remainder.
        while n < BSIZE {
            let group = x != 0;
            w.write_bit(group);
            if !group {
                break;
            }
            while n < BSIZE - 1 {
                let bit = x & 1 != 0;
                w.write_bit(bit);
                if bit {
                    break;
                }
                x >>= 1;
                n += 1;
            }
            x >>= 1;
            n += 1;
        }
    }
}

/// Embedded bit-plane decoder (ZFP's `decode_ints`).
fn decode_ints(r: &mut BitReader<'_>, maxprec: u32) -> Result<[u32; BSIZE]> {
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut data = [0u32; BSIZE];
    let mut n = 0usize;
    for k in (kmin..INTPREC).rev() {
        let mut x = r.read_bits(n as u32)?;
        while n < BSIZE {
            if !r.read_bit()? {
                break;
            }
            while n < BSIZE - 1 {
                if r.read_bit()? {
                    break;
                }
                n += 1;
            }
            x |= 1u64 << n;
            n += 1;
        }
        for (i, v) in data.iter_mut().enumerate() {
            *v |= (((x >> i) & 1) as u32) << k;
        }
    }
    Ok(data)
}

/// Per-block plane budget in fixed-accuracy mode (ZFP's `precision()`
/// helper for 1D: `maxexp - minexp + 2 * (dims + 1)`).
#[inline]
fn accuracy_precision(emax: i32, minexp: i32) -> u32 {
    (emax - minexp + 4).clamp(0, INTPREC as i32) as u32
}

impl ErrorBounded for Zfp {
    fn kind(&self) -> LossyKind {
        LossyKind::Zfp
    }

    fn compress(
        &self,
        data: &[f32],
        bound: ErrorBound,
    ) -> std::result::Result<Vec<u8>, LossyError> {
        if data.iter().any(|v| !v.is_finite()) {
            return Err(LossyError::NonFiniteInput);
        }
        let mode = match bound {
            ErrorBound::FixedPrecision(p) => {
                if p == 0 || p > INTPREC {
                    return Err(LossyError::InvalidBound(bound));
                }
                Mode::FixedPrecision(p)
            }
            ErrorBound::Absolute(eb) => {
                if !(eb.is_finite() && eb > 0.0) {
                    return Err(LossyError::InvalidBound(bound));
                }
                Mode::FixedAccuracy(eb)
            }
            ErrorBound::Relative(rel) => {
                if !(rel.is_finite() && rel > 0.0) {
                    return Err(LossyError::InvalidBound(bound));
                }
                // ZFP has no REL mode; FedSZ uses fixed precision as the
                // closest analogue.
                Mode::FixedPrecision(Self::precision_for_relative(rel))
            }
        };

        let mut out = Vec::with_capacity(data.len() * 2 + 32);
        out.push(self.kind().id());
        out.push(VERSION);
        write_uvarint(&mut out, data.len() as u64);
        match mode {
            Mode::FixedPrecision(p) => {
                out.push(0);
                write_uvarint(&mut out, u64::from(p));
            }
            Mode::FixedAccuracy(eb) => {
                out.push(1);
                write_f64(&mut out, eb);
            }
        }
        if data.is_empty() {
            return Ok(out);
        }

        let minexp = match mode {
            Mode::FixedAccuracy(eb) => eb.log2().floor() as i32,
            Mode::FixedPrecision(_) => 0,
        };
        let mut w = BitWriter::with_capacity(data.len() * 2);
        for chunk in data.chunks(BSIZE) {
            // Pad the final partial block by repeating its last value.
            let mut block = [0.0f32; BSIZE];
            for (i, slot) in block.iter_mut().enumerate() {
                *slot = chunk.get(i).copied().unwrap_or_else(|| chunk[chunk.len() - 1]);
            }
            let amax = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if amax == 0.0 {
                w.write_bit(false);
                continue;
            }
            w.write_bit(true);
            let emax = exponent_of(amax);
            // Biased exponent: e + 127 fits 9 bits for all f32 inputs.
            w.write_bits((emax + 127) as u64, 9);
            let maxprec = match mode {
                Mode::FixedPrecision(p) => p,
                Mode::FixedAccuracy(_) => accuracy_precision(emax, minexp),
            };
            if maxprec == 0 {
                continue;
            }
            // Block floating point: scale into (-2^30, 2^30).
            let scale = 2f64.powi(30 - emax);
            let mut q = [0i32; BSIZE];
            for (i, &v) in block.iter().enumerate() {
                q[i] = (f64::from(v) * scale).round() as i32;
            }
            fwd_lift(&mut q);
            let u = [int2uint(q[0]), int2uint(q[1]), int2uint(q[2]), int2uint(q[3])];
            encode_ints(&mut w, &u, maxprec);
        }
        let payload = w.into_bytes();
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>> {
        let mut pos = 0usize;
        let id = *bytes.first().ok_or(CodecError::UnexpectedEof)?;
        if id != self.kind().id() {
            return Err(CodecError::Corrupt("not a ZFP stream"));
        }
        pos += 1;
        let version = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        pos += 1;
        let n = read_uvarint(bytes, &mut pos)? as usize;
        let mode_tag = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        let mode = match mode_tag {
            0 => {
                let p = read_uvarint(bytes, &mut pos)? as u32;
                if p == 0 || p > INTPREC {
                    return Err(CodecError::Corrupt("invalid precision in header"));
                }
                Mode::FixedPrecision(p)
            }
            1 => {
                let eb = read_f64(bytes, &mut pos)?;
                if !(eb.is_finite() && eb > 0.0) {
                    return Err(CodecError::Corrupt("invalid tolerance in header"));
                }
                Mode::FixedAccuracy(eb)
            }
            _ => return Err(CodecError::Corrupt("unknown ZFP mode")),
        };
        if n == 0 {
            return Ok(Vec::new());
        }
        let minexp = match mode {
            Mode::FixedAccuracy(eb) => eb.log2().floor() as i32,
            Mode::FixedPrecision(_) => 0,
        };
        let mut r = BitReader::new(&bytes[pos..]);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let take = BSIZE.min(n - out.len());
            if !r.read_bit()? {
                out.extend(std::iter::repeat_n(0.0f32, take));
                continue;
            }
            let emax = r.read_bits(9)? as i32 - 127;
            if !(-127..=128).contains(&emax) {
                return Err(CodecError::Corrupt("exponent out of range"));
            }
            let maxprec = match mode {
                Mode::FixedPrecision(p) => p,
                Mode::FixedAccuracy(_) => accuracy_precision(emax, minexp),
            };
            if maxprec == 0 {
                out.extend(std::iter::repeat_n(0.0f32, take));
                continue;
            }
            let u = decode_ints(&mut r, maxprec)?;
            let mut q = [uint2int(u[0]), uint2int(u[1]), uint2int(u[2]), uint2int(u[3])];
            inv_lift(&mut q);
            let scale = 2f64.powi(emax - 30);
            for &qi in q.iter().take(take) {
                out.push((f64::from(qi) * scale) as f32);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_codec::stats::max_abs_error;

    #[test]
    fn lift_nearly_round_trips() {
        // The integer lifting transform rounds with `>>1`, so the inverse
        // recovers values only up to a few units — exactly like real ZFP,
        // whose error analysis absorbs this in the accuracy-mode slack.
        let cases =
            [[0i32, 0, 0, 0], [1, 2, 3, 4], [1 << 29, -(1 << 29), 12345, -98765], [-1, 1, -1, 1]];
        for case in cases {
            let mut p = case;
            fwd_lift(&mut p);
            inv_lift(&mut p);
            for i in 0..4 {
                assert!(
                    (i64::from(p[i]) - i64::from(case[i])).abs() <= 4,
                    "lift drift too large: {:?} -> {:?}",
                    case,
                    p
                );
            }
        }
    }

    #[test]
    fn negabinary_round_trips() {
        for i in [0i32, 1, -1, i32::MAX / 2, i32::MIN / 2, 42, -42] {
            assert_eq!(uint2int(int2uint(i)), i);
        }
    }

    #[test]
    fn bitplane_coder_round_trips() {
        let blocks =
            [[0u32; 4], [1, 2, 3, 4], [u32::MAX, 0, u32::MAX / 3, 7], [0x8000_0000, 1, 0, 0xffff]];
        for block in blocks {
            for maxprec in [32u32, 16, 8] {
                let mut w = BitWriter::new();
                encode_ints(&mut w, &block, maxprec);
                let bytes = w.into_bytes();
                let mut r = BitReader::new(&bytes);
                let decoded = decode_ints(&mut r, maxprec).unwrap();
                if maxprec == 32 {
                    assert_eq!(decoded, block);
                } else {
                    // Truncated planes: high bits must match exactly.
                    let kmin = 32 - maxprec;
                    for i in 0..4 {
                        assert_eq!(decoded[i] >> kmin, block[i] >> kmin);
                    }
                }
            }
        }
    }

    #[test]
    fn fixed_accuracy_respects_bound() {
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin() * 2.0).collect();
        let codec = Zfp::new();
        for eb in [1e-1f32, 1e-3, 1e-5] {
            let packed = codec.compress(&data, ErrorBound::Absolute(f64::from(eb))).unwrap();
            let restored = codec.decompress(&packed).unwrap();
            assert_eq!(restored.len(), data.len());
            let err = max_abs_error(&data, &restored);
            assert!(err <= eb, "eb {eb:e}: err {err:e}");
        }
    }

    #[test]
    fn fixed_precision_rate_is_bounded() {
        let data: Vec<f32> = (0..8192).map(|i| ((i * 37) as f32).sin()).collect();
        let codec = Zfp::new();
        let packed = codec.compress(&data, ErrorBound::FixedPrecision(10)).unwrap();
        // 10 planes + header + group tests: comfortably under 16 bits/value.
        assert!(packed.len() < data.len() * 2, "rate too high: {}", packed.len());
        let restored = codec.decompress(&packed).unwrap();
        assert_eq!(restored.len(), data.len());
    }

    #[test]
    fn higher_precision_is_more_accurate() {
        let data: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.7).cos() * 0.1).collect();
        let codec = Zfp::new();
        let mut last_err = f32::INFINITY;
        for p in [6u32, 12, 20, 30] {
            let packed = codec.compress(&data, ErrorBound::FixedPrecision(p)).unwrap();
            let restored = codec.decompress(&packed).unwrap();
            let err = max_abs_error(&data, &restored);
            assert!(err <= last_err * 1.001, "precision {p}: {err} vs {last_err}");
            last_err = err;
        }
        assert!(last_err < 1e-6, "30-plane reconstruction should be near exact");
    }

    #[test]
    fn relative_maps_to_reasonable_precision() {
        assert!(Zfp::precision_for_relative(1e-2) >= 8);
        assert!(Zfp::precision_for_relative(1e-4) >= 14);
        assert!(Zfp::precision_for_relative(0.5) >= 1);
    }

    #[test]
    fn zero_blocks_cost_one_bit() {
        let data = vec![0.0f32; 40_000];
        let codec = Zfp::new();
        let packed = codec.compress(&data, ErrorBound::FixedPrecision(16)).unwrap();
        assert!(packed.len() < 40_000 / 8 / 4 + 64, "zero data: {} bytes", packed.len());
        let restored = codec.decompress(&packed).unwrap();
        assert!(restored.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn partial_block_and_negatives() {
        let data = vec![-1.5f32, 2.25, -0.125];
        let codec = Zfp::new();
        let packed = codec.compress(&data, ErrorBound::Absolute(1e-6)).unwrap();
        let restored = codec.decompress(&packed).unwrap();
        assert_eq!(restored.len(), 3);
        assert!(max_abs_error(&data, &restored) <= 1e-6);
    }

    #[test]
    fn truncated_stream_errors() {
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.3).collect();
        let codec = Zfp::new();
        let packed = codec.compress(&data, ErrorBound::FixedPrecision(20)).unwrap();
        assert!(codec.decompress(&packed[..packed.len() / 2]).is_err());
    }
}
