//! Top-K / threshold sparsification of flat `f32` vectors.
//!
//! The sparsifier keeps a subset of entries **bit-exactly** and zeroes
//! the rest — unlike the error-bounded compressors in this crate, the
//! surviving values are never perturbed, which is what makes it safe
//! to pair with an error-feedback residual buffer (the dropped mass is
//! exactly `input - reconstruction`, with no codec noise mixed in).
//!
//! The stream is an index+value encoding: ascending kept indices as
//! delta-coded LEB128 varints followed by the raw little-endian `f32`
//! bits of each kept value. Sorted-index deltas are small, so the
//! index side costs ~1 byte per kept entry on realistic densities; the
//! value side is incompressible by construction (it is the exact
//! payload).

use crate::LossyError;
use fedsz_codec::varint::{read_f32, read_uvarint, write_f32, write_uvarint};
use fedsz_codec::{CodecError, Result};

/// Which entries of a vector survive sparsification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparsifyMode {
    /// Keep the `ceil(ratio * len)` largest-magnitude entries
    /// (at least one on non-empty input). Ties at the K boundary break
    /// toward the lower index, so the selection is deterministic.
    TopK {
        /// Fraction of entries to keep, in `(0, 1]`.
        ratio: f64,
    },
    /// Keep every entry whose magnitude is at least `min_abs`.
    Threshold {
        /// Inclusive magnitude cutoff; must be finite and positive.
        min_abs: f32,
    },
}

/// A Top-K / threshold sparsifier over flat `f32` slices.
///
/// # Examples
///
/// ```
/// use fedsz_lossy::sparse::Sparsifier;
///
/// let s = Sparsifier::top_k(0.5).unwrap();
/// let values = [0.1f32, -4.0, 0.2, 3.0];
/// let stream = s.compress(&values).unwrap();
/// let restored = Sparsifier::decompress(&stream).unwrap();
/// // The two largest magnitudes survive bit-exactly; the rest are 0.
/// assert_eq!(restored, vec![0.0, -4.0, 0.0, 3.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sparsifier {
    mode: SparsifyMode,
}

impl Sparsifier {
    /// A Top-K sparsifier keeping a `ratio` fraction of entries.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError::InvalidParameter`] unless `ratio` is in
    /// `(0, 1]`.
    pub fn top_k(ratio: f64) -> std::result::Result<Self, LossyError> {
        if !(ratio > 0.0 && ratio <= 1.0) {
            return Err(LossyError::InvalidParameter("Top-K ratio must be in (0, 1]"));
        }
        Ok(Self { mode: SparsifyMode::TopK { ratio } })
    }

    /// A threshold sparsifier keeping entries with `|v| >= min_abs`.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError::InvalidParameter`] unless `min_abs` is finite
    /// and positive.
    pub fn threshold(min_abs: f32) -> std::result::Result<Self, LossyError> {
        if !(min_abs.is_finite() && min_abs > 0.0) {
            return Err(LossyError::InvalidParameter("threshold must be finite and positive"));
        }
        Ok(Self { mode: SparsifyMode::Threshold { min_abs } })
    }

    /// The configured mode.
    pub fn mode(&self) -> SparsifyMode {
        self.mode
    }

    /// The ascending indices this sparsifier keeps for `values`.
    fn kept_indices(&self, values: &[f32]) -> Vec<usize> {
        match self.mode {
            SparsifyMode::TopK { ratio } => {
                if values.is_empty() {
                    return Vec::new();
                }
                let k = ((values.len() as f64 * ratio).ceil() as usize).clamp(1, values.len());
                let mut order: Vec<usize> = (0..values.len()).collect();
                // Magnitude descending, index ascending on ties: a total
                // order, so the selection is deterministic bit for bit.
                order.sort_by(|&a, &b| {
                    values[b].abs().total_cmp(&values[a].abs()).then_with(|| a.cmp(&b))
                });
                let mut kept = order[..k].to_vec();
                kept.sort_unstable();
                kept
            }
            SparsifyMode::Threshold { min_abs } => {
                (0..values.len()).filter(|&i| values[i].abs() >= min_abs).collect()
            }
        }
    }

    /// Sparsifies `values` into an index+value stream.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError::NonFiniteInput`] when any value is NaN or
    /// infinite (a NaN magnitude has no place in a Top-K order).
    pub fn compress(&self, values: &[f32]) -> std::result::Result<Vec<u8>, LossyError> {
        let (stream, _) = self.compress_with_applied(values)?;
        Ok(stream)
    }

    /// Sparsifies `values`, also returning the dense reconstruction the
    /// receiver will see (kept values bit-exact, the rest zero) — the
    /// "applied" vector an error-feedback caller subtracts to form its
    /// residual without a decode round-trip.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError::NonFiniteInput`] when any value is NaN or
    /// infinite.
    pub fn compress_with_applied(
        &self,
        values: &[f32],
    ) -> std::result::Result<(Vec<u8>, Vec<f32>), LossyError> {
        if values.iter().any(|v| !v.is_finite()) {
            return Err(LossyError::NonFiniteInput);
        }
        let kept = self.kept_indices(values);
        let mut out = Vec::with_capacity(2 + kept.len() * 5);
        write_uvarint(&mut out, values.len() as u64);
        write_uvarint(&mut out, kept.len() as u64);
        let mut prev = 0u64;
        for &i in &kept {
            // Ascending indices delta-code to small varints; the first
            // delta is the absolute index.
            write_uvarint(&mut out, i as u64 - prev);
            prev = i as u64;
        }
        let mut applied = vec![0.0f32; values.len()];
        for &i in &kept {
            write_f32(&mut out, values[i]);
            applied[i] = values[i];
        }
        Ok((out, applied))
    }

    /// Reconstructs the dense vector from a sparsified stream.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for truncated or inconsistent streams.
    pub fn decompress(bytes: &[u8]) -> Result<Vec<f32>> {
        let mut pos = 0usize;
        let total = read_uvarint(bytes, &mut pos)? as usize;
        let kept = read_uvarint(bytes, &mut pos)? as usize;
        if kept > total {
            return Err(CodecError::Corrupt("sparse stream keeps more than it holds"));
        }
        let mut indices = Vec::with_capacity(kept);
        let mut at = 0u64;
        for rank in 0..kept {
            let delta = read_uvarint(bytes, &mut pos)?;
            // Deltas after the first are strictly positive (indices are
            // strictly ascending); a zero delta is a duplicate index.
            if rank > 0 && delta == 0 {
                return Err(CodecError::Corrupt("sparse stream repeats an index"));
            }
            at = at.checked_add(delta).ok_or(CodecError::Corrupt("sparse index overflow"))?;
            if at as usize >= total {
                return Err(CodecError::Corrupt("sparse index past the end"));
            }
            indices.push(at as usize);
        }
        let mut values = vec![0.0f32; total];
        for &i in &indices {
            values[i] = read_f32(bytes, &mut pos)?;
        }
        if pos != bytes.len() {
            return Err(CodecError::Corrupt("sparse stream has trailing bytes"));
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(Sparsifier::top_k(0.0), Err(LossyError::InvalidParameter(_))));
        assert!(matches!(Sparsifier::top_k(1.5), Err(LossyError::InvalidParameter(_))));
        assert!(matches!(Sparsifier::top_k(f64::NAN), Err(LossyError::InvalidParameter(_))));
        assert!(Sparsifier::top_k(1.0).is_ok());
        assert!(matches!(Sparsifier::threshold(0.0), Err(LossyError::InvalidParameter(_))));
        assert!(matches!(Sparsifier::threshold(f32::NAN), Err(LossyError::InvalidParameter(_))));
        assert!(Sparsifier::threshold(1e-3).is_ok());
    }

    #[test]
    fn top_k_keeps_the_largest_magnitudes_bit_exactly() {
        let values = [0.01f32, -5.0, 0.5, 3.25, -0.125, 0.0, 2.5, -0.25];
        let s = Sparsifier::top_k(0.375).unwrap(); // ceil(8 * .375) = 3
        let (stream, applied) = s.compress_with_applied(&values).unwrap();
        let restored = Sparsifier::decompress(&stream).unwrap();
        assert_eq!(restored, applied);
        assert_eq!(restored, vec![0.0, -5.0, 0.0, 3.25, 0.0, 0.0, 2.5, 0.0]);
        // Survivors carry the exact source bits.
        assert_eq!(restored[1].to_bits(), (-5.0f32).to_bits());
    }

    #[test]
    fn top_k_ties_break_toward_the_lower_index() {
        let values = [1.0f32, -1.0, 1.0, 1.0];
        let s = Sparsifier::top_k(0.5).unwrap();
        let restored = Sparsifier::decompress(&s.compress(&values).unwrap()).unwrap();
        assert_eq!(restored, vec![1.0, -1.0, 0.0, 0.0]);
    }

    #[test]
    fn threshold_keeps_entries_at_or_above_the_cutoff() {
        let values = [0.5f32, 0.1, -0.5, 0.49];
        let s = Sparsifier::threshold(0.5).unwrap();
        let restored = Sparsifier::decompress(&s.compress(&values).unwrap()).unwrap();
        assert_eq!(restored, vec![0.5, 0.0, -0.5, 0.0]);
    }

    #[test]
    fn full_ratio_and_empty_input_round_trip() {
        let values = [1.0f32, 2.0, 3.0];
        let s = Sparsifier::top_k(1.0).unwrap();
        assert_eq!(Sparsifier::decompress(&s.compress(&values).unwrap()).unwrap(), values);
        assert!(Sparsifier::decompress(&s.compress(&[]).unwrap()).unwrap().is_empty());
    }

    #[test]
    fn non_finite_input_is_reported() {
        let s = Sparsifier::top_k(0.5).unwrap();
        assert_eq!(s.compress(&[1.0, f32::NAN]).unwrap_err(), LossyError::NonFiniteInput);
        assert_eq!(s.compress(&[f32::INFINITY]).unwrap_err(), LossyError::NonFiniteInput);
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        let s = Sparsifier::top_k(0.5).unwrap();
        let stream = s.compress(&[1.0, -2.0, 3.0, -4.0]).unwrap();
        assert!(Sparsifier::decompress(&stream[..stream.len() - 1]).is_err());
        assert!(Sparsifier::decompress(&[]).is_err());
        // Kept count larger than the vector.
        let mut bad = Vec::new();
        write_uvarint(&mut bad, 2);
        write_uvarint(&mut bad, 3);
        assert!(Sparsifier::decompress(&bad).is_err());
        // Index past the end.
        let mut bad = Vec::new();
        write_uvarint(&mut bad, 2);
        write_uvarint(&mut bad, 1);
        write_uvarint(&mut bad, 7);
        write_f32(&mut bad, 1.0);
        assert!(Sparsifier::decompress(&bad).is_err());
        // Trailing garbage.
        let mut padded = stream.clone();
        padded.push(0);
        assert!(Sparsifier::decompress(&padded).is_err());
    }

    #[test]
    fn stream_is_deterministic_and_compact() {
        let values: Vec<f32> = (0..1000).map(|i| ((i * 37 % 101) as f32 - 50.0) / 50.0).collect();
        let s = Sparsifier::top_k(0.01).unwrap();
        let a = s.compress(&values).unwrap();
        let b = s.compress(&values).unwrap();
        assert_eq!(a, b);
        // 10 kept entries: far below the 4000-byte dense payload.
        assert!(a.len() < 400, "stream unexpectedly large: {} bytes", a.len());
    }
}
