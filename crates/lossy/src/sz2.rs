//! SZ2-class compressor: block prediction + quantization + Huffman + LZ.
//!
//! Mirrors the published SZ2 design (Liang et al., IEEE Big Data 2018)
//! restricted to 1D data, which is how FedSZ uses it on flattened weight
//! tensors: data is cut into small blocks, each block chooses between a
//! Lorenzo predictor (previous reconstructed value) and a least-squares
//! linear fit, prediction residuals are quantized into `2*eb` bins,
//! quantization codes are Huffman-coded and the whole stream is passed
//! through a zstd-class lossless backend. Residuals outside the
//! quantizer's range are stored verbatim ("unpredictable" values).

use crate::{resolve_bound, ErrorBound, ErrorBounded, LossyError, LossyKind};
use fedsz_codec::bitio::{BitReader, BitWriter};
use fedsz_codec::huffman;
use fedsz_codec::quantizer::{Quantized, Quantizer};
use fedsz_codec::varint::{read_f32, read_f64, read_uvarint, write_f32, write_f64, write_uvarint};
use fedsz_codec::{CodecError, Result};
use fedsz_lossless::{Lossless, ZstdLike};

/// Stream format version.
const VERSION: u8 = 1;
/// Elements per prediction block.
const BLOCK: usize = 128;

/// Per-block predictor choice.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Predictor {
    /// Previous reconstructed value.
    Lorenzo,
    /// `a * i + b` over the block-local index.
    Regression { a: f32, b: f32 },
}

/// SZ2-class error-bounded compressor.
///
/// # Examples
///
/// ```
/// use fedsz_lossy::{ErrorBound, ErrorBounded, Sz2};
///
/// let data: Vec<f32> = (0..512).map(|i| 0.01 * (i as f32).sqrt()).collect();
/// let codec = Sz2::new();
/// let packed = codec.compress(&data, ErrorBound::Absolute(1e-4)).unwrap();
/// let restored = codec.decompress(&packed).unwrap();
/// assert!(data.iter().zip(&restored).all(|(a, b)| (a - b).abs() <= 1e-4));
/// ```
#[derive(Debug, Clone)]
pub struct Sz2 {
    block: usize,
    use_regression: bool,
}

impl Sz2 {
    /// Creates the codec with the default block size (128) and the
    /// hybrid Lorenzo/regression predictor.
    pub fn new() -> Self {
        Self { block: BLOCK, use_regression: true }
    }

    /// Creates the codec with a custom block size.
    ///
    /// # Panics
    ///
    /// Panics if `block` is smaller than 4.
    pub fn with_block_size(block: usize) -> Self {
        assert!(block >= 4, "block size must be at least 4");
        Self { block, use_regression: true }
    }

    /// Disables the linear-regression predictor, leaving pure Lorenzo —
    /// the ablation knob for SZ2's hybrid-prediction design choice.
    pub fn lorenzo_only(mut self) -> Self {
        self.use_regression = false;
        self
    }
}

impl Default for Sz2 {
    fn default() -> Self {
        Self::new()
    }
}

/// Least-squares line fit over `(0..len, values)`.
fn fit_line(values: &[f32]) -> (f32, f32) {
    let n = values.len() as f64;
    if values.len() < 2 {
        return (0.0, values.first().copied().unwrap_or(0.0));
    }
    let mean_x = (n - 1.0) / 2.0;
    let mean_y: f64 = values.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let mut sxy = 0.0f64;
    let mut sxx = 0.0f64;
    for (i, &v) in values.iter().enumerate() {
        let dx = i as f64 - mean_x;
        sxy += dx * (f64::from(v) - mean_y);
        sxx += dx * dx;
    }
    let a = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let b = mean_y - a * mean_x;
    (a as f32, b as f32)
}

impl ErrorBounded for Sz2 {
    fn kind(&self) -> LossyKind {
        LossyKind::Sz2
    }

    fn compress(
        &self,
        data: &[f32],
        bound: ErrorBound,
    ) -> std::result::Result<Vec<u8>, LossyError> {
        let eb = resolve_bound(data, bound)? as f32;
        let eb = if eb > 0.0 { eb } else { f32::MIN_POSITIVE };

        let mut out = Vec::with_capacity(data.len() + 32);
        out.push(self.kind().id());
        out.push(VERSION);
        write_uvarint(&mut out, data.len() as u64);
        write_f64(&mut out, f64::from(eb));
        write_uvarint(&mut out, self.block as u64);
        if data.is_empty() {
            return Ok(out);
        }

        let quantizer = Quantizer::new(eb);
        let mut codes: Vec<u16> = Vec::with_capacity(data.len());
        let mut unpredictable: Vec<f32> = Vec::new();
        let mut flags = BitWriter::new();
        let mut coeffs: Vec<u8> = Vec::new();
        let mut last_recon = 0.0f32;

        for chunk in data.chunks(self.block) {
            // Predictor selection on original values: Lorenzo cost uses
            // the previous original as a stand-in for the reconstruction.
            let mut lorenzo_cost = (f64::from(chunk[0]) - f64::from(last_recon)).abs();
            for w in chunk.windows(2) {
                lorenzo_cost += (f64::from(w[1]) - f64::from(w[0])).abs();
            }
            let (a, b) = fit_line(chunk);
            let mut reg_cost = 0.0f64;
            for (i, &v) in chunk.iter().enumerate() {
                reg_cost += (f64::from(v) - (f64::from(a) * i as f64 + f64::from(b))).abs();
            }
            // The regression stores two f32 coefficients; require a clear
            // win before paying for them (mirrors SZ2's sampling choice).
            let predictor = if self.use_regression && reg_cost < 0.9 * lorenzo_cost {
                Predictor::Regression { a, b }
            } else {
                Predictor::Lorenzo
            };
            match predictor {
                Predictor::Lorenzo => flags.write_bit(false),
                Predictor::Regression { a, b } => {
                    flags.write_bit(true);
                    write_f32(&mut coeffs, a);
                    write_f32(&mut coeffs, b);
                }
            }
            for (i, &v) in chunk.iter().enumerate() {
                let pred = match predictor {
                    Predictor::Lorenzo => last_recon,
                    Predictor::Regression { a, b } => a * i as f32 + b,
                };
                match quantizer.quantize(pred, v) {
                    Quantized::Code { code, reconstructed } => {
                        codes.push(code);
                        last_recon = reconstructed;
                    }
                    Quantized::Unpredictable(raw) => {
                        codes.push(Quantizer::UNPREDICTABLE);
                        unpredictable.push(raw);
                        last_recon = raw;
                    }
                }
            }
        }

        // Inner container: flags, coefficients, Huffman codes, raw values.
        let mut inner = Vec::new();
        let flag_bytes = flags.into_bytes();
        write_uvarint(&mut inner, flag_bytes.len() as u64);
        inner.extend_from_slice(&flag_bytes);
        write_uvarint(&mut inner, coeffs.len() as u64);
        inner.extend_from_slice(&coeffs);
        inner.extend_from_slice(&huffman::encode_block(&codes));
        write_uvarint(&mut inner, unpredictable.len() as u64);
        for &v in &unpredictable {
            write_f32(&mut inner, v);
        }

        // SZ2 passes its Huffman output through zstd; so do we.
        let packed = ZstdLike::new().compress(&inner);
        write_uvarint(&mut out, packed.len() as u64);
        out.extend_from_slice(&packed);
        Ok(out)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>> {
        let mut pos = 0usize;
        let id = *bytes.first().ok_or(CodecError::UnexpectedEof)?;
        if id != self.kind().id() {
            return Err(CodecError::Corrupt("not an SZ2 stream"));
        }
        pos += 1;
        let version = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        pos += 1;
        let n = read_uvarint(bytes, &mut pos)? as usize;
        let eb = read_f64(bytes, &mut pos)? as f32;
        let block = read_uvarint(bytes, &mut pos)? as usize;
        if n == 0 {
            return Ok(Vec::new());
        }
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CodecError::Corrupt("invalid error bound in header"));
        }
        if block < 4 {
            return Err(CodecError::Corrupt("invalid block size in header"));
        }
        let packed_len = read_uvarint(bytes, &mut pos)? as usize;
        let packed = bytes.get(pos..pos + packed_len).ok_or(CodecError::UnexpectedEof)?;
        let inner = ZstdLike::new().decompress(packed)?;

        let mut ipos = 0usize;
        let flag_len = read_uvarint(&inner, &mut ipos)? as usize;
        let flag_bytes = inner.get(ipos..ipos + flag_len).ok_or(CodecError::UnexpectedEof)?;
        ipos += flag_len;
        let coeff_len = read_uvarint(&inner, &mut ipos)? as usize;
        let coeff_bytes = inner.get(ipos..ipos + coeff_len).ok_or(CodecError::UnexpectedEof)?;
        ipos += coeff_len;
        let codes = huffman::decode_block(&inner, &mut ipos)?;
        if codes.len() != n {
            return Err(CodecError::Corrupt("code count mismatch"));
        }
        let n_unpred = read_uvarint(&inner, &mut ipos)? as usize;
        let mut unpredictable = Vec::with_capacity(n_unpred);
        for _ in 0..n_unpred {
            unpredictable.push(read_f32(&inner, &mut ipos)?);
        }

        let quantizer = Quantizer::new(eb);
        let mut flags = BitReader::new(flag_bytes);
        let mut cpos = 0usize;
        let mut out = Vec::with_capacity(n);
        let mut upos = 0usize;
        let mut last_recon = 0.0f32;
        let mut idx = 0usize;
        while idx < n {
            let chunk_len = block.min(n - idx);
            let predictor = if flags.read_bit()? {
                let a = read_f32(coeff_bytes, &mut cpos)?;
                let b = read_f32(coeff_bytes, &mut cpos)?;
                Predictor::Regression { a, b }
            } else {
                Predictor::Lorenzo
            };
            for i in 0..chunk_len {
                let pred = match predictor {
                    Predictor::Lorenzo => last_recon,
                    Predictor::Regression { a, b } => a * i as f32 + b,
                };
                let code = codes[idx + i];
                let value = if code == Quantizer::UNPREDICTABLE {
                    let v = *unpredictable
                        .get(upos)
                        .ok_or(CodecError::Corrupt("missing unpredictable value"))?;
                    upos += 1;
                    v
                } else {
                    quantizer.dequantize(pred, code)
                };
                out.push(value);
                last_recon = value;
            }
            idx += chunk_len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_codec::stats::max_abs_error;

    fn check_bound(data: &[f32], eb: f32) {
        let codec = Sz2::new();
        let packed = codec.compress(data, ErrorBound::Absolute(f64::from(eb))).unwrap();
        let restored = codec.decompress(&packed).unwrap();
        assert_eq!(restored.len(), data.len());
        assert!(
            max_abs_error(data, &restored) <= eb * (1.0 + 1e-5),
            "bound violated: {} > {}",
            max_abs_error(data, &restored),
            eb
        );
    }

    #[test]
    fn smooth_data_tight_bounds() {
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        for eb in [1e-2f32, 1e-3, 1e-5] {
            check_bound(&data, eb);
        }
    }

    #[test]
    fn linear_data_prefers_regression() {
        // A perfect ramp: the regression predictor should make nearly all
        // residuals zero, giving an excellent ratio.
        let data: Vec<f32> = (0..8192).map(|i| 0.5 + i as f32 * 1e-4).collect();
        let codec = Sz2::new();
        let packed = codec.compress(&data, ErrorBound::Absolute(1e-5)).unwrap();
        let ratio = (data.len() * 4) as f64 / packed.len() as f64;
        assert!(ratio > 10.0, "ramp should compress >10x, got {ratio:.1}");
        check_bound(&data, 1e-5);
    }

    #[test]
    fn spiky_data_stays_bounded() {
        let data: Vec<f32> = (0..10_000)
            .map(|i| if i % 31 == 0 { 1.0 } else { ((i * i) as f32).sin() * 0.01 })
            .collect();
        for eb in [1e-1f32, 1e-3] {
            check_bound(&data, eb);
        }
    }

    #[test]
    fn relative_bound_uses_value_range() {
        let data: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.03).cos() * 5.0).collect();
        let codec = Sz2::new();
        let packed = codec.compress(&data, ErrorBound::Relative(1e-3)).unwrap();
        let restored = codec.decompress(&packed).unwrap();
        let range = 10.0f32; // cos * 5 spans [-5, 5]
        assert!(max_abs_error(&data, &restored) <= 1e-3 * range * 1.01);
    }

    #[test]
    fn unpredictable_heavy_input() {
        // Huge jumps relative to a tiny bound force the unpredictable path.
        let data: Vec<f32> = (0..1000).map(|i| if i % 2 == 0 { 1e6 } else { -1e6 }).collect();
        check_bound(&data, 1e-6);
    }

    #[test]
    fn single_element_and_block_boundaries() {
        check_bound(&[0.75], 1e-3);
        let data: Vec<f32> = (0..BLOCK * 2 + 1).map(|i| i as f32 * 0.1).collect();
        check_bound(&data, 1e-4);
    }

    #[test]
    fn truncation_detected() {
        let data: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
        let codec = Sz2::new();
        let packed = codec.compress(&data, ErrorBound::Absolute(1e-3)).unwrap();
        assert!(codec.decompress(&packed[..packed.len() / 2]).is_err());
    }

    #[test]
    fn wrong_kind_rejected() {
        let codec = Sz2::new();
        let mut stream = codec.compress(&[1.0, 2.0], ErrorBound::Absolute(1e-3)).unwrap();
        stream[0] = LossyKind::Sz3.id();
        assert!(codec.decompress(&stream).is_err());
    }

    #[test]
    fn fit_line_recovers_slope() {
        let values: Vec<f32> = (0..100).map(|i| 2.0 + 0.5 * i as f32).collect();
        let (a, b) = fit_line(&values);
        assert!((a - 0.5).abs() < 1e-4);
        assert!((b - 2.0).abs() < 1e-3);
    }
}
