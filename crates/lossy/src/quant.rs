//! 4/8-bit uniform quantization of flat `f32` vectors.
//!
//! The quantizer maps each value onto a `2^bits - 1`-level uniform
//! grid spanning the vector's `[min, max]` range. Two rounding rules:
//!
//! * **Linear** — round to the nearest level; the reconstruction error
//!   is at most half the grid step.
//! * **Stochastic** — round up with probability equal to the
//!   fractional position between the two neighboring levels, so the
//!   reconstruction is **unbiased in expectation** (QSGD-style). The
//!   dither is a pure function of an explicit `seed` and the element
//!   index, so a fixed seed reproduces the exact same codes on every
//!   run and both unbiasedness and determinism are testable.
//!
//! The stream is self-describing: length, bit width, rounding rule and
//! the `[min, max]` range travel with the codes, so decoding needs no
//! shared configuration.

use crate::LossyError;
use fedsz_codec::varint::{read_f32, read_uvarint, write_f32, write_uvarint};
use fedsz_codec::{CodecError, Result};

/// A 4- or 8-bit uniform quantizer.
///
/// # Examples
///
/// ```
/// use fedsz_lossy::quant::Quantizer;
///
/// let q = Quantizer::new(8, false).unwrap();
/// let values = [0.0f32, 0.25, 0.5, 1.0];
/// let stream = q.compress(&values, 0).unwrap();
/// let restored = Quantizer::decompress(&stream).unwrap();
/// let step = 1.0 / 255.0;
/// for (a, b) in values.iter().zip(&restored) {
///     assert!((a - b).abs() <= step / 2.0 + 1e-7);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    bits: u8,
    stochastic: bool,
}

/// Deterministic uniform dither in `[0, 1)` from `(seed, index)` —
/// splitmix64 finalization, the same mixer the FL engine uses for its
/// transit coins.
fn dither(seed: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as f64 / (u64::MAX as f64 + 1.0)
}

impl Quantizer {
    /// A quantizer at `bits` ∈ {4, 8}, linear or stochastic rounding.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError::InvalidParameter`] for any other bit width.
    pub fn new(bits: u8, stochastic: bool) -> std::result::Result<Self, LossyError> {
        if bits != 4 && bits != 8 {
            return Err(LossyError::InvalidParameter("quantizer width must be 4 or 8 bits"));
        }
        Ok(Self { bits, stochastic })
    }

    /// The configured bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Whether stochastic rounding is enabled.
    pub fn stochastic(&self) -> bool {
        self.stochastic
    }

    /// The number of grid intervals (`2^bits - 1`).
    fn levels(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Quantizes `values` into a self-describing stream. `seed` drives
    /// the stochastic dither and is ignored under linear rounding.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError::NonFiniteInput`] when any value is NaN or
    /// infinite.
    pub fn compress(&self, values: &[f32], seed: u64) -> std::result::Result<Vec<u8>, LossyError> {
        let (stream, _) = self.compress_with_applied(values, seed)?;
        Ok(stream)
    }

    /// Quantizes `values`, also returning the dequantized
    /// reconstruction the receiver will compute — the "applied" vector
    /// an error-feedback caller subtracts to form its residual.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError::NonFiniteInput`] when any value is NaN or
    /// infinite.
    pub fn compress_with_applied(
        &self,
        values: &[f32],
        seed: u64,
    ) -> std::result::Result<(Vec<u8>, Vec<f32>), LossyError> {
        if values.iter().any(|v| !v.is_finite()) {
            return Err(LossyError::NonFiniteInput);
        }
        let (min, max) = values
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let (min, max) = if values.is_empty() { (0.0, 0.0) } else { (min, max) };
        let levels = self.levels();
        let step = (f64::from(max) - f64::from(min)) / f64::from(levels);

        let mut out = Vec::with_capacity(12 + values.len() * usize::from(self.bits) / 8);
        write_uvarint(&mut out, values.len() as u64);
        out.push(self.bits);
        out.push(u8::from(self.stochastic));
        write_f32(&mut out, min);
        write_f32(&mut out, max);

        let mut codes = Vec::with_capacity(values.len());
        let mut applied = Vec::with_capacity(values.len());
        for (i, &v) in values.iter().enumerate() {
            let code = if step <= 0.0 {
                0u32 // constant vector: every value is `min` exactly
            } else {
                let pos = (f64::from(v) - f64::from(min)) / step;
                let code = if self.stochastic {
                    let floor = pos.floor();
                    let frac = pos - floor;
                    let up = f64::from(dither(seed, i as u64) < frac);
                    floor + up
                } else {
                    pos.round()
                };
                (code as u32).min(levels)
            };
            codes.push(code);
            applied.push(dequantize(min, step, code));
        }
        match self.bits {
            4 => {
                for pair in codes.chunks(2) {
                    let hi = pair.first().copied().unwrap_or(0) as u8;
                    let lo = pair.get(1).copied().unwrap_or(0) as u8;
                    out.push((hi << 4) | lo);
                }
            }
            _ => out.extend(codes.iter().map(|&c| c as u8)),
        }
        Ok((out, applied))
    }

    /// Reconstructs the dequantized vector from a stream.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for truncated or inconsistent streams.
    pub fn decompress(bytes: &[u8]) -> Result<Vec<f32>> {
        let mut pos = 0usize;
        let total = read_uvarint(bytes, &mut pos)? as usize;
        let bits = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        if bits != 4 && bits != 8 {
            return Err(CodecError::Corrupt("unsupported quantizer bit width"));
        }
        pos += 1; // the stochastic flag is informational for decode
        let min = read_f32(bytes, &mut pos)?;
        let max = read_f32(bytes, &mut pos)?;
        if !min.is_finite() || !max.is_finite() || min > max {
            return Err(CodecError::Corrupt("bad quantizer range"));
        }
        let levels = (1u32 << bits) - 1;
        let step = (f64::from(max) - f64::from(min)) / f64::from(levels);
        let body = &bytes[pos..];
        let expected = match bits {
            4 => total.div_ceil(2),
            _ => total,
        };
        if body.len() != expected {
            return Err(CodecError::Corrupt("quantizer code length mismatch"));
        }
        let mut values = Vec::with_capacity(total);
        match bits {
            4 => {
                for (i, &byte) in body.iter().enumerate() {
                    values.push(dequantize(min, step, u32::from(byte >> 4)));
                    if 2 * i + 1 < total {
                        values.push(dequantize(min, step, u32::from(byte & 0x0f)));
                    }
                }
            }
            _ => {
                for &code in body {
                    values.push(dequantize(min, step, u32::from(code)));
                }
            }
        }
        Ok(values)
    }
}

/// One grid point back in value space.
fn dequantize(min: f32, step: f64, code: u32) -> f32 {
    (f64::from(min) + step * f64::from(code)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_4_and_8_bit_widths_exist() {
        assert!(matches!(Quantizer::new(3, false), Err(LossyError::InvalidParameter(_))));
        assert!(matches!(Quantizer::new(16, true), Err(LossyError::InvalidParameter(_))));
        assert_eq!(Quantizer::new(8, false).unwrap().bits(), 8);
        assert!(Quantizer::new(4, true).unwrap().stochastic());
    }

    #[test]
    fn linear_error_stays_within_half_a_step() {
        let values: Vec<f32> = (0..257).map(|i| (i as f32).mul_add(0.013, -1.7)).collect();
        for bits in [4u8, 8] {
            let q = Quantizer::new(bits, false).unwrap();
            let (stream, applied) = q.compress_with_applied(&values, 0).unwrap();
            let restored = Quantizer::decompress(&stream).unwrap();
            assert_eq!(restored, applied, "decode must equal the reported reconstruction");
            let span = 256.0 * 0.013f64;
            let step = span / f64::from((1u32 << bits) - 1);
            for (a, b) in values.iter().zip(&restored) {
                let err = (f64::from(*a) - f64::from(*b)).abs();
                assert!(err <= step / 2.0 + 1e-6, "bits {bits}: err {err} > step/2 {step}");
            }
        }
    }

    #[test]
    fn stochastic_rounding_is_seed_deterministic() {
        let values: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin()).collect();
        let q = Quantizer::new(4, true).unwrap();
        assert_eq!(q.compress(&values, 42).unwrap(), q.compress(&values, 42).unwrap());
        assert_ne!(q.compress(&values, 42).unwrap(), q.compress(&values, 43).unwrap());
    }

    #[test]
    fn stochastic_rounding_is_unbiased_in_expectation() {
        // A value 30% of the way between two grid points must round up
        // ~30% of the time: the mean reconstruction over many seeds
        // converges to the value itself.
        let values = [0.0f32, 0.3, 0.52, 0.77, 1.0];
        let q = Quantizer::new(8, true).unwrap();
        let trials = 4000usize;
        let mut sums = vec![0.0f64; values.len()];
        for seed in 0..trials as u64 {
            let restored = Quantizer::decompress(&q.compress(&values, seed).unwrap()).unwrap();
            for (s, v) in sums.iter_mut().zip(&restored) {
                *s += f64::from(*v);
            }
        }
        let step = 1.0 / 255.0f64;
        for (sum, v) in sums.iter().zip(&values) {
            let mean = sum / trials as f64;
            let bias = (mean - f64::from(*v)).abs();
            // A fair coin over `trials` flips wanders ~step/sqrt(trials).
            assert!(bias < step * 0.15, "value {v}: bias {bias} vs step {step}");
        }
    }

    #[test]
    fn constant_and_empty_vectors_round_trip() {
        let q = Quantizer::new(4, false).unwrap();
        let constant = [2.5f32; 7];
        let restored = Quantizer::decompress(&q.compress(&constant, 0).unwrap()).unwrap();
        assert_eq!(restored, constant);
        assert!(Quantizer::decompress(&q.compress(&[], 0).unwrap()).unwrap().is_empty());
    }

    #[test]
    fn non_finite_input_is_reported() {
        let q = Quantizer::new(8, false).unwrap();
        assert_eq!(q.compress(&[f32::NAN], 0).unwrap_err(), LossyError::NonFiniteInput);
        assert_eq!(
            q.compress(&[1.0, f32::NEG_INFINITY], 0).unwrap_err(),
            LossyError::NonFiniteInput
        );
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        let q = Quantizer::new(8, false).unwrap();
        let stream = q.compress(&[1.0, 2.0, 3.0], 0).unwrap();
        assert!(Quantizer::decompress(&stream[..stream.len() - 1]).is_err());
        assert!(Quantizer::decompress(&[]).is_err());
        let mut bad_bits = stream.clone();
        bad_bits[1] = 5;
        assert!(Quantizer::decompress(&bad_bits).is_err());
    }

    #[test]
    fn four_bit_streams_halve_the_code_bytes() {
        let values: Vec<f32> = (0..1000).map(|i| i as f32 / 1000.0).collect();
        let s8 = Quantizer::new(8, false).unwrap().compress(&values, 0).unwrap();
        let s4 = Quantizer::new(4, false).unwrap().compress(&values, 0).unwrap();
        assert!(s8.len() > 1000 && s8.len() < 1020, "8-bit: {} bytes", s8.len());
        assert!(s4.len() > 500 && s4.len() < 520, "4-bit: {} bytes", s4.len());
    }
}
