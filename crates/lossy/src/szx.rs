//! SZx-class compressor: constant blocks + bit-plane truncation.
//!
//! Follows the SZx design (Yu et al., HPDC 2022): data is cut into
//! fixed-size blocks; a block whose value spread fits inside the error
//! bound is stored as a single mean ("constant block"), everything else
//! keeps sign/exponent and only as many mantissa bits as the bound
//! requires. There is no prediction and no entropy stage — just bitwise
//! operations — which makes this by far the fastest EBLC here and the
//! weakest at ratio/fidelity, matching its corner of the paper's Table I.

use crate::{resolve_bound, ErrorBound, ErrorBounded, LossyError, LossyKind};
use fedsz_codec::bitio::{BitReader, BitWriter};
use fedsz_codec::varint::{read_f64, read_uvarint, write_f64, write_uvarint};
use fedsz_codec::{CodecError, Result};

/// Stream format version.
const VERSION: u8 = 1;
/// Elements per block.
const BLOCK: usize = 128;

/// SZx-class error-bounded compressor.
///
/// # Examples
///
/// ```
/// use fedsz_lossy::{ErrorBound, ErrorBounded, Szx};
///
/// let data = vec![0.5f32; 1000];
/// let codec = Szx::new();
/// let packed = codec.compress(&data, ErrorBound::Absolute(1e-3)).unwrap();
/// assert!(packed.len() < 100); // constant blocks collapse to a mean each
/// let restored = codec.decompress(&packed).unwrap();
/// assert!(restored.iter().all(|v| (v - 0.5).abs() <= 1e-3));
/// ```
#[derive(Debug, Clone)]
pub struct Szx {
    block: usize,
}

impl Szx {
    /// Creates the codec with the default block size (128).
    pub fn new() -> Self {
        Self { block: BLOCK }
    }

    /// Creates the codec with a custom block size.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn with_block_size(block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        Self { block }
    }
}

impl Default for Szx {
    fn default() -> Self {
        Self::new()
    }
}

/// frexp-style exponent: the unique `e` with `2^(e-1) <= |v| < 2^e`
/// for normal values; a floor of -125 for zeros/subnormals.
#[inline]
fn exponent_of(v: f32) -> i32 {
    let bits = v.to_bits();
    let raw = ((bits >> 23) & 0xff) as i32;
    if raw == 0 {
        -125
    } else {
        raw - 126
    }
}

impl ErrorBounded for Szx {
    fn kind(&self) -> LossyKind {
        LossyKind::Szx
    }

    fn compress(
        &self,
        data: &[f32],
        bound: ErrorBound,
    ) -> std::result::Result<Vec<u8>, LossyError> {
        let eb = resolve_bound(data, bound)?;
        let eb = eb.max(f64::from(f32::MIN_POSITIVE));

        let mut out = Vec::with_capacity(data.len() * 2 + 32);
        out.push(self.kind().id());
        out.push(VERSION);
        write_uvarint(&mut out, data.len() as u64);
        write_f64(&mut out, eb);
        write_uvarint(&mut out, self.block as u64);
        if data.is_empty() {
            return Ok(out);
        }

        // Exponent of the bound: 2^eb_exp <= eb.
        let eb_exp = eb.log2().floor() as i32;
        let mut w = BitWriter::with_capacity(data.len() * 2);
        for chunk in data.chunks(self.block) {
            let mut min = f32::INFINITY;
            let mut max = f32::NEG_INFINITY;
            for &v in chunk {
                min = min.min(v);
                max = max.max(v);
            }
            let mid = (f64::from(min) / 2.0 + f64::from(max) / 2.0) as f32;
            // Check against the f32 the decoder will actually see, so
            // rounding of the midpoint cannot break the bound.
            if f64::from(max) - f64::from(mid) <= eb && f64::from(mid) - f64::from(min) <= eb {
                // Constant block: one bit + one float.
                w.write_bit(true);
                w.write_bits(u64::from(mid.to_bits()), 32);
                continue;
            }
            w.write_bit(false);
            // Shared truncation width: enough mantissa bits that the
            // largest-magnitude value in the block stays within bound.
            let max_exp = chunk.iter().map(|&v| exponent_of(v)).max().expect("nonempty block");
            let m = (max_exp - eb_exp).clamp(0, 23) as u32;
            w.write_bits(u64::from(m), 5);
            for &v in chunk {
                let bits = v.to_bits();
                // sign (1) + exponent (8) + top m mantissa bits.
                w.write_bits(u64::from(bits >> 31), 1);
                w.write_bits(u64::from((bits >> 23) & 0xff), 8);
                if m > 0 {
                    w.write_bits(u64::from((bits >> (23 - m)) & ((1u32 << m) - 1)), m);
                }
            }
        }
        let payload = w.into_bytes();
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>> {
        let mut pos = 0usize;
        let id = *bytes.first().ok_or(CodecError::UnexpectedEof)?;
        if id != self.kind().id() {
            return Err(CodecError::Corrupt("not an SZx stream"));
        }
        pos += 1;
        let version = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        pos += 1;
        let n = read_uvarint(bytes, &mut pos)? as usize;
        let _eb = read_f64(bytes, &mut pos)?;
        let block = read_uvarint(bytes, &mut pos)? as usize;
        if n == 0 {
            return Ok(Vec::new());
        }
        if block == 0 {
            return Err(CodecError::Corrupt("invalid block size in header"));
        }
        let mut r = BitReader::new(&bytes[pos..]);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let chunk_len = block.min(n - out.len());
            if r.read_bit()? {
                let mid = f32::from_bits(r.read_bits(32)? as u32);
                out.extend(std::iter::repeat_n(mid, chunk_len));
                continue;
            }
            let m = r.read_bits(5)? as u32;
            if m > 23 {
                return Err(CodecError::Corrupt("mantissa width out of range"));
            }
            for _ in 0..chunk_len {
                let sign = r.read_bits(1)? as u32;
                let exp = r.read_bits(8)? as u32;
                let mut mant = if m > 0 { (r.read_bits(m)? as u32) << (23 - m) } else { 0 };
                // Midpoint rounding of the dropped tail halves the error.
                if m < 23 {
                    mant |= 1 << (22 - m);
                }
                out.push(f32::from_bits((sign << 31) | (exp << 23) | mant));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_codec::stats::max_abs_error;

    fn check_bound(data: &[f32], eb: f32) {
        let codec = Szx::new();
        let packed = codec.compress(data, ErrorBound::Absolute(f64::from(eb))).unwrap();
        let restored = codec.decompress(&packed).unwrap();
        assert_eq!(restored.len(), data.len());
        assert!(
            max_abs_error(data, &restored) <= eb * (1.0 + 1e-5),
            "bound violated: {} > {}",
            max_abs_error(data, &restored),
            eb
        );
    }

    #[test]
    fn exponent_helper_matches_definition() {
        for v in [1.0f32, 1.5, 2.0, 0.75, 1e-3, 3e7] {
            let e = exponent_of(v);
            assert!(
                2f64.powi(e - 1) <= f64::from(v) && f64::from(v) < 2f64.powi(e),
                "v = {v}, e = {e}"
            );
        }
        assert_eq!(exponent_of(0.0), -125);
    }

    #[test]
    fn constant_blocks_collapse() {
        let data = vec![1.25f32; 10_000];
        let codec = Szx::new();
        let packed = codec.compress(&data, ErrorBound::Absolute(1e-4)).unwrap();
        // ~33 bits per 128-value block plus header.
        assert!(packed.len() < 400, "constant data should collapse, got {}", packed.len());
        check_bound(&data, 1e-4);
    }

    #[test]
    fn truncation_respects_bound() {
        let data: Vec<f32> = (0..5000).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        for eb in [1e-1f32, 1e-2, 1e-4, 1e-6] {
            check_bound(&data, eb);
        }
    }

    #[test]
    fn mixed_magnitudes_in_one_block() {
        let mut data = vec![1e-6f32; 64];
        data.extend_from_slice(&vec![100.0f32; 64]);
        check_bound(&data, 1e-3);
    }

    #[test]
    fn negative_values_bounded() {
        let data: Vec<f32> = (0..1000).map(|i| -0.5 + (i as f32) * 1e-4).collect();
        check_bound(&data, 1e-5);
    }

    #[test]
    fn zeros_and_subnormals() {
        let data = vec![0.0f32, f32::MIN_POSITIVE, -0.0, 1.0e-40, 0.5];
        check_bound(&data, 1e-3);
    }

    #[test]
    fn partial_final_block() {
        let data: Vec<f32> = (0..BLOCK + 7).map(|i| i as f32 * 0.01).collect();
        check_bound(&data, 1e-3);
    }

    #[test]
    fn truncated_stream_errors() {
        let data: Vec<f32> = (0..500).map(|i| (i as f32).cos()).collect();
        let codec = Szx::new();
        let packed = codec.compress(&data, ErrorBound::Absolute(1e-5)).unwrap();
        assert!(codec.decompress(&packed[..packed.len() / 2]).is_err());
    }
}
