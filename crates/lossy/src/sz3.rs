//! SZ3-class compressor: multi-level interpolation prediction.
//!
//! Follows the SZ3 design (Liang et al., IEEE TBD 2023; Zhao et al.,
//! ICDE 2021) for 1D data: values are visited level by level — position 0
//! first, then the odd multiples of each stride from coarse to fine — and
//! each value is predicted by cubic (or linear, at boundaries) spline
//! interpolation of already-reconstructed neighbours. Residuals go
//! through the same quantizer/Huffman/lossless pipeline as SZ2, but no
//! per-block coefficients are stored, which is exactly why the paper
//! observes SZ3 edging out SZ2's ratio at high error bounds while running
//! slower (the predictor is costlier).

use crate::{resolve_bound, ErrorBound, ErrorBounded, LossyError, LossyKind};
use fedsz_codec::huffman;
use fedsz_codec::quantizer::{Quantized, Quantizer};
use fedsz_codec::varint::{read_f32, read_f64, read_uvarint, write_f32, write_f64, write_uvarint};
use fedsz_codec::{CodecError, Result};
use fedsz_lossless::{Lossless, ZstdLike};

/// Stream format version.
const VERSION: u8 = 1;

/// SZ3-class error-bounded compressor.
///
/// # Examples
///
/// ```
/// use fedsz_lossy::{ErrorBound, ErrorBounded, Sz3};
///
/// let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.02).cos()).collect();
/// let codec = Sz3::new();
/// let packed = codec.compress(&data, ErrorBound::Absolute(1e-3)).unwrap();
/// let restored = codec.decompress(&packed).unwrap();
/// assert!(data.iter().zip(&restored).all(|(a, b)| (a - b).abs() <= 1e-3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sz3 {
    _private: (),
}

impl Sz3 {
    /// Creates the codec.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The level-order traversal shared by encoder and decoder: position 0,
/// then odd multiples of each power-of-two stride, coarse to fine.
fn traversal(n: usize) -> Vec<(usize, usize)> {
    // Returns (position, stride) pairs; stride 0 marks the seed point.
    let mut order = Vec::with_capacity(n);
    if n == 0 {
        return order;
    }
    order.push((0, 0));
    if n == 1 {
        return order;
    }
    let max_level = usize::BITS - 1 - (n - 1).leading_zeros();
    let mut stride = 1usize << max_level;
    while stride >= 1 {
        let mut p = stride;
        while p < n {
            order.push((p, stride));
            p += 2 * stride;
        }
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    order
}

/// Interpolation prediction from already-reconstructed neighbours.
#[inline]
fn predict(recon: &[f32], p: usize, stride: usize, n: usize) -> f32 {
    if stride == 0 {
        return 0.0;
    }
    let s = stride;
    let has_right = p + s < n;
    if has_right {
        let left3 = p >= 3 * s;
        let right3 = p + 3 * s < n;
        if left3 && right3 {
            // Cubic spline through the four stride-2s neighbours.
            let a = f64::from(recon[p - 3 * s]);
            let b = f64::from(recon[p - s]);
            let c = f64::from(recon[p + s]);
            let d = f64::from(recon[p + 3 * s]);
            ((-a + 9.0 * b + 9.0 * c - d) / 16.0) as f32
        } else {
            ((f64::from(recon[p - s]) + f64::from(recon[p + s])) / 2.0) as f32
        }
    } else {
        recon[p - s]
    }
}

impl ErrorBounded for Sz3 {
    fn kind(&self) -> LossyKind {
        LossyKind::Sz3
    }

    fn compress(
        &self,
        data: &[f32],
        bound: ErrorBound,
    ) -> std::result::Result<Vec<u8>, LossyError> {
        let eb = resolve_bound(data, bound)? as f32;
        let eb = if eb > 0.0 { eb } else { f32::MIN_POSITIVE };

        let mut out = Vec::with_capacity(data.len() + 32);
        out.push(self.kind().id());
        out.push(VERSION);
        write_uvarint(&mut out, data.len() as u64);
        write_f64(&mut out, f64::from(eb));
        if data.is_empty() {
            return Ok(out);
        }

        let n = data.len();
        let quantizer = Quantizer::new(eb);
        // Codes are emitted in traversal order; recon is indexed by
        // position so later levels can interpolate earlier ones.
        let mut codes: Vec<u16> = Vec::with_capacity(n);
        let mut unpredictable: Vec<f32> = Vec::new();
        let mut recon = vec![0.0f32; n];
        for (p, stride) in traversal(n) {
            let pred = predict(&recon, p, stride, n);
            match quantizer.quantize(pred, data[p]) {
                Quantized::Code { code, reconstructed } => {
                    codes.push(code);
                    recon[p] = reconstructed;
                }
                Quantized::Unpredictable(raw) => {
                    codes.push(Quantizer::UNPREDICTABLE);
                    unpredictable.push(raw);
                    recon[p] = raw;
                }
            }
        }

        let mut inner = Vec::new();
        inner.extend_from_slice(&huffman::encode_block(&codes));
        write_uvarint(&mut inner, unpredictable.len() as u64);
        for &v in &unpredictable {
            write_f32(&mut inner, v);
        }
        let packed = ZstdLike::new().compress(&inner);
        write_uvarint(&mut out, packed.len() as u64);
        out.extend_from_slice(&packed);
        Ok(out)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>> {
        let mut pos = 0usize;
        let id = *bytes.first().ok_or(CodecError::UnexpectedEof)?;
        if id != self.kind().id() {
            return Err(CodecError::Corrupt("not an SZ3 stream"));
        }
        pos += 1;
        let version = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        pos += 1;
        let n = read_uvarint(bytes, &mut pos)? as usize;
        let eb = read_f64(bytes, &mut pos)? as f32;
        if n == 0 {
            return Ok(Vec::new());
        }
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CodecError::Corrupt("invalid error bound in header"));
        }
        let packed_len = read_uvarint(bytes, &mut pos)? as usize;
        let packed = bytes.get(pos..pos + packed_len).ok_or(CodecError::UnexpectedEof)?;
        let inner = ZstdLike::new().decompress(packed)?;

        let mut ipos = 0usize;
        let codes = huffman::decode_block(&inner, &mut ipos)?;
        if codes.len() != n {
            return Err(CodecError::Corrupt("code count mismatch"));
        }
        let n_unpred = read_uvarint(&inner, &mut ipos)? as usize;
        let mut unpredictable = Vec::with_capacity(n_unpred);
        for _ in 0..n_unpred {
            unpredictable.push(read_f32(&inner, &mut ipos)?);
        }

        let quantizer = Quantizer::new(eb);
        let mut recon = vec![0.0f32; n];
        let mut upos = 0usize;
        for (k, (p, stride)) in traversal(n).into_iter().enumerate() {
            let pred = predict(&recon, p, stride, n);
            let code = codes[k];
            recon[p] = if code == Quantizer::UNPREDICTABLE {
                let v = *unpredictable
                    .get(upos)
                    .ok_or(CodecError::Corrupt("missing unpredictable value"))?;
                upos += 1;
                v
            } else {
                quantizer.dequantize(pred, code)
            };
        }
        Ok(recon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_codec::stats::max_abs_error;

    fn check_bound(data: &[f32], eb: f32) {
        let codec = Sz3::new();
        let packed = codec.compress(data, ErrorBound::Absolute(f64::from(eb))).unwrap();
        let restored = codec.decompress(&packed).unwrap();
        assert_eq!(restored.len(), data.len());
        assert!(
            max_abs_error(data, &restored) <= eb * (1.0 + 1e-5),
            "bound violated: {} > {}",
            max_abs_error(data, &restored),
            eb
        );
    }

    #[test]
    fn traversal_visits_every_position_once() {
        for n in [1usize, 2, 3, 5, 16, 17, 100, 1023, 1024, 1025] {
            let order = traversal(n);
            assert_eq!(order.len(), n, "n = {n}");
            let mut seen = vec![false; n];
            for (p, _) in order {
                assert!(!seen[p], "position {p} visited twice for n = {n}");
                seen[p] = true;
            }
            assert!(seen.into_iter().all(|s| s));
        }
    }

    #[test]
    fn traversal_coarse_before_fine() {
        // Each position's neighbours at double stride must come earlier.
        let n = 257;
        let order = traversal(n);
        let mut rank = vec![usize::MAX; n];
        for (i, (p, _)) in order.iter().enumerate() {
            rank[*p] = i;
        }
        for &(p, stride) in &order {
            if stride >= 1 && p >= stride {
                assert!(rank[p - stride] < rank[p]);
                if p + stride < n {
                    assert!(rank[p + stride] < rank[p]);
                }
            }
        }
    }

    #[test]
    fn smooth_data_beats_sz2_style_ratio() {
        // Smooth signal: interpolation should be a very strong predictor.
        let data: Vec<f32> = (0..16_384).map(|i| (i as f32 * 0.003).sin()).collect();
        let codec = Sz3::new();
        let packed = codec.compress(&data, ErrorBound::Absolute(1e-3)).unwrap();
        let ratio = (data.len() * 4) as f64 / packed.len() as f64;
        assert!(ratio > 8.0, "smooth data should compress >8x, got {ratio:.1}");
        check_bound(&data, 1e-3);
    }

    #[test]
    fn bounds_hold_across_magnitudes() {
        let data: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.11).sin() * 100.0).collect();
        for eb in [1.0f32, 1e-2, 1e-4] {
            check_bound(&data, eb);
        }
    }

    #[test]
    fn spiky_weights_bounded() {
        let data: Vec<f32> = (0..10_000)
            .map(|i| if i % 53 == 0 { -0.8 } else { ((i * 7) as f32).sin() * 0.03 })
            .collect();
        check_bound(&data, 1e-4);
    }

    #[test]
    fn non_power_of_two_lengths() {
        for n in [2usize, 3, 7, 1000, 1025] {
            let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
            check_bound(&data, 1e-3);
        }
    }

    #[test]
    fn corrupt_stream_errors() {
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let codec = Sz3::new();
        let mut packed = codec.compress(&data, ErrorBound::Absolute(1e-2)).unwrap();
        packed.truncate(packed.len() / 3);
        assert!(codec.decompress(&packed).is_err());
    }
}
