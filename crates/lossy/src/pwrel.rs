//! Pointwise-relative error bounding via logarithmic transform.
//!
//! The paper uses SZ's *value-range* relative mode (`|x − x'| ≤
//! eb·(max−min)`); real SZ also offers a pointwise-relative mode
//! (`|x − x'| ≤ eb·|x|`) implemented by the classic log-transform trick,
//! which this module provides on top of *any* [`ErrorBounded`] codec:
//!
//! 1. split out signs and (near-)zeros,
//! 2. compress `ln|x|` with the absolute bound `ln(1 + eb)`,
//! 3. reconstruct `x' = sign · exp(y')`, so
//!    `|x' − x| = |x|·|exp(y'−y) − 1| ≤ |x|·eb`.
//!
//! Pointwise bounds matter for FL weights precisely because their
//! magnitudes span decades (Fig 3): a value-range bound can be larger
//! than most of the weights it protects.

use crate::{ErrorBound, ErrorBounded, LossyError};
use fedsz_codec::bitio::{BitReader, BitWriter};
use fedsz_codec::varint::{read_f64, read_uvarint, write_f64, write_uvarint};
use fedsz_codec::{CodecError, Result};

/// Stream magic for the pointwise-relative container.
const MAGIC: u8 = 0x50; // 'P'

/// Magnitudes below this are stored as exact zeros (their pointwise
/// bound would demand sub-denormal precision anyway).
const ZERO_CUTOFF: f32 = 1e-30;

/// Compresses `data` such that every element satisfies
/// `|x - x'| <= pwrel * |x|`.
///
/// # Errors
///
/// Returns [`LossyError::NonFiniteInput`] for NaN/infinite input and
/// [`LossyError::InvalidBound`] when `pwrel` is not in `(0, 1)`.
pub fn compress(
    codec: &dyn ErrorBounded,
    data: &[f32],
    pwrel: f64,
) -> std::result::Result<Vec<u8>, LossyError> {
    if !(pwrel.is_finite() && pwrel > 0.0 && pwrel < 1.0) {
        return Err(LossyError::InvalidBound(ErrorBound::Relative(pwrel)));
    }
    if data.iter().any(|v| !v.is_finite()) {
        return Err(LossyError::NonFiniteInput);
    }
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.push(MAGIC);
    out.push(codec.kind().id());
    write_uvarint(&mut out, data.len() as u64);
    write_f64(&mut out, pwrel);

    // Bitmaps: per element, "is zero"; for nonzero, "is negative".
    let mut flags = BitWriter::with_capacity(data.len() / 4);
    let mut logs = Vec::new();
    for &v in data {
        let zero = v.abs() < ZERO_CUTOFF;
        flags.write_bit(zero);
        if !zero {
            flags.write_bit(v < 0.0);
            logs.push(v.abs().ln());
        }
    }
    let flag_bytes = flags.into_bytes();
    write_uvarint(&mut out, flag_bytes.len() as u64);
    out.extend_from_slice(&flag_bytes);

    // ln(1 + eb) bounds the log-domain absolute error from both sides:
    // exp(+d) - 1 <= eb and 1 - exp(-d) < eb for d = ln(1 + eb). The
    // 0.5% haircut leaves room for the f32 ln/exp round trips.
    let log_bound = (pwrel * 0.995).ln_1p();
    let inner = codec.compress(&logs, ErrorBound::Absolute(log_bound))?;
    write_uvarint(&mut out, inner.len() as u64);
    out.extend_from_slice(&inner);
    Ok(out)
}

/// Reverses [`compress`].
///
/// # Errors
///
/// Returns a [`CodecError`] for truncated or corrupt streams, including
/// streams produced with a different inner codec than `codec`.
pub fn decompress(codec: &dyn ErrorBounded, bytes: &[u8]) -> Result<Vec<f32>> {
    let mut pos = 0usize;
    if *bytes.first().ok_or(CodecError::UnexpectedEof)? != MAGIC {
        return Err(CodecError::Corrupt("not a pointwise-relative stream"));
    }
    pos += 1;
    let inner_kind = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
    if inner_kind != codec.kind().id() {
        return Err(CodecError::Corrupt("inner codec mismatch"));
    }
    pos += 1;
    let n = read_uvarint(bytes, &mut pos)? as usize;
    let _pwrel = read_f64(bytes, &mut pos)?;
    let flag_len = read_uvarint(bytes, &mut pos)? as usize;
    let flag_bytes = bytes.get(pos..pos + flag_len).ok_or(CodecError::UnexpectedEof)?;
    pos += flag_len;
    let inner_len = read_uvarint(bytes, &mut pos)? as usize;
    let inner = bytes.get(pos..pos + inner_len).ok_or(CodecError::UnexpectedEof)?;
    let logs = codec.decompress(inner)?;

    let mut flags = BitReader::new(flag_bytes);
    let mut out = Vec::with_capacity(n);
    let mut li = 0usize;
    for _ in 0..n {
        if flags.read_bit()? {
            out.push(0.0);
        } else {
            let negative = flags.read_bit()?;
            let mag = logs
                .get(li)
                .copied()
                .ok_or(CodecError::Corrupt("log stream shorter than flags"))?
                .exp();
            li += 1;
            out.push(if negative { -mag } else { mag });
        }
    }
    if li != logs.len() {
        return Err(CodecError::Corrupt("log stream longer than flags"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LossyKind;

    fn multi_scale_data() -> Vec<f32> {
        (0..8000)
            .map(|i| {
                let mag = 10f32.powi((i % 7) - 4); // 1e-4 .. 1e2
                let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
                sign * mag * (1.0 + 0.3 * ((i as f32) * 0.11).sin())
            })
            .collect()
    }

    #[test]
    fn pointwise_bound_holds_across_magnitudes() {
        let data = multi_scale_data();
        for kind in [LossyKind::Sz2, LossyKind::Sz3, LossyKind::Szx] {
            let codec = kind.codec();
            for pwrel in [1e-2f64, 1e-3] {
                let packed = compress(codec.as_ref(), &data, pwrel).unwrap();
                let restored = decompress(codec.as_ref(), &packed).unwrap();
                assert_eq!(restored.len(), data.len());
                for (&x, &x2) in data.iter().zip(&restored) {
                    let tol = pwrel * f64::from(x.abs()) * (1.0 + 1e-5) + 1e-30;
                    assert!(f64::from((x - x2).abs()) <= tol, "{kind} pwrel {pwrel}: {x} -> {x2}");
                }
            }
        }
    }

    #[test]
    fn value_range_mode_fails_where_pointwise_succeeds() {
        // The motivating case: tiny values next to huge ones. REL 1e-2
        // of the range destroys the tiny values' relative precision;
        // pointwise keeps every element within 1% of itself.
        let data: Vec<f32> = (0..2000)
            .map(|i| if i % 100 == 0 { 1000.0 } else { 1e-4 * (1.0 + (i as f32) * 1e-5) })
            .collect();
        let codec = LossyKind::Sz2.codec();
        let vr = codec.compress(&data, ErrorBound::Relative(1e-2)).unwrap();
        let vr_restored = codec.decompress(&vr).unwrap();
        let worst_rel = data
            .iter()
            .zip(&vr_restored)
            .filter(|(&x, _)| x.abs() > 0.0 && x.abs() < 1.0)
            .map(|(&x, &x2)| f64::from((x - x2).abs()) / f64::from(x.abs()))
            .fold(0.0f64, f64::max);
        assert!(worst_rel > 1.0, "range mode should wreck small values: {worst_rel}");

        let pw = compress(codec.as_ref(), &data, 1e-2).unwrap();
        let pw_restored = decompress(codec.as_ref(), &pw).unwrap();
        for (&x, &x2) in data.iter().zip(&pw_restored) {
            assert!(f64::from((x - x2).abs()) <= 1e-2 * f64::from(x.abs()) * 1.00001 + 1e-30);
        }
    }

    #[test]
    fn zeros_and_signs_are_exact() {
        let data = vec![0.0f32, -1.5, 0.0, 2.5, -0.25, 0.0];
        let codec = LossyKind::Szx.codec();
        let packed = compress(codec.as_ref(), &data, 1e-3).unwrap();
        let restored = decompress(codec.as_ref(), &packed).unwrap();
        assert_eq!(restored[0], 0.0);
        assert_eq!(restored[2], 0.0);
        assert_eq!(restored[5], 0.0);
        assert!(restored[1] < 0.0 && restored[4] < 0.0);
        assert!(restored[3] > 0.0);
    }

    #[test]
    fn invalid_bounds_and_inputs_rejected() {
        let codec = LossyKind::Sz2.codec();
        assert!(compress(codec.as_ref(), &[1.0], 0.0).is_err());
        assert!(compress(codec.as_ref(), &[1.0], 1.5).is_err());
        assert!(compress(codec.as_ref(), &[f32::NAN], 1e-2).is_err());
    }

    #[test]
    fn codec_mismatch_detected() {
        let data = vec![1.0f32, 2.0, 3.0];
        let sz2 = LossyKind::Sz2.codec();
        let szx = LossyKind::Szx.codec();
        let packed = compress(sz2.as_ref(), &data, 1e-2).unwrap();
        assert!(decompress(szx.as_ref(), &packed).is_err());
    }

    #[test]
    fn truncation_errors() {
        let data = multi_scale_data();
        let codec = LossyKind::Sz2.codec();
        let packed = compress(codec.as_ref(), &data, 1e-2).unwrap();
        assert!(decompress(codec.as_ref(), &packed[..packed.len() / 2]).is_err());
        assert!(decompress(codec.as_ref(), &[]).is_err());
    }

    #[test]
    fn empty_input_round_trips() {
        let codec = LossyKind::Sz2.codec();
        let packed = compress(codec.as_ref(), &[], 1e-2).unwrap();
        assert!(decompress(codec.as_ref(), &packed).unwrap().is_empty());
    }
}
