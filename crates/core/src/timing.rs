//! The paper's Eqn 1: when is compression worth it?
//!
//! `0 < t_C + t_D + S'/B_N < S/B_N` — compressing pays off iff the
//! compression and decompression runtimes plus the compressed transfer
//! time stay below the uncompressed transfer time. These helpers drive
//! the Figure 7/8 benches and the bandwidth-planner example.

/// Measured cost profile of compressing one update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferPlan {
    /// Compression runtime in seconds (`t_C`).
    pub compress_secs: f64,
    /// Decompression runtime in seconds (`t_D`).
    pub decompress_secs: f64,
    /// Uncompressed payload size in bytes (`S`).
    pub original_bytes: usize,
    /// Compressed payload size in bytes (`S'`).
    pub compressed_bytes: usize,
}

impl TransferPlan {
    /// Compression ratio `S / S'`.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 0.0;
        }
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    /// Seconds to send the *uncompressed* update over `bandwidth_bps`
    /// (bits per second).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not positive.
    pub fn uncompressed_time(&self, bandwidth_bps: f64) -> f64 {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        self.original_bytes as f64 * 8.0 / bandwidth_bps
    }

    /// Total compressed-path time: `t_C + t_D + S' * 8 / B_N`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not positive.
    pub fn compressed_time(&self, bandwidth_bps: f64) -> f64 {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        self.compress_secs
            + self.decompress_secs
            + self.compressed_bytes as f64 * 8.0 / bandwidth_bps
    }

    /// Eqn 1's decision: true iff compressing is faster end to end.
    pub fn worthwhile(&self, bandwidth_bps: f64) -> bool {
        self.compressed_time(bandwidth_bps) < self.uncompressed_time(bandwidth_bps)
    }

    /// The bandwidth (bits/s) at which compressed and uncompressed paths
    /// take equal time; compression wins below this, loses above. Returns
    /// `f64::INFINITY` when compression is free or always wins.
    pub fn breakeven_bandwidth(&self) -> f64 {
        let saved_bits = (self.original_bytes.saturating_sub(self.compressed_bytes)) as f64 * 8.0;
        let overhead = self.compress_secs + self.decompress_secs;
        if overhead <= 0.0 {
            return f64::INFINITY;
        }
        saved_bits / overhead
    }

    /// Wall-clock speedup of the compressed path at `bandwidth_bps`.
    pub fn speedup(&self, bandwidth_bps: f64) -> f64 {
        self.uncompressed_time(bandwidth_bps) / self.compressed_time(bandwidth_bps)
    }
}

/// Exponentially-weighted moving profile of a codec's measured
/// per-byte costs, feeding Eqn-1 decisions when the *next* payload's
/// costs must be predicted before paying them.
///
/// One definition for every adaptive stage in the FL pipeline — the
/// per-client upload decision, the broadcast downlink stage and the
/// partial-sum forwarding stage all fold their measurements into this
/// type and price candidate transfers through [`CostProfile::plan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Seconds of compression time per input byte.
    pub compress_secs_per_byte: f64,
    /// Seconds of decompression time per input byte.
    pub decompress_secs_per_byte: f64,
    /// Observed compression ratio (original over compressed size).
    pub ratio: f64,
}

impl CostProfile {
    /// Folds a fresh measurement into an optional previous profile with
    /// a 50/50 exponential blend (`None` adopts the sample outright).
    pub fn blend(prev: Option<CostProfile>, sample: CostProfile) -> CostProfile {
        match prev {
            None => sample,
            Some(prev) => CostProfile {
                compress_secs_per_byte: 0.5 * prev.compress_secs_per_byte
                    + 0.5 * sample.compress_secs_per_byte,
                decompress_secs_per_byte: 0.5 * prev.decompress_secs_per_byte
                    + 0.5 * sample.decompress_secs_per_byte,
                ratio: 0.5 * prev.ratio + 0.5 * sample.ratio,
            },
        }
    }

    /// Predicts a [`TransferPlan`] for a payload of `raw_bytes` from
    /// the profiled per-byte costs. Callers scale the estimate for
    /// their own setting (a straggler multiplies `compress_secs` by its
    /// slowdown; a broadcast divides it by the fan-out it amortizes
    /// over).
    pub fn plan(&self, raw_bytes: usize) -> TransferPlan {
        TransferPlan {
            compress_secs: self.compress_secs_per_byte * raw_bytes as f64,
            decompress_secs: self.decompress_secs_per_byte * raw_bytes as f64,
            original_bytes: raw_bytes,
            compressed_bytes: ((raw_bytes as f64 / self.ratio.max(f64::MIN_POSITIVE)) as usize)
                .max(1),
        }
    }
}

/// Which compression leg of the pipeline an Eqn-1 decision priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eqn1Leg {
    /// A client's update upload (one decision per cohort client).
    Uplink,
    /// The broadcast of the global model (one decision per round).
    Downlink,
    /// A partial-sum frame inside the aggregation tree (one decision
    /// per priced edge).
    Psum,
}

impl Eqn1Leg {
    /// Stable lowercase name used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            Eqn1Leg::Uplink => "uplink",
            Eqn1Leg::Downlink => "downlink",
            Eqn1Leg::Psum => "psum",
        }
    }
}

/// One auditable Eqn-1 decision: what a compression stage chose and
/// what it predicted both paths would cost when it chose.
///
/// Every leg records a decision even when its policy is trivial
/// (forced raw or forced compressed): the predicted costs are `None`
/// then, because no [`TransferPlan`] was priced. When a
/// [`CostProfile`] *did* predict, both sides of the inequality are
/// kept so the advisor's call can be checked against the measured
/// codec time after the fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eqn1Decision {
    /// The pipeline leg that decided.
    pub leg: Eqn1Leg,
    /// The deciding node: client id on the uplink, tree node index on
    /// the psum leg, `0` for the round-global downlink.
    pub node: u64,
    /// The verdict: `true` means the payload shipped compressed.
    pub compressed: bool,
    /// Predicted end-to-end seconds for the compressed path
    /// (`t_C + t_D + S'·8/B_N`), when a plan was priced.
    pub predicted_compressed_secs: Option<f64>,
    /// Predicted seconds for the raw path (`S·8/B_N`), when a plan was
    /// priced.
    pub predicted_raw_secs: Option<f64>,
    /// Measured codec seconds actually paid for this payload (encode
    /// side; zero when it shipped raw).
    pub measured_codec_secs: f64,
}

impl Eqn1Decision {
    /// A decision from a policy that never priced a plan (forced raw
    /// or forced compressed): predictions are absent.
    pub fn unpriced(leg: Eqn1Leg, node: u64, compressed: bool, measured_codec_secs: f64) -> Self {
        Eqn1Decision {
            leg,
            node,
            compressed,
            predicted_compressed_secs: None,
            predicted_raw_secs: None,
            measured_codec_secs,
        }
    }

    /// A decision priced through a [`TransferPlan`] at
    /// `bandwidth_bps`: both predicted path times are recorded.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not positive (same contract as
    /// [`TransferPlan::compressed_time`]).
    pub fn priced(
        leg: Eqn1Leg,
        node: u64,
        plan: &TransferPlan,
        bandwidth_bps: f64,
        compressed: bool,
        measured_codec_secs: f64,
    ) -> Self {
        Eqn1Decision {
            leg,
            node,
            compressed,
            predicted_compressed_secs: Some(plan.compressed_time(bandwidth_bps)),
            predicted_raw_secs: Some(plan.uncompressed_time(bandwidth_bps)),
            measured_codec_secs,
        }
    }
}

/// Convenience: megabits per second to bits per second.
pub fn mbps(v: f64) -> f64 {
    v * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> TransferPlan {
        TransferPlan {
            compress_secs: 1.0,
            decompress_secs: 0.5,
            original_bytes: 230_000_000,  // AlexNet-sized
            compressed_bytes: 23_000_000, // 10x
        }
    }

    #[test]
    fn low_bandwidth_favours_compression() {
        // 10 Mbps: uncompressed 184 s, compressed 1.5 + 18.4 s.
        let p = plan();
        assert!(p.worthwhile(mbps(10.0)));
        assert!(p.speedup(mbps(10.0)) > 9.0);
    }

    #[test]
    fn high_bandwidth_disfavours_compression() {
        // 10 Gbps: transfer is nearly free; 1.5 s overhead dominates.
        let p = plan();
        assert!(!p.worthwhile(mbps(10_000.0)));
    }

    #[test]
    fn breakeven_matches_closed_form() {
        let p = plan();
        let be = p.breakeven_bandwidth();
        // Just below break-even: worthwhile; just above: not.
        assert!(p.worthwhile(be * 0.99));
        assert!(!p.worthwhile(be * 1.01));
        // (230M - 23M) * 8 bits / 1.5 s = 1.104e9 bps.
        assert!((be - 1.104e9).abs() / 1.104e9 < 1e-9);
    }

    #[test]
    fn paper_headline_numbers_reproduce() {
        // Paper Section VII-B: at 10 Mbps AlexNet sees a 13.26x
        // communication-time reduction. With a 12.61x ratio and ~1 s of
        // codec overhead the model predicts the same order.
        let p = TransferPlan {
            compress_secs: 3.22, // Table I, SZ2 at 1e-2 on a Pi 5
            decompress_secs: 1.5,
            original_bytes: 230_000_000,
            compressed_bytes: (230_000_000.0 / 12.61) as usize,
        };
        let speedup = p.speedup(mbps(10.0));
        assert!((8.0..14.0).contains(&speedup), "speedup {speedup:.2} out of the paper's ballpark");
    }

    #[test]
    fn ratio_and_edge_cases() {
        let p = plan();
        assert!((p.ratio() - 10.0).abs() < 1e-9);
        let free = TransferPlan {
            compress_secs: 0.0,
            decompress_secs: 0.0,
            original_bytes: 100,
            compressed_bytes: 50,
        };
        assert_eq!(free.breakeven_bandwidth(), f64::INFINITY);
    }

    #[test]
    fn mbps_converts() {
        assert_eq!(mbps(10.0), 1e7);
    }

    #[test]
    fn eqn1_decision_records_both_paths() {
        let p = plan();
        let bw = mbps(10.0);
        let d = Eqn1Decision::priced(Eqn1Leg::Uplink, 7, &p, bw, true, 1.2);
        assert_eq!(d.leg.name(), "uplink");
        assert_eq!(d.node, 7);
        assert!(d.compressed);
        assert_eq!(d.predicted_compressed_secs, Some(p.compressed_time(bw)));
        assert_eq!(d.predicted_raw_secs, Some(p.uncompressed_time(bw)));
        // A worthwhile plan must predict the compressed path cheaper.
        assert!(d.predicted_compressed_secs < d.predicted_raw_secs);
        let u = Eqn1Decision::unpriced(Eqn1Leg::Psum, 3, false, 0.0);
        assert_eq!(u.predicted_compressed_secs, None);
        assert_eq!(u.predicted_raw_secs, None);
        assert_eq!(u.leg.name(), "psum");
        assert_eq!(Eqn1Leg::Downlink.name(), "downlink");
    }

    #[test]
    fn cost_profile_blends_and_plans() {
        let first = CostProfile {
            compress_secs_per_byte: 2e-9,
            decompress_secs_per_byte: 1e-9,
            ratio: 4.0,
        };
        assert_eq!(CostProfile::blend(None, first), first, "no history adopts the sample");
        let second = CostProfile {
            compress_secs_per_byte: 4e-9,
            decompress_secs_per_byte: 3e-9,
            ratio: 2.0,
        };
        let blended = CostProfile::blend(Some(first), second);
        assert!((blended.compress_secs_per_byte - 3e-9).abs() < 1e-18);
        assert!((blended.ratio - 3.0).abs() < 1e-12);
        let plan = blended.plan(1_000_000);
        assert_eq!(plan.original_bytes, 1_000_000);
        assert_eq!(plan.compressed_bytes, 333_333);
        assert!((plan.compress_secs - 3e-3).abs() < 1e-12);
    }
}
