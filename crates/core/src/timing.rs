//! The paper's Eqn 1: when is compression worth it?
//!
//! `0 < t_C + t_D + S'/B_N < S/B_N` — compressing pays off iff the
//! compression and decompression runtimes plus the compressed transfer
//! time stay below the uncompressed transfer time. These helpers drive
//! the Figure 7/8 benches and the bandwidth-planner example.

/// Measured cost profile of compressing one update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferPlan {
    /// Compression runtime in seconds (`t_C`).
    pub compress_secs: f64,
    /// Decompression runtime in seconds (`t_D`).
    pub decompress_secs: f64,
    /// Uncompressed payload size in bytes (`S`).
    pub original_bytes: usize,
    /// Compressed payload size in bytes (`S'`).
    pub compressed_bytes: usize,
}

impl TransferPlan {
    /// Compression ratio `S / S'`.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 0.0;
        }
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    /// Seconds to send the *uncompressed* update over `bandwidth_bps`
    /// (bits per second).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not positive.
    pub fn uncompressed_time(&self, bandwidth_bps: f64) -> f64 {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        self.original_bytes as f64 * 8.0 / bandwidth_bps
    }

    /// Total compressed-path time: `t_C + t_D + S' * 8 / B_N`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not positive.
    pub fn compressed_time(&self, bandwidth_bps: f64) -> f64 {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        self.compress_secs
            + self.decompress_secs
            + self.compressed_bytes as f64 * 8.0 / bandwidth_bps
    }

    /// Eqn 1's decision: true iff compressing is faster end to end.
    pub fn worthwhile(&self, bandwidth_bps: f64) -> bool {
        self.compressed_time(bandwidth_bps) < self.uncompressed_time(bandwidth_bps)
    }

    /// The bandwidth (bits/s) at which compressed and uncompressed paths
    /// take equal time; compression wins below this, loses above. Returns
    /// `f64::INFINITY` when compression is free or always wins.
    pub fn breakeven_bandwidth(&self) -> f64 {
        let saved_bits = (self.original_bytes.saturating_sub(self.compressed_bytes)) as f64 * 8.0;
        let overhead = self.compress_secs + self.decompress_secs;
        if overhead <= 0.0 {
            return f64::INFINITY;
        }
        saved_bits / overhead
    }

    /// Wall-clock speedup of the compressed path at `bandwidth_bps`.
    pub fn speedup(&self, bandwidth_bps: f64) -> f64 {
        self.uncompressed_time(bandwidth_bps) / self.compressed_time(bandwidth_bps)
    }
}

/// Exponentially-weighted moving profile of a codec's measured
/// per-byte costs, feeding Eqn-1 decisions when the *next* payload's
/// costs must be predicted before paying them.
///
/// One definition for every adaptive stage in the FL pipeline — the
/// per-client upload decision, the broadcast downlink stage and the
/// partial-sum forwarding stage all fold their measurements into this
/// type and price candidate transfers through [`CostProfile::plan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Seconds of compression time per input byte.
    pub compress_secs_per_byte: f64,
    /// Seconds of decompression time per input byte.
    pub decompress_secs_per_byte: f64,
    /// Observed compression ratio (original over compressed size).
    pub ratio: f64,
}

impl CostProfile {
    /// Folds a fresh measurement into an optional previous profile with
    /// a 50/50 exponential blend (`None` adopts the sample outright).
    pub fn blend(prev: Option<CostProfile>, sample: CostProfile) -> CostProfile {
        match prev {
            None => sample,
            Some(prev) => CostProfile {
                compress_secs_per_byte: 0.5 * prev.compress_secs_per_byte
                    + 0.5 * sample.compress_secs_per_byte,
                decompress_secs_per_byte: 0.5 * prev.decompress_secs_per_byte
                    + 0.5 * sample.decompress_secs_per_byte,
                ratio: 0.5 * prev.ratio + 0.5 * sample.ratio,
            },
        }
    }

    /// Predicts a [`TransferPlan`] for a payload of `raw_bytes` from
    /// the profiled per-byte costs. Callers scale the estimate for
    /// their own setting (a straggler multiplies `compress_secs` by its
    /// slowdown; a broadcast divides it by the fan-out it amortizes
    /// over).
    pub fn plan(&self, raw_bytes: usize) -> TransferPlan {
        TransferPlan {
            compress_secs: self.compress_secs_per_byte * raw_bytes as f64,
            decompress_secs: self.decompress_secs_per_byte * raw_bytes as f64,
            original_bytes: raw_bytes,
            compressed_bytes: ((raw_bytes as f64 / self.ratio.max(f64::MIN_POSITIVE)) as usize)
                .max(1),
        }
    }
}

/// Which compression leg of the pipeline an Eqn-1 decision priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eqn1Leg {
    /// A client's update upload (one decision per cohort client).
    Uplink,
    /// The broadcast of the global model (one decision per round).
    Downlink,
    /// A partial-sum frame inside the aggregation tree (one decision
    /// per priced edge).
    Psum,
}

impl Eqn1Leg {
    /// Stable lowercase name used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            Eqn1Leg::Uplink => "uplink",
            Eqn1Leg::Downlink => "downlink",
            Eqn1Leg::Psum => "psum",
        }
    }
}

/// One auditable Eqn-1 decision: what a compression stage chose and
/// what it predicted both paths would cost when it chose.
///
/// Every leg records a decision even when its policy is trivial
/// (forced raw or forced compressed): the predicted costs are `None`
/// then, because no [`TransferPlan`] was priced. When a
/// [`CostProfile`] *did* predict, both sides of the inequality are
/// kept so the advisor's call can be checked against the measured
/// codec time after the fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eqn1Decision {
    /// The pipeline leg that decided.
    pub leg: Eqn1Leg,
    /// The deciding node: client id on the uplink, tree node index on
    /// the psum leg, `0` for the round-global downlink.
    pub node: u64,
    /// The verdict: `true` means the payload shipped compressed.
    pub compressed: bool,
    /// The codec family the decision chose (`"raw"`, `"lossy"`,
    /// `"lossless"`, `"topk"`, `"q8"`, …). Before codec-family
    /// selection existed this was implied by `compressed`; it is now
    /// explicit so a trace can tell *which* codec won, not just that
    /// one did.
    pub family: &'static str,
    /// Predicted end-to-end seconds for the compressed path
    /// (`t_C + t_D + S'·8/B_N`), when a plan was priced.
    pub predicted_compressed_secs: Option<f64>,
    /// Predicted seconds for the raw path (`S·8/B_N`), when a plan was
    /// priced.
    pub predicted_raw_secs: Option<f64>,
    /// Measured codec seconds actually paid for this payload (encode
    /// side; zero when it shipped raw).
    pub measured_codec_secs: f64,
}

impl Eqn1Decision {
    /// A decision from a policy that never priced a plan (forced raw
    /// or forced compressed): predictions are absent.
    pub fn unpriced(leg: Eqn1Leg, node: u64, compressed: bool, measured_codec_secs: f64) -> Self {
        Eqn1Decision {
            leg,
            node,
            compressed,
            family: if compressed { "lossy" } else { "raw" },
            predicted_compressed_secs: None,
            predicted_raw_secs: None,
            measured_codec_secs,
        }
    }

    /// Overrides the inferred codec family (the constructors default to
    /// `"lossy"`/`"raw"`, the only two families the legacy
    /// compress-or-not decision could pick).
    #[must_use]
    pub fn with_family(mut self, family: &'static str) -> Self {
        self.family = family;
        self
    }

    /// A decision priced through a [`TransferPlan`] at
    /// `bandwidth_bps`: both predicted path times are recorded.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not positive (same contract as
    /// [`TransferPlan::compressed_time`]).
    pub fn priced(
        leg: Eqn1Leg,
        node: u64,
        plan: &TransferPlan,
        bandwidth_bps: f64,
        compressed: bool,
        measured_codec_secs: f64,
    ) -> Self {
        Eqn1Decision {
            leg,
            node,
            compressed,
            family: if compressed { "lossy" } else { "raw" },
            predicted_compressed_secs: Some(plan.compressed_time(bandwidth_bps)),
            predicted_raw_secs: Some(plan.uncompressed_time(bandwidth_bps)),
            measured_codec_secs,
        }
    }
}

/// One codec family as a candidate in a family-selection decision:
/// its stable name plus the measured [`CostProfile`], when one exists.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyCandidate {
    /// Stable family name (`"lossy"`, `"topk"`, `"q8"`, …) as it will
    /// appear in trace events and reports.
    pub family: &'static str,
    /// EWMA cost profile measured for this family, `None` until the
    /// family has been probed at least once.
    pub profile: Option<CostProfile>,
}

/// The outcome of [`select_family`]: which candidate (if any) to use
/// for the next payload, and the predictions that picked it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilySelection {
    /// Index into the candidate slice, or `None` to send raw.
    pub choice: Option<usize>,
    /// Predicted end-to-end seconds of the best *compressed* path
    /// (kept even when raw wins, so the margin is auditable), when
    /// priced.
    pub predicted_choice_secs: Option<f64>,
    /// Predicted seconds of the raw path, when priced.
    pub predicted_raw_secs: Option<f64>,
    /// True when the choice is an unpriced probe of an unprofiled
    /// family (the measurement that makes the next decision priceable).
    pub probe: bool,
}

/// The generalized Eqn 1: instead of compress-or-not with a single
/// codec, pick the **family** minimizing predicted end-to-end time
/// `t_C + t_D + S'·8/B_N` among `candidates`, with sending raw
/// (`S·8/B_N`) always on the menu.
///
/// Families without a [`CostProfile`] cannot be priced, so they are
/// probed first: the call returns the unprofiled candidate at
/// `probe_hint % candidates.len()` (or the next unprofiled one after
/// it), letting callers rotate the hint per client/round so every
/// family gets measured instead of only the first. With no bandwidth
/// estimate the first candidate is probed — matching the legacy
/// adaptive path, which compresses until it can price.
///
/// Ties go to raw: a family must be *strictly* faster than sending
/// uncompressed to win, same as [`TransferPlan::worthwhile`].
pub fn select_family(
    raw_bytes: usize,
    bandwidth_bps: Option<f64>,
    candidates: &[FamilyCandidate],
    probe_hint: usize,
) -> FamilySelection {
    if candidates.is_empty() {
        return FamilySelection {
            choice: None,
            predicted_choice_secs: None,
            predicted_raw_secs: None,
            probe: false,
        };
    }
    // Probe rounds: some family is still unmeasured. Rotate through the
    // unprofiled ones so each earns a profile.
    if candidates.iter().any(|c| c.profile.is_none()) {
        let n = candidates.len();
        let probe = (0..n)
            .map(|i| (probe_hint + i) % n)
            .find(|&i| candidates[i].profile.is_none())
            .expect("an unprofiled candidate exists");
        return FamilySelection {
            choice: Some(probe),
            predicted_choice_secs: None,
            predicted_raw_secs: None,
            probe: true,
        };
    }
    let Some(bps) = bandwidth_bps else {
        // No bandwidth estimate to price against: keep compressing with
        // the first family (the conservative choice on an unknown link).
        return FamilySelection {
            choice: Some(probe_hint % candidates.len()),
            predicted_choice_secs: None,
            predicted_raw_secs: None,
            probe: true,
        };
    };
    let raw_secs = raw_bytes as f64 * 8.0 / bps;
    let mut best: Option<(usize, f64)> = None;
    for (i, candidate) in candidates.iter().enumerate() {
        let profile = candidate.profile.expect("all candidates profiled above");
        let secs = profile.plan(raw_bytes).compressed_time(bps);
        if best.is_none_or(|(_, b)| secs < b) {
            best = Some((i, secs));
        }
    }
    let (winner, secs) = best.expect("candidates are non-empty");
    FamilySelection {
        choice: (secs < raw_secs).then_some(winner),
        predicted_choice_secs: Some(secs),
        predicted_raw_secs: Some(raw_secs),
        probe: false,
    }
}

/// Convenience: megabits per second to bits per second.
pub fn mbps(v: f64) -> f64 {
    v * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> TransferPlan {
        TransferPlan {
            compress_secs: 1.0,
            decompress_secs: 0.5,
            original_bytes: 230_000_000,  // AlexNet-sized
            compressed_bytes: 23_000_000, // 10x
        }
    }

    #[test]
    fn low_bandwidth_favours_compression() {
        // 10 Mbps: uncompressed 184 s, compressed 1.5 + 18.4 s.
        let p = plan();
        assert!(p.worthwhile(mbps(10.0)));
        assert!(p.speedup(mbps(10.0)) > 9.0);
    }

    #[test]
    fn high_bandwidth_disfavours_compression() {
        // 10 Gbps: transfer is nearly free; 1.5 s overhead dominates.
        let p = plan();
        assert!(!p.worthwhile(mbps(10_000.0)));
    }

    #[test]
    fn breakeven_matches_closed_form() {
        let p = plan();
        let be = p.breakeven_bandwidth();
        // Just below break-even: worthwhile; just above: not.
        assert!(p.worthwhile(be * 0.99));
        assert!(!p.worthwhile(be * 1.01));
        // (230M - 23M) * 8 bits / 1.5 s = 1.104e9 bps.
        assert!((be - 1.104e9).abs() / 1.104e9 < 1e-9);
    }

    #[test]
    fn paper_headline_numbers_reproduce() {
        // Paper Section VII-B: at 10 Mbps AlexNet sees a 13.26x
        // communication-time reduction. With a 12.61x ratio and ~1 s of
        // codec overhead the model predicts the same order.
        let p = TransferPlan {
            compress_secs: 3.22, // Table I, SZ2 at 1e-2 on a Pi 5
            decompress_secs: 1.5,
            original_bytes: 230_000_000,
            compressed_bytes: (230_000_000.0 / 12.61) as usize,
        };
        let speedup = p.speedup(mbps(10.0));
        assert!((8.0..14.0).contains(&speedup), "speedup {speedup:.2} out of the paper's ballpark");
    }

    #[test]
    fn ratio_and_edge_cases() {
        let p = plan();
        assert!((p.ratio() - 10.0).abs() < 1e-9);
        let free = TransferPlan {
            compress_secs: 0.0,
            decompress_secs: 0.0,
            original_bytes: 100,
            compressed_bytes: 50,
        };
        assert_eq!(free.breakeven_bandwidth(), f64::INFINITY);
    }

    #[test]
    fn mbps_converts() {
        assert_eq!(mbps(10.0), 1e7);
    }

    #[test]
    fn eqn1_decision_records_both_paths() {
        let p = plan();
        let bw = mbps(10.0);
        let d = Eqn1Decision::priced(Eqn1Leg::Uplink, 7, &p, bw, true, 1.2);
        assert_eq!(d.leg.name(), "uplink");
        assert_eq!(d.node, 7);
        assert!(d.compressed);
        assert_eq!(d.predicted_compressed_secs, Some(p.compressed_time(bw)));
        assert_eq!(d.predicted_raw_secs, Some(p.uncompressed_time(bw)));
        // A worthwhile plan must predict the compressed path cheaper.
        assert!(d.predicted_compressed_secs < d.predicted_raw_secs);
        let u = Eqn1Decision::unpriced(Eqn1Leg::Psum, 3, false, 0.0);
        assert_eq!(u.predicted_compressed_secs, None);
        assert_eq!(u.predicted_raw_secs, None);
        assert_eq!(u.leg.name(), "psum");
        assert_eq!(Eqn1Leg::Downlink.name(), "downlink");
    }

    #[test]
    fn cost_profile_blends_and_plans() {
        let first = CostProfile {
            compress_secs_per_byte: 2e-9,
            decompress_secs_per_byte: 1e-9,
            ratio: 4.0,
        };
        assert_eq!(CostProfile::blend(None, first), first, "no history adopts the sample");
        let second = CostProfile {
            compress_secs_per_byte: 4e-9,
            decompress_secs_per_byte: 3e-9,
            ratio: 2.0,
        };
        let blended = CostProfile::blend(Some(first), second);
        assert!((blended.compress_secs_per_byte - 3e-9).abs() < 1e-18);
        assert!((blended.ratio - 3.0).abs() < 1e-12);
        let plan = blended.plan(1_000_000);
        assert_eq!(plan.original_bytes, 1_000_000);
        assert_eq!(plan.compressed_bytes, 333_333);
        assert!((plan.compress_secs - 3e-3).abs() < 1e-12);
    }

    /// A cheap, fast family: tiny codec cost, 10x ratio.
    fn fast_family() -> CostProfile {
        CostProfile { compress_secs_per_byte: 1e-10, decompress_secs_per_byte: 1e-10, ratio: 10.0 }
    }

    /// A slow family: heavy codec cost, 2x ratio.
    fn slow_family() -> CostProfile {
        CostProfile { compress_secs_per_byte: 1e-6, decompress_secs_per_byte: 1e-6, ratio: 2.0 }
    }

    #[test]
    fn select_family_probes_unprofiled_candidates_in_rotation() {
        let candidates = [
            FamilyCandidate { family: "lossy", profile: Some(fast_family()) },
            FamilyCandidate { family: "topk", profile: None },
            FamilyCandidate { family: "q8", profile: None },
        ];
        let s = select_family(1_000_000, Some(mbps(10.0)), &candidates, 0);
        assert!(s.probe);
        assert_eq!(s.choice, Some(1), "hint 0 rotates to the first unprofiled slot");
        assert_eq!(s.predicted_raw_secs, None);
        let s = select_family(1_000_000, Some(mbps(10.0)), &candidates, 2);
        assert_eq!(s.choice, Some(2), "hint 2 lands on the other unprofiled slot");
    }

    #[test]
    fn select_family_prices_candidates_and_picks_the_fastest() {
        let candidates = [
            FamilyCandidate { family: "slow", profile: Some(slow_family()) },
            FamilyCandidate { family: "fast", profile: Some(fast_family()) },
        ];
        // 10 Mbps, 10 MB payload: raw 8 s; fast family ~0.8 s + codec.
        let s = select_family(10_000_000, Some(mbps(10.0)), &candidates, 0);
        assert!(!s.probe);
        assert_eq!(s.choice, Some(1));
        let raw = s.predicted_raw_secs.unwrap();
        let chosen = s.predicted_choice_secs.unwrap();
        assert!((raw - 8.0).abs() < 1e-9);
        assert!(chosen < raw);
    }

    #[test]
    fn select_family_falls_back_to_raw_on_fast_links() {
        // 100 Gbps: raw wins against a family that burns 1 us/byte.
        let candidates = [FamilyCandidate { family: "slow", profile: Some(slow_family()) }];
        let s = select_family(10_000_000, Some(100e9), &candidates, 0);
        assert!(!s.probe);
        assert_eq!(s.choice, None, "raw is faster than every candidate");
        // The losing family's prediction is still reported for audit.
        assert!(s.predicted_choice_secs.unwrap() > s.predicted_raw_secs.unwrap());
    }

    #[test]
    fn select_family_handles_empty_and_unpriced_inputs() {
        let s = select_family(1_000, Some(mbps(1.0)), &[], 3);
        assert_eq!(s.choice, None);
        assert!(!s.probe);
        let candidates = [FamilyCandidate { family: "fast", profile: Some(fast_family()) }];
        let s = select_family(1_000, None, &candidates, 5);
        assert!(s.probe, "no bandwidth sample means an unpriced probe");
        assert_eq!(s.choice, Some(0));
    }

    #[test]
    fn decision_family_defaults_track_compression_and_can_be_overridden() {
        let d = Eqn1Decision::unpriced(Eqn1Leg::Uplink, 0, true, 0.0);
        assert_eq!(d.family, "lossy");
        let d = Eqn1Decision::unpriced(Eqn1Leg::Uplink, 0, false, 0.0);
        assert_eq!(d.family, "raw");
        let d = d.with_family("topk+ef");
        assert_eq!(d.family, "topk+ef");
    }
}
