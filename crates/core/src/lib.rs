//! FedSZ: error-bounded lossy compression for federated-learning updates.
//!
//! This crate is the paper's primary contribution — Algorithm 1 and the
//! Figure 1 pipeline:
//!
//! 1. **Partition** the client's state dictionary: tensors whose name
//!    contains `"weight"` and whose element count exceeds a threshold go
//!    to the *lossy* partition; everything else (biases, batch-norm
//!    statistics, counters, small weights) goes to the *lossless*
//!    partition ([`partition`]).
//! 2. **Compress**: each lossy tensor is flattened and compressed with an
//!    error-bounded lossy compressor (SZ2 by default, at value-range
//!    relative bound `1e-2`); the lossless partition is serialized and
//!    compressed as one block with blosc-lz by default ([`FedSz`]).
//! 3. **Serialize** everything into a single self-describing bitstream
//!    for the server, which reverses the process ([`FedSz::decompress`]).
//!
//! The [`timing`] module implements the paper's Eqn 1 — the
//! "compress-or-not" decision rule balancing compression runtime against
//! network transfer savings.
//!
//! # Examples
//!
//! ```
//! use fedsz::{FedSz, FedSzConfig};
//! use fedsz_nn::models::specs::ModelSpec;
//!
//! let update = ModelSpec::mobilenet_v2().instantiate_scaled(7, 0.02);
//! let fedsz = FedSz::new(FedSzConfig::default());
//! let compressed = fedsz.compress(&update).unwrap();
//! assert!(compressed.stats().ratio() > 2.0);
//! let restored = fedsz.decompress(compressed.bytes()).unwrap();
//! assert_eq!(restored.len(), update.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod partition;
pub mod timing;

pub use fedsz_codec::{CodecError, Result};
pub use fedsz_lossless::LosslessKind;
pub use fedsz_lossy::{ErrorBound, LossyError, LossyKind};

use fedsz_codec::varint::{
    read_f32, read_f64, read_str, read_uvarint, write_f32, write_f64, write_str, write_uvarint,
};
use fedsz_nn::StateDict;
use fedsz_tensor::Tensor;

/// Bitstream magic bytes.
const MAGIC: &[u8; 4] = b"FSZ1";
/// Bitstream format version.
const VERSION: u8 = 1;

/// Configuration of the FedSZ pipeline.
///
/// Defaults are the paper's recommended operating point: SZ2 + blosc-lz
/// at relative error bound `1e-2`, with the Algorithm 1 size threshold
/// of 1000 elements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedSzConfig {
    /// Error-bounded compressor for the lossy partition.
    pub lossy: LossyKind,
    /// Lossless compressor for metadata and small tensors.
    pub lossless: LosslessKind,
    /// Error bound applied per lossy tensor.
    pub error_bound: ErrorBound,
    /// Minimum element count for a `weight` tensor to be lossy-compressed.
    pub threshold: usize,
}

impl Default for FedSzConfig {
    fn default() -> Self {
        Self {
            lossy: LossyKind::Sz2,
            lossless: LosslessKind::BloscLz,
            error_bound: ErrorBound::Relative(1e-2),
            threshold: 1000,
        }
    }
}

impl FedSzConfig {
    /// The paper's recommended configuration (same as `Default`).
    pub fn recommended() -> Self {
        Self::default()
    }

    /// Returns a copy with a different error bound.
    pub fn with_error_bound(mut self, bound: ErrorBound) -> Self {
        self.error_bound = bound;
        self
    }

    /// Returns a copy with a different lossy compressor.
    pub fn with_lossy(mut self, lossy: LossyKind) -> Self {
        self.lossy = lossy;
        self
    }
}

/// Size accounting for one compressed update.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompressStats {
    /// Uncompressed payload size (4 bytes per element).
    pub original_bytes: usize,
    /// Total bitstream size.
    pub compressed_bytes: usize,
    /// Elements routed to the lossy partition.
    pub lossy_elements: usize,
    /// Elements routed to the lossless partition.
    pub lossless_elements: usize,
    /// Compressed size of the lossy partition.
    pub lossy_bytes: usize,
    /// Compressed size of the lossless partition.
    pub lossless_bytes: usize,
    /// Tensor count in the lossy partition.
    pub lossy_tensors: usize,
    /// Tensor count in the lossless partition.
    pub lossless_tensors: usize,
}

impl CompressStats {
    /// Overall compression ratio (original / compressed).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 0.0;
        }
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    /// Fraction of elements that were lossy-compressed (the paper's
    /// "% lossy data" column in Table III).
    pub fn lossy_fraction(&self) -> f64 {
        let total = self.lossy_elements + self.lossless_elements;
        if total == 0 {
            return 0.0;
        }
        self.lossy_elements as f64 / total as f64
    }
}

/// A compressed client update: the wire bitstream plus size accounting.
#[derive(Debug, Clone)]
pub struct CompressedUpdate {
    bytes: Vec<u8>,
    stats: CompressStats,
}

impl CompressedUpdate {
    /// The serialized bitstream to send to the server.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the update, returning the bitstream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Size accounting.
    pub fn stats(&self) -> &CompressStats {
        &self.stats
    }
}

/// The FedSZ compression pipeline (Algorithm 1 + Figure 1).
#[derive(Debug, Clone)]
pub struct FedSz {
    config: FedSzConfig,
    /// Per-tensor bound overrides: the first entry whose pattern is a
    /// substring of the tensor name wins.
    overrides: Vec<(String, ErrorBound)>,
}

impl FedSz {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: FedSzConfig) -> Self {
        Self { config, overrides: Vec::new() }
    }

    /// Adds per-layer error-bound overrides — the hyperparameter knob
    /// the paper's future-work section proposes for mitigating accuracy
    /// loss on sensitive layers. A tensor whose name contains a
    /// pattern uses that bound instead of the configured one; the first
    /// matching pattern wins. Decoding needs no matching configuration
    /// because every lossy stream embeds its own absolute bound.
    ///
    /// # Examples
    ///
    /// ```
    /// use fedsz::{ErrorBound, FedSz, FedSzConfig};
    ///
    /// let fedsz = FedSz::new(FedSzConfig::default())
    ///     .with_bound_overrides(vec![
    ///         // Keep the classifier head nearly lossless.
    ///         ("classifier".to_string(), ErrorBound::Relative(1e-5)),
    ///     ]);
    /// # let _ = fedsz;
    /// ```
    pub fn with_bound_overrides(mut self, overrides: Vec<(String, ErrorBound)>) -> Self {
        self.overrides = overrides;
        self
    }

    /// The bound that applies to a tensor name under the overrides.
    pub fn bound_for(&self, name: &str) -> ErrorBound {
        self.overrides
            .iter()
            .find(|(pattern, _)| name.contains(pattern.as_str()))
            .map(|&(_, bound)| bound)
            .unwrap_or(self.config.error_bound)
    }

    /// The active configuration.
    pub fn config(&self) -> &FedSzConfig {
        &self.config
    }

    /// Compresses a state dictionary into a single bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError`] when a lossy tensor contains non-finite
    /// values or the configured bound is unusable.
    pub fn compress(&self, dict: &StateDict) -> std::result::Result<CompressedUpdate, LossyError> {
        let mut bytes = Vec::new();
        let stats = self.compress_into(dict, &mut bytes)?;
        Ok(CompressedUpdate { bytes, stats })
    }

    /// Compresses into a caller-owned buffer, clearing it first — the
    /// allocation-reusing form of [`FedSz::compress`] for hot loops
    /// that encode every round (e.g. the broadcast leg). Produces the
    /// same bitstream byte for byte.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError`] when a lossy tensor contains non-finite
    /// values or the configured bound is unusable.
    pub fn compress_into(
        &self,
        dict: &StateDict,
        out: &mut Vec<u8>,
    ) -> std::result::Result<CompressStats, LossyError> {
        let lossy_codec = self.config.lossy.codec();
        let lossless_codec = self.config.lossless.codec();

        let mut stats =
            CompressStats { original_bytes: dict.byte_size(), ..CompressStats::default() };

        // Header: config + entry table (name, partition flag, shape).
        out.clear();
        out.reserve(dict.byte_size() / 4 + 256);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(self.config.lossy.id());
        out.push(self.config.lossless.id());
        write_error_bound(out, self.config.error_bound);
        write_uvarint(out, self.config.threshold as u64);
        write_uvarint(out, dict.len() as u64);

        let mut lossless_blob = Vec::new();
        let mut lossy_streams: Vec<Vec<u8>> = Vec::new();
        for (name, tensor) in dict.iter() {
            let lossy = partition::is_lossy(name, tensor.len(), self.config.threshold);
            write_str(out, name);
            out.push(u8::from(lossy));
            write_uvarint(out, tensor.shape().len() as u64);
            for &d in tensor.shape() {
                write_uvarint(out, d as u64);
            }
            if lossy {
                stats.lossy_elements += tensor.len();
                stats.lossy_tensors += 1;
                // Algorithm 1 line 3: flatten, then lossy-compress.
                lossy_streams.push(lossy_codec.compress(tensor.data(), self.bound_for(name))?);
            } else {
                stats.lossless_elements += tensor.len();
                stats.lossless_tensors += 1;
                // Figure 1: remaining tensors are serialized ("pickled")
                // together and lossless-compressed as one block.
                for &v in tensor.data() {
                    write_f32(&mut lossless_blob, v);
                }
            }
        }

        for stream in &lossy_streams {
            write_uvarint(out, stream.len() as u64);
            out.extend_from_slice(stream);
            stats.lossy_bytes += stream.len();
        }
        let packed_blob = lossless_codec.compress(&lossless_blob);
        write_uvarint(out, packed_blob.len() as u64);
        out.extend_from_slice(&packed_blob);
        stats.lossless_bytes += packed_blob.len();

        // Whole-stream CRC trailer: lossy payloads accept any bit
        // pattern as a "valid" float, so without this a corrupted update
        // could silently poison the server's aggregate.
        let crc = fedsz_codec::checksum::crc32(out);
        fedsz_codec::varint::write_u32(out, crc);

        stats.compressed_bytes = out.len();
        Ok(stats)
    }

    /// Compresses the *difference* between `update` and a `reference`
    /// dict both sides already hold (the previous global model, in FL) —
    /// the Delta-DNN-style variant of the pipeline. Deltas concentrate
    /// near zero with a much smaller value range than the weights
    /// themselves, so the same relative bound yields a far smaller
    /// absolute error and/or far better ratio. The receiver reverses it
    /// with [`FedSz::decompress_delta`] and the same reference.
    ///
    /// The pointwise guarantee transfers: `|Δ − Δ'| ≤ eb_abs` implies
    /// `|update − update'| ≤ eb_abs` after adding the reference back.
    ///
    /// # Errors
    ///
    /// Returns [`LossyError::NonFiniteInput`] when values are non-finite.
    ///
    /// # Panics
    ///
    /// Panics if `reference` does not structurally match `update`.
    pub fn compress_delta(
        &self,
        update: &StateDict,
        reference: &StateDict,
    ) -> std::result::Result<CompressedUpdate, LossyError> {
        let mut delta = StateDict::new();
        for (name, tensor) in update.iter() {
            let base =
                reference.get(name).unwrap_or_else(|| panic!("reference dict missing `{name}`"));
            assert_eq!(base.shape(), tensor.shape(), "shape mismatch for `{name}`");
            delta.insert(name.to_owned(), tensor.sub(base));
        }
        self.compress(&delta)
    }

    /// Reverses [`FedSz::compress_delta`] given the same reference dict.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for corrupt streams or when the stream's
    /// structure does not match the reference.
    pub fn decompress_delta(&self, bytes: &[u8], reference: &StateDict) -> Result<StateDict> {
        let delta = self.decompress(bytes)?;
        let mut out = StateDict::new();
        for (name, tensor) in delta.iter() {
            let base = reference
                .get(name)
                .ok_or(CodecError::Corrupt("delta entry missing from reference"))?;
            if base.shape() != tensor.shape() {
                return Err(CodecError::Corrupt("delta shape mismatch with reference"));
            }
            out.insert(name.to_owned(), tensor.add(base));
        }
        Ok(out)
    }

    /// Reverses [`FedSz::compress`], reconstructing the state dictionary
    /// (lossy tensors within the configured error bound, everything else
    /// bit-exact).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for truncated or corrupt bitstreams.
    pub fn decompress(&self, bytes: &[u8]) -> Result<StateDict> {
        let (dict, _) = Self::decompress_with_config(bytes)?;
        Ok(dict)
    }

    /// Decompresses a bitstream, also returning the configuration the
    /// sender used (the stream is self-describing, so the receiver does
    /// not need to agree on a config in advance).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for truncated or corrupt bitstreams.
    pub fn decompress_with_config(bytes: &[u8]) -> Result<(StateDict, FedSzConfig)> {
        if bytes.len() < 4 {
            return Err(CodecError::UnexpectedEof);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let mut tpos = 0usize;
        let stored_crc = fedsz_codec::varint::read_u32(trailer, &mut tpos)?;
        let computed = fedsz_codec::checksum::crc32(body);
        if stored_crc != computed {
            return Err(CodecError::ChecksumMismatch { stored: stored_crc, computed });
        }
        let bytes = body;
        let mut pos = 0usize;
        let magic = bytes.get(..4).ok_or(CodecError::UnexpectedEof)?;
        if magic != MAGIC {
            return Err(CodecError::Corrupt("bad FedSZ magic"));
        }
        pos += 4;
        let version = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        pos += 1;
        let lossy = LossyKind::from_id(*bytes.get(pos).ok_or(CodecError::UnexpectedEof)?)?;
        pos += 1;
        let lossless = LosslessKind::from_id(*bytes.get(pos).ok_or(CodecError::UnexpectedEof)?)?;
        pos += 1;
        let error_bound = read_error_bound(bytes, &mut pos)?;
        let threshold = read_uvarint(bytes, &mut pos)? as usize;
        let n_entries = read_uvarint(bytes, &mut pos)? as usize;

        struct EntryMeta {
            name: String,
            lossy: bool,
            shape: Vec<usize>,
            elems: usize,
        }
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let name = read_str(bytes, &mut pos)?.to_owned();
            let flag = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
            pos += 1;
            let ndim = read_uvarint(bytes, &mut pos)? as usize;
            if ndim > 8 {
                return Err(CodecError::Corrupt("tensor rank too large"));
            }
            let mut shape = Vec::with_capacity(ndim);
            let mut elems = 1usize;
            for _ in 0..ndim {
                let d = read_uvarint(bytes, &mut pos)? as usize;
                elems = elems.checked_mul(d).ok_or(CodecError::Corrupt("shape overflow"))?;
                shape.push(d);
            }
            entries.push(EntryMeta { name, lossy: flag == 1, shape, elems });
        }

        let lossy_codec = lossy.codec();
        let lossless_codec = lossless.codec();
        let mut lossy_values: Vec<Vec<f32>> = Vec::new();
        for entry in entries.iter().filter(|e| e.lossy) {
            let len = read_uvarint(bytes, &mut pos)? as usize;
            let stream = bytes.get(pos..pos + len).ok_or(CodecError::UnexpectedEof)?;
            pos += len;
            let values = lossy_codec.decompress(stream)?;
            if values.len() != entry.elems {
                return Err(CodecError::Corrupt("lossy tensor length mismatch"));
            }
            lossy_values.push(values);
        }
        let blob_len = read_uvarint(bytes, &mut pos)? as usize;
        let blob = bytes.get(pos..pos + blob_len).ok_or(CodecError::UnexpectedEof)?;
        let lossless_blob = lossless_codec.decompress(blob)?;
        let expected: usize = entries.iter().filter(|e| !e.lossy).map(|e| e.elems).sum();
        if lossless_blob.len() != expected * 4 {
            return Err(CodecError::Corrupt("lossless blob length mismatch"));
        }

        let mut dict = StateDict::new();
        let mut lossy_iter = lossy_values.into_iter();
        let mut blob_pos = 0usize;
        for entry in entries {
            let data = if entry.lossy {
                lossy_iter.next().expect("counted above")
            } else {
                let mut values = Vec::with_capacity(entry.elems);
                for _ in 0..entry.elems {
                    values.push(read_f32(&lossless_blob, &mut blob_pos)?);
                }
                values
            };
            dict.insert(entry.name, Tensor::from_vec(entry.shape, data));
        }
        Ok((dict, FedSzConfig { lossy, lossless, error_bound, threshold }))
    }
}

impl Default for FedSz {
    fn default() -> Self {
        Self::new(FedSzConfig::default())
    }
}

fn write_error_bound(out: &mut Vec<u8>, bound: ErrorBound) {
    match bound {
        ErrorBound::Absolute(eb) => {
            out.push(0);
            write_f64(out, eb);
        }
        ErrorBound::Relative(eb) => {
            out.push(1);
            write_f64(out, eb);
        }
        ErrorBound::FixedPrecision(p) => {
            out.push(2);
            write_uvarint(out, u64::from(p));
        }
    }
}

fn read_error_bound(buf: &[u8], pos: &mut usize) -> Result<ErrorBound> {
    let tag = *buf.get(*pos).ok_or(CodecError::UnexpectedEof)?;
    *pos += 1;
    match tag {
        0 => Ok(ErrorBound::Absolute(read_f64(buf, pos)?)),
        1 => Ok(ErrorBound::Relative(read_f64(buf, pos)?)),
        2 => Ok(ErrorBound::FixedPrecision(read_uvarint(buf, pos)? as u32)),
        _ => Err(CodecError::Corrupt("unknown error-bound tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_codec::stats::max_abs_error;
    use fedsz_nn::models::specs::ModelSpec;

    fn small_update() -> StateDict {
        ModelSpec::mobilenet_v2().instantiate_scaled(3, 0.02)
    }

    #[test]
    fn round_trip_preserves_structure() {
        let dict = small_update();
        let fedsz = FedSz::default();
        let packed = fedsz.compress(&dict).unwrap();
        let restored = fedsz.decompress(packed.bytes()).unwrap();
        assert_eq!(restored.len(), dict.len());
        let names_a: Vec<&str> = dict.names().collect();
        let names_b: Vec<&str> = restored.names().collect();
        assert_eq!(names_a, names_b, "entry order must be preserved");
        for (name, tensor) in dict.iter() {
            assert_eq!(restored.get(name).unwrap().shape(), tensor.shape(), "{name}");
        }
    }

    #[test]
    fn lossless_partition_is_bit_exact() {
        let dict = small_update();
        let fedsz = FedSz::default();
        let packed = fedsz.compress(&dict).unwrap();
        let restored = fedsz.decompress(packed.bytes()).unwrap();
        for (name, tensor) in dict.iter() {
            if !partition::is_lossy(name, tensor.len(), fedsz.config().threshold) {
                assert_eq!(restored.get(name).unwrap().data(), tensor.data(), "{name}");
            }
        }
    }

    #[test]
    fn lossy_partition_respects_relative_bound() {
        let dict = small_update();
        let rel = 1e-3;
        let fedsz = FedSz::new(FedSzConfig::default().with_error_bound(ErrorBound::Relative(rel)));
        let packed = fedsz.compress(&dict).unwrap();
        let restored = fedsz.decompress(packed.bytes()).unwrap();
        for (name, tensor) in dict.iter() {
            if partition::is_lossy(name, tensor.len(), fedsz.config().threshold) {
                let range = fedsz_codec::stats::value_range(tensor.data()).unwrap().span();
                let err = max_abs_error(tensor.data(), restored.get(name).unwrap().data());
                assert!(
                    f64::from(err) <= rel * f64::from(range) * (1.0 + 1e-5),
                    "{name}: err {err} range {range}"
                );
            }
        }
    }

    #[test]
    fn compresses_meaningfully() {
        let dict = small_update();
        let fedsz = FedSz::default();
        let packed = fedsz.compress(&dict).unwrap();
        let stats = packed.stats();
        assert!(stats.ratio() > 2.0, "ratio {}", stats.ratio());
        assert!(stats.lossy_fraction() > 0.5, "lossy fraction {}", stats.lossy_fraction());
        assert_eq!(stats.compressed_bytes, packed.bytes().len());
        assert_eq!(stats.lossy_elements + stats.lossless_elements, dict.total_elements());
    }

    #[test]
    fn every_compressor_combination_round_trips() {
        let dict = ModelSpec::alexnet().instantiate_scaled(5, 0.005);
        for lossy in LossyKind::all() {
            for lossless in [LosslessKind::BloscLz, LosslessKind::Zstd] {
                let config = FedSzConfig {
                    lossy,
                    lossless,
                    error_bound: ErrorBound::Relative(1e-2),
                    threshold: 1000,
                };
                let fedsz = FedSz::new(config);
                let packed = fedsz.compress(&dict).unwrap();
                let restored = fedsz.decompress(packed.bytes()).unwrap();
                assert_eq!(restored.len(), dict.len(), "{lossy}/{lossless}");
            }
        }
    }

    #[test]
    fn receiver_recovers_sender_config() {
        let dict = small_update();
        let config = FedSzConfig {
            lossy: LossyKind::Sz3,
            lossless: LosslessKind::Zstd,
            error_bound: ErrorBound::Relative(1e-4),
            threshold: 500,
        };
        let packed = FedSz::new(config).compress(&dict).unwrap();
        let (_, recovered) = FedSz::decompress_with_config(packed.bytes()).unwrap();
        assert_eq!(recovered, config);
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        let dict = small_update();
        let fedsz = FedSz::default();
        let packed = fedsz.compress(&dict).unwrap().into_bytes();
        assert!(fedsz.decompress(&packed[..10]).is_err());
        assert!(fedsz.decompress(&[]).is_err());
        let mut bad_magic = packed.clone();
        bad_magic[0] = b'X';
        assert!(fedsz.decompress(&bad_magic).is_err());
    }

    #[test]
    fn empty_dict_round_trips() {
        let dict = StateDict::new();
        let fedsz = FedSz::default();
        let packed = fedsz.compress(&dict).unwrap();
        let restored = fedsz.decompress(packed.bytes()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn nan_in_weights_is_reported() {
        let mut dict = StateDict::new();
        let mut data = vec![0.5f32; 2000];
        data[7] = f32::NAN;
        dict.insert("layer.weight", Tensor::from_vec(vec![2000], data));
        let err = FedSz::default().compress(&dict).unwrap_err();
        assert_eq!(err, LossyError::NonFiniteInput);
    }
}

#[cfg(test)]
mod override_tests {
    use super::*;
    use fedsz_codec::stats::{max_abs_error, value_range};
    use fedsz_nn::models::specs::ModelSpec;

    #[test]
    fn overrides_tighten_selected_layers() {
        let dict = ModelSpec::alexnet().instantiate_scaled(8, 0.005);
        let fedsz = FedSz::new(FedSzConfig::default())
            .with_bound_overrides(vec![("classifier.6".to_string(), ErrorBound::Relative(1e-6))]);
        let packed = fedsz.compress(&dict).unwrap();
        let restored = fedsz.decompress(packed.bytes()).unwrap();
        let check = |name: &str, rel: f64| {
            let orig = dict.get(name).unwrap();
            let span = f64::from(value_range(orig.data()).unwrap().span());
            f64::from(max_abs_error(orig.data(), restored.get(name).unwrap().data()))
                <= rel * span * (1.0 + 1e-5)
        };
        // The overridden head satisfies the much tighter bound...
        assert!(check("classifier.6.weight", 1e-6));
        // ...while other layers only need the default.
        assert!(check("features.0.weight", 1e-2));
    }

    #[test]
    fn first_matching_override_wins() {
        let fedsz = FedSz::new(FedSzConfig::default()).with_bound_overrides(vec![
            ("classifier".to_string(), ErrorBound::Relative(1e-5)),
            ("classifier.6".to_string(), ErrorBound::Relative(1e-1)),
        ]);
        assert_eq!(fedsz.bound_for("classifier.6.weight"), ErrorBound::Relative(1e-5));
        assert_eq!(fedsz.bound_for("features.0.weight"), ErrorBound::Relative(1e-2));
    }

    #[test]
    fn overridden_streams_decode_without_the_overrides() {
        let dict = ModelSpec::mobilenet_v2().instantiate_scaled(8, 0.01);
        let sender = FedSz::new(FedSzConfig::default())
            .with_bound_overrides(vec![("features.18".to_string(), ErrorBound::Relative(1e-5))]);
        let packed = sender.compress(&dict).unwrap();
        // A vanilla receiver decodes fine: streams are self-describing.
        let receiver = FedSz::default();
        assert_eq!(receiver.decompress(packed.bytes()).unwrap().len(), dict.len());
    }
}

#[cfg(test)]
mod delta_tests {
    use super::*;
    use fedsz_codec::stats::max_abs_error;
    use fedsz_nn::models::specs::ModelSpec;
    use fedsz_tensor::rng::{normal, seeded};

    /// A reference model plus a small-perturbation "trained" update.
    fn pair() -> (StateDict, StateDict) {
        let reference = ModelSpec::mobilenet_v2().instantiate_scaled(6, 0.02);
        let mut rng = seeded(7);
        let mut update = StateDict::new();
        for (name, t) in reference.iter() {
            let mut perturbed = t.clone();
            for v in perturbed.data_mut() {
                *v += 0.002 * normal(&mut rng);
            }
            update.insert(name.to_owned(), perturbed);
        }
        (update, reference)
    }

    #[test]
    fn delta_round_trip_is_bounded() {
        let (update, reference) = pair();
        let fedsz = FedSz::default();
        let packed = fedsz.compress_delta(&update, &reference).unwrap();
        let restored = fedsz.decompress_delta(packed.bytes(), &reference).unwrap();
        assert_eq!(restored.len(), update.len());
        for (name, tensor) in update.iter() {
            let err = max_abs_error(tensor.data(), restored.get(name).unwrap().data());
            // REL 1e-2 of the *delta* range (~0.016) is a tight bound.
            assert!(err <= 1e-3, "{name}: err {err}");
        }
    }

    #[test]
    fn deltas_compress_better_for_small_updates() {
        let (update, reference) = pair();
        let fedsz = FedSz::default();
        let direct = fedsz.compress(&update).unwrap().stats().ratio();
        let packed = fedsz.compress_delta(&update, &reference).unwrap();
        let delta_ratio = packed.stats().ratio();
        // Same relative bound: delta coding trades ratio for a ~40x
        // tighter absolute bound. Demand it at least stays comparable
        // while delivering that accuracy win.
        assert!(
            delta_ratio > direct * 0.5,
            "delta ratio {delta_ratio:.2} collapsed vs direct {direct:.2}"
        );
    }

    #[test]
    fn wrong_reference_is_detected_or_harmless() {
        let (update, reference) = pair();
        let fedsz = FedSz::default();
        let packed = fedsz.compress_delta(&update, &reference).unwrap();
        // Structurally different reference: error, not panic.
        let small = ModelSpec::mobilenet_v2().instantiate_scaled(6, 0.01);
        assert!(fedsz.decompress_delta(packed.bytes(), &small).is_err());
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;
    use fedsz_nn::models::specs::ModelSpec;

    #[test]
    fn compression_is_bit_deterministic() {
        // Same input + config must produce identical bitstreams: the FL
        // server can deduplicate, and experiments are exactly repeatable.
        let dict = ModelSpec::resnet50().instantiate_scaled(13, 0.005);
        for lossy in LossyKind::all() {
            let config = FedSzConfig { lossy, ..FedSzConfig::default() };
            let a = FedSz::new(config).compress(&dict).unwrap();
            let b = FedSz::new(config).compress(&dict).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "{lossy} stream not deterministic");
        }
    }

    #[test]
    fn stats_are_internally_consistent() {
        let dict = ModelSpec::mobilenet_v2().instantiate_scaled(13, 0.01);
        let packed = FedSz::default().compress(&dict).unwrap();
        let s = packed.stats();
        assert_eq!(s.original_bytes, dict.byte_size());
        assert_eq!(s.lossy_tensors + s.lossless_tensors, dict.len());
        // Payload sections plus headers must account for the stream size.
        assert!(s.lossy_bytes + s.lossless_bytes <= s.compressed_bytes);
        assert!(
            s.compressed_bytes - s.lossy_bytes - s.lossless_bytes < 64 * dict.len() + 256,
            "header overhead unexpectedly large"
        );
    }
}
