//! State-dictionary partitioning (Algorithm 1, line 4).
//!
//! A tensor is *lossy-compressible* iff its name contains the substring
//! `"weight"` **and** its element count exceeds a threshold. Everything
//! else — biases, batch-norm running statistics, step counters, and
//! small weight tensors like batch-norm gammas — must survive bit-exact,
//! because lossy error on such metadata destroys model accuracy (the
//! paper verifies this experimentally, consistent with DeepSZ).

use fedsz_nn::StateDict;

/// Default element-count threshold from the paper's implementation.
pub const DEFAULT_THRESHOLD: usize = 1000;

/// Whether a tensor belongs in the lossy partition.
///
/// # Examples
///
/// ```
/// use fedsz::partition::is_lossy;
///
/// assert!(is_lossy("features.0.weight", 23_232, 1000));
/// assert!(!is_lossy("features.0.bias", 23_232, 1000));      // not a weight
/// assert!(!is_lossy("bn.weight", 64, 1000));                // too small
/// assert!(!is_lossy("bn.running_mean", 4096, 1000));        // metadata
/// ```
pub fn is_lossy(name: &str, elements: usize, threshold: usize) -> bool {
    name.contains("weight") && elements > threshold
}

/// Summary of how a state dict splits under Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartitionReport {
    /// Tensors routed to the lossy partition.
    pub lossy_tensors: usize,
    /// Elements routed to the lossy partition.
    pub lossy_elements: usize,
    /// Tensors routed to the lossless partition.
    pub lossless_tensors: usize,
    /// Elements routed to the lossless partition.
    pub lossless_elements: usize,
}

impl PartitionReport {
    /// Fraction of elements that are lossy-compressible — the paper's
    /// "% Lossy Data" column in Table III.
    pub fn lossy_fraction(&self) -> f64 {
        let total = self.lossy_elements + self.lossless_elements;
        if total == 0 {
            return 0.0;
        }
        self.lossy_elements as f64 / total as f64
    }
}

/// Computes the partition split for a dict at a given threshold.
pub fn report(dict: &StateDict, threshold: usize) -> PartitionReport {
    let mut r = PartitionReport::default();
    for (name, tensor) in dict.iter() {
        if is_lossy(name, tensor.len(), threshold) {
            r.lossy_tensors += 1;
            r.lossy_elements += tensor.len();
        } else {
            r.lossless_tensors += 1;
            r.lossless_elements += tensor.len();
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_nn::models::specs::ModelSpec;

    #[test]
    fn rule_matches_algorithm_1() {
        assert!(is_lossy("classifier.1.weight", 37_748_736, DEFAULT_THRESHOLD));
        assert!(!is_lossy("classifier.1.bias", 4096, DEFAULT_THRESHOLD));
        assert!(!is_lossy("bn1.weight", 64, DEFAULT_THRESHOLD));
        // Exactly at threshold: NOT lossy (strict inequality).
        assert!(!is_lossy("w.weight", 1000, 1000));
        assert!(is_lossy("w.weight", 1001, 1000));
    }

    #[test]
    fn alexnet_lossy_fraction_matches_table_iii() {
        // Paper Table III: AlexNet is 99.98% lossy data.
        let spec = ModelSpec::alexnet();
        let dict = spec.instantiate(1);
        let r = report(&dict, DEFAULT_THRESHOLD);
        assert!(
            (0.9995..1.0).contains(&r.lossy_fraction()),
            "AlexNet lossy fraction {:.6}",
            r.lossy_fraction()
        );
    }

    #[test]
    fn mobilenet_lossy_fraction_matches_table_iii() {
        // Paper Table III: MobileNet-V2 is 96.94% lossy data.
        let dict = ModelSpec::mobilenet_v2().instantiate(1);
        let r = report(&dict, DEFAULT_THRESHOLD);
        assert!(
            (0.94..0.99).contains(&r.lossy_fraction()),
            "MobileNetV2 lossy fraction {:.4}",
            r.lossy_fraction()
        );
    }

    #[test]
    fn resnet50_lossy_fraction_matches_table_iii() {
        // Paper Table III: ResNet50 is 99.47% lossy data.
        let dict = ModelSpec::resnet50().instantiate(1);
        let r = report(&dict, DEFAULT_THRESHOLD);
        assert!(
            (0.985..0.999).contains(&r.lossy_fraction()),
            "ResNet50 lossy fraction {:.4}",
            r.lossy_fraction()
        );
    }

    #[test]
    fn report_totals_cover_everything() {
        let dict = ModelSpec::mobilenet_v2().instantiate_scaled(1, 0.01);
        let r = report(&dict, DEFAULT_THRESHOLD);
        assert_eq!(r.lossy_elements + r.lossless_elements, dict.total_elements());
        assert_eq!(r.lossy_tensors + r.lossless_tensors, dict.len());
    }
}
