//! Compressor selection as an optimization (the paper's Problem 1).
//!
//! Equation 2 frames EBLC choice as jointly maximizing compression ratio
//! and minimizing runtime inside a feasibility region bounded by the
//! network (`0 < T < S/B_N`, `1 <= R <= S`). This module solves the
//! discrete version the paper actually faces: benchmark each candidate
//! `(compressor, bound)` on a sample of the real update, discard
//! infeasible ones, and pick the candidate with the best end-to-end
//! round time (Eqn 1), which is the scalarization the paper's
//! evaluation ultimately uses.

use crate::timing::TransferPlan;
use crate::{ErrorBound, FedSz, FedSzConfig, LossyKind};
use fedsz_nn::StateDict;
use std::time::Instant;

/// One benchmarked candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The lossy compressor tried.
    pub lossy: LossyKind,
    /// The error bound tried.
    pub bound: ErrorBound,
    /// Measured cost profile, already rescaled to the full update size.
    pub plan: TransferPlan,
}

impl Candidate {
    /// End-to-end time for this candidate at `bandwidth_bps` (Eqn 1 LHS).
    pub fn round_time(&self, bandwidth_bps: f64) -> f64 {
        self.plan.compressed_time(bandwidth_bps)
    }

    /// Eqn 2's feasibility region at `bandwidth_bps`: the codec runtime
    /// must not exceed the uncompressed transfer time, and the ratio
    /// must be at least 1.
    pub fn feasible(&self, bandwidth_bps: f64) -> bool {
        let t = self.plan.compress_secs + self.plan.decompress_secs;
        t > 0.0 && t < self.plan.uncompressed_time(bandwidth_bps) && self.plan.ratio() >= 1.0
    }
}

/// Outcome of [`Advisor::recommend`].
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The winning configuration, `None` when sending raw is fastest.
    pub best: Option<Candidate>,
    /// Every candidate measured, for reporting.
    pub candidates: Vec<Candidate>,
    /// The uncompressed baseline time at the requested bandwidth.
    pub raw_secs: f64,
}

/// Benchmarks candidate configurations against a sample update.
#[derive(Debug, Clone)]
pub struct Advisor {
    lossy: Vec<LossyKind>,
    bounds: Vec<ErrorBound>,
}

impl Advisor {
    /// Candidates from the paper's sweep: all four EBLCs at REL
    /// `1e-4..1e-2` (the accuracy-safe region of Fig 5).
    pub fn paper_defaults() -> Self {
        Self {
            lossy: LossyKind::all().to_vec(),
            bounds: vec![
                ErrorBound::Relative(1e-4),
                ErrorBound::Relative(1e-3),
                ErrorBound::Relative(1e-2),
            ],
        }
    }

    /// Custom candidate grid.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty.
    pub fn new(lossy: Vec<LossyKind>, bounds: Vec<ErrorBound>) -> Self {
        assert!(!lossy.is_empty() && !bounds.is_empty(), "candidate grid must be non-empty");
        Self { lossy, bounds }
    }

    /// Benchmarks every candidate on `sample` (a representative state
    /// dict, possibly a scaled-down version of the real update whose
    /// full size is `full_bytes`) and recommends the fastest feasible
    /// configuration at `bandwidth_bps`.
    ///
    /// Returns `best: None` when no candidate beats sending raw — the
    /// high-bandwidth regime of Fig 8.
    pub fn recommend(
        &self,
        sample: &StateDict,
        full_bytes: usize,
        bandwidth_bps: f64,
    ) -> Recommendation {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        let inflate = full_bytes as f64 / sample.byte_size().max(1) as f64;
        let mut candidates = Vec::new();
        for &lossy in &self.lossy {
            for &bound in &self.bounds {
                let config =
                    FedSzConfig { lossy, ..FedSzConfig::default() }.with_error_bound(bound);
                let fedsz = FedSz::new(config);
                let t0 = Instant::now();
                let packed = match fedsz.compress(sample) {
                    Ok(p) => p,
                    Err(_) => continue, // unusable bound for this codec
                };
                let compress_secs = t0.elapsed().as_secs_f64() * inflate;
                let t1 = Instant::now();
                if fedsz.decompress(packed.bytes()).is_err() {
                    continue;
                }
                let decompress_secs = t1.elapsed().as_secs_f64() * inflate;
                candidates.push(Candidate {
                    lossy,
                    bound,
                    plan: TransferPlan {
                        compress_secs,
                        decompress_secs,
                        original_bytes: full_bytes,
                        compressed_bytes: (packed.bytes().len() as f64 * inflate) as usize,
                    },
                });
            }
        }
        let raw_secs = full_bytes as f64 * 8.0 / bandwidth_bps;
        let best = candidates
            .iter()
            .filter(|c| c.feasible(bandwidth_bps))
            .filter(|c| c.round_time(bandwidth_bps) < raw_secs)
            .min_by(|a, b| {
                a.round_time(bandwidth_bps)
                    .partial_cmp(&b.round_time(bandwidth_bps))
                    .expect("finite times")
            })
            .copied();
        Recommendation { best, candidates, raw_secs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::mbps;
    use fedsz_nn::models::specs::ModelSpec;

    fn sample() -> (StateDict, usize) {
        let spec = ModelSpec::mobilenet_v2();
        (spec.instantiate_scaled(4, 0.02), spec.byte_size())
    }

    #[test]
    fn low_bandwidth_recommends_compression() {
        let (dict, full) = sample();
        let rec = Advisor::paper_defaults().recommend(&dict, full, mbps(10.0));
        let best = rec.best.expect("compression must win at 10 Mbps");
        assert!(best.round_time(mbps(10.0)) < rec.raw_secs);
        assert!(best.plan.ratio() > 1.0);
    }

    #[test]
    fn extreme_bandwidth_recommends_raw() {
        let (dict, full) = sample();
        // 10 Tbps: transfer is free; any codec time loses.
        let rec = Advisor::paper_defaults().recommend(&dict, full, 1e13);
        assert!(rec.best.is_none(), "raw must win at terabit speeds: {:?}", rec.best);
    }

    #[test]
    fn candidates_cover_the_grid() {
        let (dict, full) = sample();
        let advisor =
            Advisor::new(vec![LossyKind::Sz2, LossyKind::Szx], vec![ErrorBound::Relative(1e-2)]);
        let rec = advisor.recommend(&dict, full, mbps(10.0));
        assert_eq!(rec.candidates.len(), 2);
    }

    #[test]
    fn looser_bound_never_loses_to_tighter_on_time_at_low_bandwidth() {
        // At transfer-dominated bandwidths the better-compressing bound
        // wins; this is the monotonicity Eqn 2's ratio objective encodes.
        let (dict, full) = sample();
        let advisor = Advisor::new(
            vec![LossyKind::Sz2],
            vec![ErrorBound::Relative(1e-2), ErrorBound::Relative(1e-4)],
        );
        let rec = advisor.recommend(&dict, full, mbps(1.0));
        let best = rec.best.expect("compression wins at 1 Mbps");
        assert_eq!(best.bound, ErrorBound::Relative(1e-2));
    }
}
