//! Byte-movement abstraction between clients and the server.
//!
//! The round engine is transport-agnostic: it hands payloads to a
//! [`Transport`] and gets back the bytes "the other side" observes, plus
//! the wire cost of moving them. Two implementations cover the repo's
//! historic split:
//!
//! * [`InMemoryTransport`] — the analytic path: payloads pass through
//!   untouched and the wire cost is the payload size. This is what
//!   `Experiment` always modelled.
//! * [`WireTransport`] — the protocol path: every payload is framed as a
//!   [`Message`] (magic + tag + CRC-32
//!   trailer), pushed through a loopback byte pipe, decoded and
//!   checksum-verified on the far side. The wire cost is the full frame,
//!   so framing overhead is part of the accounting — exactly what the
//!   old `run_session` measured with crossbeam channels and threads.
//!
//! Both transports are lossless byte movers, which is what makes the
//! wire-vs-analytic parity test meaningful: the same engine over either
//! transport must produce bit-identical global models.

use crate::protocol::Message;
use fedsz_codec::{CodecError, Result};
use fedsz_net::{FrameReader, FrameWriter, NetError};

/// Bytes delivered to the far side of a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// The payload as the receiver observes it. Left empty when
    /// `verbatim` is set on a broadcast: the receiver observes the
    /// sender's bytes unchanged, so no copy is materialized.
    pub payload: Vec<u8>,
    /// Whether the payload is a FedSZ stream (a compressed upload, or a
    /// downlink-encoded broadcast).
    pub compressed: bool,
    /// Bytes that crossed the wire, including any framing.
    pub wire_bytes: usize,
    /// Whether the transport guarantees `payload` is byte-identical to
    /// what the sender handed in. Lossless transports set this so the
    /// engine can share one parsed global dict across the cohort instead
    /// of re-parsing per client; a transport that may alter bytes must
    /// report `false`.
    pub verbatim: bool,
}

/// Moves bytes between the server and a client, reporting wire cost.
pub trait Transport {
    /// Short human-readable transport name (for reports).
    fn name(&self) -> &'static str;

    /// Ships the (possibly downlink-encoded) global model to one
    /// client; `compressed` states whether `dict_bytes` is a FedSZ
    /// stream rather than raw state-dict bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the transport corrupts or rejects
    /// the frame (cannot happen on the in-memory path).
    fn broadcast(
        &mut self,
        round: u32,
        client_id: u64,
        dict_bytes: &[u8],
        compressed: bool,
    ) -> Result<Delivered>;

    /// Ships one client's (possibly compressed) update to the server.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on frame corruption or protocol
    /// violations.
    fn upload(
        &mut self,
        round: u32,
        client_id: u64,
        payload: Vec<u8>,
        compressed: bool,
    ) -> Result<Delivered>;
}

/// The analytic transport: payloads are handed over untouched and wire
/// cost equals payload size. Zero overhead, zero copies beyond the
/// payload itself.
#[derive(Debug, Default, Clone)]
pub struct InMemoryTransport;

impl Transport for InMemoryTransport {
    fn name(&self) -> &'static str {
        "in-memory"
    }

    fn broadcast(
        &mut self,
        _round: u32,
        _client_id: u64,
        dict_bytes: &[u8],
        compressed: bool,
    ) -> Result<Delivered> {
        // Verbatim delivery: the receiver reads the sender's bytes, so
        // copying them here would be O(model) dead allocation per client.
        Ok(Delivered {
            payload: Vec::new(),
            compressed,
            wire_bytes: dict_bytes.len(),
            verbatim: true,
        })
    }

    fn upload(
        &mut self,
        _round: u32,
        _client_id: u64,
        payload: Vec<u8>,
        compressed: bool,
    ) -> Result<Delivered> {
        let wire_bytes = payload.len();
        Ok(Delivered { payload, compressed, wire_bytes, verbatim: true })
    }
}

/// The framed-wire transport: every payload round-trips through the
/// `FMSG` message format — pushed through the shared
/// [`FrameWriter`] into an in-memory pipe, then read back by the
/// shared [`FrameReader`] exactly as a socket peer would. One framing
/// implementation serves this loopback pipe and the real TCP runtime
/// ([`crate::net`]); only the byte carrier differs.
#[derive(Debug, Default, Clone, Copy)]
pub struct WireTransport;

impl WireTransport {
    /// Creates the loopback wire.
    pub fn new() -> Self {
        Self
    }

    fn send_and_receive(&mut self, message: Message) -> Result<(Message, usize)> {
        let mut pipe = Vec::new();
        let wire_bytes = FrameWriter::new(&mut pipe)
            .write_message(&message)
            .expect("writes to a Vec cannot fail");
        let decoded = match FrameReader::new(pipe.as_slice()).read_message() {
            Ok(Some(decoded)) => decoded,
            Ok(None) => return Err(CodecError::UnexpectedEof),
            Err(NetError::Codec(e)) => return Err(e),
            // An in-memory pipe has no socket to fail or time out.
            Err(_) => unreachable!("Vec-backed pipe cannot fail at the I/O layer"),
        };
        Ok((decoded, wire_bytes))
    }
}

impl Transport for WireTransport {
    fn name(&self) -> &'static str {
        "framed-wire"
    }

    fn broadcast(
        &mut self,
        round: u32,
        _client_id: u64,
        dict_bytes: &[u8],
        compressed: bool,
    ) -> Result<Delivered> {
        let message = if compressed {
            Message::EncodedGlobal { round, payload: dict_bytes.to_vec() }
        } else {
            Message::GlobalModel { round, dict_bytes: dict_bytes.to_vec() }
        };
        // Decode of a CRC-verified frame reproduces the sender's bytes
        // exactly, so either frame kind delivers verbatim.
        match self.send_and_receive(message)? {
            (Message::GlobalModel { dict_bytes, .. }, wire_bytes) => {
                Ok(Delivered { payload: dict_bytes, compressed: false, wire_bytes, verbatim: true })
            }
            (Message::EncodedGlobal { payload, .. }, wire_bytes) => {
                Ok(Delivered { payload, compressed: true, wire_bytes, verbatim: true })
            }
            _ => Err(CodecError::Corrupt("broadcast decoded to a different message")),
        }
    }

    fn upload(
        &mut self,
        round: u32,
        client_id: u64,
        payload: Vec<u8>,
        compressed: bool,
    ) -> Result<Delivered> {
        let message = Message::Update { round, client_id, payload, compressed };
        match self.send_and_receive(message)? {
            (Message::Update { round: r, payload, compressed, .. }, wire_bytes) => {
                if r != round {
                    return Err(CodecError::Corrupt("round mismatch on the wire"));
                }
                Ok(Delivered { payload, compressed, wire_bytes, verbatim: true })
            }
            _ => Err(CodecError::Corrupt("upload decoded to a different message")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_is_identity_with_payload_cost() {
        let mut transport = InMemoryTransport;
        let delivered = transport.upload(3, 1, vec![9u8; 100], true).unwrap();
        assert_eq!(delivered.payload, vec![9u8; 100]);
        assert!(delivered.compressed);
        assert_eq!(delivered.wire_bytes, 100);
        assert!(delivered.verbatim);
        let b = transport.broadcast(3, 1, &[1, 2, 3], false).unwrap();
        assert!(b.verbatim, "in-memory broadcast is verbatim");
        assert!(b.payload.is_empty(), "verbatim broadcast skips the copy");
        assert_eq!(b.wire_bytes, 3);
        let enc = transport.broadcast(3, 1, &[1, 2, 3], true).unwrap();
        assert!(enc.compressed, "the encoded flag must survive delivery");
    }

    #[test]
    fn wire_round_trips_and_counts_framing() {
        let mut transport = WireTransport::new();
        let payload = vec![7u8; 256];
        let delivered = transport.upload(2, 5, payload.clone(), false).unwrap();
        assert_eq!(delivered.payload, payload);
        assert!(!delivered.compressed);
        assert!(
            delivered.wire_bytes > payload.len(),
            "framing overhead must be accounted: {} <= {}",
            delivered.wire_bytes,
            payload.len()
        );
    }

    #[test]
    fn wire_broadcast_round_trips() {
        let mut transport = WireTransport::new();
        let dict_bytes = vec![42u8; 64];
        let delivered = transport.broadcast(0, 0, &dict_bytes, false).unwrap();
        assert_eq!(delivered.payload, dict_bytes);
        assert!(!delivered.compressed);
        assert!(delivered.wire_bytes > dict_bytes.len());
        let encoded = transport.broadcast(0, 0, &dict_bytes, true).unwrap();
        assert_eq!(encoded.payload, dict_bytes);
        assert!(encoded.compressed, "encoded broadcasts ride the EncodedGlobal frame");
        assert!(encoded.wire_bytes > dict_bytes.len());
    }

    #[test]
    fn transports_deliver_identical_payloads() {
        // The byte-level property the engine parity test builds on.
        let payload = (0u8..=255).collect::<Vec<_>>();
        let a = InMemoryTransport.upload(1, 2, payload.clone(), true).unwrap();
        let b = WireTransport::new().upload(1, 2, payload.clone(), true).unwrap();
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.compressed, b.compressed);
    }
}
