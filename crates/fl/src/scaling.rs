//! Weak/strong scaling harness (paper Figure 9).
//!
//! The paper scales MPI ranks on a cluster: weak scaling assigns one
//! client per core (2–128), strong scaling fixes 127 clients and grows
//! the core count. Here *workers* are OS threads doing real local
//! training and compression, while the shared 10 Mbps server link is
//! simulated — transfers serialize at the server, which is what makes
//! the uncompressed curves blow up and the FedSZ curves stay flat.
//!
//! [`ScalingConfig::shards`] extends the study past the paper: with `S`
//! edge aggregators the cohort splits into contiguous shards, each
//! edge's ingress pipe serializes only its own cohort, and the root
//! receives `S` partial-sum frames over a fast backbone instead of `N`
//! updates over the one constrained link — the sharded curves stay
//! flat where the flat server's serialize-everything curve blows up.

use crate::agg::{PartialSum, ShardPlan};
use crate::client::Client;
use crate::link::{self, Departure, LinkProfile, Topology};
use crate::protocol::Message;
use fedsz::{FedSz, FedSzConfig};
use fedsz_data::{DatasetKind, SyntheticConfig};
use fedsz_nn::models::tiny::TinyArch;
use fedsz_nn::{Model, StateDict};
use std::time::Instant;

/// Backbone bandwidth of an edge aggregator's uplink to the root.
const EDGE_BACKBONE_BPS: f64 = 1e9;

/// One point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Worker (thread) count — the paper's "MPI cores" axis.
    pub workers: usize,
    /// Clients participating in the round.
    pub clients: usize,
    /// Measured parallel compute time (train + compress) in seconds.
    pub compute_secs: f64,
    /// Simulated serialized transfer time at the server in seconds
    /// (under sharding: the slowest edge pipe plus the edge→root
    /// forward).
    pub comm_secs: f64,
    /// Bytes arriving at the root: every payload (flat) or one
    /// partial-sum frame per shard (sharded).
    pub root_ingress_bytes: usize,
}

impl ScalingPoint {
    /// The figure's y-axis: epoch time per client (compute + its share
    /// of the serialized link).
    pub fn epoch_secs(&self) -> f64 {
        self.compute_secs + self.comm_secs
    }
}

/// Parameters shared by both scaling modes.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Model architecture (the paper uses MobileNet-V2).
    pub arch: TinyArch,
    /// Dataset (the paper uses CIFAR-10).
    pub dataset: DatasetKind,
    /// Simulated server-link bandwidth in bits/s (the paper uses 10 Mbps).
    pub bandwidth_bps: f64,
    /// FedSZ configuration; `None` for the uncompressed baseline.
    pub compression: Option<FedSzConfig>,
    /// Synthetic data geometry (small defaults keep sweeps fast).
    pub data: SyntheticConfig,
    /// Base seed.
    pub seed: u64,
    /// Edge-aggregator count; `None` is the paper's flat server with
    /// one shared pipe, `Some(s)` splits the cohort over `s` edge
    /// ingress pipes (each at [`ScalingConfig::bandwidth_bps`]) that
    /// forward partial sums over a 1 Gbps backbone.
    pub shards: Option<usize>,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self {
            arch: TinyArch::MobileNetV2,
            dataset: DatasetKind::Cifar10Like,
            bandwidth_bps: 10e6,
            compression: Some(FedSzConfig { threshold: 128, ..FedSzConfig::default() }),
            data: SyntheticConfig {
                seed: 3,
                train_per_class: 4,
                test_per_class: 1,
                resolution: 16,
            },
            seed: 3,
            shards: None,
        }
    }
}

/// Runs one federated round with `clients` clients on `workers` threads,
/// measuring compute and simulating communication.
pub fn run_round(config: &ScalingConfig, clients: usize, workers: usize) -> ScalingPoint {
    assert!(clients > 0 && workers > 0, "clients and workers must be positive");
    let (train, _) = config.dataset.generate(&config.data);
    let shards = train.shard(clients);
    let channels = config.dataset.channels();
    let classes = config.dataset.classes();
    let hw = config.data.resolution;
    let mut all_clients: Vec<Client> = shards
        .into_iter()
        .enumerate()
        .map(|(id, shard)| {
            Client::new(
                id,
                config.arch.build(config.seed, channels, hw, classes),
                shard,
                8,
                0.05,
                config.seed.wrapping_add(id as u64),
            )
        })
        .collect();
    let fedsz = config.compression.map(FedSz::new);
    let global = config.arch.build(config.seed, channels, hw, classes).state_dict();

    // Partition clients across `workers` threads; each worker processes
    // its clients sequentially (like MPI ranks hosting many clients).
    let per_worker = clients.div_ceil(workers);
    let t0 = Instant::now();
    let payload_sizes: Vec<usize> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in all_clients.chunks_mut(per_worker) {
            let fedsz = fedsz.clone();
            let global = &global;
            handles.push(scope.spawn(move || {
                let mut sizes = Vec::with_capacity(chunk.len());
                for client in chunk {
                    client.load_global(global).expect("matching architecture");
                    client.train_epoch();
                    let update = client.update();
                    let bytes = match &fedsz {
                        Some(f) => f.compress(&update).expect("finite weights").into_bytes(),
                        None => update.to_bytes(),
                    };
                    sizes.push(bytes.len());
                }
                sizes
            }));
        }
        handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
    });
    let compute_secs = t0.elapsed().as_secs_f64();

    let (comm_secs, root_ingress_bytes) = match config.shards {
        None => {
            // Serialized shared-pipe accounting via the virtual-time
            // event queue (equivalent to summing per-payload transfer
            // times, but the same machinery the round engine uses).
            let topology = Topology::Shared(LinkProfile::symmetric(config.bandwidth_bps));
            let departures: Vec<Departure> = payload_sizes
                .iter()
                .enumerate()
                .map(|(client, &bytes)| Departure {
                    client,
                    ready_secs: 0.0,
                    bytes,
                    dropped: false,
                })
                .collect();
            let arrivals = link::schedule(&departures, &topology);
            (link::comm_secs(&arrivals, &topology), payload_sizes.iter().sum())
        }
        Some(shards) => sharded_comm(config, &global, &payload_sizes, shards),
    };
    ScalingPoint { workers, clients, compute_secs, comm_secs, root_ingress_bytes }
}

/// Sharded accounting: each edge's ingress pipe serializes only its own
/// cohort's payloads, then forwards one partial-sum frame over the
/// backbone; the round's comm time is the slowest edge chain, and root
/// ingress is the frames, not the payloads.
fn sharded_comm(
    config: &ScalingConfig,
    global: &StateDict,
    payload_sizes: &[usize],
    shards: usize,
) -> (f64, usize) {
    let plan = ShardPlan::new(payload_sizes.len(), shards);
    // The frame an edge ships is a function of the model geometry, not
    // of the cohort, so one exemplar partial — framed exactly as the
    // tree aggregator frames it — prices every edge.
    let mut exemplar = PartialSum::new();
    exemplar.accumulate(global, 1.0);
    let frame_bytes = Message::PartialSum {
        round: 0,
        shard: 0,
        clients: 1,
        weight: exemplar.weight_total(),
        payload: exemplar.encode_payload(),
    }
    .encode()
    .len();
    let edge_pipe = LinkProfile::symmetric(config.bandwidth_bps);
    let backbone = LinkProfile::symmetric(EDGE_BACKBONE_BPS);
    let mut slowest_edge = 0.0f64;
    for s in 0..plan.shards() {
        let ingress: f64 =
            plan.range(s).map(|client| edge_pipe.transfer_secs(payload_sizes[client])).sum();
        slowest_edge = slowest_edge.max(ingress + backbone.transfer_secs(frame_bytes));
    }
    (slowest_edge, plan.shards() * frame_bytes)
}

/// Weak scaling: one client per worker, workers in `worker_counts`.
pub fn weak_scaling(config: &ScalingConfig, worker_counts: &[usize]) -> Vec<ScalingPoint> {
    worker_counts.iter().map(|&w| run_round(config, w, w)).collect()
}

/// Strong scaling: a fixed client population spread over growing worker
/// counts (the paper fixes 127 clients).
pub fn strong_scaling(
    config: &ScalingConfig,
    clients: usize,
    worker_counts: &[usize],
) -> Vec<ScalingPoint> {
    worker_counts.iter().map(|&w| run_round(config, clients, w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(compress: bool) -> ScalingConfig {
        ScalingConfig {
            compression: compress.then(|| FedSzConfig { threshold: 128, ..FedSzConfig::default() }),
            data: SyntheticConfig {
                seed: 5,
                train_per_class: 2,
                test_per_class: 1,
                resolution: 16,
            },
            ..ScalingConfig::default()
        }
    }

    #[test]
    fn weak_scaling_comm_grows_with_clients() {
        let config = tiny_config(true);
        let points = weak_scaling(&config, &[1, 4]);
        assert_eq!(points.len(), 2);
        assert!(points[1].comm_secs > points[0].comm_secs * 2.0);
        assert_eq!(points[1].clients, 4);
    }

    #[test]
    fn compression_cuts_simulated_comm_time() {
        let plain = run_round(&tiny_config(false), 2, 2);
        let packed = run_round(&tiny_config(true), 2, 2);
        assert!(
            packed.comm_secs < plain.comm_secs / 1.5,
            "compressed {:.3}s vs plain {:.3}s",
            packed.comm_secs,
            plain.comm_secs
        );
    }

    #[test]
    fn sharded_edges_cut_comm_and_root_ingress() {
        // 16 uncompressed clients over 4 edge pipes: each edge
        // serializes 4 payloads instead of 16, and the root sees 4
        // partial-sum frames (8 B/element) instead of 16 payloads
        // (4 B/element) — a 2x ingress cut at this fan-in.
        let flat = run_round(&tiny_config(false), 16, 2);
        let mut config = tiny_config(false);
        config.shards = Some(4);
        let sharded = run_round(&config, 16, 2);
        assert!(
            sharded.comm_secs < flat.comm_secs / 2.0,
            "edge pipes must overlap: sharded {:.3}s vs flat {:.3}s",
            sharded.comm_secs,
            flat.comm_secs
        );
        assert!(
            sharded.root_ingress_bytes * 3 < flat.root_ingress_bytes * 2,
            "root ingress should drop: {} vs {}",
            sharded.root_ingress_bytes,
            flat.root_ingress_bytes
        );
    }

    #[test]
    fn strong_scaling_keeps_client_count() {
        let config = tiny_config(true);
        let points = strong_scaling(&config, 6, &[1, 2]);
        assert!(points.iter().all(|p| p.clients == 6));
        assert_eq!(points[0].workers, 1);
        assert_eq!(points[1].workers, 2);
        // Communication volume is worker-independent.
        let rel = (points[0].comm_secs - points[1].comm_secs).abs() / points[0].comm_secs;
        assert!(rel < 0.05, "comm should not depend on workers: {rel:.3}");
    }
}
