//! Weak/strong scaling harness (paper Figure 9).
//!
//! The paper scales MPI ranks on a cluster: weak scaling assigns one
//! client per core (2–128), strong scaling fixes 127 clients and grows
//! the core count. Here *workers* are OS threads doing real local
//! training and compression, while the shared 10 Mbps server link is
//! simulated — transfers serialize at the server, which is what makes
//! the uncompressed curves blow up and the FedSZ curves stay flat.
//!
//! [`ScalingConfig::shards`] extends the study past the paper: with `S`
//! edge aggregators the cohort splits into contiguous shards, each
//! edge's ingress pipe serializes only its own cohort, and the root
//! receives `S` partial-sum frames over a fast backbone instead of `N`
//! updates over the one constrained link — the sharded curves stay
//! flat where the flat server's serialize-everything curve blows up.
//! [`ScalingConfig::tree`] deepens the hierarchy (fan-outs root
//! downward): frames then hop level by level over the backbone, and
//! [`ScalingConfig::psum_lossless`] prices them through the lossless
//! partial-sum codec instead of as raw `f64` streams.

use crate::agg::{PartialSum, PsumForwarder, TreePlan};
use crate::client::Client;
use crate::link::{self, Departure, LinkProfile, Topology};
use crate::plan::{PlanError, StagePolicy};
use fedsz::{FedSz, FedSzConfig};
use fedsz_data::{DatasetKind, SyntheticConfig};
use fedsz_nn::models::tiny::TinyArch;
use fedsz_nn::{Model, StateDict};
use std::time::Instant;

/// Backbone bandwidth of an edge aggregator's uplink to the root.
const EDGE_BACKBONE_BPS: f64 = 1e9;

/// One point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Worker (thread) count — the paper's "MPI cores" axis.
    pub workers: usize,
    /// Clients participating in the round.
    pub clients: usize,
    /// Measured parallel compute time (train + compress) in seconds.
    pub compute_secs: f64,
    /// Simulated serialized transfer time at the server in seconds
    /// (under a tree: the slowest leaf pipe plus one backbone forward
    /// per level).
    pub comm_secs: f64,
    /// Bytes arriving at the root: every payload (flat) or one
    /// partial-sum frame per root child (tree).
    pub root_ingress_bytes: usize,
}

impl ScalingPoint {
    /// The figure's y-axis: epoch time per client (compute + its share
    /// of the serialized link).
    pub fn epoch_secs(&self) -> f64 {
        self.compute_secs + self.comm_secs
    }
}

/// Parameters shared by both scaling modes.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Model architecture (the paper uses MobileNet-V2).
    pub arch: TinyArch,
    /// Dataset (the paper uses CIFAR-10).
    pub dataset: DatasetKind,
    /// Simulated server-link bandwidth in bits/s (the paper uses 10 Mbps).
    pub bandwidth_bps: f64,
    /// FedSZ configuration; `None` for the uncompressed baseline.
    pub compression: Option<FedSzConfig>,
    /// Synthetic data geometry (small defaults keep sweeps fast).
    pub data: SyntheticConfig,
    /// Base seed.
    pub seed: u64,
    /// Edge-aggregator count; `None` is the paper's flat server with
    /// one shared pipe, `Some(s)` splits the cohort over `s` edge
    /// ingress pipes (each at [`ScalingConfig::bandwidth_bps`]) that
    /// forward partial sums over a 1 Gbps backbone. Shorthand for
    /// `tree: Some(vec![s])`; ignored when [`ScalingConfig::tree`] is
    /// set.
    pub shards: Option<usize>,
    /// Per-level fan-outs of a deeper aggregation hierarchy, root
    /// downward (`Some(vec![4, 8])` puts 32 leaf pipes under 4
    /// mid-tier nodes). Takes precedence over
    /// [`ScalingConfig::shards`].
    pub tree: Option<Vec<usize>>,
    /// Price partial-sum frames through the lossless
    /// [`PsumCodec`](fedsz_lossless::PsumCodec) instead of as raw
    /// `f64` streams.
    pub psum_lossless: bool,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self {
            arch: TinyArch::MobileNetV2,
            dataset: DatasetKind::Cifar10Like,
            bandwidth_bps: 10e6,
            compression: Some(FedSzConfig { threshold: 128, ..FedSzConfig::default() }),
            data: SyntheticConfig {
                seed: 3,
                train_per_class: 4,
                test_per_class: 1,
                resolution: 16,
            },
            seed: 3,
            shards: None,
            tree: None,
            psum_lossless: false,
        }
    }
}

impl ScalingConfig {
    /// Validates and canonicalizes the harness's topology and
    /// partial-sum knobs for a `clients`-wide round: the
    /// `shards`/`tree` pair becomes one [`TreePlan`] (`None` = flat
    /// server) and `psum_lossless` becomes the partial-sum-leg
    /// [`StagePolicy`] — the same plan-level vocabulary the round
    /// engine consumes. Surplus leaves (more edges than clients) stay
    /// legal here, as they are for explicit `tree` specs: empty edges
    /// simply never forward a frame.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when `shards`/`tree` conflict, a shard
    /// or fan-out count is zero, the bandwidth is not positive, or
    /// `clients == 0` — conditions the harness used to clamp or
    /// assert on mid-run.
    pub fn plan(&self, clients: usize) -> Result<(Option<TreePlan>, StagePolicy), PlanError> {
        if clients == 0 {
            return Err(PlanError::NoClients);
        }
        if !(self.bandwidth_bps.is_finite() && self.bandwidth_bps > 0.0) {
            return Err(PlanError::BadBandwidth(self.bandwidth_bps));
        }
        let fanouts = match (&self.tree, self.shards) {
            (Some(_), Some(_)) => return Err(PlanError::TopologyConflict),
            (Some(fanouts), None) => {
                crate::plan::validate_tree_fanouts(fanouts)?;
                Some(fanouts.clone())
            }
            (None, Some(0)) => return Err(PlanError::ShardsOutOfRange { shards: 0, clients }),
            (None, Some(shards)) => Some(vec![shards]),
            (None, None) => None,
        };
        let tree = fanouts.map(|f| TreePlan::new(clients, f));
        let psum = if self.psum_lossless { StagePolicy::Lossless } else { StagePolicy::Raw };
        psum.validate_for(crate::plan::StageLeg::Psum)?;
        Ok((tree, psum))
    }
}

/// Runs one federated round with `clients` clients on `workers` threads,
/// measuring compute and simulating communication.
pub fn run_round(config: &ScalingConfig, clients: usize, workers: usize) -> ScalingPoint {
    assert!(workers > 0, "workers must be positive");
    let (tree, psum) = config.plan(clients).unwrap_or_else(|e| panic!("{e}"));
    let (train, _) = config.dataset.generate(&config.data);
    let shards = train.shard(clients);
    let channels = config.dataset.channels();
    let classes = config.dataset.classes();
    let hw = config.data.resolution;
    let mut all_clients: Vec<Client> = shards
        .into_iter()
        .enumerate()
        .map(|(id, shard)| {
            Client::new(
                id,
                config.arch.build(config.seed, channels, hw, classes),
                shard,
                8,
                0.05,
                config.seed.wrapping_add(id as u64),
            )
        })
        .collect();
    let fedsz = config.compression.map(FedSz::new);
    let global = config.arch.build(config.seed, channels, hw, classes).state_dict();

    // Partition clients across `workers` threads; each worker processes
    // its clients sequentially (like MPI ranks hosting many clients).
    let per_worker = clients.div_ceil(workers);
    let t0 = Instant::now();
    let payload_sizes: Vec<usize> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in all_clients.chunks_mut(per_worker) {
            let fedsz = fedsz.clone();
            let global = &global;
            handles.push(scope.spawn(move || {
                let mut sizes = Vec::with_capacity(chunk.len());
                for client in chunk {
                    client.load_global(global).expect("matching architecture");
                    client.train_epoch();
                    let update = client.update();
                    let bytes = match &fedsz {
                        Some(f) => f.compress(&update).expect("finite weights").into_bytes(),
                        None => update.to_bytes(),
                    };
                    sizes.push(bytes.len());
                }
                sizes
            }));
        }
        handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
    });
    let compute_secs = t0.elapsed().as_secs_f64();

    let (comm_secs, root_ingress_bytes) = match tree {
        None => {
            // Serialized shared-pipe accounting via the virtual-time
            // event queue (equivalent to summing per-payload transfer
            // times, but the same machinery the round engine uses).
            let topology = Topology::Shared(LinkProfile::symmetric(config.bandwidth_bps));
            let departures: Vec<Departure> = payload_sizes
                .iter()
                .enumerate()
                .map(|(client, &bytes)| Departure {
                    client,
                    ready_secs: 0.0,
                    bytes,
                    dropped: false,
                })
                .collect();
            let arrivals = link::schedule(&departures, &topology);
            (link::comm_secs(&arrivals, &topology), payload_sizes.iter().sum())
        }
        Some(plan) => tree_comm(config, &global, &payload_sizes, plan, &psum),
    };
    ScalingPoint { workers, clients, compute_secs, comm_secs, root_ingress_bytes }
}

/// Hierarchical accounting: each leaf's ingress pipe serializes only
/// its own cohort's payloads, then one partial-sum frame hops up every
/// level of the tree over the backbone; the round's comm time is the
/// slowest leaf chain, and root ingress is the root's children's
/// frames, not the payloads.
fn tree_comm(
    config: &ScalingConfig,
    global: &StateDict,
    payload_sizes: &[usize],
    plan: TreePlan,
    psum: &StagePolicy,
) -> (f64, usize) {
    // The frame a node ships is a function of the model geometry, not
    // of the cohort, so one exemplar partial — framed by the same
    // `PsumForwarder` the tree aggregator uses, so the byte accounting
    // cannot drift from what the tree actually ships — prices every
    // hop.
    let mut exemplar = PartialSum::new();
    exemplar.accumulate(global, 1.0);
    let frame = PsumForwarder::from_policy(psum)
        .expect("scaling plan validated the psum policy")
        .frame(0, 0, &exemplar, None);
    let edge_pipe = LinkProfile::symmetric(config.bandwidth_bps);
    let backbone = LinkProfile::symmetric(EDGE_BACKBONE_BPS);
    let mut slowest_leaf = 0.0f64;
    for leaf in 0..plan.leaves() {
        let ingress: f64 = plan
            .leaf_range(leaf)
            .map(|client| edge_pipe.transfer_secs(payload_sizes[client]))
            .sum();
        slowest_leaf = slowest_leaf.max(ingress);
    }
    // Every level's forward rides the same backbone with an
    // identically-sized frame, so the chain adds one hop per level —
    // and when the frames are compressed, each hop also pays the
    // *measured* codec time (compress at the child, decompress at the
    // parent), exactly as the engine's tree prices it; a fast backbone
    // can therefore make the lossless frames a net loss here, which is
    // the trade-off the flag exists to study. Empty nodes never
    // forward (the aggregator skips them), so only the root's
    // *non-empty* children contribute ingress frames.
    let frame_bytes = frame.wire_bytes;
    let hops = (plan.depth() - 1) as f64;
    let comm = slowest_leaf + hops * (backbone.transfer_secs(frame_bytes) + frame.codec_secs);
    let active_children =
        (0..plan.nodes_at(1)).filter(|&node| !plan.node_range(1, node).is_empty()).count();
    (comm, active_children * frame_bytes)
}

/// Weak scaling: one client per worker, workers in `worker_counts`.
pub fn weak_scaling(config: &ScalingConfig, worker_counts: &[usize]) -> Vec<ScalingPoint> {
    worker_counts.iter().map(|&w| run_round(config, w, w)).collect()
}

/// Strong scaling: a fixed client population spread over growing worker
/// counts (the paper fixes 127 clients).
pub fn strong_scaling(
    config: &ScalingConfig,
    clients: usize,
    worker_counts: &[usize],
) -> Vec<ScalingPoint> {
    worker_counts.iter().map(|&w| run_round(config, clients, w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(compress: bool) -> ScalingConfig {
        ScalingConfig {
            compression: compress.then(|| FedSzConfig { threshold: 128, ..FedSzConfig::default() }),
            data: SyntheticConfig {
                seed: 5,
                train_per_class: 2,
                test_per_class: 1,
                resolution: 16,
            },
            ..ScalingConfig::default()
        }
    }

    #[test]
    fn weak_scaling_comm_grows_with_clients() {
        let config = tiny_config(true);
        let points = weak_scaling(&config, &[1, 4]);
        assert_eq!(points.len(), 2);
        assert!(points[1].comm_secs > points[0].comm_secs * 2.0);
        assert_eq!(points[1].clients, 4);
    }

    #[test]
    fn compression_cuts_simulated_comm_time() {
        let plain = run_round(&tiny_config(false), 2, 2);
        let packed = run_round(&tiny_config(true), 2, 2);
        assert!(
            packed.comm_secs < plain.comm_secs / 1.5,
            "compressed {:.3}s vs plain {:.3}s",
            packed.comm_secs,
            plain.comm_secs
        );
    }

    #[test]
    fn sharded_edges_cut_comm_and_root_ingress() {
        // 16 uncompressed clients over 4 edge pipes: each edge
        // serializes 4 payloads instead of 16, and the root sees 4
        // partial-sum frames (8 B/element) instead of 16 payloads
        // (4 B/element) — a 2x ingress cut at this fan-in.
        let flat = run_round(&tiny_config(false), 16, 2);
        let mut config = tiny_config(false);
        config.shards = Some(4);
        let sharded = run_round(&config, 16, 2);
        assert!(
            sharded.comm_secs < flat.comm_secs / 2.0,
            "edge pipes must overlap: sharded {:.3}s vs flat {:.3}s",
            sharded.comm_secs,
            flat.comm_secs
        );
        assert!(
            sharded.root_ingress_bytes * 3 < flat.root_ingress_bytes * 2,
            "root ingress should drop: {} vs {}",
            sharded.root_ingress_bytes,
            flat.root_ingress_bytes
        );
    }

    #[test]
    fn deep_tree_accounting_chains_hops_and_shrinks_frames() {
        // Depth 3 with the same 4 leaves: leaf serialization matches
        // the two-level case, the chain just adds one backbone hop and
        // the root sees 2 frames instead of 4.
        let mut two = tiny_config(false);
        two.shards = Some(4);
        let flat2 = run_round(&two, 16, 2);
        let mut three = tiny_config(false);
        three.tree = Some(vec![2, 2]);
        let deep = run_round(&three, 16, 2);
        assert!(
            deep.root_ingress_bytes < flat2.root_ingress_bytes,
            "2 root frames ({}) must undercut 4 ({})",
            deep.root_ingress_bytes,
            flat2.root_ingress_bytes
        );
        // The lossless psum codec shrinks every frame on the books.
        let mut packed = three.clone();
        packed.psum_lossless = true;
        let packed_point = run_round(&packed, 16, 2);
        assert!(
            packed_point.root_ingress_bytes < deep.root_ingress_bytes,
            "lossless frames ({}) must undercut raw ({})",
            packed_point.root_ingress_bytes,
            deep.root_ingress_bytes
        );
    }

    #[test]
    fn oversized_shard_count_counts_only_active_edges() {
        // 64 shards over 4 clients leaves 60 empty edges; the real
        // aggregator skips them, so the accounting must too — root
        // ingress matches a 4-shard run's, frame for frame.
        let mut few = tiny_config(false);
        few.shards = Some(4);
        let four = run_round(&few, 4, 2);
        let mut many = tiny_config(false);
        many.shards = Some(64);
        let sixty_four = run_round(&many, 4, 2);
        assert_eq!(
            four.root_ingress_bytes, sixty_four.root_ingress_bytes,
            "empty edges must not forward frames"
        );
    }

    #[test]
    fn scaling_plan_rejects_the_old_silent_degradations() {
        let mut config = tiny_config(false);
        config.shards = Some(0);
        assert_eq!(
            config.plan(4).unwrap_err(),
            PlanError::ShardsOutOfRange { shards: 0, clients: 4 }
        );
        config.shards = Some(2);
        config.tree = Some(vec![2, 2]);
        assert_eq!(config.plan(4).unwrap_err(), PlanError::TopologyConflict);
        config.shards = None;
        config.tree = Some(vec![2, 0]);
        assert_eq!(config.plan(4).unwrap_err(), PlanError::ZeroFanout { level: 1 });
        config.tree = None;
        config.bandwidth_bps = -1.0;
        assert!(matches!(config.plan(4).unwrap_err(), PlanError::BadBandwidth(_)));
        assert_eq!(tiny_config(false).plan(0).unwrap_err(), PlanError::NoClients);
        // Surplus edges stay legal (empty leaves never forward).
        let mut surplus = tiny_config(false);
        surplus.shards = Some(64);
        let (tree, psum) = surplus.plan(4).unwrap();
        assert_eq!(tree.unwrap().leaves(), 64);
        assert_eq!(psum, StagePolicy::Raw);
        let mut lossless = tiny_config(false);
        lossless.psum_lossless = true;
        let (_, psum) = lossless.plan(4).unwrap();
        assert_eq!(psum, StagePolicy::Lossless);
    }

    #[test]
    fn strong_scaling_keeps_client_count() {
        let config = tiny_config(true);
        let points = strong_scaling(&config, 6, &[1, 2]);
        assert!(points.iter().all(|p| p.clients == 6));
        assert_eq!(points[0].workers, 1);
        assert_eq!(points[1].workers, 2);
        // Communication volume is worker-independent.
        let rel = (points[0].comm_secs - points[1].comm_secs).abs() / points[0].comm_secs;
        assert!(rel < 0.05, "comm should not depend on workers: {rel:.3}");
    }
}
