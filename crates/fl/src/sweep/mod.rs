//! The scenario-matrix sweep driver: cross-product expansion, per-cell
//! seeds, the thread-pool executor, and the Pareto summary.
//!
//! One federated run answers one question; the evaluation questions the
//! ROADMAP cares about — does DP noise change the compression
//! trade-off, how do codec families behave under non-IID skew, what
//! does partial participation cost — are *grids*. This module turns a
//! declarative `[matrix]` table (axis name → list of values) into an
//! executed grid:
//!
//! ```text
//! [matrix]                 cell 0: dp-noise=0.0  uplink="topk:0.1"
//! dp-noise = [0.0, 0.5]    cell 1: dp-noise=0.0  uplink="q8"
//! uplink = ["topk:0.1",    cell 2: dp-noise=0.5  uplink="topk:0.1"
//!           "q8"]          cell 3: dp-noise=0.5  uplink="q8"
//! ```
//!
//! **Expansion order.** Axes expand in declaration order with the
//! *last* axis varying fastest (row-major odometer): cell `i`'s value
//! on axis `j` is `values_j[(i / stride_j) % len_j]` where `stride_j`
//! is the product of the lengths of the axes after `j`. The order is
//! part of the report contract — cell indices are stable across runs
//! and machines.
//!
//! **Per-cell seeds.** [`cell_seed`] derives each cell's base seed from
//! the sweep seed and the cell's linear index via a golden-ratio mixer.
//! Cell 0 (and therefore every matrix-less, single-cell sweep) keeps
//! the base seed *exactly*, which is what makes a 1-cell sweep
//! bit-identical to the equivalent `fedsz fl` run by construction.
//!
//! **Execution.** [`run_cells`] drains the expanded configurations
//! across a [`WorkerPool`] — the same bounded
//! fork-join helper the aggregation hot path uses — and returns
//! per-cell metrics in cell order regardless of which worker ran what.
//! Every cell must already hold a validated plan: the CLI front-end
//! validates the *whole* grid before any cell executes, so a sweep
//! either starts completely or not at all (no partial sweeps).
//!
//! **Summary.** [`pareto_front`] reduces the grid to its non-dominated
//! cells over (final accuracy ↑, total uplink bytes ↓, total virtual
//! seconds ↓) — the three axes the paper's evaluation trades against
//! each other.

use crate::agg::WorkerPool;
use crate::net::global_checksum;
use crate::{Experiment, FlConfig, RoundMetrics};

/// One axis of a scenario matrix: a spec key and the values it sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixAxis {
    /// The run-spec key this axis varies (e.g. `dp-noise`, `uplink`).
    pub key: String,
    /// The values, in declaration order. Never empty past
    /// [`SweepMatrix::new`].
    pub values: Vec<String>,
}

/// A validated cross-product scenario matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepMatrix {
    axes: Vec<MatrixAxis>,
}

/// One expanded cell: its stable linear index and its coordinates, one
/// `(key, value)` pair per axis in declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCell {
    /// Row-major linear index (the last axis varies fastest).
    pub index: usize,
    /// `(axis key, value)` per axis, in axis declaration order.
    pub coords: Vec<(String, String)>,
}

impl SweepMatrix {
    /// Builds a matrix from its axes. An empty axis list is the
    /// degenerate single-cell matrix (a spec without `[matrix]`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending axis when one has no
    /// values (an empty array cannot expand to any cell).
    pub fn new(axes: Vec<MatrixAxis>) -> Result<Self, String> {
        if let Some(axis) = axes.iter().find(|a| a.values.is_empty()) {
            return Err(format!("matrix axis `{}` has no values", axis.key));
        }
        Ok(Self { axes })
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[MatrixAxis] {
        &self.axes
    }

    /// Number of expanded cells: the product of the axis lengths (1
    /// for the degenerate axis-free matrix).
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// The coordinates of cell `index` in row-major order (last axis
    /// fastest).
    ///
    /// # Panics
    ///
    /// Panics when `index` is outside `0..cell_count()`.
    pub fn coords(&self, index: usize) -> Vec<(String, String)> {
        assert!(index < self.cell_count(), "cell {index} outside matrix");
        let mut stride = self.cell_count();
        self.axes
            .iter()
            .map(|axis| {
                stride /= axis.values.len();
                let value = &axis.values[(index / stride) % axis.values.len()];
                (axis.key.clone(), value.clone())
            })
            .collect()
    }

    /// Every cell of the matrix, in linear-index order.
    pub fn cells(&self) -> Vec<SweepCell> {
        (0..self.cell_count())
            .map(|index| SweepCell { index, coords: self.coords(index) })
            .collect()
    }
}

/// Derives cell `index`'s base seed from the sweep's seed: a
/// golden-ratio stride keeps neighbouring cells' RNG streams far
/// apart, and cell 0 keeps `base` exactly — so a single-cell sweep
/// reproduces the plain `fedsz fl` run bit for bit.
pub fn cell_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One executed cell: its linear index and the per-round metrics the
/// in-memory engine produced for it.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's linear index in the matrix.
    pub index: usize,
    /// Per-round metrics, exactly what `Experiment::run` returns for
    /// the cell's configuration.
    pub metrics: Vec<RoundMetrics>,
    /// The cell's final global model fingerprint — the same bit-parity
    /// checksum `fedsz fl` prints, so a one-cell sweep can be diffed
    /// against the plain run.
    pub checksum: u32,
}

/// Executes every cell configuration across a [`WorkerPool`] of
/// `threads` workers, returning outcomes in cell order. Callers must
/// have validated every configuration's plan first — the executor
/// panics (via [`Experiment::new`]) on an invalid cell rather than
/// producing a partial sweep.
pub fn run_cells(configs: &[FlConfig], threads: usize) -> Vec<CellOutcome> {
    let pool = WorkerPool::new(threads);
    pool.run(configs.len(), |index| {
        let mut exp = Experiment::new(configs[index].clone());
        let metrics = exp.run();
        let checksum = global_checksum(exp.global_state());
        CellOutcome { index, metrics, checksum }
    })
}

/// One cell's summary point for the Pareto reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Final-round test accuracy (higher is better).
    pub accuracy: f64,
    /// Total upstream bytes across rounds (lower is better).
    pub bytes: f64,
    /// Total virtual round seconds across rounds (lower is better).
    pub secs: f64,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: at least as good on every
    /// objective and strictly better on one.
    fn dominates(&self, other: &ParetoPoint) -> bool {
        let ge =
            self.accuracy >= other.accuracy && self.bytes <= other.bytes && self.secs <= other.secs;
        let strict =
            self.accuracy > other.accuracy || self.bytes < other.bytes || self.secs < other.secs;
        ge && strict
    }
}

/// Indices of the non-dominated points (the Pareto front over accuracy
/// ↑ / bytes ↓ / time ↓), in input order. Duplicate points all
/// survive — neither strictly dominates the other.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(i, p)| !points.iter().enumerate().any(|(j, q)| j != *i && q.dominates(p)))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis(key: &str, values: &[&str]) -> MatrixAxis {
        MatrixAxis { key: key.into(), values: values.iter().map(|v| v.to_string()).collect() }
    }

    #[test]
    fn axis_free_matrix_is_one_cell() {
        let matrix = SweepMatrix::new(Vec::new()).unwrap();
        assert_eq!(matrix.cell_count(), 1);
        assert_eq!(matrix.coords(0), Vec::<(String, String)>::new());
    }

    #[test]
    fn empty_axis_is_rejected_by_name() {
        let err = SweepMatrix::new(vec![axis("dp-noise", &[])]).unwrap_err();
        assert!(err.contains("dp-noise"), "{err}");
    }

    #[test]
    fn expansion_is_row_major_with_the_last_axis_fastest() {
        let matrix = SweepMatrix::new(vec![
            axis("noise", &["0.0", "0.5"]),
            axis("uplink", &["topk:0.1", "q8", "raw"]),
        ])
        .unwrap();
        assert_eq!(matrix.cell_count(), 6);
        let flat: Vec<(String, String)> =
            matrix.cells().iter().map(|c| (c.coords[0].1.clone(), c.coords[1].1.clone())).collect();
        assert_eq!(
            flat,
            [
                ("0.0", "topk:0.1"),
                ("0.0", "q8"),
                ("0.0", "raw"),
                ("0.5", "topk:0.1"),
                ("0.5", "q8"),
                ("0.5", "raw"),
            ]
            .map(|(a, b)| (a.to_string(), b.to_string()))
        );
    }

    #[test]
    fn cell_indices_are_stable_and_dense() {
        let matrix =
            SweepMatrix::new(vec![axis("a", &["1", "2"]), axis("b", &["x", "y"])]).unwrap();
        for (i, cell) in matrix.cells().iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.coords, matrix.coords(i));
        }
    }

    #[test]
    fn cell_zero_keeps_the_base_seed_exactly() {
        for base in [0u64, 7, 42, u64::MAX] {
            assert_eq!(cell_seed(base, 0), base);
        }
    }

    #[test]
    fn cell_seeds_differ_and_are_deterministic() {
        let seeds: Vec<u64> = (0..32).map(|i| cell_seed(42, i)).collect();
        let again: Vec<u64> = (0..32).map(|i| cell_seed(42, i)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "cell seeds must not collide");
    }

    #[test]
    fn executor_returns_cells_in_order_at_any_width() {
        let mut config = FlConfig::smoke_test();
        config.rounds = 1;
        config.data.train_per_class = 2;
        config.data.test_per_class = 1;
        config.worker_threads = Some(1);
        let configs: Vec<FlConfig> = (0..3)
            .map(|i| {
                let mut c = config.clone();
                c.seed = cell_seed(7, i);
                c.data.seed = c.seed;
                c
            })
            .collect();
        let serial = run_cells(&configs, 1);
        let parallel = run_cells(&configs, 3);
        assert_eq!(serial.len(), 3);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.index, p.index);
            assert_eq!(s.metrics[0].test_accuracy, p.metrics[0].test_accuracy);
            assert_eq!(s.metrics[0].upstream_bytes, p.metrics[0].upstream_bytes);
            assert_eq!(s.checksum, p.checksum, "pool width must not change the bits");
        }
    }

    #[test]
    fn pareto_front_keeps_only_non_dominated_points() {
        let points = vec![
            ParetoPoint { accuracy: 0.9, bytes: 100.0, secs: 10.0 },
            ParetoPoint { accuracy: 0.8, bytes: 50.0, secs: 10.0 },
            // Dominated by the first point on every axis.
            ParetoPoint { accuracy: 0.7, bytes: 200.0, secs: 20.0 },
            // Trades time for bytes: survives.
            ParetoPoint { accuracy: 0.8, bytes: 80.0, secs: 5.0 },
        ];
        assert_eq!(pareto_front(&points), vec![0, 1, 3]);
    }

    #[test]
    fn duplicate_points_all_survive_the_front() {
        let p = ParetoPoint { accuracy: 0.5, bytes: 10.0, secs: 1.0 };
        assert_eq!(pareto_front(&[p, p]), vec![0, 1]);
    }
}
