//! Simulated-bandwidth network model.
//!
//! The paper emulates constrained links (e.g. 10 Mbps edge uplinks) by
//! measuring MPI point-to-point bandwidth and sleeping for the remaining
//! transfer time. This model computes the same quantity analytically:
//! `seconds = bytes * 8 / bandwidth`, optionally with a fixed per-message
//! latency. Results are identical in expectation and free to evaluate,
//! which lets the scaling benches sweep 2–128 clients in seconds.

/// A fixed-bandwidth, fixed-latency point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedNetwork {
    bandwidth_bps: f64,
    latency_secs: f64,
}

impl SimulatedNetwork {
    /// Creates a link with the given bandwidth (bits/second) and zero
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics unless the bandwidth is positive and finite.
    pub fn new(bandwidth_bps: f64) -> Self {
        Self::with_latency(bandwidth_bps, 0.0)
    }

    /// Creates a link with bandwidth and a per-message latency.
    ///
    /// # Panics
    ///
    /// Panics unless bandwidth is positive/finite and latency is
    /// non-negative/finite.
    pub fn with_latency(bandwidth_bps: f64, latency_secs: f64) -> Self {
        assert!(bandwidth_bps.is_finite() && bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(latency_secs.is_finite() && latency_secs >= 0.0, "latency must be non-negative");
        Self { bandwidth_bps, latency_secs }
    }

    /// Link bandwidth in bits/second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// Simulated seconds to transfer `bytes`.
    pub fn transfer_secs(&self, bytes: usize) -> f64 {
        self.latency_secs + bytes as f64 * 8.0 / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_arithmetic() {
        // 10 Mbps, 230 MB -> 184 s (the paper's uncompressed AlexNet).
        let net = SimulatedNetwork::new(10e6);
        let t = net.transfer_secs(230_000_000);
        assert!((t - 184.0).abs() < 1e-9);
    }

    #[test]
    fn latency_adds_per_message() {
        let net = SimulatedNetwork::with_latency(1e9, 0.050);
        assert!((net.transfer_secs(0) - 0.050).abs() < 1e-12);
        assert!(net.transfer_secs(1_000_000) > 0.050);
    }

    #[test]
    fn faster_links_transfer_faster() {
        let slow = SimulatedNetwork::new(10e6);
        let fast = SimulatedNetwork::new(10e9);
        assert!(fast.transfer_secs(1 << 20) < slow.transfer_secs(1 << 20));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = SimulatedNetwork::new(0.0);
    }
}
