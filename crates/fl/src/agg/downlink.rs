//! Download-path compression: encode the global model once, fan it out.
//!
//! The paper compresses only the upload leg, yet every round also
//! broadcasts the full global model to every cohort client. This stage
//! closes that gap: [`Downlink::encode`] FedSZ-encodes the global model
//! *once per round* and the engine ships the same encoded bytes to all
//! `N` clients (or, under a sharded tree, to `S` edge aggregators that
//! fan it out) — so encode cost is paid once while transfer savings
//! multiply by the fan-out.
//!
//! Because decoding is lossy, the clients train from the error-bounded
//! reconstruction, exactly as the server trains from error-bounded
//! uploads on the other leg; the configured bound applies element-wise
//! (the downlink proptest pins this down).
//!
//! [`DownlinkMode::Adaptive`] applies the paper's Eqn 1 to the
//! broadcast leg: using an EWMA profile of measured encode/decode costs
//! it compares the compressed path (encode once + decode + compressed
//! transfer) against raw transfer on the cohort's *bottleneck* link,
//! and falls back to raw bytes whenever compression loses.

use crate::plan::{PlanError, StageLeg, StagePolicy};
use fedsz::timing::CostProfile;
use fedsz::{FedSz, FedSzConfig, Result};
use fedsz_nn::StateDict;
use std::time::Instant;

/// How the global model travels server→client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DownlinkMode {
    /// Raw state-dict bytes every round (the paper's setting).
    #[default]
    Raw,
    /// FedSZ-encode the broadcast every round.
    Compressed,
    /// Eqn 1 per round: compress unless the cost model says the
    /// bottleneck link would get the raw bytes there faster.
    Adaptive,
}

/// One round's encoded broadcast.
#[derive(Debug, Clone)]
pub struct DownlinkPayload {
    /// The bytes every cohort client receives.
    pub bytes: Vec<u8>,
    /// Whether `bytes` is a FedSZ stream (else raw state-dict bytes).
    pub compressed: bool,
    /// Measured encode wall time (zero for raw).
    pub encode_secs: f64,
    /// In-memory size of the model being broadcast.
    pub raw_bytes: usize,
    /// Eqn 1's predicted per-client cost of the compressed path when
    /// this round's decision priced a real plan (`None` for forced
    /// modes and unprofiled probe rounds).
    pub predicted_compressed_secs: Option<f64>,
    /// Eqn 1's predicted cost of shipping raw, paired with
    /// `predicted_compressed_secs`.
    pub predicted_raw_secs: Option<f64>,
}

impl DownlinkPayload {
    /// Broadcast compression ratio (raw model bytes over payload
    /// bytes; just under 1 for raw payloads, which carry a small
    /// serialization header).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.bytes.len().max(1) as f64
    }
}

/// The per-round broadcast encoder.
#[derive(Debug, Clone)]
pub struct Downlink {
    mode: DownlinkMode,
    codec: Option<FedSz>,
    /// EWMA cost profile of the broadcast codec (the same
    /// [`CostProfile`] type the uplink and partial-sum stages use).
    profile: Option<CostProfile>,
}

impl Downlink {
    /// Builds the stage.
    ///
    /// # Panics
    ///
    /// Panics when a compressing mode is requested without a codec
    /// configuration.
    pub fn new(mode: DownlinkMode, codec: Option<FedSzConfig>) -> Self {
        assert!(
            mode == DownlinkMode::Raw || codec.is_some(),
            "downlink compression requires a FedSZ configuration"
        );
        Self { mode, codec: codec.map(FedSz::new), profile: None }
    }

    /// Builds the stage from a validated plan-level [`StagePolicy`] —
    /// the constructor the plan-based engine and socket runtime use.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the policy is illegal on the
    /// broadcast leg (lossless, adaptive-over-raw, …), so even a
    /// hand-built plan cannot smuggle one in.
    pub fn from_policy(policy: &StagePolicy) -> std::result::Result<Self, PlanError> {
        policy.validate_for(StageLeg::Downlink)?;
        let (mode, codec) = match policy {
            StagePolicy::Raw => (DownlinkMode::Raw, None),
            StagePolicy::Lossy(config) => (DownlinkMode::Compressed, Some(*config)),
            StagePolicy::Adaptive { .. } => (DownlinkMode::Adaptive, policy.fedsz()),
            StagePolicy::Lossless
            | StagePolicy::TopK { .. }
            | StagePolicy::Quant { .. }
            | StagePolicy::AutoFamily { .. } => unreachable!("rejected by validate_for"),
        };
        Ok(Self::new(mode, codec))
    }

    /// The configured mode.
    pub fn mode(&self) -> DownlinkMode {
        self.mode
    }

    /// Eqn 1 on the broadcast leg: with a measured cost profile and a
    /// known bottleneck bandwidth, compress iff encode + decode +
    /// compressed transfer beats raw transfer *per cohort client*. The
    /// model is encoded once for the whole fan-out, so the encode cost
    /// is amortized over the cohort; decoding happens on every client.
    /// Until a profile exists the first round compresses to measure
    /// one.
    /// Returns the verdict plus, when a plan was actually priced, the
    /// predicted `(compressed_secs, raw_secs)` pair for the audit
    /// trail.
    fn decide(
        &self,
        raw: usize,
        bottleneck_bps: Option<f64>,
        cohort: usize,
    ) -> (bool, Option<(f64, f64)>) {
        match self.mode {
            DownlinkMode::Raw => (false, None),
            DownlinkMode::Compressed => (true, None),
            DownlinkMode::Adaptive => {
                let (Some(profile), Some(bw)) = (&self.profile, bottleneck_bps) else {
                    return (true, None);
                };
                // One encode serves the whole cohort, so its cost
                // amortizes over the fan-out; every client decodes.
                let mut plan = profile.plan(raw);
                plan.compress_secs /= cohort.max(1) as f64;
                (plan.worthwhile(bw), Some((plan.compressed_time(bw), plan.uncompressed_time(bw))))
            }
        }
    }

    /// Encodes one round's broadcast. `bottleneck_bps` is the slowest
    /// cohort downlink (drives the adaptive decision; `None` means no
    /// network model, which adaptive treats as "compress") and
    /// `cohort` the number of clients the one encode fans out to.
    ///
    /// # Panics
    ///
    /// Panics when the global model holds non-finite weights (the
    /// codec's contract).
    pub fn encode(
        &self,
        global: &StateDict,
        bottleneck_bps: Option<f64>,
        cohort: usize,
    ) -> DownlinkPayload {
        self.encode_reusing(global, bottleneck_bps, cohort, Vec::new())
    }

    /// [`Downlink::encode`] with a recycled byte buffer: `bytes` is
    /// cleared and refilled, so a caller that hands last round's
    /// [`DownlinkPayload::bytes`] back in pays zero broadcast
    /// allocations at steady state. Output is byte-identical to
    /// [`Downlink::encode`].
    ///
    /// # Panics
    ///
    /// Panics when the global model holds non-finite weights (the
    /// codec's contract).
    pub fn encode_reusing(
        &self,
        global: &StateDict,
        bottleneck_bps: Option<f64>,
        cohort: usize,
        mut bytes: Vec<u8>,
    ) -> DownlinkPayload {
        let raw_bytes = global.byte_size();
        let (compress, predicted) = self.decide(raw_bytes, bottleneck_bps, cohort);
        let (predicted_compressed_secs, predicted_raw_secs) =
            (predicted.map(|p| p.0), predicted.map(|p| p.1));
        if compress {
            let codec = self.codec.as_ref().expect("compressing mode implies a codec");
            let t0 = Instant::now();
            codec.compress_into(global, &mut bytes).expect("finite global weights");
            DownlinkPayload {
                bytes,
                compressed: true,
                encode_secs: t0.elapsed().as_secs_f64(),
                raw_bytes,
                predicted_compressed_secs,
                predicted_raw_secs,
            }
        } else {
            global.to_bytes_into(&mut bytes);
            DownlinkPayload {
                bytes,
                compressed: false,
                encode_secs: 0.0,
                raw_bytes,
                predicted_compressed_secs,
                predicted_raw_secs,
            }
        }
    }

    /// Decodes a received broadcast (FedSZ stream or raw dict bytes).
    ///
    /// # Errors
    ///
    /// Returns a codec error on malformed bytes.
    pub fn decode(&self, bytes: &[u8], compressed: bool) -> Result<StateDict> {
        if compressed {
            self.codec.as_ref().expect("compressed broadcast without codec").decompress(bytes)
        } else {
            StateDict::from_bytes(bytes)
        }
    }

    /// Folds one round's measured costs into the EWMA profile the
    /// adaptive decision uses. No-op for raw rounds (nothing was
    /// measured).
    pub fn observe(&mut self, payload: &DownlinkPayload, decode_secs: f64) {
        if !payload.compressed || payload.raw_bytes == 0 {
            return;
        }
        let raw = payload.raw_bytes as f64;
        let sample = CostProfile {
            compress_secs_per_byte: payload.encode_secs / raw,
            decompress_secs_per_byte: decode_secs / raw,
            ratio: payload.ratio().max(f64::MIN_POSITIVE),
        };
        self.profile = Some(CostProfile::blend(self.profile, sample));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_tensor::Tensor;

    fn model() -> StateDict {
        let mut dict = StateDict::new();
        let data: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.01).sin()).collect();
        dict.insert("enc.weight", Tensor::from_vec(vec![4096], data));
        dict.insert("enc.bias", Tensor::filled(vec![16], 0.25));
        dict
    }

    fn config() -> FedSzConfig {
        FedSzConfig { threshold: 128, ..FedSzConfig::default() }
    }

    #[test]
    fn raw_mode_ships_dict_bytes() {
        let downlink = Downlink::new(DownlinkMode::Raw, None);
        let payload = downlink.encode(&model(), Some(10e6), 4);
        assert!(!payload.compressed);
        assert_eq!(payload.bytes, model().to_bytes());
        let back = downlink.decode(&payload.bytes, payload.compressed).unwrap();
        assert_eq!(back, model());
    }

    #[test]
    fn compressed_mode_shrinks_and_round_trips() {
        let downlink = Downlink::new(DownlinkMode::Compressed, Some(config()));
        let payload = downlink.encode(&model(), None, 4);
        assert!(payload.compressed);
        assert!(payload.ratio() > 1.5, "ratio {:.2}", payload.ratio());
        let back = downlink.decode(&payload.bytes, payload.compressed).unwrap();
        assert_eq!(back.len(), model().len());
        // The lossless partition survives exactly.
        assert_eq!(back.get("enc.bias").unwrap().data(), model().get("enc.bias").unwrap().data());
    }

    #[test]
    fn adaptive_probes_then_respects_the_cost_model() {
        let mut downlink = Downlink::new(DownlinkMode::Adaptive, Some(config()));
        let probe = downlink.encode(&model(), Some(1e12), 2);
        assert!(probe.compressed, "first round must probe");
        let back = downlink.decode(&probe.bytes, true).unwrap();
        assert_eq!(back.len(), model().len());
        assert_eq!(probe.predicted_compressed_secs, None, "probe rounds price nothing");
        downlink.observe(&probe, 1e-3);
        // Terabit downlink: transfer is free, codec time can never pay.
        let fast = downlink.encode(&model(), Some(1e12), 2);
        assert!(!fast.compressed, "terabit links should get raw broadcasts");
        assert!(
            fast.predicted_compressed_secs.unwrap() >= fast.predicted_raw_secs.unwrap(),
            "raw verdict must match its own prediction"
        );
        // Kilobit downlink: transfer dominates, compression must win.
        let slow = downlink.encode(&model(), Some(1e3), 2);
        assert!(slow.compressed, "crawling links should get compressed broadcasts");
        assert!(
            slow.predicted_compressed_secs.unwrap() < slow.predicted_raw_secs.unwrap(),
            "compressed verdict must match its own prediction"
        );
    }

    #[test]
    #[should_panic(expected = "requires a FedSZ configuration")]
    fn compressing_mode_without_codec_rejected() {
        let _ = Downlink::new(DownlinkMode::Compressed, None);
    }

    #[test]
    fn encode_reusing_is_byte_identical_and_reuses_capacity() {
        for (downlink, label) in [
            (Downlink::new(DownlinkMode::Raw, None), "raw"),
            (Downlink::new(DownlinkMode::Compressed, Some(config())), "compressed"),
        ] {
            let fresh = downlink.encode(&model(), Some(10e6), 4);
            let recycled = downlink.encode_reusing(&model(), Some(10e6), 4, vec![0xFF; 7]);
            assert_eq!(recycled.bytes, fresh.bytes, "{label}");
            assert_eq!(recycled.compressed, fresh.compressed, "{label}");
            // Round-trip the buffer: steady state must not reallocate.
            let warm = downlink.encode_reusing(&model(), Some(10e6), 4, recycled.bytes);
            let cap = warm.bytes.capacity();
            let steady = downlink.encode_reusing(&model(), Some(10e6), 4, warm.bytes);
            assert_eq!(steady.bytes.capacity(), cap, "{label} reallocated at steady state");
            assert_eq!(steady.bytes, fresh.bytes, "{label}");
        }
    }
}
