//! Arbitrary-depth aggregation-tree planning.
//!
//! [`ShardPlan`](crate::agg::ShardPlan) partitions a cohort across one
//! tier of edge aggregators. [`TreePlan`] generalizes that to a full
//! hierarchy: a list of per-level fan-outs (root downward) whose
//! product is the leaf-aggregator count. Clients are partitioned
//! *contiguously and balanced* across the leaves, and every internal
//! node owns exactly the union of its children's ranges — so membership
//! at every level is a pure function of `(clients, fanouts)` and no
//! routing table ever crosses the wire.
//!
//! ```text
//! TreePlan::new(12, vec![2, 3])        depth 3, fan-outs 2x3
//!
//! level 0                  root                  1 node
//!                        /      \
//! level 1             n0          n1             2 nodes
//!                   / | \       / | \
//! level 2         l0 l1 l2    l3 l4 l5           6 leaves
//! clients        0,1|2,3|4,5|6,7|8,9|10,11       contiguous ranges
//! ```
//!
//! The same exactness argument as the two-level tree applies at any
//! depth: each level merges [`ExactAcc`](crate::agg::ExactAcc)
//! accumulators, whose integer addition is associative, so the level
//! structure cannot move a single bit of the final model.

use std::ops::Range;

/// The shape of an arbitrary-depth aggregation hierarchy.
///
/// `fanouts[l]` is the number of children under each node at level `l`
/// (level 0 is the root); clients hang off the last level's nodes (the
/// *leaf aggregators*). A two-level `--shards S` tree is
/// `TreePlan::new(clients, vec![S])`.
///
/// Leaf ranges are balanced to within one client. A plan with more
/// leaves than clients is legal — surplus leaves own empty ranges and
/// simply never forward a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePlan {
    clients: usize,
    fanouts: Vec<usize>,
}

impl TreePlan {
    /// Builds a plan over `clients` clients with the given per-level
    /// fan-outs (root downward).
    ///
    /// # Panics
    ///
    /// Panics when `clients == 0`, when `fanouts` is empty, when any
    /// fan-out is zero, or when the leaf count overflows `usize`.
    pub fn new(clients: usize, fanouts: Vec<usize>) -> Self {
        assert!(clients > 0, "need at least one client to plan a tree");
        assert!(!fanouts.is_empty(), "a tree needs at least one aggregator level");
        assert!(fanouts.iter().all(|&f| f > 0), "every fan-out must be positive");
        fanouts
            .iter()
            .try_fold(1usize, |acc, &f| acc.checked_mul(f))
            .expect("leaf count overflows usize");
        Self { clients, fanouts }
    }

    /// Parses a `--tree` spec like `"4x8x32"` into per-level fan-outs
    /// (root downward).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending component when the spec
    /// is empty or any component is not a positive integer.
    pub fn parse_fanouts(spec: &str) -> Result<Vec<usize>, String> {
        if spec.trim().is_empty() {
            return Err("empty tree spec (want e.g. 4x8x32)".to_string());
        }
        spec.split('x')
            .map(|part| match part.trim().parse::<usize>() {
                Ok(f) if f > 0 => Ok(f),
                _ => Err(format!("bad tree fan-out `{part}` in `{spec}` (want e.g. 4x8x32)")),
            })
            .collect()
    }

    /// Total clients covered by the plan.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// The per-level fan-outs, root downward.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Tree depth counting the root: a `--shards S` tree has depth 2.
    pub fn depth(&self) -> usize {
        self.fanouts.len() + 1
    }

    /// Number of aggregator nodes at `level` (0 = the root, so
    /// `nodes_at(0) == 1`; the leaves sit at `depth() - 1`).
    ///
    /// # Panics
    ///
    /// Panics when `level >= depth()`.
    pub fn nodes_at(&self, level: usize) -> usize {
        assert!(level < self.depth(), "level {level} outside depth-{} tree", self.depth());
        self.fanouts[..level].iter().product()
    }

    /// Number of leaf aggregators (the product of all fan-outs).
    pub fn leaves(&self) -> usize {
        self.nodes_at(self.depth() - 1)
    }

    /// The leaf aggregator that owns `client`.
    ///
    /// # Panics
    ///
    /// Panics when `client` is outside the plan.
    pub fn leaf_of(&self, client: usize) -> usize {
        assert!(client < self.clients, "client {client} outside plan of {}", self.clients);
        let leaves = self.leaves();
        let base = self.clients / leaves;
        let extra = self.clients % leaves;
        let wide = extra * (base + 1);
        if client < wide {
            client / (base + 1)
        } else {
            extra + (client - wide) / base.max(1)
        }
    }

    /// The contiguous client-id range leaf `leaf` owns (balanced to
    /// within one client; empty when there are more leaves than
    /// clients).
    ///
    /// # Panics
    ///
    /// Panics when `leaf >= self.leaves()`.
    pub fn leaf_range(&self, leaf: usize) -> Range<usize> {
        let leaves = self.leaves();
        assert!(leaf < leaves, "leaf {leaf} outside plan of {leaves}");
        let base = self.clients / leaves;
        let extra = self.clients % leaves;
        let start = leaf * base + leaf.min(extra);
        let len = base + usize::from(leaf < extra);
        start..start + len
    }

    /// The contiguous client-id range node `node` at `level` owns: the
    /// union of its descendant leaves' ranges.
    ///
    /// # Panics
    ///
    /// Panics when `level >= depth()` or `node >= nodes_at(level)`.
    pub fn node_range(&self, level: usize, node: usize) -> Range<usize> {
        assert!(node < self.nodes_at(level), "node {node} outside level {level}");
        let stride: usize = self.fanouts[level..].iter().product();
        let first = self.leaf_range(node * stride);
        let last = self.leaf_range((node + 1) * stride - 1);
        first.start..last.end
    }

    /// The range of child indices (at `level + 1`) under node `node` at
    /// `level`.
    ///
    /// # Panics
    ///
    /// Panics when `level + 1 >= depth()` or `node >= nodes_at(level)`.
    pub fn children(&self, level: usize, node: usize) -> Range<usize> {
        assert!(level + 1 < self.depth(), "leaves have no children");
        assert!(node < self.nodes_at(level), "node {node} outside level {level}");
        let fanout = self.fanouts[level];
        node * fanout..(node + 1) * fanout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_plan_matches_shard_semantics() {
        let plan = TreePlan::new(10, vec![3]);
        assert_eq!(plan.depth(), 2);
        assert_eq!(plan.leaves(), 3);
        assert_eq!(plan.nodes_at(0), 1);
        let sizes: Vec<usize> = (0..3).map(|l| plan.leaf_range(l).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn leaf_ranges_are_contiguous_and_inverted_by_leaf_of() {
        for (clients, fanouts) in [
            (12, vec![2, 3]),
            (100, vec![4, 8]),
            (7, vec![2, 2, 2]), // more leaves than clients
            (1000, vec![4, 4, 4]),
            (5, vec![9]),
        ] {
            let plan = TreePlan::new(clients, fanouts.clone());
            let mut covered = 0usize;
            for leaf in 0..plan.leaves() {
                let range = plan.leaf_range(leaf);
                assert_eq!(range.start, covered, "ranges must be contiguous ({fanouts:?})");
                for c in range.clone() {
                    assert_eq!(plan.leaf_of(c), leaf, "leaf_of must invert leaf_range");
                }
                covered = range.end;
            }
            assert_eq!(covered, clients, "ranges must cover every client");
        }
    }

    #[test]
    fn node_ranges_union_their_children() {
        let plan = TreePlan::new(100, vec![3, 2, 4]);
        assert_eq!(plan.depth(), 4);
        assert_eq!(plan.node_range(0, 0), 0..100, "the root owns everyone");
        for level in 0..plan.depth() - 1 {
            for node in 0..plan.nodes_at(level) {
                let range = plan.node_range(level, node);
                let children = plan.children(level, node);
                assert_eq!(range.start, plan.node_range(level + 1, children.start).start);
                assert_eq!(range.end, plan.node_range(level + 1, children.end - 1).end);
            }
        }
    }

    #[test]
    fn parse_accepts_specs_and_rejects_junk() {
        assert_eq!(TreePlan::parse_fanouts("4x8x32").unwrap(), vec![4, 8, 32]);
        assert_eq!(TreePlan::parse_fanouts("16").unwrap(), vec![16]);
        assert!(TreePlan::parse_fanouts("").is_err());
        assert!(TreePlan::parse_fanouts("4x0x2").is_err());
        assert!(TreePlan::parse_fanouts("4xtwo").is_err());
    }

    #[test]
    #[should_panic(expected = "at least one aggregator level")]
    fn empty_fanouts_rejected() {
        let _ = TreePlan::new(4, Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        let _ = TreePlan::new(0, vec![2]);
    }
}
