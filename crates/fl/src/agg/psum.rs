//! Partial-sum frame forwarding: raw, lossless, or Eqn-1 adaptive.
//!
//! Every non-root aggregator in a tree ships its merged
//! [`PartialSum`] to its parent once per round.
//! The payload is a stream of `f64` sums — 2x the bytes of the raw
//! `f32` uploads it summarizes — and, unlike the uploads, it must
//! survive the hop *bit-exactly* or the tree loses its parity guarantee
//! with flat FedAvg. That rules out FedSZ's lossy stage but not
//! compression altogether: [`PsumCodec`] (byte shuffle over the `f64`
//! planes + an LZ/entropy stage) shrinks the frames losslessly.
//!
//! [`PsumForwarder`] is the per-edge policy. [`PsumMode::Adaptive`]
//! replays the paper's Eqn 1 on the aggregator backbone: an EWMA
//! [`CostProfile`] of measured encode/decode costs prices the
//! compressed path against raw transfer on each edge's own uplink, and
//! slow edges compress while fast ones send raw — the same decision
//! the downlink stage makes for the broadcast leg, pointed at the
//! aggregation path instead.

use crate::agg::shard::PartialSum;
use crate::plan::{PlanError, StageLeg, StagePolicy};
use crate::protocol::Message;
use fedsz::timing::CostProfile;
use fedsz_lossless::PsumCodec;
use std::time::Instant;

/// How partial-sum frames travel between aggregator levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PsumMode {
    /// Raw `f64` payloads every hop (PR 2's behavior).
    #[default]
    Raw,
    /// Losslessly compress every frame with [`PsumCodec`].
    Lossless,
    /// Eqn 1 per edge: compress unless the edge's uplink would move
    /// the raw frame faster than codec time + compressed transfer.
    Adaptive,
}

impl PsumMode {
    /// Short human-readable name (for reports).
    pub fn name(self) -> &'static str {
        match self {
            PsumMode::Raw => "raw",
            PsumMode::Lossless => "lossless",
            PsumMode::Adaptive => "adaptive",
        }
    }
}

/// One priced partial-sum frame, ready for the wire accounting.
#[derive(Debug, Clone)]
pub struct PsumFrame {
    /// The full encoded wire frame (header + payload + CRC).
    pub wire_bytes: usize,
    /// The raw (uncompressed) payload size.
    pub payload_bytes: usize,
    /// The payload size actually shipped (equals `payload_bytes` for
    /// raw frames).
    pub shipped_payload_bytes: usize,
    /// Whether the frame rides [`Message::PartialSumCompressed`].
    pub compressed: bool,
    /// Measured codec wall time for this frame (compress at the child
    /// plus decompress at the parent; zero for raw frames).
    pub codec_secs: f64,
    /// The measured cost sample behind `codec_secs` (compressed frames
    /// only). [`PsumForwarder::price`] leaves folding it into the EWMA
    /// profile to the caller — via [`PsumForwarder::observe`] — so
    /// independent frames can be priced in parallel and observed in a
    /// deterministic order afterwards.
    pub sample: Option<CostProfile>,
    /// What Eqn 1 predicted the *compressed* path would cost end to
    /// end (`t_C + t_D + S'·8/B_N`) when this frame was priced —
    /// `None` unless an adaptive profile and an edge bandwidth priced
    /// a real [`fedsz::timing::TransferPlan`].
    pub predicted_compressed_secs: Option<f64>,
    /// What Eqn 1 predicted the raw path would cost (`S·8/B_N`);
    /// `None` on unpriced decisions, like `predicted_compressed_secs`.
    pub predicted_raw_secs: Option<f64>,
}

/// Sizes the wire frame a partial sum would ride without building it:
/// the payload is lent to a [`Message`] just long enough for
/// [`Message::encoded_len`] and handed back, so the caller's scratch
/// buffer survives.
fn psum_wire_len(
    compressed: bool,
    round: usize,
    node: usize,
    clients: u32,
    weight: f64,
    payload: &mut Vec<u8>,
) -> usize {
    let round = round as u32;
    let shard = node as u32;
    let lent = std::mem::take(payload);
    let msg = if compressed {
        Message::PartialSumCompressed { round, shard, clients, weight, payload: lent }
    } else {
        Message::PartialSum { round, shard, clients, weight, payload: lent }
    };
    let len = msg.encoded_len();
    match msg {
        Message::PartialSum { payload: lent, .. }
        | Message::PartialSumCompressed { payload: lent, .. } => *payload = lent,
        _ => unreachable!("constructed above"),
    }
    len
}

/// Reusable per-worker buffers for frame pricing: the encoded payload
/// image and the compressed frame. One scratch per pricing worker
/// (not per frame) keeps steady-state rounds free of per-frame `Vec`
/// growth.
#[derive(Debug, Clone, Default)]
pub struct PsumScratch {
    payload: Vec<u8>,
    packed: Vec<u8>,
}

/// The per-edge compress-or-not stage for partial-sum frames.
#[derive(Debug, Clone, Default)]
pub struct PsumForwarder {
    mode: PsumMode,
    codec: PsumCodec,
    profile: Option<CostProfile>,
}

impl PsumForwarder {
    /// Builds the forwarder in the given mode.
    pub fn new(mode: PsumMode) -> Self {
        Self { mode, codec: PsumCodec::new(), profile: None }
    }

    /// Builds the forwarder from a validated plan-level
    /// [`StagePolicy`] — the constructor the plan-based engine uses.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the policy is illegal on the
    /// partial-sum leg (a lossy policy here would break the tree's
    /// bit-parity with flat FedAvg).
    pub fn from_policy(policy: &StagePolicy) -> Result<Self, PlanError> {
        policy.validate_for(StageLeg::Psum)?;
        let mode = match policy {
            StagePolicy::Raw => PsumMode::Raw,
            StagePolicy::Lossless => PsumMode::Lossless,
            StagePolicy::Adaptive { .. } => PsumMode::Adaptive,
            StagePolicy::Lossy(_)
            | StagePolicy::TopK { .. }
            | StagePolicy::Quant { .. }
            | StagePolicy::AutoFamily { .. } => unreachable!("rejected by validate_for"),
        };
        Ok(Self::new(mode))
    }

    /// The configured mode.
    pub fn mode(&self) -> PsumMode {
        self.mode
    }

    /// Eqn 1 on one edge: with a measured cost profile and the edge's
    /// uplink bandwidth, compress iff encode + decode + compressed
    /// transfer beats raw transfer. Until a profile exists (or without
    /// a network model) the frame compresses, which measures one.
    ///
    /// Returns the verdict plus, when a plan was actually priced, the
    /// predicted `(compressed_secs, raw_secs)` pair — the audit trail
    /// the telemetry layer attaches to each frame.
    fn decide(&self, raw: usize, bandwidth_bps: Option<f64>) -> (bool, Option<(f64, f64)>) {
        match self.mode {
            PsumMode::Raw => (false, None),
            PsumMode::Lossless => (true, None),
            PsumMode::Adaptive => match (&self.profile, bandwidth_bps) {
                (Some(profile), Some(bw)) => {
                    let plan = profile.plan(raw);
                    (
                        plan.worthwhile(bw),
                        Some((plan.compressed_time(bw), plan.uncompressed_time(bw))),
                    )
                }
                _ => (true, None),
            },
        }
    }

    /// Encodes (and prices) the frame node `node` ships for `partial`,
    /// measuring real codec costs. Takes `&self` so independent frames
    /// can be priced on parallel workers; fold each frame's
    /// [`PsumFrame::sample`] back with [`PsumForwarder::observe`] (in
    /// a deterministic order) to advance the EWMA profile. The
    /// in-process tree merges exact accumulators, so the decompressed
    /// bytes are only used to *verify* the codec round trip — a
    /// mismatch would break bit-parity and panics immediately.
    ///
    /// # Panics
    ///
    /// Panics if the lossless codec fails to reproduce its input (a
    /// codec bug, never data-dependent).
    pub fn price(
        &self,
        round: usize,
        node: usize,
        partial: &PartialSum,
        bandwidth_bps: Option<f64>,
    ) -> PsumFrame {
        self.price_with(round, node, partial, bandwidth_bps, &mut PsumScratch::default())
    }

    /// [`PsumForwarder::price`] with caller-owned scratch buffers, the
    /// steady-state form: the payload image and compressed frame are
    /// built in `scratch` instead of freshly-allocated vectors, and the
    /// wire size comes from [`Message::encoded_len`] so no frame is
    /// materialized just to be measured.
    ///
    /// The codec round trip is *verified* on every frame in debug
    /// builds (the bit-parity guarantee the test suite pins) but only
    /// until a cost profile exists in release builds: the parent-side
    /// decompress is work an in-process tree never otherwise does, and
    /// re-checking a deterministic codec per frame was a large slice of
    /// the tree's single-thread overhead at 10^3+ clients. Once the
    /// EWMA profile is seeded, release builds charge the profiled
    /// decompress cost instead of measuring one.
    ///
    /// # Panics
    ///
    /// Panics if a verified round trip fails to reproduce its input (a
    /// codec bug, never data-dependent).
    pub fn price_with(
        &self,
        round: usize,
        node: usize,
        partial: &PartialSum,
        bandwidth_bps: Option<f64>,
        scratch: &mut PsumScratch,
    ) -> PsumFrame {
        partial.encode_payload_into(&mut scratch.payload);
        let payload_bytes = scratch.payload.len();
        let clients = partial.contributions() as u32;
        let weight = partial.weight_total();
        let (compress, predicted) = self.decide(payload_bytes, bandwidth_bps);
        let (predicted_compressed_secs, predicted_raw_secs) =
            (predicted.map(|p| p.0), predicted.map(|p| p.1));
        if compress {
            let t0 = Instant::now();
            self.codec.compress_into(&scratch.payload, &mut scratch.packed);
            let compress_secs = t0.elapsed().as_secs_f64();
            let shipped_payload_bytes = scratch.packed.len();
            let decompress_secs = if cfg!(debug_assertions) || self.profile.is_none() {
                let t1 = Instant::now();
                let back =
                    self.codec.decompress(&scratch.packed).expect("self-produced psum frame");
                let secs = t1.elapsed().as_secs_f64();
                assert_eq!(
                    back, scratch.payload,
                    "lossless psum codec must round-trip bit-exactly"
                );
                secs
            } else {
                self.profile.map_or(0.0, |p| p.decompress_secs_per_byte * payload_bytes as f64)
            };
            let sample = CostProfile {
                compress_secs_per_byte: compress_secs / payload_bytes.max(1) as f64,
                decompress_secs_per_byte: decompress_secs / payload_bytes.max(1) as f64,
                ratio: payload_bytes as f64 / shipped_payload_bytes.max(1) as f64,
            };
            let wire_bytes = psum_wire_len(true, round, node, clients, weight, &mut scratch.packed);
            PsumFrame {
                wire_bytes,
                payload_bytes,
                shipped_payload_bytes,
                compressed: true,
                codec_secs: compress_secs + decompress_secs,
                sample: Some(sample),
                predicted_compressed_secs,
                predicted_raw_secs,
            }
        } else {
            let wire_bytes =
                psum_wire_len(false, round, node, clients, weight, &mut scratch.payload);
            PsumFrame {
                wire_bytes,
                payload_bytes,
                shipped_payload_bytes: payload_bytes,
                compressed: false,
                codec_secs: 0.0,
                sample: None,
                predicted_compressed_secs,
                predicted_raw_secs,
            }
        }
    }

    /// Folds one priced frame's measured costs into the EWMA profile
    /// (no-op for raw frames, which measured nothing).
    pub fn observe(&mut self, frame: &PsumFrame) {
        if let Some(sample) = frame.sample {
            self.profile = Some(CostProfile::blend(self.profile, sample));
        }
    }

    /// Prices a frame and immediately observes its costs — the
    /// convenience path when frames are produced one at a time.
    pub fn frame(
        &mut self,
        round: usize,
        node: usize,
        partial: &PartialSum,
        bandwidth_bps: Option<f64>,
    ) -> PsumFrame {
        let frame = self.price(round, node, partial, bandwidth_bps);
        self.observe(&frame);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_nn::StateDict;
    use fedsz_tensor::Tensor;

    fn partial(n: usize) -> PartialSum {
        let mut dict = StateDict::new();
        let data: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        dict.insert("w.weight", Tensor::from_vec(vec![n], data));
        let mut sum = PartialSum::new();
        sum.accumulate(&dict, 2.0);
        sum
    }

    #[test]
    fn raw_mode_ships_plain_frames() {
        let mut fwd = PsumForwarder::new(PsumMode::Raw);
        let frame = fwd.frame(0, 3, &partial(256), Some(1e6));
        assert!(!frame.compressed);
        assert_eq!(frame.shipped_payload_bytes, frame.payload_bytes);
        assert_eq!(frame.codec_secs, 0.0);
        assert!(frame.wire_bytes > frame.payload_bytes, "framing must be accounted");
    }

    #[test]
    fn lossless_mode_shrinks_frames() {
        let mut fwd = PsumForwarder::new(PsumMode::Lossless);
        let frame = fwd.frame(0, 0, &partial(4096), None);
        assert!(frame.compressed);
        let ratio = frame.payload_bytes as f64 / frame.shipped_payload_bytes as f64;
        assert!(ratio > 1.2, "psum ratio {ratio:.2} below the 1.2x floor");
        assert!(frame.codec_secs > 0.0);
    }

    #[test]
    fn scratch_pricing_matches_real_frames_and_reuses_buffers() {
        let fwd = PsumForwarder::new(PsumMode::Lossless);
        let sum = partial(2048);
        let mut scratch = PsumScratch::default();
        let frame = fwd.price_with(0, 1, &sum, None, &mut scratch);
        // The claimed wire size must equal a genuinely encoded frame.
        let real = Message::PartialSumCompressed {
            round: 0,
            shard: 1,
            clients: sum.contributions() as u32,
            weight: sum.weight_total(),
            payload: scratch.packed.clone(),
        }
        .encode()
        .len();
        assert_eq!(frame.wire_bytes, real);
        // A second pricing on the same scratch reuses the allocations.
        let cap = (scratch.payload.capacity(), scratch.packed.capacity());
        let again = fwd.price_with(1, 1, &sum, None, &mut scratch);
        assert_eq!(again.wire_bytes, frame.wire_bytes);
        assert_eq!((scratch.payload.capacity(), scratch.packed.capacity()), cap);
        // Raw pricing agrees with a real raw frame too.
        let raw_fwd = PsumForwarder::new(PsumMode::Raw);
        let raw = raw_fwd.price_with(2, 3, &sum, Some(1e6), &mut scratch);
        let real_raw = Message::PartialSum {
            round: 2,
            shard: 3,
            clients: sum.contributions() as u32,
            weight: sum.weight_total(),
            payload: sum.encode_payload(),
        }
        .encode()
        .len();
        assert_eq!(raw.wire_bytes, real_raw);
    }

    #[test]
    fn adaptive_probes_then_respects_the_edge_bandwidth() {
        let mut fwd = PsumForwarder::new(PsumMode::Adaptive);
        let probe = fwd.frame(0, 0, &partial(4096), Some(1e12));
        assert!(probe.compressed, "first frame must probe the codec");
        // The probe ran before any profile existed: nothing was priced.
        assert_eq!(probe.predicted_compressed_secs, None);
        assert_eq!(probe.predicted_raw_secs, None);
        // Terabit backbone: codec time can never pay for itself.
        let fast = fwd.frame(1, 0, &partial(4096), Some(1e12));
        assert!(!fast.compressed, "terabit uplinks should ship raw frames");
        // A profiled decision keeps both sides of the inequality, and
        // the verdict must agree with them.
        let (pc, pr) = (fast.predicted_compressed_secs.unwrap(), fast.predicted_raw_secs.unwrap());
        assert!(pc >= pr, "raw verdict must mean the raw path priced cheaper");
        // Kilobit uplink: transfer dominates, compression must win.
        let slow = fwd.frame(2, 0, &partial(4096), Some(1e3));
        assert!(slow.compressed, "crawling uplinks should compress");
        let (pc, pr) = (slow.predicted_compressed_secs.unwrap(), slow.predicted_raw_secs.unwrap());
        assert!(pc < pr, "compressed verdict must mean the compressed path priced cheaper");
    }
}
