//! Partial-sum frame forwarding: raw, lossless, or Eqn-1 adaptive.
//!
//! Every non-root aggregator in a tree ships its merged
//! [`PartialSum`] to its parent once per round.
//! The payload is a stream of `f64` sums — 2x the bytes of the raw
//! `f32` uploads it summarizes — and, unlike the uploads, it must
//! survive the hop *bit-exactly* or the tree loses its parity guarantee
//! with flat FedAvg. That rules out FedSZ's lossy stage but not
//! compression altogether: [`PsumCodec`] (byte shuffle over the `f64`
//! planes + an LZ/entropy stage) shrinks the frames losslessly.
//!
//! [`PsumForwarder`] is the per-edge policy. [`PsumMode::Adaptive`]
//! replays the paper's Eqn 1 on the aggregator backbone: an EWMA
//! [`CostProfile`] of measured encode/decode costs prices the
//! compressed path against raw transfer on each edge's own uplink, and
//! slow edges compress while fast ones send raw — the same decision
//! the downlink stage makes for the broadcast leg, pointed at the
//! aggregation path instead.

use crate::agg::shard::PartialSum;
use crate::plan::{PlanError, StageLeg, StagePolicy};
use crate::protocol::Message;
use fedsz::timing::CostProfile;
use fedsz_lossless::PsumCodec;
use std::time::Instant;

/// How partial-sum frames travel between aggregator levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PsumMode {
    /// Raw `f64` payloads every hop (PR 2's behavior).
    #[default]
    Raw,
    /// Losslessly compress every frame with [`PsumCodec`].
    Lossless,
    /// Eqn 1 per edge: compress unless the edge's uplink would move
    /// the raw frame faster than codec time + compressed transfer.
    Adaptive,
}

impl PsumMode {
    /// Short human-readable name (for reports).
    pub fn name(self) -> &'static str {
        match self {
            PsumMode::Raw => "raw",
            PsumMode::Lossless => "lossless",
            PsumMode::Adaptive => "adaptive",
        }
    }
}

/// One priced partial-sum frame, ready for the wire accounting.
#[derive(Debug, Clone)]
pub struct PsumFrame {
    /// The full encoded wire frame (header + payload + CRC).
    pub wire_bytes: usize,
    /// The raw (uncompressed) payload size.
    pub payload_bytes: usize,
    /// The payload size actually shipped (equals `payload_bytes` for
    /// raw frames).
    pub shipped_payload_bytes: usize,
    /// Whether the frame rides [`Message::PartialSumCompressed`].
    pub compressed: bool,
    /// Measured codec wall time for this frame (compress at the child
    /// plus decompress at the parent; zero for raw frames).
    pub codec_secs: f64,
    /// The measured cost sample behind `codec_secs` (compressed frames
    /// only). [`PsumForwarder::price`] leaves folding it into the EWMA
    /// profile to the caller — via [`PsumForwarder::observe`] — so
    /// independent frames can be priced in parallel and observed in a
    /// deterministic order afterwards.
    pub sample: Option<CostProfile>,
}

/// The per-edge compress-or-not stage for partial-sum frames.
#[derive(Debug, Clone, Default)]
pub struct PsumForwarder {
    mode: PsumMode,
    codec: PsumCodec,
    profile: Option<CostProfile>,
}

impl PsumForwarder {
    /// Builds the forwarder in the given mode.
    pub fn new(mode: PsumMode) -> Self {
        Self { mode, codec: PsumCodec::new(), profile: None }
    }

    /// Builds the forwarder from a validated plan-level
    /// [`StagePolicy`] — the constructor the plan-based engine uses.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the policy is illegal on the
    /// partial-sum leg (a lossy policy here would break the tree's
    /// bit-parity with flat FedAvg).
    pub fn from_policy(policy: &StagePolicy) -> Result<Self, PlanError> {
        policy.validate_for(StageLeg::Psum)?;
        let mode = match policy {
            StagePolicy::Raw => PsumMode::Raw,
            StagePolicy::Lossless => PsumMode::Lossless,
            StagePolicy::Adaptive { .. } => PsumMode::Adaptive,
            StagePolicy::Lossy(_) => unreachable!("rejected by validate_for"),
        };
        Ok(Self::new(mode))
    }

    /// The configured mode.
    pub fn mode(&self) -> PsumMode {
        self.mode
    }

    /// Eqn 1 on one edge: with a measured cost profile and the edge's
    /// uplink bandwidth, compress iff encode + decode + compressed
    /// transfer beats raw transfer. Until a profile exists (or without
    /// a network model) the frame compresses, which measures one.
    fn should_compress(&self, raw: usize, bandwidth_bps: Option<f64>) -> bool {
        match self.mode {
            PsumMode::Raw => false,
            PsumMode::Lossless => true,
            PsumMode::Adaptive => match (&self.profile, bandwidth_bps) {
                (Some(profile), Some(bw)) => profile.plan(raw).worthwhile(bw),
                _ => true,
            },
        }
    }

    /// Encodes (and prices) the frame node `node` ships for `partial`,
    /// measuring real codec costs. Takes `&self` so independent frames
    /// can be priced on parallel workers; fold each frame's
    /// [`PsumFrame::sample`] back with [`PsumForwarder::observe`] (in
    /// a deterministic order) to advance the EWMA profile. The
    /// in-process tree merges exact accumulators, so the decompressed
    /// bytes are only used to *verify* the codec round trip — a
    /// mismatch would break bit-parity and panics immediately.
    ///
    /// # Panics
    ///
    /// Panics if the lossless codec fails to reproduce its input (a
    /// codec bug, never data-dependent).
    pub fn price(
        &self,
        round: usize,
        node: usize,
        partial: &PartialSum,
        bandwidth_bps: Option<f64>,
    ) -> PsumFrame {
        let payload = partial.encode_payload();
        let payload_bytes = payload.len();
        let clients = partial.contributions() as u32;
        let weight = partial.weight_total();
        if self.should_compress(payload_bytes, bandwidth_bps) {
            let t0 = Instant::now();
            let packed = self.codec.compress(&payload);
            let compress_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let back = self.codec.decompress(&packed).expect("self-produced psum frame");
            let decompress_secs = t1.elapsed().as_secs_f64();
            assert_eq!(back, payload, "lossless psum codec must round-trip bit-exactly");
            let shipped_payload_bytes = packed.len();
            let sample = CostProfile {
                compress_secs_per_byte: compress_secs / payload_bytes.max(1) as f64,
                decompress_secs_per_byte: decompress_secs / payload_bytes.max(1) as f64,
                ratio: payload_bytes as f64 / shipped_payload_bytes.max(1) as f64,
            };
            let wire_bytes = Message::PartialSumCompressed {
                round: round as u32,
                shard: node as u32,
                clients,
                weight,
                payload: packed,
            }
            .encode()
            .len();
            PsumFrame {
                wire_bytes,
                payload_bytes,
                shipped_payload_bytes,
                compressed: true,
                codec_secs: compress_secs + decompress_secs,
                sample: Some(sample),
            }
        } else {
            let wire_bytes = Message::PartialSum {
                round: round as u32,
                shard: node as u32,
                clients,
                weight,
                payload,
            }
            .encode()
            .len();
            PsumFrame {
                wire_bytes,
                payload_bytes,
                shipped_payload_bytes: payload_bytes,
                compressed: false,
                codec_secs: 0.0,
                sample: None,
            }
        }
    }

    /// Folds one priced frame's measured costs into the EWMA profile
    /// (no-op for raw frames, which measured nothing).
    pub fn observe(&mut self, frame: &PsumFrame) {
        if let Some(sample) = frame.sample {
            self.profile = Some(CostProfile::blend(self.profile, sample));
        }
    }

    /// Prices a frame and immediately observes its costs — the
    /// convenience path when frames are produced one at a time.
    pub fn frame(
        &mut self,
        round: usize,
        node: usize,
        partial: &PartialSum,
        bandwidth_bps: Option<f64>,
    ) -> PsumFrame {
        let frame = self.price(round, node, partial, bandwidth_bps);
        self.observe(&frame);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_nn::StateDict;
    use fedsz_tensor::Tensor;

    fn partial(n: usize) -> PartialSum {
        let mut dict = StateDict::new();
        let data: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        dict.insert("w.weight", Tensor::from_vec(vec![n], data));
        let mut sum = PartialSum::new();
        sum.accumulate(&dict, 2.0);
        sum
    }

    #[test]
    fn raw_mode_ships_plain_frames() {
        let mut fwd = PsumForwarder::new(PsumMode::Raw);
        let frame = fwd.frame(0, 3, &partial(256), Some(1e6));
        assert!(!frame.compressed);
        assert_eq!(frame.shipped_payload_bytes, frame.payload_bytes);
        assert_eq!(frame.codec_secs, 0.0);
        assert!(frame.wire_bytes > frame.payload_bytes, "framing must be accounted");
    }

    #[test]
    fn lossless_mode_shrinks_frames() {
        let mut fwd = PsumForwarder::new(PsumMode::Lossless);
        let frame = fwd.frame(0, 0, &partial(4096), None);
        assert!(frame.compressed);
        let ratio = frame.payload_bytes as f64 / frame.shipped_payload_bytes as f64;
        assert!(ratio > 1.2, "psum ratio {ratio:.2} below the 1.2x floor");
        assert!(frame.codec_secs > 0.0);
    }

    #[test]
    fn adaptive_probes_then_respects_the_edge_bandwidth() {
        let mut fwd = PsumForwarder::new(PsumMode::Adaptive);
        let probe = fwd.frame(0, 0, &partial(4096), Some(1e12));
        assert!(probe.compressed, "first frame must probe the codec");
        // Terabit backbone: codec time can never pay for itself.
        let fast = fwd.frame(1, 0, &partial(4096), Some(1e12));
        assert!(!fast.compressed, "terabit uplinks should ship raw frames");
        // Kilobit uplink: transfer dominates, compression must win.
        let slow = fwd.frame(2, 0, &partial(4096), Some(1e3));
        assert!(slow.compressed, "crawling uplinks should compress");
    }
}
