//! A bounded fork-join worker pool for the aggregation hot path.
//!
//! The tree's per-level work — leaf cohort accumulation, sibling-shard
//! merges, per-node frame pricing — is embarrassingly parallel *and*
//! order-invariant once results are folded back in index order:
//! [`ExactAcc`](crate::agg::ExactAcc) arithmetic is associative and
//! commutative, so splitting the element-wise adds across threads
//! cannot move a bit as long as the serial fold that consumes the
//! results walks nodes in ascending order (which
//! [`ShardedTree`](crate::agg::ShardedTree) does).
//!
//! [`WorkerPool::run`] is deliberately tiny: scoped threads pull task
//! indices off one atomic counter and write results into pre-sized
//! slots, so there is no unsafe code, no channel allocation per task,
//! and results come back in task order regardless of which worker ran
//! what. [`WorkerPool::run_with`] adds per-worker scratch state (one
//! synthesis buffer or frame-pricing scratch per *thread*, not per
//! task) — the mechanism behind the streaming cohort generator's
//! "peak memory = one update per worker" guarantee.
//!
//! An attached [`Telemetry`] handle ([`WorkerPool::with_telemetry`])
//! makes each run observable: a `pool.run` span plus the
//! `fedsz_pool_tasks_total` / `fedsz_pool_busy_seconds_total` /
//! `fedsz_pool_idle_seconds_total` counters (idle = `width × wall −
//! busy`, the time workers spent starved rather than merging). With
//! the default disabled handle no clock is read per task.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use fedsz_telemetry::{Telemetry, Value};

/// A fixed-width fork-join helper: `threads` workers drain an indexed
/// task list and return results in task order.
///
/// Width 0 is normalized to 1; width 1 (or a single task) runs inline
/// on the caller's thread with no spawning at all, so serial configs
/// pay nothing for the abstraction.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
    telemetry: Telemetry,
}

impl WorkerPool {
    /// A pool of `threads` workers (0 is treated as 1), telemetry
    /// disabled.
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1), telemetry: Telemetry::disabled() }
    }

    /// A pool as wide as the host: `std::thread::available_parallelism`,
    /// or 1 when the host cannot say.
    pub fn host_wide() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, usize::from))
    }

    /// Attaches a telemetry handle: every run then opens a `pool.run`
    /// span and feeds the pool's task/busy/idle counters.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0..tasks)` across the pool and returns the results in
    /// task order.
    pub fn run<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with(tasks, || (), |task, ()| f(task))
    }

    /// Runs `f(task, &mut scratch)` across the pool with one `scratch`
    /// (from `init`) per worker thread, returning results in task
    /// order. Scratch state lives exactly as long as its worker, so a
    /// run over `n` tasks allocates at most `min(threads, n)` scratch
    /// buffers no matter how large `n` is.
    pub fn run_with<T, S, I, F>(&self, tasks: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let width = self.threads.min(tasks);
        // The telemetry branch is taken once per *run*; per *task* the
        // disabled path costs one bool test, no clock reads.
        let enabled = self.telemetry.is_enabled();
        let span = self.telemetry.span_with(
            "pool.run",
            &[("tasks", Value::U64(tasks as u64)), ("width", Value::U64(width as u64))],
        );
        let run_start = enabled.then(Instant::now);
        let busy_nanos = AtomicU64::new(0);
        let results = if width <= 1 {
            let mut scratch = init();
            (0..tasks)
                .map(|task| timed_task(enabled, &busy_nanos, || f(task, &mut scratch)))
                .collect()
        } else {
            // One atomic cursor hands out task indices; each worker
            // writes into its tasks' pre-sized slots. No unsafe, no
            // per-task channel traffic, deterministic result order.
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..width {
                    scope.spawn(|| {
                        let mut scratch = init();
                        loop {
                            let task = cursor.fetch_add(1, Ordering::Relaxed);
                            if task >= tasks {
                                break;
                            }
                            let result = timed_task(enabled, &busy_nanos, || f(task, &mut scratch));
                            *slots[task].lock().expect("worker slot poisoned") = Some(result);
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("worker slot poisoned")
                        .expect("every task index was claimed and completed")
                })
                .collect()
        };
        if let Some(run_start) = run_start {
            let wall_secs = run_start.elapsed().as_secs_f64();
            let busy_secs = busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
            self.telemetry.add("fedsz_pool_tasks_total", tasks as f64);
            self.telemetry.add("fedsz_pool_busy_seconds_total", busy_secs);
            self.telemetry.add(
                "fedsz_pool_idle_seconds_total",
                (width as f64 * wall_secs - busy_secs).max(0.0),
            );
        }
        drop(span);
        results
    }
}

/// Runs one task, accumulating its wall time only when telemetry is
/// enabled.
fn timed_task<T>(enabled: bool, busy_nanos: &AtomicU64, f: impl FnOnce() -> T) -> T {
    let start = enabled.then(Instant::now);
    let result = f();
    if let Some(start) = start {
        busy_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_width_is_normalized() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn results_come_back_in_task_order_at_any_width() {
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let got = pool.run(100, |task| task * task);
            let want: Vec<usize> = (0..100).map(|t| t * t).collect();
            assert_eq!(got, want, "width {threads}");
        }
    }

    #[test]
    fn empty_task_lists_are_fine() {
        let got: Vec<usize> = WorkerPool::new(4).run(0, |t| t);
        assert!(got.is_empty());
    }

    #[test]
    fn scratch_is_per_worker_not_per_task() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let pool = WorkerPool::new(3);
        let got = pool.run_with(
            50,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |task, scratch| {
                scratch.push(task);
                task
            },
        );
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        let created = inits.load(Ordering::Relaxed);
        assert!(created <= 3, "expected at most one scratch per worker, got {created}");
    }

    #[test]
    fn telemetry_counts_tasks_and_splits_busy_from_idle() {
        let telemetry = Telemetry::enabled();
        let pool = WorkerPool::new(2).with_telemetry(telemetry.clone());
        let got = pool.run(8, |task| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            task
        });
        assert_eq!(got.len(), 8);
        let text = telemetry.render_prometheus();
        assert!(text.contains("fedsz_pool_tasks_total 8\n"), "{text}");
        // Eight 2 ms tasks: busy is at least 16 ms even when split
        // across two workers; idle is non-negative by construction.
        let busy: f64 = text
            .lines()
            .find_map(|l| l.strip_prefix("fedsz_pool_busy_seconds_total "))
            .expect("busy counter rendered")
            .parse()
            .unwrap();
        assert!(busy >= 0.016, "busy {busy}");
        assert!(text.contains("fedsz_pool_idle_seconds_total "), "{text}");
    }
}
