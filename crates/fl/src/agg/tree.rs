//! The [`Aggregator`] trait and its flat and hierarchical backends.
//!
//! The round engine no longer averages uploads in an inline loop; it
//! hands the decoded, policy-accepted contributions to an `Aggregator`:
//!
//! * [`FlatAggregator`] — the paper's topology: every client reports
//!   straight to the root, which merges in ascending client-id order.
//!   Root ingress is every upload's wire bytes.
//! * [`ShardedTree`] — an arbitrary-depth aggregation hierarchy: a
//!   [`TreePlan`] assigns each *leaf* aggregator a contiguous client-id
//!   range, each leaf merges its cohort's updates in client-id order on
//!   its own worker thread, and partial sums then climb the tree level
//!   by level — every non-root node forwards one (possibly
//!   losslessly-compressed, see [`PsumForwarder`]) partial-sum frame
//!   over its own [`LinkProfile`] uplink. Root ingress drops from `N`
//!   updates to the root's fan-out in frames, and the virtual clock
//!   prices every hop (leaf ready time + measured merge time + codec
//!   time + frame transfer, maxed up each level).
//!
//! Both backends accumulate with [`PartialSum`]'s exact fixed-point
//! arithmetic, and the frame codec is lossless, so the tree's global
//! model is bit-identical to the flat result for any depth and any
//! fan-outs — the property the parity tests pin down.

use crate::agg::plan::TreePlan;
use crate::agg::pool::WorkerPool;
use crate::agg::psum::{PsumForwarder, PsumFrame, PsumMode, PsumScratch};
use crate::agg::shard::{PartialSum, ShardPlan};
use crate::link::LinkProfile;
use crate::plan::{PlanError, StagePolicy};
use fedsz::timing::{Eqn1Decision, Eqn1Leg};
use fedsz_nn::StateDict;
use fedsz_telemetry::{Telemetry, Value};
use std::sync::Mutex;
use std::time::Instant;

/// One policy-accepted, already-decoded update as aggregation input.
#[derive(Debug, Clone)]
pub struct Contribution {
    /// Client id (stable across rounds; routes the update to its shard).
    pub client: usize,
    /// The decoded update.
    pub dict: StateDict,
    /// Aggregation weight (sample count, staleness-discounted, or 1).
    pub weight: f64,
    /// Wire bytes this update cost on its first hop (0 for stale
    /// updates already held at the server).
    pub wire_bytes: usize,
    /// Virtual time the update reached its first-hop aggregator.
    pub done_secs: f64,
}

/// What one round of aggregation produced.
#[derive(Debug, Clone)]
pub struct AggOutcome {
    /// The merged global model.
    pub global: StateDict,
    /// Contributions folded in.
    pub merged: usize,
    /// Bytes arriving at the root: all update wire bytes (flat) or the
    /// root's children's partial-sum frames (tree).
    pub root_ingress_bytes: usize,
    /// Partial-sum frame bytes arriving at each aggregator level from
    /// the level below, root first (`[0]` equals
    /// [`AggOutcome::root_ingress_bytes`] for a tree). Empty for the
    /// flat backend, which has no inter-aggregator hops.
    pub level_ingress_bytes: Vec<usize>,
    /// Uncompressed partial-sum payload bytes across all tree hops
    /// (zero for the flat backend).
    pub psum_payload_bytes: usize,
    /// Partial-sum payload bytes actually shipped (equals
    /// `psum_payload_bytes` when frames travel raw).
    pub psum_wire_bytes: usize,
    /// Virtual time the root holds the merged model: the last accepted
    /// arrival (flat), or the slowest leaf-to-root chain of merge +
    /// codec + forward hops (tree).
    pub root_done_secs: f64,
    /// Measured wall-clock spent merging (leaf workers run in
    /// parallel, so this tracks the slowest chain, not the sum).
    pub merge_secs: f64,
    /// Measured wall nanoseconds merging *into* each level, root
    /// first: `[depth - 1]` is the leaf accumulation pass, `[0]` the
    /// final fold into the root. The flat backend reports its single
    /// merge as a one-element vector.
    pub level_merge_nanos: Vec<u64>,
    /// The partial-sum leg's Eqn-1 decisions this round, one per
    /// priced frame in deterministic (level-descending, ascending
    /// node) order. Empty for the flat backend, which ships no frames.
    pub eqn1: Vec<Eqn1Decision>,
}

impl AggOutcome {
    /// Lossless compression ratio of the partial-sum frames (payload
    /// over shipped bytes; 1.0 when nothing was compressed or the
    /// backend is flat).
    pub fn psum_ratio(&self) -> f64 {
        if self.psum_wire_bytes == 0 {
            return 1.0;
        }
        self.psum_payload_bytes as f64 / self.psum_wire_bytes as f64
    }
}

/// Merges a round's accepted contributions into the next global model.
pub trait Aggregator {
    /// Short human-readable backend name (for reports).
    fn name(&self) -> &'static str;

    /// Distinct first-hop destinations a broadcast to `cohort` fans out
    /// from the root: the cohort itself (flat) or the root's active
    /// children (tree — the lower levels fan the copy onward).
    fn fanout(&self, cohort: &[usize]) -> usize;

    /// Merges one round's contributions; `None` when there are none
    /// (the global model then stays put).
    fn aggregate(&mut self, round: usize, contributions: Vec<Contribution>) -> Option<AggOutcome>;

    /// Attaches a telemetry handle for per-level spans and pool
    /// counters. The default is a no-op: backends without internal
    /// structure worth tracing (the flat server) ignore it.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}
}

/// Every client reports straight to the root (classic FedAvg).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatAggregator;

impl Aggregator for FlatAggregator {
    fn name(&self) -> &'static str {
        "flat"
    }

    fn fanout(&self, cohort: &[usize]) -> usize {
        cohort.len()
    }

    fn aggregate(
        &mut self,
        _round: usize,
        mut contributions: Vec<Contribution>,
    ) -> Option<AggOutcome> {
        if contributions.is_empty() {
            return None;
        }
        contributions.sort_by_key(|c| c.client);
        let root_ingress_bytes = contributions.iter().map(|c| c.wire_bytes).sum();
        let root_done_secs = contributions.iter().map(|c| c.done_secs).fold(0.0, f64::max);
        let t0 = Instant::now();
        let mut sum = PartialSum::new();
        for c in &contributions {
            sum.accumulate(&c.dict, c.weight);
        }
        let global = sum.finish().expect("non-empty contributions");
        let merge_secs = t0.elapsed().as_secs_f64();
        Some(AggOutcome {
            global,
            merged: contributions.len(),
            root_ingress_bytes,
            level_ingress_bytes: Vec::new(),
            psum_payload_bytes: 0,
            psum_wire_bytes: 0,
            root_done_secs,
            merge_secs,
            level_merge_nanos: vec![(merge_secs * 1e9) as u64],
            eqn1: Vec::new(),
        })
    }
}

/// A free list of recycled [`PartialSum`] buffers. Steady-state rounds
/// take a reset buffer (entries, names and accumulator `Vec`s intact),
/// fold into it, and hand it back after the parent consumed it — so a
/// long-running tree does no per-round accumulator allocation once the
/// first round has warmed the pool. Cloning a tree starts an empty
/// pool (buffers are round-local state, not configuration).
#[derive(Debug, Default)]
struct BufferPool {
    free: Mutex<Vec<PartialSum>>,
}

impl BufferPool {
    /// A zeroed buffer: recycled (allocations intact) when one is
    /// available, freshly default-constructed otherwise.
    fn take(&self) -> PartialSum {
        match self.free.lock().expect("buffer pool poisoned").pop() {
            Some(mut sum) => {
                sum.reset();
                sum
            }
            None => PartialSum::new(),
        }
    }

    /// Returns a consumed buffer to the pool (layout-less buffers carry
    /// no allocations worth keeping and are dropped).
    fn put(&self, sum: PartialSum) {
        if sum.total_elements() > 0 {
            self.free.lock().expect("buffer pool poisoned").push(sum);
        }
    }
}

impl Clone for BufferPool {
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// Arbitrary-depth aggregation hierarchy: contiguous client ranges per
/// leaf, parallel leaf merges, and one partial-sum frame per node per
/// hop climbing to the root.
#[derive(Debug, Clone)]
pub struct ShardedTree {
    plan: TreePlan,
    /// Per-level uplink profiles: `levels[l - 1]` holds one profile per
    /// node at tree level `l` (the link that node forwards its frame
    /// over). `None` skips the timing model entirely.
    levels: Option<Vec<Vec<LinkProfile>>>,
    forwarder: PsumForwarder,
    /// Worker width for leaf merges and frame pricing. Exact integer
    /// accumulation is order- and grouping-invariant, so any width
    /// produces the same bits (the parity proptests pin this).
    threads: usize,
    buffers: BufferPool,
    /// Per-level spans, psum Eqn-1 events and pool counters land here
    /// (disabled by default: one branch per call, nothing recorded).
    telemetry: Telemetry,
}

impl ShardedTree {
    /// Builds the tree over `plan` with optional per-level uplinks and
    /// a partial-sum forwarding mode.
    ///
    /// # Panics
    ///
    /// Panics when `levels` is present but does not provide exactly one
    /// profile per non-root node, level by level.
    pub fn new(plan: TreePlan, levels: Option<Vec<Vec<LinkProfile>>>, psum: PsumMode) -> Self {
        if let Some(levels) = &levels {
            assert_eq!(
                levels.len(),
                plan.depth() - 1,
                "need one link tier per non-root level ({} tiers for depth {})",
                levels.len(),
                plan.depth()
            );
            for (i, tier) in levels.iter().enumerate() {
                assert_eq!(
                    tier.len(),
                    plan.nodes_at(i + 1),
                    "need one edge link per shard at level {} ({} links for {} nodes)",
                    i + 1,
                    tier.len(),
                    plan.nodes_at(i + 1)
                );
            }
        }
        Self {
            plan,
            levels,
            forwarder: PsumForwarder::new(psum),
            threads: WorkerPool::host_wide().threads(),
            buffers: BufferPool::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the worker width for leaf merges and frame pricing (0 is
    /// treated as 1; the default is the host's available parallelism).
    /// Width cannot move a bit: the parity tests hold at every width.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a telemetry handle: every aggregation then opens one
    /// `merge.level` span per tree level, emits the psum leg's Eqn-1
    /// decisions as `eqn1.decision` events, and feeds the worker
    /// pool's task/busy/idle counters.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The worker pool all of the tree's parallel passes run on.
    fn pool(&self) -> WorkerPool {
        WorkerPool::new(self.threads).with_telemetry(self.telemetry.clone())
    }

    /// Builds the tree from a validated plan-level [`StagePolicy`] for
    /// the partial-sum leg — the constructor the plan-based engine
    /// uses.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the policy is illegal on the
    /// partial-sum leg (e.g. lossy, which would break bit-parity).
    ///
    /// # Panics
    ///
    /// Panics when `levels` does not match the plan's shape (see
    /// [`ShardedTree::new`]).
    pub fn from_policy(
        plan: TreePlan,
        levels: Option<Vec<Vec<LinkProfile>>>,
        psum: &StagePolicy,
    ) -> Result<Self, PlanError> {
        let forwarder = PsumForwarder::from_policy(psum)?;
        let mut tree = Self::new(plan, levels, forwarder.mode());
        tree.forwarder = forwarder;
        Ok(tree)
    }

    /// PR 2's two-level shape: one tier of edge aggregators over a
    /// [`ShardPlan`], raw partial-sum frames.
    pub fn two_level(plan: ShardPlan, edges: Option<Vec<LinkProfile>>) -> Self {
        Self::new(
            TreePlan::new(plan.clients(), vec![plan.shards()]),
            edges.map(|e| vec![e]),
            PsumMode::Raw,
        )
    }

    /// The tree plan in force.
    pub fn plan(&self) -> &TreePlan {
        &self.plan
    }

    /// The uplink of node `node` at tree level `level` (`None` without
    /// a timing model).
    fn uplink(&self, level: usize, node: usize) -> Option<&LinkProfile> {
        self.levels.as_ref().map(|tiers| &tiers[level - 1][node])
    }

    /// Streams synthesized updates through the tree without holding the
    /// whole cohort in memory: each leaf worker calls `make` for the
    /// clients it owns (ascending) and folds the result straight into
    /// its partial sum, so peak memory is one update per *worker*, not
    /// `N`. Convenience wrapper over
    /// [`ShardedTree::aggregate_streamed_with`] for generators that
    /// build a fresh dict per client; generators that can overwrite a
    /// scratch dict in place should use the `_with` form directly and
    /// skip the per-client allocation too.
    pub fn aggregate_streamed<F>(&mut self, round: usize, make: &F) -> Option<AggOutcome>
    where
        F: Fn(usize) -> (StateDict, f64) + Sync,
    {
        self.aggregate_streamed_with(
            round,
            || None,
            |client, slot: &mut Option<StateDict>| {
                let (dict, weight) = make(client);
                (&*slot.insert(dict), weight)
            },
        )
    }

    /// The zero-allocation streaming form: `init` builds one scratch
    /// value per worker thread, `fill` overwrites it for each client
    /// and lends out the update to fold in. A pool of
    /// [`ShardedTree::threads`] workers drains the leaves, so the
    /// cohort's memory high-water mark is `threads` scratch values plus
    /// the tree's partial sums — independent of the client count.
    pub fn aggregate_streamed_with<S, I, F>(
        &mut self,
        round: usize,
        init: I,
        fill: F,
    ) -> Option<AggOutcome>
    where
        I: Fn() -> S + Sync,
        F: for<'a> Fn(usize, &'a mut S) -> (&'a StateDict, f64) + Sync,
    {
        let plan = self.plan.clone();
        let t0 = Instant::now();
        let pool = self.pool();
        let buffers = &self.buffers;
        let leaf_span = self.telemetry.span_with(
            "merge.level",
            &[
                ("level", Value::U64(plan.depth() as u64 - 1)),
                ("nodes", Value::U64(plan.leaves() as u64)),
            ],
        );
        let partials: Vec<PartialSum> = pool.run_with(plan.leaves(), init, |leaf, scratch| {
            let mut sum = buffers.take();
            for client in plan.leaf_range(leaf) {
                let (dict, weight) = fill(client, scratch);
                sum.accumulate(dict, weight);
            }
            sum
        });
        let leaf_merge_nanos = t0.elapsed().as_nanos() as u64;
        drop(leaf_span);
        self.reduce(round, partials, vec![0.0; plan.leaves()], t0, leaf_merge_nanos)
    }

    /// Climbs the hierarchy: starting from the leaf partials, each
    /// level's non-empty nodes frame their sums (raw or compressed, per
    /// the forwarder's Eqn-1 decision), their parents merge the *exact*
    /// accumulators in ascending child order, and per-level ingress and
    /// arrival times are maxed up the chain until one partial remains
    /// at the root.
    fn reduce(
        &mut self,
        round: usize,
        mut partials: Vec<PartialSum>,
        mut ready: Vec<f64>,
        t0: Instant,
        leaf_merge_nanos: u64,
    ) -> Option<AggOutcome> {
        let depth = self.plan.depth();
        let mut level_ingress_bytes = vec![0usize; depth - 1];
        let mut level_merge_nanos = vec![0u64; depth];
        level_merge_nanos[depth - 1] = leaf_merge_nanos;
        let mut eqn1 = Vec::new();
        let mut psum_payload_bytes = 0usize;
        let mut psum_wire_bytes = 0usize;
        let pool = self.pool();
        for level in (1..depth).rev() {
            let fanout = self.plan.fanouts()[level - 1];
            let parents = self.plan.nodes_at(level - 1);
            let level_span = self.telemetry.span_with(
                "merge.level",
                &[("level", Value::U64(level as u64 - 1)), ("nodes", Value::U64(parents as u64))],
            );
            let t_level = Instant::now();
            // Frame pricing (including the lossless codec work, the
            // expensive part) is independent per node, so it runs on
            // the worker pool with one pricing scratch per worker; the
            // measured cost samples are folded back in ascending node
            // order below, keeping the EWMA profile deterministic.
            let forwarder = &self.forwarder;
            let frames: Vec<Option<PsumFrame>> =
                pool.run_with(partials.len(), PsumScratch::default, |node, scratch| {
                    let partial = &partials[node];
                    let bandwidth = self.uplink(level, node).map(|l| l.bandwidth_bps);
                    (!partial.is_empty())
                        .then(|| forwarder.price_with(round, node, partial, bandwidth, scratch))
                });
            let mut parent_partials: Vec<PartialSum> =
                (0..parents).map(|_| self.buffers.take()).collect();
            let mut parent_ready = vec![0.0f64; parents];
            for ((node, partial), frame) in partials.into_iter().enumerate().zip(frames) {
                let Some(frame) = frame else {
                    self.buffers.put(partial);
                    continue;
                };
                self.forwarder.observe(&frame);
                let decision = Eqn1Decision {
                    leg: Eqn1Leg::Psum,
                    node: node as u64,
                    compressed: frame.compressed,
                    family: if frame.compressed { "lossless" } else { "raw" },
                    predicted_compressed_secs: frame.predicted_compressed_secs,
                    predicted_raw_secs: frame.predicted_raw_secs,
                    measured_codec_secs: frame.codec_secs,
                };
                self.telemetry.event(
                    "eqn1.decision",
                    &[
                        ("leg", Value::Str(decision.leg.name())),
                        ("node", Value::U64(decision.node)),
                        ("compressed", Value::Bool(decision.compressed)),
                        ("family", Value::Str(decision.family)),
                        (
                            "predicted_compressed_secs",
                            Value::F64(decision.predicted_compressed_secs.unwrap_or(f64::NAN)),
                        ),
                        (
                            "predicted_raw_secs",
                            Value::F64(decision.predicted_raw_secs.unwrap_or(f64::NAN)),
                        ),
                        ("measured_codec_secs", Value::F64(decision.measured_codec_secs)),
                    ],
                );
                eqn1.push(decision);
                level_ingress_bytes[level - 1] += frame.wire_bytes;
                psum_payload_bytes += frame.payload_bytes;
                psum_wire_bytes += frame.shipped_payload_bytes;
                let transfer =
                    self.uplink(level, node).map_or(0.0, |l| l.transfer_secs(frame.wire_bytes));
                let parent = node / fanout;
                parent_ready[parent] =
                    parent_ready[parent].max(ready[node] + frame.codec_secs + transfer);
                // Ascending-node iteration gives the ascending-child
                // merge order; exact accumulators make the grouping
                // irrelevant to the bits anyway. Borrow-merging lets
                // the consumed child return to the buffer pool.
                parent_partials[parent].merge_from(&partial);
                self.buffers.put(partial);
            }
            partials = parent_partials;
            ready = parent_ready;
            level_merge_nanos[level - 1] = t_level.elapsed().as_nanos() as u64;
            drop(level_span);
        }
        let root = partials.pop().expect("a tree always has a root");
        let merged = root.contributions();
        let global = root.finish()?;
        self.buffers.put(root);
        Some(AggOutcome {
            global,
            merged,
            root_ingress_bytes: level_ingress_bytes[0],
            level_ingress_bytes,
            psum_payload_bytes,
            psum_wire_bytes,
            root_done_secs: ready[0],
            merge_secs: t0.elapsed().as_secs_f64(),
            level_merge_nanos,
            eqn1,
        })
    }
}

impl Aggregator for ShardedTree {
    fn name(&self) -> &'static str {
        "sharded-tree"
    }

    fn fanout(&self, cohort: &[usize]) -> usize {
        // The root sends one broadcast copy per *active child*; that
        // child's subtree fans it out from there.
        let stride: usize = self.plan.fanouts()[1..].iter().product();
        let mut seen = vec![false; self.plan.fanouts()[0]];
        for &client in cohort {
            seen[self.plan.leaf_of(client) / stride] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    fn aggregate(&mut self, round: usize, contributions: Vec<Contribution>) -> Option<AggOutcome> {
        if contributions.is_empty() {
            return None;
        }
        let plan = self.plan.clone();
        let mut per_leaf: Vec<Vec<Contribution>> = (0..plan.leaves()).map(|_| Vec::new()).collect();
        for c in contributions {
            per_leaf[plan.leaf_of(c.client)].push(c);
        }
        for cohort in &mut per_leaf {
            cohort.sort_by_key(|c| c.client);
        }
        let t0 = Instant::now();
        // Each leaf merges its cohort in ascending client-id order on a
        // pooled worker; the leaf is "ready" once its slowest accepted
        // member arrived and the merge itself completed.
        let pool = self.pool();
        let buffers = &self.buffers;
        let leaf_span = self.telemetry.span_with(
            "merge.level",
            &[
                ("level", Value::U64(plan.depth() as u64 - 1)),
                ("nodes", Value::U64(plan.leaves() as u64)),
            ],
        );
        let merged_leaves: Vec<(PartialSum, f64)> = pool.run(per_leaf.len(), |leaf| {
            let cohort = &per_leaf[leaf];
            let ready = cohort.iter().map(|c| c.done_secs).fold(0.0, f64::max);
            let t_leaf = Instant::now();
            let mut sum = buffers.take();
            for c in cohort {
                sum.accumulate(&c.dict, c.weight);
            }
            (sum, ready + t_leaf.elapsed().as_secs_f64())
        });
        let leaf_merge_nanos = t0.elapsed().as_nanos() as u64;
        drop(leaf_span);
        let (partials, ready): (Vec<_>, Vec<_>) = merged_leaves.into_iter().unzip();
        self.reduce(round, partials, ready, t0, leaf_merge_nanos)
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_tensor::Tensor;

    fn contribution(client: usize, value: f32, done_secs: f64) -> Contribution {
        let mut dict = StateDict::new();
        dict.insert("w.weight", Tensor::filled(vec![4], value));
        Contribution { client, dict, weight: 1.0, wire_bytes: 100, done_secs }
    }

    #[test]
    fn flat_and_tree_agree_bitwise() {
        let contribs: Vec<Contribution> =
            (0..11).map(|c| contribution(c, (c as f32).sin(), c as f64)).collect();
        let flat = FlatAggregator.aggregate(0, contribs.clone()).unwrap().global.to_bytes();
        for shards in [1usize, 2, 3, 7, 11] {
            let mut tree = ShardedTree::two_level(ShardPlan::new(11, shards), None);
            let out = tree.aggregate(0, contribs.clone()).unwrap();
            assert_eq!(out.global.to_bytes(), flat, "{shards} shards diverged");
            assert_eq!(out.merged, 11);
        }
    }

    #[test]
    fn deep_trees_agree_bitwise_for_any_fanouts() {
        let contribs: Vec<Contribution> =
            (0..23).map(|c| contribution(c, (c as f32).cos(), c as f64)).collect();
        let flat = FlatAggregator.aggregate(0, contribs.clone()).unwrap().global.to_bytes();
        for fanouts in [vec![2, 3], vec![3, 2, 2], vec![5, 5], vec![2, 2, 2, 2]] {
            for psum in [PsumMode::Raw, PsumMode::Lossless] {
                let mut tree = ShardedTree::new(TreePlan::new(23, fanouts.clone()), None, psum);
                let out = tree.aggregate(0, contribs.clone()).unwrap();
                assert_eq!(
                    out.global.to_bytes(),
                    flat,
                    "fan-outs {fanouts:?} with {} frames diverged",
                    psum.name()
                );
                assert_eq!(out.merged, 23);
                assert_eq!(out.level_ingress_bytes.len(), fanouts.len());
            }
        }
    }

    #[test]
    fn tree_root_ingress_is_frames_not_uploads() {
        let contribs: Vec<Contribution> = (0..8).map(|c| contribution(c, 1.0, 0.0)).collect();
        let flat = FlatAggregator.aggregate(0, contribs.clone()).unwrap();
        assert_eq!(flat.root_ingress_bytes, 800, "flat ingress sums upload wire bytes");
        assert!(flat.level_ingress_bytes.is_empty(), "flat has no inter-aggregator hops");
        let mut tree = ShardedTree::two_level(ShardPlan::new(8, 4), None);
        let out = tree.aggregate(0, contribs).unwrap();
        // 4 frames of a 4-element partial sum each: well under 800 per
        // frame-count scaling, and exactly 4 frames' worth.
        let one_frame = out.root_ingress_bytes / 4;
        assert_eq!(out.root_ingress_bytes, one_frame * 4);
        assert_eq!(out.level_ingress_bytes, vec![out.root_ingress_bytes]);
    }

    #[test]
    fn deeper_levels_carry_more_frames_than_the_root() {
        let contribs: Vec<Contribution> = (0..16).map(|c| contribution(c, 0.5, 0.0)).collect();
        let mut tree = ShardedTree::new(TreePlan::new(16, vec![2, 4]), None, PsumMode::Raw);
        let out = tree.aggregate(0, contribs).unwrap();
        assert_eq!(out.level_ingress_bytes.len(), 2);
        // 8 leaf frames feed level 1; 2 frames feed the root.
        assert!(
            out.level_ingress_bytes[1] > out.level_ingress_bytes[0],
            "leaf tier {} should out-byte the root tier {}",
            out.level_ingress_bytes[1],
            out.level_ingress_bytes[0]
        );
        assert_eq!(out.root_ingress_bytes, out.level_ingress_bytes[0]);
    }

    #[test]
    fn lossless_frames_shrink_the_wire_image() {
        let contribs: Vec<Contribution> = (0..12)
            .map(|c| {
                let mut dict = StateDict::new();
                let data: Vec<f32> = (0..2048).map(|i| ((i + c) as f32 * 0.017).sin()).collect();
                dict.insert("w.weight", Tensor::from_vec(vec![2048], data));
                Contribution { client: c, dict, weight: 1.0, wire_bytes: 0, done_secs: 0.0 }
            })
            .collect();
        let mut raw = ShardedTree::new(TreePlan::new(12, vec![4]), None, PsumMode::Raw);
        let raw_out = raw.aggregate(0, contribs.clone()).unwrap();
        let mut packed = ShardedTree::new(TreePlan::new(12, vec![4]), None, PsumMode::Lossless);
        let packed_out = packed.aggregate(0, contribs).unwrap();
        assert_eq!(
            packed_out.global.to_bytes(),
            raw_out.global.to_bytes(),
            "lossless frames must not move a bit of the model"
        );
        assert!((raw_out.psum_ratio() - 1.0).abs() < 1e-12);
        assert!(
            packed_out.psum_ratio() > 1.2,
            "psum ratio {:.2} below the 1.2x floor",
            packed_out.psum_ratio()
        );
        assert!(packed_out.root_ingress_bytes < raw_out.root_ingress_bytes);
    }

    #[test]
    fn edge_links_price_the_forward_hop() {
        let contribs: Vec<Contribution> = (0..4).map(|c| contribution(c, 1.0, 2.0)).collect();
        let slow = vec![LinkProfile::symmetric(8.0); 2]; // 1 byte/s
        let mut tree = ShardedTree::two_level(ShardPlan::new(4, 2), Some(slow));
        let out = tree.aggregate(0, contribs.clone()).unwrap();
        // Edges become ready at 2.0 virtual seconds, then a frame of F
        // bytes takes F seconds at 8 bps.
        let frame = out.root_ingress_bytes / 2;
        assert!(
            out.root_done_secs >= 2.0 + frame as f64 - 1.0,
            "root_done {:.1}s must include the {frame}-byte forward",
            out.root_done_secs
        );
        let mut free = ShardedTree::two_level(ShardPlan::new(4, 2), None);
        let out_free = free.aggregate(0, contribs).unwrap();
        assert!(out_free.root_done_secs < 3.0, "no timing model: forwards are free");
    }

    #[test]
    fn multi_level_links_compound_the_chain() {
        let contribs: Vec<Contribution> = (0..4).map(|c| contribution(c, 1.0, 0.0)).collect();
        // Leaves forward at 1 byte/s, the mid tier at 1 byte/s again:
        // the root's ready time must cover both hops in sequence.
        let tiers =
            vec![vec![LinkProfile::symmetric(8.0); 2], vec![LinkProfile::symmetric(8.0); 4]];
        let mut tree = ShardedTree::new(TreePlan::new(4, vec![2, 2]), Some(tiers), PsumMode::Raw);
        let out = tree.aggregate(0, contribs.clone()).unwrap();
        let leaf_frame = out.level_ingress_bytes[1] / 4;
        let mid_frame = out.level_ingress_bytes[0] / 2;
        assert!(
            out.root_done_secs >= (leaf_frame + mid_frame) as f64 - 1.0,
            "root_done {:.1}s must chain the {leaf_frame}+{mid_frame} byte hops",
            out.root_done_secs
        );
    }

    #[test]
    fn fanout_counts_active_root_children() {
        let tree = ShardedTree::two_level(ShardPlan::new(8, 4), None);
        assert_eq!(tree.fanout(&[0, 1]), 1, "same shard");
        assert_eq!(tree.fanout(&[0, 7]), 2);
        assert_eq!(tree.fanout(&[0, 2, 4, 6]), 4);
        assert_eq!(FlatAggregator.fanout(&[0, 2, 4]), 3);
        // Depth 3: the root has 2 children regardless of 8 leaves.
        let deep = ShardedTree::new(TreePlan::new(16, vec![2, 4]), None, PsumMode::Raw);
        assert_eq!(deep.fanout(&(0..16).collect::<Vec<_>>()), 2);
        assert_eq!(deep.fanout(&[0, 1]), 1, "both in the first child's subtree");
    }

    #[test]
    fn streamed_matches_materialized() {
        let make = |client: usize| {
            let mut dict = StateDict::new();
            dict.insert("w.weight", Tensor::filled(vec![3], client as f32 * 0.1));
            (dict, 1.0 + client as f64)
        };
        let contribs: Vec<Contribution> = (0..10)
            .map(|c| {
                let (dict, weight) = make(c);
                Contribution { client: c, dict, weight, wire_bytes: 0, done_secs: 0.0 }
            })
            .collect();
        let mut tree = ShardedTree::new(TreePlan::new(10, vec![3, 2]), None, PsumMode::Raw);
        let materialized = tree.aggregate(0, contribs).unwrap();
        let mut streamed_tree =
            ShardedTree::new(TreePlan::new(10, vec![3, 2]), None, PsumMode::Raw);
        let streamed = streamed_tree.aggregate_streamed(0, &make).unwrap();
        assert_eq!(streamed.global.to_bytes(), materialized.global.to_bytes());
        assert_eq!(streamed.merged, 10);
    }

    #[test]
    fn level_merge_nanos_and_eqn1_cover_every_level() {
        let contribs: Vec<Contribution> = (0..8).map(|c| contribution(c, 1.0, 0.0)).collect();
        // Depth 3 (fanouts [2, 2]): 4 leaves, 2 mid nodes, 1 root.
        let mut tree = ShardedTree::new(TreePlan::new(8, vec![2, 2]), None, PsumMode::Lossless);
        let out = tree.aggregate(0, contribs.clone()).unwrap();
        assert_eq!(out.level_merge_nanos.len(), 3, "one entry per level, leaves included");
        assert!(out.level_merge_nanos[2] > 0, "leaf accumulation takes measurable time");
        // Every level ships one frame per non-empty node: 4 + 2.
        assert_eq!(out.eqn1.len(), 6);
        assert!(out.eqn1.iter().all(|d| d.leg == Eqn1Leg::Psum && d.compressed));
        assert!(
            out.eqn1.iter().all(|d| d.measured_codec_secs > 0.0),
            "lossless frames pay real codec time"
        );
        // The flat backend: one merge, no frames.
        let flat = FlatAggregator.aggregate(0, contribs).unwrap();
        assert_eq!(flat.level_merge_nanos.len(), 1);
        assert!(flat.eqn1.is_empty());
    }

    #[test]
    fn telemetry_traces_per_level_merge_spans() {
        let path =
            std::env::temp_dir().join(format!("fedsz-tree-trace-{}.jsonl", std::process::id()));
        {
            let telemetry = Telemetry::with_trace(&path).unwrap();
            let contribs: Vec<Contribution> = (0..8).map(|c| contribution(c, 1.0, 0.0)).collect();
            let mut tree = ShardedTree::new(TreePlan::new(8, vec![2, 2]), None, PsumMode::Raw)
                .with_telemetry(telemetry.clone());
            let out = tree.aggregate(0, contribs).unwrap();
            assert_eq!(out.merged, 8);
            telemetry.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Depth 3: a merge.level span per level plus an eqn1.decision
        // event per frame, all valid JSON.
        let mut merge_spans = 0;
        let mut decisions = 0;
        for line in text.lines() {
            let event = fedsz_telemetry::json::parse(line).expect("valid trace line");
            match event.get("name").and_then(fedsz_telemetry::json::Json::as_str) {
                Some("merge.level") => merge_spans += 1,
                Some("eqn1.decision") => decisions += 1,
                _ => {}
            }
        }
        assert_eq!(merge_spans, 3, "{text}");
        assert_eq!(decisions, 6, "{text}");
    }

    #[test]
    fn empty_contributions_yield_none() {
        assert!(FlatAggregator.aggregate(0, Vec::new()).is_none());
        let mut tree = ShardedTree::two_level(ShardPlan::new(4, 2), None);
        assert!(tree.aggregate(0, Vec::new()).is_none());
    }

    #[test]
    #[should_panic(expected = "one edge link per shard")]
    fn mismatched_edge_links_rejected() {
        let _ = ShardedTree::two_level(ShardPlan::new(4, 2), Some(vec![LinkProfile::default()]));
    }

    #[test]
    #[should_panic(expected = "one link tier per non-root level")]
    fn mismatched_level_count_rejected() {
        let _ = ShardedTree::new(
            TreePlan::new(8, vec![2, 2]),
            Some(vec![vec![LinkProfile::default(); 2]]),
            PsumMode::Raw,
        );
    }
}
