//! The [`Aggregator`] trait and its flat and sharded-tree backends.
//!
//! The round engine no longer averages uploads in an inline loop; it
//! hands the decoded, policy-accepted contributions to an `Aggregator`:
//!
//! * [`FlatAggregator`] — the paper's topology: every client reports
//!   straight to the root, which merges in ascending client-id order.
//!   Root ingress is every upload's wire bytes.
//! * [`ShardedTree`] — a two-level tree: a [`ShardPlan`] assigns each
//!   edge aggregator a contiguous client-id range, each edge merges its
//!   cohort's updates in client-id order on its own worker thread, and
//!   forwards a single weighted [`PartialSum`] frame over its own
//!   [`LinkProfile`]. Root ingress drops from `N` updates to `S`
//!   partial-sum frames, and the virtual clock prices the edge→root hop
//!   (edge ready time + measured merge time + frame transfer).
//!
//! Both backends accumulate with [`PartialSum`]'s exact fixed-point
//! arithmetic, so the sharded tree's global model is bit-identical to
//! the flat result for any shard count — the property the parity tests
//! pin down.

use crate::agg::shard::{PartialSum, ShardPlan};
use crate::link::LinkProfile;
use crate::protocol::Message;
use fedsz_nn::StateDict;
use std::time::Instant;

/// One policy-accepted, already-decoded update as aggregation input.
#[derive(Debug, Clone)]
pub struct Contribution {
    /// Client id (stable across rounds; routes the update to its shard).
    pub client: usize,
    /// The decoded update.
    pub dict: StateDict,
    /// Aggregation weight (sample count, staleness-discounted, or 1).
    pub weight: f64,
    /// Wire bytes this update cost on its first hop (0 for stale
    /// updates already held at the server).
    pub wire_bytes: usize,
    /// Virtual time the update reached its first-hop aggregator.
    pub done_secs: f64,
}

/// What one round of aggregation produced.
#[derive(Debug, Clone)]
pub struct AggOutcome {
    /// The merged global model.
    pub global: StateDict,
    /// Contributions folded in.
    pub merged: usize,
    /// Bytes arriving at the root: all update wire bytes (flat) or the
    /// partial-sum frames (tree).
    pub root_ingress_bytes: usize,
    /// Virtual time the root holds the merged model: the last accepted
    /// arrival (flat), or the slowest edge's ready + merge + forward
    /// time (tree).
    pub root_done_secs: f64,
    /// Measured wall-clock spent merging (edge workers run in
    /// parallel, so this tracks the slowest shard, not the sum).
    pub merge_secs: f64,
}

/// Merges a round's accepted contributions into the next global model.
pub trait Aggregator {
    /// Short human-readable backend name (for reports).
    fn name(&self) -> &'static str;

    /// Distinct first-hop destinations a broadcast to `cohort` fans out
    /// from the root: the cohort itself (flat) or its shards (tree).
    fn fanout(&self, cohort: &[usize]) -> usize;

    /// Merges one round's contributions; `None` when there are none
    /// (the global model then stays put).
    fn aggregate(&mut self, round: usize, contributions: Vec<Contribution>) -> Option<AggOutcome>;
}

/// Every client reports straight to the root (classic FedAvg).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatAggregator;

impl Aggregator for FlatAggregator {
    fn name(&self) -> &'static str {
        "flat"
    }

    fn fanout(&self, cohort: &[usize]) -> usize {
        cohort.len()
    }

    fn aggregate(
        &mut self,
        _round: usize,
        mut contributions: Vec<Contribution>,
    ) -> Option<AggOutcome> {
        if contributions.is_empty() {
            return None;
        }
        contributions.sort_by_key(|c| c.client);
        let root_ingress_bytes = contributions.iter().map(|c| c.wire_bytes).sum();
        let root_done_secs = contributions.iter().map(|c| c.done_secs).fold(0.0, f64::max);
        let t0 = Instant::now();
        let mut sum = PartialSum::new();
        for c in &contributions {
            sum.accumulate(&c.dict, c.weight);
        }
        let global = sum.finish().expect("non-empty contributions");
        Some(AggOutcome {
            global,
            merged: contributions.len(),
            root_ingress_bytes,
            root_done_secs,
            merge_secs: t0.elapsed().as_secs_f64(),
        })
    }
}

/// Two-level sharded tree: contiguous client ranges per edge, parallel
/// edge merges, one partial-sum frame per edge to the root.
#[derive(Debug, Clone)]
pub struct ShardedTree {
    plan: ShardPlan,
    /// One uplink profile per edge aggregator; `None` skips the timing
    /// model (edge→root forwards are free, as when the engine runs
    /// without a network model).
    edges: Option<Vec<LinkProfile>>,
}

impl ShardedTree {
    /// Builds the tree over `plan` with optional per-edge uplinks.
    ///
    /// # Panics
    ///
    /// Panics when `edges` is present but not one profile per shard.
    pub fn new(plan: ShardPlan, edges: Option<Vec<LinkProfile>>) -> Self {
        if let Some(edges) = &edges {
            assert_eq!(
                edges.len(),
                plan.shards(),
                "need one edge link per shard ({} links for {} shards)",
                edges.len(),
                plan.shards()
            );
        }
        Self { plan, edges }
    }

    /// The shard plan in force.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Seconds to move `bytes` over edge `shard`'s uplink (0 without a
    /// timing model).
    fn forward_secs(&self, shard: usize, bytes: usize) -> f64 {
        match &self.edges {
            Some(edges) => edges[shard].transfer_secs(bytes),
            None => 0.0,
        }
    }

    /// The wire size of the partial-sum frame edge `shard` would ship.
    fn frame_bytes(&self, round: usize, shard: usize, sum: &PartialSum) -> usize {
        Message::PartialSum {
            round: round as u32,
            shard: shard as u32,
            clients: sum.contributions() as u32,
            weight: sum.weight_total(),
            payload: sum.encode_payload(),
        }
        .encode()
        .len()
    }

    /// Streams synthesized updates through the tree without holding the
    /// whole cohort in memory: each shard worker calls `make` for the
    /// clients it owns (ascending) and folds the result straight into
    /// its partial sum. This is what lets the scale bench sweep 10^4
    /// clients — peak memory is one update per worker, not `N`.
    pub fn aggregate_streamed<F>(&mut self, round: usize, make: &F) -> Option<AggOutcome>
    where
        F: Fn(usize) -> (StateDict, f64) + Sync,
    {
        let plan = self.plan;
        let t0 = Instant::now();
        let partials: Vec<PartialSum> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..plan.shards())
                .map(|s| {
                    scope.spawn(move || {
                        let mut sum = PartialSum::new();
                        for client in plan.range(s) {
                            let (dict, weight) = make(client);
                            sum.accumulate(&dict, weight);
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        });
        self.reduce(round, partials, vec![0.0; plan.shards()], t0)
    }

    /// Root-side reduction shared by the engine and streamed paths:
    /// accounts each non-empty edge's frame, prices its forward hop and
    /// merges the partials in ascending shard order.
    fn reduce(
        &self,
        round: usize,
        partials: Vec<PartialSum>,
        edge_ready: Vec<f64>,
        t0: Instant,
    ) -> Option<AggOutcome> {
        let mut root = PartialSum::new();
        let mut root_ingress_bytes = 0usize;
        let mut root_done_secs = 0.0f64;
        let mut merged = 0usize;
        for (shard, partial) in partials.into_iter().enumerate() {
            if partial.is_empty() {
                continue;
            }
            let frame = self.frame_bytes(round, shard, &partial);
            root_ingress_bytes += frame;
            root_done_secs =
                root_done_secs.max(edge_ready[shard] + self.forward_secs(shard, frame));
            merged += partial.contributions();
            root.merge(partial);
        }
        let global = root.finish()?;
        Some(AggOutcome {
            global,
            merged,
            root_ingress_bytes,
            root_done_secs,
            merge_secs: t0.elapsed().as_secs_f64(),
        })
    }
}

impl Aggregator for ShardedTree {
    fn name(&self) -> &'static str {
        "sharded-tree"
    }

    fn fanout(&self, cohort: &[usize]) -> usize {
        let mut seen = vec![false; self.plan.shards()];
        for &client in cohort {
            seen[self.plan.shard_of(client)] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    fn aggregate(&mut self, round: usize, contributions: Vec<Contribution>) -> Option<AggOutcome> {
        if contributions.is_empty() {
            return None;
        }
        let plan = self.plan;
        let mut per_shard: Vec<Vec<Contribution>> =
            (0..plan.shards()).map(|_| Vec::new()).collect();
        for c in contributions {
            per_shard[plan.shard_of(c.client)].push(c);
        }
        let t0 = Instant::now();
        // Each edge merges its cohort in ascending client-id order on
        // its own worker thread; the edge is "ready" once its slowest
        // accepted member arrived and the merge itself completed.
        let merged_shards: Vec<(PartialSum, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .map(|mut cohort| {
                    scope.spawn(move || {
                        cohort.sort_by_key(|c| c.client);
                        let ready = cohort.iter().map(|c| c.done_secs).fold(0.0, f64::max);
                        let t_edge = Instant::now();
                        let mut sum = PartialSum::new();
                        for c in &cohort {
                            sum.accumulate(&c.dict, c.weight);
                        }
                        (sum, ready + t_edge.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        });
        let (partials, edge_ready): (Vec<_>, Vec<_>) = merged_shards.into_iter().unzip();
        self.reduce(round, partials, edge_ready, t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsz_tensor::Tensor;

    fn contribution(client: usize, value: f32, done_secs: f64) -> Contribution {
        let mut dict = StateDict::new();
        dict.insert("w.weight", Tensor::filled(vec![4], value));
        Contribution { client, dict, weight: 1.0, wire_bytes: 100, done_secs }
    }

    #[test]
    fn flat_and_tree_agree_bitwise() {
        let contribs: Vec<Contribution> =
            (0..11).map(|c| contribution(c, (c as f32).sin(), c as f64)).collect();
        let flat = FlatAggregator.aggregate(0, contribs.clone()).unwrap().global.to_bytes();
        for shards in [1usize, 2, 3, 7, 11] {
            let mut tree = ShardedTree::new(ShardPlan::new(11, shards), None);
            let out = tree.aggregate(0, contribs.clone()).unwrap();
            assert_eq!(out.global.to_bytes(), flat, "{shards} shards diverged");
            assert_eq!(out.merged, 11);
        }
    }

    #[test]
    fn tree_root_ingress_is_frames_not_uploads() {
        let contribs: Vec<Contribution> = (0..8).map(|c| contribution(c, 1.0, 0.0)).collect();
        let flat = FlatAggregator.aggregate(0, contribs.clone()).unwrap();
        assert_eq!(flat.root_ingress_bytes, 800, "flat ingress sums upload wire bytes");
        let mut tree = ShardedTree::new(ShardPlan::new(8, 4), None);
        let out = tree.aggregate(0, contribs).unwrap();
        // 4 frames of a 4-element partial sum each: well under 800 per
        // frame-count scaling, and exactly 4 frames' worth.
        let one_frame = out.root_ingress_bytes / 4;
        assert_eq!(out.root_ingress_bytes, one_frame * 4);
    }

    #[test]
    fn edge_links_price_the_forward_hop() {
        let contribs: Vec<Contribution> = (0..4).map(|c| contribution(c, 1.0, 2.0)).collect();
        let slow = vec![LinkProfile::symmetric(8.0); 2]; // 1 byte/s
        let mut tree = ShardedTree::new(ShardPlan::new(4, 2), Some(slow));
        let out = tree.aggregate(0, contribs.clone()).unwrap();
        // Edges become ready at 2.0 virtual seconds, then a frame of F
        // bytes takes F seconds at 8 bps.
        let frame = out.root_ingress_bytes / 2;
        assert!(
            out.root_done_secs >= 2.0 + frame as f64 - 1.0,
            "root_done {:.1}s must include the {frame}-byte forward",
            out.root_done_secs
        );
        let mut free = ShardedTree::new(ShardPlan::new(4, 2), None);
        let out_free = free.aggregate(0, contribs).unwrap();
        assert!(out_free.root_done_secs < 3.0, "no timing model: forwards are free");
    }

    #[test]
    fn fanout_counts_distinct_shards() {
        let tree = ShardedTree::new(ShardPlan::new(8, 4), None);
        assert_eq!(tree.fanout(&[0, 1]), 1, "same shard");
        assert_eq!(tree.fanout(&[0, 7]), 2);
        assert_eq!(tree.fanout(&[0, 2, 4, 6]), 4);
        assert_eq!(FlatAggregator.fanout(&[0, 2, 4]), 3);
    }

    #[test]
    fn streamed_matches_materialized() {
        let make = |client: usize| {
            let mut dict = StateDict::new();
            dict.insert("w.weight", Tensor::filled(vec![3], client as f32 * 0.1));
            (dict, 1.0 + client as f64)
        };
        let contribs: Vec<Contribution> = (0..10)
            .map(|c| {
                let (dict, weight) = make(c);
                Contribution { client: c, dict, weight, wire_bytes: 0, done_secs: 0.0 }
            })
            .collect();
        let mut tree = ShardedTree::new(ShardPlan::new(10, 3), None);
        let materialized = tree.aggregate(0, contribs).unwrap();
        let mut streamed_tree = ShardedTree::new(ShardPlan::new(10, 3), None);
        let streamed = streamed_tree.aggregate_streamed(0, &make).unwrap();
        assert_eq!(streamed.global.to_bytes(), materialized.global.to_bytes());
        assert_eq!(streamed.merged, 10);
    }

    #[test]
    fn empty_contributions_yield_none() {
        assert!(FlatAggregator.aggregate(0, Vec::new()).is_none());
        let mut tree = ShardedTree::new(ShardPlan::new(4, 2), None);
        assert!(tree.aggregate(0, Vec::new()).is_none());
    }

    #[test]
    #[should_panic(expected = "one edge link per shard")]
    fn mismatched_edge_links_rejected() {
        let _ = ShardedTree::new(ShardPlan::new(4, 2), Some(vec![LinkProfile::default()]));
    }
}
