//! Hierarchical aggregation with aggregation-path and download-path
//! compression.
//!
//! The paper's server is flat: every client uploads to one process,
//! which averages updates in a single `O(clients · params)` loop and
//! re-broadcasts `N` raw copies of the global model. That shape caps
//! the scaling study at 127 clients on one serialized link. This
//! subsystem replaces it with a pluggable pipeline that stays
//! bit-compatible with flat FedAvg while scaling to 10^4+ clients:
//!
//! ```text
//!          clients 0..j   clients j..k     clients k..m   clients m..n
//!              │  ▲           │  ▲             │  ▲           │  ▲
//!              ▼  │ encoded   ▼  │ broadcast   ▼  │           ▼  │
//!          ┌────────┐     ┌────────┐       ┌────────┐     ┌────────┐
//!          │ leaf 0 │     │ leaf 1 │  ...  │ leaf L-1│    │ leaf L │  plan.rs
//!          └───┬────┘     └───┬────┘       └───┬────┘     └───┬────┘  shard.rs
//!  partial-sum │ frame        │                │               │
//!  (raw or     ▼              ▼                ▼               ▼
//!   lossless,  ┌──────────────────┐        ┌──────────────────┐
//!   psum.rs)   │   mid node 0     │  ...   │   mid node M     │      tree.rs
//!              └────────┬─────────┘        └────────┬─────────┘
//!                       │ (per-edge LinkProfile)    │
//!                       ▼                           ▼
//!          ┌─────────────────────────────────────────────────────┐
//!          │  root: exact merge in ascending child order → global │
//!          └──────────────────────────┬──────────────────────────┘
//!                                     │ FedSZ-encode ONCE per round
//!                             downlink.rs (Eqn-1 raw fallback)
//! ```
//!
//! **Shape.** [`TreePlan`] describes an arbitrary-depth hierarchy as a
//! list of per-level fan-outs (`--tree 4x8x32`); the two-level
//! `--shards S` tree is the one-entry special case. Clients partition
//! contiguously and balanced across the *leaf* aggregators, and every
//! internal node owns the union of its children's ranges.
//!
//! **Determinism.** Each leaf merges its cohort in ascending client-id
//! order and every parent merges its children in ascending child
//! order; on top of that fixed order, [`shard::ExactAcc`] accumulates
//! every `w·x` term in 128-bit fixed-point arithmetic, which is
//! associative — so the tree's global model is **bit-identical** to
//! the flat synchronous FedAvg result at *any* depth and fan-out (the
//! parity tests assert exactly this for two-level shards ∈ {1, 2, 7,
//! 16} and for depth-3/4 trees with uneven fan-outs).
//!
//! **Cost model.** Root ingress drops from `N` update payloads to the
//! root's fan-out in partial-sum frames; every hop is priced on the
//! forwarding node's own [`LinkProfile`](crate::link::LinkProfile) by
//! the same virtual-time model the client links use, and per-level
//! ingress bytes are reported in [`AggOutcome`]. Frames ship `f64`
//! sums — 2x a raw `f32` payload per element — so [`PsumForwarder`]
//! can compress them *losslessly* (bit-parity survives) with
//! [`PsumCodec`](fedsz_lossless::PsumCodec), choosing per edge via the
//! paper's Eqn 1. On the download path, [`Downlink`] encodes the
//! global model once per round and the tree fans the encoded stream
//! out through its levels instead of the server re-sending `N` raw
//! copies; Eqn 1 (via an EWMA of measured codec costs) falls back to
//! raw bytes whenever the bottleneck link would get them there faster.

pub mod downlink;
pub mod plan;
pub mod pool;
pub mod psum;
pub mod shard;
pub mod tree;

pub use downlink::{Downlink, DownlinkMode, DownlinkPayload};
pub use plan::TreePlan;
pub use pool::WorkerPool;
pub use psum::{PsumForwarder, PsumFrame, PsumMode, PsumScratch};
pub use shard::{template_matches, ExactAcc, PartialSum, ShardPlan};
pub use tree::{AggOutcome, Aggregator, Contribution, FlatAggregator, ShardedTree};
