//! Sharded hierarchical aggregation with download-path compression.
//!
//! The paper's server is flat: every client uploads to one process,
//! which averages updates in a single `O(clients · params)` loop and
//! re-broadcasts `N` raw copies of the global model. That shape caps
//! the scaling study at 127 clients on one serialized link. This
//! subsystem replaces it with a pluggable pipeline that stays
//! bit-compatible with flat FedAvg while scaling to 10^4+ clients:
//!
//! ```text
//!            clients 0..k      clients k..m        clients m..n
//!                │  ▲              │  ▲                │  ▲
//!                ▼  │ encoded      ▼  │ broadcast      ▼  │
//!            ┌────────┐        ┌────────┐          ┌────────┐
//!            │ edge 0 │        │ edge 1 │   ...    │ edge S │   tree.rs
//!            └───┬────┘        └───┬────┘          └───┬────┘   shard.rs
//!    partial sum │ (LinkProfile)   │                   │
//!                ▼                 ▼                   ▼
//!            ┌─────────────────────────────────────────────┐
//!            │ root: exact merge in shard order → global   │
//!            └───────────────────┬─────────────────────────┘
//!                                │ FedSZ-encode ONCE per round
//!                        downlink.rs (Eqn-1 raw fallback)
//! ```
//!
//! **Determinism.** Each edge owns a *contiguous* client-id range
//! ([`ShardPlan`]) and merges its cohort in ascending client-id order;
//! the root merges edge partials in ascending shard order. On top of
//! that fixed order, [`shard::ExactAcc`] accumulates every `w·x` term
//! in 128-bit fixed-point arithmetic, which is associative — so the
//! sharded global model is **bit-identical** to the flat synchronous
//! FedAvg result for *any* shard count (the parity tests assert
//! exactly this for shards ∈ {1, 2, 7, 16}).
//!
//! **Cost model.** Root ingress drops from `N` update payloads to `S`
//! partial-sum frames; the edge→root hop is priced on each edge's own
//! [`LinkProfile`](crate::link::LinkProfile) by the same virtual-time
//! model the client links use. On the download path, [`Downlink`]
//! encodes the global model once per round and the tree fans the
//! encoded stream out through the edges instead of the server
//! re-sending `N` raw copies; the paper's Eqn 1 (via an EWMA of
//! measured codec costs) falls back to raw bytes whenever the
//! bottleneck link would get them there faster.

pub mod downlink;
pub mod shard;
pub mod tree;

pub use downlink::{Downlink, DownlinkMode, DownlinkPayload};
pub use shard::{ExactAcc, PartialSum, ShardPlan};
pub use tree::{AggOutcome, Aggregator, Contribution, FlatAggregator, ShardedTree};
