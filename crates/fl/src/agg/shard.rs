//! Shard planning and exact, merge-order-invariant partial sums.
//!
//! The sharded tree only works as a drop-in replacement for flat FedAvg
//! if splitting the cohort across edge aggregators cannot change the
//! aggregated model by even one bit. Floating-point addition is not
//! associative, so naively summing per shard and then summing the shard
//! partials would make the global model depend on the shard count. The
//! fix here is [`ExactAcc`]: every term `w_i · x_i` is quantized onto a
//! fixed `2^-80` binary grid (exact for every practically-scaled term —
//! quantization only discards magnitude below `2^-80`, far beneath an
//! `f32` model weight's resolution) and accumulated in 128-bit integer
//! arithmetic. Integer addition is associative and commutative, so a
//! [`PartialSum`] merge is bitwise independent of how clients were
//! grouped into shards and of the order edges report in. The merge
//! still runs in ascending client-id order per shard and ascending
//! shard order at the root, so the bytes a debugger sees are stable
//! too, not merely the final model.
//!
//! [`ShardPlan`] assigns each edge aggregator a contiguous client-id
//! range (balanced to within one client), which keeps shard membership
//! a pure function of the client id — no routing table to ship.
//!
//! # Pricing: when does a partial-sum frame beat forwarding uploads?
//!
//! A [`PartialSum`] frame ships one `f64` per model element (see
//! [`PartialSum::encode_payload`]) — **2x** the bytes of the raw `f32`
//! upload it summarizes. An edge aggregator with fan-in `F` (clients
//! per frame) therefore cuts its parent's ingress only when
//!
//! * `F > 2` against raw uploads, and
//! * `F > 2·r_up` against FedSZ-compressed uploads of ratio `r_up`;
//!
//! compressing the frames *losslessly* (ratio `r_ps`, see
//! [`PsumForwarder`](crate::agg::PsumForwarder)) divides both
//! break-evens by `r_ps`: the ingress reduction at a node is exactly
//! `F · r_ps / 2` against raw uploads. These are not just
//! documentation: the `agg_scale` bench measures the reduction with
//! the lossless codec on and asserts it tracks the `F · r_ps / 2`
//! closed form at every sweep point (at 10^3 clients / 16 shards the
//! two-level reduction is ~49x with `r_ps ≈ 1.56`, and deeper trees
//! multiply it by their extra fan-in).

use fedsz_codec::varint::{read_str, read_uvarint, write_str, write_uvarint};
use fedsz_codec::{CodecError, Result};
use fedsz_nn::StateDict;
use fedsz_tensor::Tensor;
use std::ops::Range;

/// Fractional bits of the fixed-point accumulation grid: terms are
/// summed exactly as multiples of `2^-80`.
pub const FRAC_BITS: i32 = 80;

/// Quantizes one `f64` term onto the `2^-80` grid (truncating toward
/// zero), exactly — the shift arithmetic never rounds twice.
///
/// # Panics
///
/// Panics when the term is non-finite or its magnitude reaches `2^47`
/// (far beyond any sane weighted model entry; a silent wrap would
/// corrupt the aggregate).
fn quantize(term: f64) -> i128 {
    if term == 0.0 {
        return 0;
    }
    assert!(term.is_finite(), "non-finite term in aggregation");
    let bits = term.to_bits();
    let negative = bits >> 63 == 1;
    let biased = ((bits >> 52) & 0x7FF) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    // value = ±m · 2^e with m in [2^52, 2^53) for normal numbers.
    let (m, e) = if biased == 0 { (frac, -1074) } else { (frac | (1 << 52), biased - 1075) };
    let shift = e + FRAC_BITS;
    let magnitude: i128 = if shift >= 0 {
        assert!(shift <= 74, "aggregation term magnitude {term:e} exceeds the fixed-point range");
        i128::from(m) << shift
    } else if shift > -64 {
        i128::from(m >> (-shift) as u32)
    } else {
        0
    };
    if negative {
        -magnitude
    } else {
        magnitude
    }
}

/// An order- and grouping-invariant accumulator for `f64` terms.
///
/// Internally a signed 128-bit fixed-point integer at [`FRAC_BITS`]
/// fractional bits; see the module docs for why this makes sharded
/// aggregation bit-identical to flat aggregation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactAcc(i128);

impl ExactAcc {
    /// Folds one term into the sum.
    ///
    /// # Panics
    ///
    /// Panics on non-finite terms, on terms with magnitude `>= 2^47`,
    /// and on accumulator overflow (which would need astronomically
    /// large weights).
    pub fn add(&mut self, term: f64) {
        self.0 = self.0.checked_add(quantize(term)).expect("partial-sum overflow");
    }

    /// Merges another accumulator exactly.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn merge(&mut self, other: ExactAcc) {
        self.0 = self.0.checked_add(other.0).expect("partial-sum overflow");
    }

    /// Non-panicking [`ExactAcc::merge`]: `None` on overflow. The
    /// remote-ingress path uses this so a hostile frame with extreme
    /// accumulator bits evicts its sender instead of aborting the
    /// server.
    pub fn checked_merge(self, other: ExactAcc) -> Option<ExactAcc> {
        self.0.checked_add(other.0).map(ExactAcc)
    }

    /// The accumulated value, rounded once to `f64`.
    pub fn value(self) -> f64 {
        // 2^-80, constructed bit-exactly (a decimal literal could be
        // off by an ulp).
        let scale = f64::from_bits(((1023 - FRAC_BITS as u64) & 0x7FF) << 52);
        self.0 as f64 * scale
    }

    /// Whether nothing has been accumulated (or everything cancelled).
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The raw fixed-point state, for exact serialization
    /// ([`PartialSum::encode_exact`]).
    pub fn to_bits(self) -> i128 {
        self.0
    }

    /// Rebuilds an accumulator from [`ExactAcc::to_bits`] output.
    pub fn from_bits(bits: i128) -> Self {
        Self(bits)
    }

    /// Folds `weight * values[i]` into `accs[i]` across a contiguous
    /// slice — the batched form of [`ExactAcc::add`], bit-identical to
    /// it by construction.
    ///
    /// The hot case (a normal finite term whose quantized shift lands
    /// in `[0, 74]`) is a single biased-exponent range check followed by
    /// one mask, one shift and one add; everything else — zeros,
    /// subnormal products, magnitudes below the grid or past the `2^47`
    /// ceiling, non-finite terms — falls through to the scalar
    /// `quantize` path, which carries the range panics. There is no
    /// separate rounding step to diverge: the fast path computes the
    /// same `(frac | 2^52) << (e + FRAC_BITS)` the scalar path does.
    ///
    /// # Panics
    ///
    /// Panics on slice length mismatch, and wherever [`ExactAcc::add`]
    /// panics (non-finite terms, magnitude `>= 2^47`, overflow).
    pub fn add_slice(accs: &mut [ExactAcc], values: &[f32], weight: f64) {
        assert_eq!(accs.len(), values.len(), "kernel slice length mismatch");
        // shift = (biased - 1075) + FRAC_BITS must land in [0, 74].
        const FAST_LO: i32 = 1075 - FRAC_BITS;
        const FAST_HI: i32 = FAST_LO + 74;
        for (acc, &v) in accs.iter_mut().zip(values) {
            let term = weight * f64::from(v);
            let bits = term.to_bits();
            let biased = ((bits >> 52) & 0x7FF) as i32;
            if (FAST_LO..=FAST_HI).contains(&biased) {
                let m = (bits & ((1u64 << 52) - 1)) | (1 << 52);
                let mag = i128::from(m) << (biased - FAST_LO);
                let q = if bits >> 63 == 1 { -mag } else { mag };
                acc.0 = acc.0.checked_add(q).expect("partial-sum overflow");
            } else {
                acc.add(term);
            }
        }
    }

    /// Merges `src[i]` into `dst[i]` across a contiguous slice — the
    /// batched form of [`ExactAcc::merge`], shared by the in-process
    /// tree levels and the remote relay's exact-frame ingestion.
    ///
    /// # Panics
    ///
    /// Panics on slice length mismatch or accumulator overflow.
    pub fn merge_slice(dst: &mut [ExactAcc], src: &[ExactAcc]) {
        assert_eq!(dst.len(), src.len(), "kernel slice length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            d.0 = d.0.checked_add(s.0).expect("partial-sum overflow");
        }
    }

    /// Checked [`ExactAcc::merge_slice`]: adds `src` into `dst`
    /// element-wise, and on the first overflow rolls the committed
    /// prefix back to its exact prior bits and returns `false`.
    /// (`i128` addition forms a group, so subtracting what was added
    /// restores every element bit-for-bit — no validation scratch
    /// buffer needed.)
    ///
    /// # Panics
    ///
    /// Panics on slice length mismatch.
    pub fn try_merge_slice(dst: &mut [ExactAcc], src: &[ExactAcc]) -> bool {
        assert_eq!(dst.len(), src.len(), "kernel slice length mismatch");
        for i in 0..dst.len() {
            match dst[i].0.checked_add(src[i].0) {
                Some(sum) => dst[i].0 = sum,
                None => {
                    Self::unmerge_slice(&mut dst[..i], &src[..i]);
                    return false;
                }
            }
        }
        true
    }

    /// Exact inverse of a committed [`ExactAcc::merge_slice`] prefix.
    fn unmerge_slice(dst: &mut [ExactAcc], src: &[ExactAcc]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            d.0 = d.0.wrapping_sub(s.0);
        }
    }
}

/// Contiguous, balanced assignment of client ids to edge shards.
///
/// Shard `s` owns [`ShardPlan::range`]`(s)`; the first `clients %
/// shards` shards hold one extra client. Membership is a pure function
/// of the client id, so every tier of the tree derives the same plan
/// from `(clients, shards)` alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    clients: usize,
    shards: usize,
}

impl ShardPlan {
    /// Builds a plan over `shards` edge aggregators.
    ///
    /// Historically `shards` was silently clamped to `[1, clients]`,
    /// which let a typo'd deployment "work" with a different topology
    /// than asked for. Out-of-range counts are now rejected:
    /// validated configurations go through
    /// [`FlConfig::plan`](crate::FlConfig::plan), which surfaces the
    /// same condition as a recoverable
    /// [`PlanError::ShardsOutOfRange`](crate::plan::PlanError) before
    /// this constructor ever runs.
    ///
    /// # Panics
    ///
    /// Panics when `clients == 0` or `shards` is outside
    /// `[1, clients]`.
    pub fn new(clients: usize, shards: usize) -> Self {
        assert!(clients > 0, "need at least one client to shard");
        assert!(
            (1..=clients).contains(&shards),
            "shards must be in [1, clients], got {shards} shards for {clients} clients"
        );
        Self { clients, shards }
    }

    /// Total clients covered by the plan.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Number of edge shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `client`.
    ///
    /// # Panics
    ///
    /// Panics when `client` is outside the plan.
    pub fn shard_of(&self, client: usize) -> usize {
        assert!(client < self.clients, "client {client} outside plan of {}", self.clients);
        let base = self.clients / self.shards;
        let extra = self.clients % self.shards;
        let wide = extra * (base + 1);
        if client < wide {
            client / (base + 1)
        } else {
            extra + (client - wide) / base
        }
    }

    /// The contiguous client-id range shard `shard` owns.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shards()`.
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.shards, "shard {shard} outside plan of {}", self.shards);
        let base = self.clients / self.shards;
        let extra = self.clients % self.shards;
        let start = shard * base + shard.min(extra);
        let len = base + usize::from(shard < extra);
        start..start + len
    }
}

/// One decoded partial-sum frame entry: `(name, shape, f64 sums)`.
pub type DecodedPartialEntry = (String, Vec<usize>, Vec<f64>);

/// Order-sensitive `(name, shape)` agreement between an architecture
/// template and any entry sequence — the one definition every remote
/// ingress validator uses (decoded update dicts and partial-sum frames
/// alike), guarding the merge asserts.
pub fn template_matches<'a>(
    template: &StateDict,
    count: usize,
    entries: impl Iterator<Item = (&'a str, &'a [usize])>,
) -> bool {
    count == template.len()
        && template
            .iter()
            .zip(entries)
            .all(|((tname, tensor), (name, shape))| tname == name && tensor.shape() == shape)
}

/// A weighted partial sum of state dicts, held exactly.
///
/// This is what an edge aggregator forwards to the root: one
/// accumulator per model element plus the total weight, `Σ w_i · x_i`
/// and `Σ w_i`. Merging two partial sums is exact ([`ExactAcc`]), so
/// `finish` yields the same bytes no matter how contributions were
/// grouped.
#[derive(Debug, Clone, Default)]
pub struct PartialSum {
    entries: Vec<(String, Vec<usize>, Vec<ExactAcc>)>,
    weight: ExactAcc,
    contributions: usize,
}

impl PartialSum {
    /// An empty partial sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of contributions folded in so far.
    pub fn contributions(&self) -> usize {
        self.contributions
    }

    /// Whether no contribution has been folded in.
    pub fn is_empty(&self) -> bool {
        self.contributions == 0
    }

    /// Total model elements per contribution.
    pub fn total_elements(&self) -> usize {
        self.entries.iter().map(|(_, _, accs)| accs.len()).sum()
    }

    /// Total accumulated weight.
    pub fn weight_total(&self) -> f64 {
        self.weight.value()
    }

    /// Folds one weighted state dict into the sum. The first
    /// contribution fixes the entry names and shapes; later ones must
    /// match it (the FedAvg setting: every client trains the same
    /// architecture).
    ///
    /// # Panics
    ///
    /// Panics on non-positive weights, on a missing entry, or on a
    /// shape mismatch.
    pub fn accumulate(&mut self, dict: &StateDict, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0, "weights must be positive");
        // A recycled ([`PartialSum::reset`]) buffer whose zeroed entries
        // already match the dict is reused as-is; anything else
        // (re)builds the entry layout from the first contribution.
        if self.entries.is_empty() || (self.is_empty() && !self.shape_matches(dict)) {
            self.entries = dict
                .iter()
                .map(|(name, t)| {
                    (name.to_owned(), t.shape().to_vec(), vec![ExactAcc::default(); t.len()])
                })
                .collect();
        }
        for (name, shape, accs) in &mut self.entries {
            let tensor = dict.get(name).unwrap_or_else(|| panic!("update missing entry `{name}`"));
            assert_eq!(tensor.shape(), &shape[..], "shape mismatch for `{name}`");
            ExactAcc::add_slice(accs, tensor.data(), weight);
        }
        self.weight.add(weight);
        self.contributions += 1;
    }

    /// Merges another partial sum exactly. Either side may be empty.
    ///
    /// # Panics
    ///
    /// Panics when both sides are non-empty and disagree on entry names
    /// or shapes.
    pub fn merge(&mut self, other: PartialSum) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() && !self.layout_matches(&other) {
            *self = other;
            return;
        }
        self.merge_from(&other);
    }

    /// Borrowing [`PartialSum::merge`]: folds `other` in without taking
    /// ownership, so tree levels can recycle child buffers instead of
    /// moving them. An empty `self` whose recycled (zeroed) entries
    /// already match `other`'s layout merges in place — adding into
    /// zeros reproduces `other`'s bits exactly — while a layout
    /// mismatch rebuilds the entries by cloning.
    ///
    /// # Panics
    ///
    /// Panics when both sides hold contributions and disagree on entry
    /// names or shapes, or on accumulator overflow.
    pub fn merge_from(&mut self, other: &PartialSum) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() && !self.layout_matches(other) {
            self.entries.clear();
            self.entries.extend(other.entries.iter().cloned());
            self.weight = other.weight;
            self.contributions = other.contributions;
            return;
        }
        assert_eq!(self.entries.len(), other.entries.len(), "partial sums disagree on entries");
        for ((name, shape, accs), (oname, oshape, oaccs)) in
            self.entries.iter_mut().zip(&other.entries)
        {
            assert_eq!(name, oname, "partial sums disagree on entry order");
            assert_eq!(shape, oshape, "shape mismatch for `{name}`");
            ExactAcc::merge_slice(accs, oaccs);
        }
        self.weight.merge(other.weight);
        self.contributions += other.contributions;
    }

    /// Whether `self` and `other` agree on entry names, order, shapes
    /// and element counts — the reuse test for pooled buffers,
    /// independent of how many contributions either side holds.
    pub fn layout_matches(&self, other: &PartialSum) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().zip(&other.entries).all(
                |((name, shape, accs), (oname, oshape, oaccs))| {
                    name == oname && shape == oshape && accs.len() == oaccs.len()
                },
            )
    }

    /// Clears the sum for reuse while keeping every allocation: entry
    /// names, shapes and accumulator buffers survive, so the next
    /// round on a pooled buffer does no `Vec` growth when the model
    /// layout repeats.
    pub fn reset(&mut self) {
        for (_, _, accs) in &mut self.entries {
            accs.fill(ExactAcc::default());
        }
        self.weight = ExactAcc::default();
        self.contributions = 0;
    }

    /// Divides by the total weight and rounds to `f32`, producing the
    /// aggregated state dict. Returns `None` when nothing was
    /// accumulated.
    pub fn finish(&self) -> Option<StateDict> {
        if self.is_empty() {
            return None;
        }
        let total = self.weight.value();
        assert!(total > 0.0, "aggregate weight must be positive");
        let mut out = StateDict::new();
        for (name, shape, accs) in &self.entries {
            let data: Vec<f32> = accs.iter().map(|a| (a.value() / total) as f32).collect();
            out.insert(name.clone(), Tensor::from_vec(shape.clone(), data));
        }
        Some(out)
    }

    /// Whether this partial sum's entries agree with `template` — same
    /// entry names, same order, same shapes. Remote aggregators
    /// validate frames against the architecture-derived template
    /// *before* merging, so a misconfigured (or hostile) child gets
    /// evicted instead of tripping the merge asserts and killing the
    /// server.
    pub fn shape_matches(&self, template: &StateDict) -> bool {
        template_matches(
            template,
            self.entries.len(),
            self.entries.iter().map(|(name, shape, _)| (name.as_str(), &shape[..])),
        )
    }

    /// Non-panicking [`PartialSum::merge`] for remote input: verifies
    /// entry agreement and checks every accumulator addition, leaving
    /// `self` untouched on failure so the caller can evict the sender
    /// and keep aggregating. (The in-process tree keeps the asserting
    /// `merge` — its inputs are self-produced, so a violation there is
    /// a bug, not a bad peer.)
    ///
    /// # Errors
    ///
    /// Returns the reason the frame is unusable (entry mismatch or
    /// accumulator overflow).
    pub fn try_merge(&mut self, other: PartialSum) -> std::result::Result<(), &'static str> {
        if other.is_empty() {
            return Ok(());
        }
        if self.is_empty() {
            *self = other;
            return Ok(());
        }
        if self.entries.len() != other.entries.len() {
            return Err("partial sums disagree on entries");
        }
        for ((name, shape, _), (oname, oshape, _)) in self.entries.iter().zip(&other.entries) {
            if name != oname || shape != oshape {
                return Err("partial sums disagree on entry order or shapes");
            }
        }
        let weight = self.weight.checked_merge(other.weight).ok_or("weight overflow")?;
        // Commit in place; on overflow, roll the committed prefix back
        // bit-exactly (see [`ExactAcc::try_merge_slice`]) so a failed
        // merge leaves `self` untouched without the old
        // validate-then-commit pass's full-model scratch allocation.
        for e in 0..self.entries.len() {
            if !ExactAcc::try_merge_slice(&mut self.entries[e].2, &other.entries[e].2) {
                for (done, (_, _, oaccs)) in self.entries[..e].iter_mut().zip(&other.entries) {
                    ExactAcc::unmerge_slice(&mut done.2, oaccs);
                }
                return Err("partial-sum overflow");
            }
        }
        self.weight = weight;
        self.contributions += other.contributions;
        Ok(())
    }

    /// Serializes the sums as the payload an edge would ship to the
    /// root: entry names, shapes and the `f64`-rounded accumulator
    /// values. (The in-process tree merges the exact accumulators
    /// instead — shipping rounded sums would re-introduce
    /// shard-dependent rounding — but this is the byte image the wire
    /// accounting charges for.)
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_payload_into(&mut out);
        out
    }

    /// [`PartialSum::encode_payload`] into a caller-owned buffer
    /// (cleared first), so per-frame pricing can reuse one allocation
    /// across nodes and rounds.
    pub fn encode_payload_into(&self, out: &mut Vec<u8>) {
        out.clear();
        // A reset/pooled buffer with zeroed entries is semantically the
        // empty sum: ship the canonical empty image, not model-sized
        // zeros.
        if self.is_empty() {
            write_uvarint(out, 0);
            return;
        }
        out.reserve(self.total_elements() * 8 + 64);
        write_uvarint(out, self.entries.len() as u64);
        for (name, shape, accs) in &self.entries {
            write_str(out, name);
            write_uvarint(out, shape.len() as u64);
            for &d in shape {
                write_uvarint(out, d as u64);
            }
            for acc in accs {
                out.extend_from_slice(&acc.value().to_bits().to_le_bytes());
            }
        }
    }

    /// Parses an [`PartialSum::encode_payload`] image back into `(name,
    /// shape, sums)` triples — the far side of the partial-sum frame.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn decode_payload(bytes: &[u8]) -> Result<Vec<DecodedPartialEntry>> {
        let mut pos = 0usize;
        let count = read_uvarint(bytes, &mut pos)? as usize;
        // Header-claimed sizes bound allocations *before* reserving:
        // a corrupt frame must fail with a CodecError, not abort in
        // the allocator on a terabyte `with_capacity`.
        if count > bytes.len().saturating_sub(pos) {
            return Err(CodecError::Corrupt("entry count larger than remaining input"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let name = read_str(bytes, &mut pos)?.to_owned();
            let rank = read_uvarint(bytes, &mut pos)? as usize;
            if rank > 8 {
                return Err(CodecError::Corrupt("tensor rank too large"));
            }
            let mut shape = Vec::with_capacity(rank);
            let mut elems = 1usize;
            for _ in 0..rank {
                let d = read_uvarint(bytes, &mut pos)? as usize;
                elems = elems.checked_mul(d).ok_or(CodecError::Corrupt("shape overflow"))?;
                shape.push(d);
            }
            if elems > bytes.len().saturating_sub(pos) / 8 {
                return Err(CodecError::Corrupt("tensor larger than remaining input"));
            }
            let mut sums = Vec::with_capacity(elems);
            for _ in 0..elems {
                let raw = bytes.get(pos..pos + 8).ok_or(CodecError::UnexpectedEof)?;
                sums.push(f64::from_bits(u64::from_le_bytes(raw.try_into().expect("8 bytes"))));
                pos += 8;
            }
            entries.push((name, shape, sums));
        }
        if pos != bytes.len() {
            return Err(CodecError::Corrupt("trailing bytes in partial-sum payload"));
        }
        Ok(entries)
    }

    /// Serializes the *exact* accumulator state — the 128-bit
    /// fixed-point integers themselves, not their `f64` roundings — so
    /// a partial sum can cross a process boundary and be merged on the
    /// far side with the same bits an in-process merge produces.
    ///
    /// This is what a real relay aggregator ships upstream (see
    /// [`crate::net`]): [`PartialSum::encode_payload`] rounds each
    /// accumulator to `f64`, which is fine for byte *accounting* but
    /// would re-introduce shard-dependent rounding if a remote parent
    /// re-quantized the rounded sums. At 16 bytes per element the exact
    /// image is 2x the `f64` one; the lossless psum codec claws most of
    /// that back (the high bytes are sign extension).
    pub fn encode_exact(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_exact_into(&mut out);
        out
    }

    /// [`PartialSum::encode_exact`] into a caller-owned buffer (cleared
    /// first), the relay path's per-round reusable variant.
    pub fn encode_exact_into(&self, out: &mut Vec<u8>) {
        out.clear();
        // Canonical empty image for reset/pooled buffers (zeroed
        // entries are semantically the empty sum) — byte-identical to
        // encoding a fresh `PartialSum::new()`.
        if self.is_empty() {
            write_uvarint(out, 0);
            out.extend_from_slice(&ExactAcc::default().to_bits().to_le_bytes());
            write_uvarint(out, 0);
            return;
        }
        out.reserve(self.total_elements() * 16 + 64);
        write_uvarint(out, self.entries.len() as u64);
        for (name, shape, accs) in &self.entries {
            write_str(out, name);
            write_uvarint(out, shape.len() as u64);
            for &d in shape {
                write_uvarint(out, d as u64);
            }
            for acc in accs {
                out.extend_from_slice(&acc.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&self.weight.to_bits().to_le_bytes());
        write_uvarint(out, self.contributions as u64);
    }

    /// Parses an [`PartialSum::encode_exact`] image back into a
    /// mergeable partial sum, bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input
    /// (size claims are validated before any allocation).
    pub fn decode_exact(bytes: &[u8]) -> Result<PartialSum> {
        let mut pos = 0usize;
        let count = read_uvarint(bytes, &mut pos)? as usize;
        if count > bytes.len().saturating_sub(pos) {
            return Err(CodecError::Corrupt("entry count larger than remaining input"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let name = read_str(bytes, &mut pos)?.to_owned();
            let rank = read_uvarint(bytes, &mut pos)? as usize;
            if rank > 8 {
                return Err(CodecError::Corrupt("tensor rank too large"));
            }
            let mut shape = Vec::with_capacity(rank);
            let mut elems = 1usize;
            for _ in 0..rank {
                let d = read_uvarint(bytes, &mut pos)? as usize;
                elems = elems.checked_mul(d).ok_or(CodecError::Corrupt("shape overflow"))?;
                shape.push(d);
            }
            if elems > bytes.len().saturating_sub(pos) / 16 {
                return Err(CodecError::Corrupt("tensor larger than remaining input"));
            }
            let mut accs = Vec::with_capacity(elems);
            for _ in 0..elems {
                let raw = bytes.get(pos..pos + 16).ok_or(CodecError::UnexpectedEof)?;
                accs.push(ExactAcc::from_bits(i128::from_le_bytes(
                    raw.try_into().expect("16 bytes"),
                )));
                pos += 16;
            }
            entries.push((name, shape, accs));
        }
        let raw = bytes.get(pos..pos + 16).ok_or(CodecError::UnexpectedEof)?;
        let weight = ExactAcc::from_bits(i128::from_le_bytes(raw.try_into().expect("16 bytes")));
        pos += 16;
        let contributions = read_uvarint(bytes, &mut pos)? as usize;
        if pos != bytes.len() {
            return Err(CodecError::Corrupt("trailing bytes in partial-sum payload"));
        }
        if contributions == 0 && !entries.is_empty() {
            return Err(CodecError::Corrupt("non-empty partial sum with zero contributions"));
        }
        Ok(PartialSum { entries, weight, contributions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(values: &[f32]) -> StateDict {
        let mut sd = StateDict::new();
        sd.insert("w.weight", Tensor::from_vec(vec![values.len()], values.to_vec()));
        sd
    }

    #[test]
    fn quantize_is_exact_for_weight_scale_values() {
        // Exactness needs every mantissa bit on or above the 2^-80
        // grid, which holds for all weight-scale magnitudes (an f32
        // promoted to f64 keeps a 24-bit mantissa, so even 1e-6-scale
        // values bottom out near 2^-44).
        for v in [1.0f64, -1.0, 0.5, 3.75, f64::from(-1e-6f32), 123.456, 2f64.powi(-40)] {
            let mut acc = ExactAcc::default();
            acc.add(v);
            assert_eq!(acc.value(), v, "value {v} should round-trip exactly");
        }
    }

    #[test]
    fn tiny_terms_truncate_deterministically() {
        // Magnitude below the 2^-80 grid vanishes — by design, and
        // deterministically (2^-80 is far beneath any f32 weight's
        // contribution to an average).
        let mut acc = ExactAcc::default();
        acc.add(1e-40);
        assert_eq!(acc.value(), 0.0);
        acc.add(f64::from(f32::MIN_POSITIVE));
        assert_eq!(acc.value(), 0.0);
        // Partially representable terms keep their on-grid part.
        let mut partial = ExactAcc::default();
        partial.add(1.0 + 2f64.powi(-100));
        assert_eq!(partial.value(), 1.0);
    }

    #[test]
    #[should_panic(expected = "fixed-point range")]
    fn huge_terms_rejected() {
        let mut acc = ExactAcc::default();
        acc.add(1e30);
    }

    #[test]
    fn accumulation_is_grouping_invariant() {
        // The property the whole tree rests on: any grouping of the same
        // terms produces the same bits.
        let terms: Vec<f64> =
            (0..257).map(|i| ((i * 2654435761u64 as usize) as f64).sin() * 0.37).collect();
        let mut flat = ExactAcc::default();
        for &t in &terms {
            flat.add(t);
        }
        for split in [1usize, 2, 7, 100, 256] {
            let mut left = ExactAcc::default();
            let mut right = ExactAcc::default();
            for &t in &terms[..split] {
                left.add(t);
            }
            for &t in &terms[split..] {
                right.add(t);
            }
            left.merge(right);
            assert_eq!(left, flat, "split at {split} changed the sum");
        }
    }

    #[test]
    fn shard_plan_partitions_contiguously() {
        for (clients, shards) in [(10, 3), (16, 16), (7, 2), (100, 7), (5, 1)] {
            let plan = ShardPlan::new(clients, shards);
            let mut covered = 0usize;
            for s in 0..plan.shards() {
                let range = plan.range(s);
                assert_eq!(range.start, covered, "ranges must be contiguous");
                for c in range.clone() {
                    assert_eq!(plan.shard_of(c), s, "shard_of must invert range");
                }
                covered = range.end;
            }
            assert_eq!(covered, clients, "ranges must cover every client");
        }
    }

    #[test]
    fn shard_plan_balances_within_one() {
        let plan = ShardPlan::new(10, 3);
        let sizes: Vec<usize> = (0..3).map(|s| plan.range(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    #[should_panic(expected = "shards must be in [1, clients]")]
    fn zero_shards_are_rejected_not_clamped() {
        let _ = ShardPlan::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "shards must be in [1, clients]")]
    fn oversized_shard_counts_are_rejected_not_clamped() {
        let _ = ShardPlan::new(4, 5);
    }

    #[test]
    fn partial_sum_matches_manual_average() {
        let mut sum = PartialSum::new();
        sum.accumulate(&dict(&[1.0, 2.0]), 1.0);
        sum.accumulate(&dict(&[3.0, 6.0]), 1.0);
        let avg = sum.finish().unwrap();
        assert_eq!(avg.get("w.weight").unwrap().data(), &[2.0, 4.0]);
        assert_eq!(sum.contributions(), 2);
    }

    #[test]
    fn partial_sum_merge_is_shard_invariant() {
        let dicts: Vec<StateDict> =
            (0..13).map(|i| dict(&[(i as f32).sin(), 0.01 * i as f32, -1.7])).collect();
        let mut flat = PartialSum::new();
        for (i, d) in dicts.iter().enumerate() {
            flat.accumulate(d, 1.0 + i as f64);
        }
        let flat_bytes = flat.finish().unwrap().to_bytes();
        for shards in [1usize, 2, 5, 13] {
            let plan = ShardPlan::new(dicts.len(), shards);
            let mut root = PartialSum::new();
            for s in 0..plan.shards() {
                let mut partial = PartialSum::new();
                for c in plan.range(s) {
                    partial.accumulate(&dicts[c], 1.0 + c as f64);
                }
                root.merge(partial);
            }
            assert_eq!(
                root.finish().unwrap().to_bytes(),
                flat_bytes,
                "{shards} shards changed the model"
            );
        }
    }

    #[test]
    fn empty_partial_sum_finishes_to_none() {
        assert!(PartialSum::new().finish().is_none());
        let mut sum = PartialSum::new();
        sum.merge(PartialSum::new());
        assert!(sum.is_empty());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_rejected() {
        let mut sum = PartialSum::new();
        sum.accumulate(&dict(&[1.0, 2.0]), 1.0);
        sum.accumulate(&dict(&[1.0]), 1.0);
    }

    #[test]
    fn corrupt_payload_size_claims_rejected_before_allocating() {
        use fedsz_codec::varint::{write_str, write_uvarint};
        // An absurd entry-count claim must error, not abort in the
        // allocator.
        let mut huge_count = Vec::new();
        write_uvarint(&mut huge_count, u64::MAX >> 1);
        assert!(PartialSum::decode_payload(&huge_count).is_err());
        // Same for a single entry claiming a terabyte-scale dimension.
        let mut giant_dim = Vec::new();
        write_uvarint(&mut giant_dim, 1);
        write_str(&mut giant_dim, "w.weight");
        write_uvarint(&mut giant_dim, 1);
        write_uvarint(&mut giant_dim, 1 << 40);
        assert!(PartialSum::decode_payload(&giant_dim).is_err());
    }

    #[test]
    fn exact_payload_round_trips_the_accumulator_bits() {
        // A partial sum shipped through `encode_exact` and merged
        // remotely must be indistinguishable from an in-process merge —
        // the property the multi-process relay path rests on.
        let dicts: Vec<StateDict> =
            (0..9).map(|i| dict(&[(i as f32).sin() * 0.3, -0.07 * i as f32])).collect();
        let mut local = PartialSum::new();
        let mut left = PartialSum::new();
        let mut right = PartialSum::new();
        for (i, d) in dicts.iter().enumerate() {
            local.accumulate(d, 1.0 + i as f64);
            if i < 4 {
                left.accumulate(d, 1.0 + i as f64)
            } else {
                right.accumulate(d, 1.0 + i as f64)
            }
        }
        let mut remote = PartialSum::decode_exact(&left.encode_exact()).unwrap();
        remote.merge(PartialSum::decode_exact(&right.encode_exact()).unwrap());
        assert_eq!(remote.contributions(), local.contributions());
        assert_eq!(remote.weight_total().to_bits(), local.weight_total().to_bits());
        assert_eq!(
            remote.finish().unwrap().to_bytes(),
            local.finish().unwrap().to_bytes(),
            "remote merge must be bit-identical to the in-process merge"
        );
        // Truncation and trailing garbage are rejected.
        let image = local.encode_exact();
        assert!(PartialSum::decode_exact(&image[..image.len() - 1]).is_err());
        let mut long = image.clone();
        long.push(0);
        assert!(PartialSum::decode_exact(&long).is_err());
    }

    #[test]
    fn payload_round_trips() {
        let mut sum = PartialSum::new();
        sum.accumulate(&dict(&[0.25, -3.5, 11.0]), 2.0);
        let payload = sum.encode_payload();
        let entries = PartialSum::decode_payload(&payload).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, "w.weight");
        assert_eq!(entries[0].1, vec![3]);
        assert_eq!(entries[0].2, vec![0.5, -7.0, 22.0]);
        assert!(PartialSum::decode_payload(&payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn batched_kernel_matches_scalar_add_bit_for_bit() {
        // Values spanning every kernel branch: fast-path normals, exact
        // zeros, f32 subnormals, values whose weighted product goes
        // subnormal, and magnitudes just under the 2^47 panic ceiling.
        let values: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.127,
            -3.75e4,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0e-45, // f32 subnormal
            1.0e38,
            -1.0e38,
            6.5e-30,
        ];
        for weight in [1.0, 1.0 / 3.0, 7.25e-9, 1.0e-290, 1.0e8] {
            let mut batched = vec![ExactAcc::default(); values.len()];
            let mut scalar = vec![ExactAcc::default(); values.len()];
            // Skip weight/value combos the scalar path rejects; the
            // panic-parity test below covers those.
            if values.iter().any(|&v| (weight * f64::from(v)).abs() >= 2f64.powi(47)) {
                continue;
            }
            ExactAcc::add_slice(&mut batched, &values, weight);
            for (acc, &v) in scalar.iter_mut().zip(&values) {
                acc.add(weight * f64::from(v));
            }
            for (b, s) in batched.iter().zip(&scalar) {
                assert_eq!(b.to_bits(), s.to_bits(), "weight {weight:e}");
            }
        }
    }

    #[test]
    fn batched_kernel_handles_threshold_magnitudes() {
        // Just under the 2^47 ceiling quantizes; the fast-path bound
        // (biased exponent 1069, shift 74) is inclusive.
        let below = (2f64.powi(47) - 2f64.powi(20)) as f32;
        let mut accs = vec![ExactAcc::default()];
        ExactAcc::add_slice(&mut accs, &[below], 0.99);
        let mut scalar = ExactAcc::default();
        scalar.add(0.99 * f64::from(below));
        assert_eq!(accs[0].to_bits(), scalar.to_bits());
    }

    #[test]
    #[should_panic(expected = "fixed-point range")]
    fn batched_kernel_keeps_the_range_panic() {
        let mut accs = vec![ExactAcc::default()];
        ExactAcc::add_slice(&mut accs, &[1.0e30], 1.0e30);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn batched_kernel_keeps_the_finite_panic() {
        let mut accs = vec![ExactAcc::default()];
        ExactAcc::add_slice(&mut accs, &[f32::INFINITY], 1.0);
    }

    #[test]
    fn try_merge_slice_rolls_back_exactly() {
        let mut dst = vec![
            ExactAcc::from_bits(7),
            ExactAcc::from_bits(i128::MAX - 1),
            ExactAcc::from_bits(3),
        ];
        let src = vec![ExactAcc::from_bits(5), ExactAcc::from_bits(9), ExactAcc::from_bits(1)];
        let before: Vec<i128> = dst.iter().map(|a| a.to_bits()).collect();
        assert!(!ExactAcc::try_merge_slice(&mut dst, &src), "middle element must overflow");
        let after: Vec<i128> = dst.iter().map(|a| a.to_bits()).collect();
        assert_eq!(before, after, "failed merge must restore every element");
        let ok = vec![ExactAcc::from_bits(1); 3];
        assert!(ExactAcc::try_merge_slice(&mut dst, &ok));
        assert_eq!(dst[0].to_bits(), 8);
    }

    #[test]
    fn reset_recycles_the_buffer_without_moving_bits() {
        let mut pooled = PartialSum::new();
        pooled.accumulate(&dict(&[1.0, 2.0, 3.0]), 2.0);
        pooled.reset();
        assert!(pooled.is_empty());
        assert_eq!(pooled.weight_total(), 0.0);

        // Recycled accumulate must equal a fresh one bit-for-bit.
        let mut fresh = PartialSum::new();
        for sum in [&mut pooled, &mut fresh] {
            sum.accumulate(&dict(&[0.5, -0.25, 9.0]), 3.0);
        }
        assert_eq!(pooled.finish().unwrap().to_bytes(), fresh.finish().unwrap().to_bytes());

        // A recycled buffer accepts a *different* layout by rebuilding.
        pooled.reset();
        let mut other_arch = StateDict::new();
        other_arch.insert("b.bias", Tensor::from_vec(vec![2], vec![1.0, -1.0]));
        pooled.accumulate(&other_arch, 1.0);
        assert_eq!(pooled.finish().unwrap().get("b.bias").unwrap().data(), &[1.0, -1.0]);
    }

    #[test]
    fn merge_from_into_recycled_buffer_matches_moving_merge() {
        let mut a = PartialSum::new();
        a.accumulate(&dict(&[1.0, 2.0, 3.0]), 1.5);
        let mut b = PartialSum::new();
        b.accumulate(&dict(&[-0.5, 0.25, 7.0]), 2.5);

        let mut moved = a.clone();
        moved.merge(b.clone());

        // Borrow-merge through a recycled, layout-matching buffer.
        let mut pooled = a.clone();
        pooled.reset();
        pooled.merge_from(&a);
        pooled.merge_from(&b);
        assert_eq!(pooled.contributions(), moved.contributions());
        assert_eq!(pooled.finish().unwrap().to_bytes(), moved.finish().unwrap().to_bytes());

        // Borrow-merge into a fresh (layout-less) buffer clones.
        let mut fresh = PartialSum::new();
        fresh.merge_from(&a);
        fresh.merge_from(&b);
        assert_eq!(fresh.finish().unwrap().to_bytes(), moved.finish().unwrap().to_bytes());
    }

    #[test]
    fn try_merge_overflow_leaves_self_untouched() {
        let mut near_max = PartialSum::new();
        near_max.accumulate(&dict(&[1.0, 2.0, 3.0]), 1.0);
        // Push a mid-entry accumulator to the ceiling so the in-place
        // commit overflows after a prefix has already landed.
        near_max.entries[0].2[1] = ExactAcc::from_bits(i128::MAX - 1);
        let before = near_max.encode_exact();

        let mut hostile = PartialSum::new();
        hostile.accumulate(&dict(&[4.0, 5.0, 6.0]), 1.0);
        assert!(near_max.try_merge(hostile.clone()).is_err());
        assert_eq!(near_max.encode_exact(), before, "failed merge must not corrupt the partial");

        // A sane frame still merges afterwards.
        hostile.entries[0].2[1] = ExactAcc::from_bits(0);
        assert!(near_max.try_merge(hostile).is_ok());
    }
}
